"""Ablation: C2C latency penalty, snooping bus vs NUMA directory.

Section 4.3: on the E6000 a cache-to-cache transfer is ~40% slower
than memory; on directory-based NUMA machines the indirection makes
it 200-300% slower.  Because these workloads satisfy over half their
misses cache-to-cache at scale, the C2C penalty dominates their NUMA
behavior — the paper's argument for why OLTP-like workloads are
"particularly sensitive to cache-to-cache transfer latency".
"""

from bench_support import BENCH_SIM

from repro.cpu import InOrderCpuModel, UltraSparcIIParams
from repro.figures.common import simulate_multiprocessor, workload_for_procs
from repro.memsys.latency import E6000_LATENCIES, numa

N_PROCS = 8


def _measure() -> dict:
    out = {}
    for name in ("ecperf", "specjbb"):
        hierarchy = simulate_multiprocessor(
            workload_for_procs(name, N_PROCS), N_PROCS, BENCH_SIM
        )
        row = {}
        for label, book in (("e6000", E6000_LATENCIES), ("numa", numa(2.5))):
            model = InOrderCpuModel(UltraSparcIIParams(latencies=book))
            row[label] = model.cpi_for_machine(hierarchy).total
        row["c2c_ratio"] = hierarchy.c2c_ratio()
        out[name] = row
    return out


def test_ablation_numa_penalty(benchmark):
    results = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print("workload  c2c_ratio  CPI(e6000)  CPI(numa 2.5x)  slowdown")
    for name, row in results.items():
        slowdown = row["numa"] / row["e6000"]
        print(
            f"{name:8}  {row['c2c_ratio']:9.2f}  {row['e6000']:10.2f}  "
            f"{row['numa']:14.2f}  {slowdown:8.2f}x"
        )
        assert slowdown > 1.05, "C2C-heavy workloads must feel the indirection"
