"""Related-work comparison: VolanoMark vs the middleware benchmarks.

Section 6: VolanoMark's thread-per-connection server spends far more
time in the kernel than the pooled application server; SPECjbb has "a
much lower kernel component than VolanoMark" too.  This bench measures
the modeled kernel fractions and the memory-system contrast (tiny code
footprint, network-buffer-dominated sharing).
"""

from bench_support import BENCH_SIM

from repro.figures.common import simulate_multiprocessor
from repro.rng import RngFactory
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.volanomark import VolanoMarkWorkload

N_PROCS = 8


def _measure() -> dict:
    workloads = {
        "specjbb": SpecJbbWorkload(warehouses=N_PROCS),
        "ecperf": EcperfWorkload(injection_rate=N_PROCS),
        "volanomark": VolanoMarkWorkload(connections=200, rooms=10),
    }
    out = {}
    for name, workload in workloads.items():
        hierarchy = simulate_multiprocessor(workload, N_PROCS, BENCH_SIM)
        bundle_meta = workload.generate(
            1, BENCH_SIM.with_refs(2_000), RngFactory(1)
        ).meta
        out[name] = {
            "kernel_frac_8p": workload.kernel_time_model.system_fraction(N_PROCS),
            "c2c_ratio": hierarchy.c2c_ratio(),
            "code_kb": bundle_meta["code_bytes"] / 1024,
        }
    return out


def test_related_work_comparison(benchmark):
    results = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print("workload    kernel@8p  c2c_ratio  code KB")
    for name, row in results.items():
        print(
            f"{name:10}  {row['kernel_frac_8p']:9.2f}  "
            f"{row['c2c_ratio']:9.2f}  {row['code_kb']:7.0f}"
        )
    # The paper's ordering: volano >> ecperf >> specjbb on kernel time.
    assert (
        results["volanomark"]["kernel_frac_8p"]
        > results["ecperf"]["kernel_frac_8p"]
        > results["specjbb"]["kernel_frac_8p"]
    )
    # And ECperf's middleware stack dwarfs both applications' code.
    assert results["ecperf"]["code_kb"] > results["volanomark"]["code_kb"]
