"""Extension: does clustering the application server help?

Section 2.5 notes the commercial server supports clustering but the
paper measures a single instance.  The model answers the natural
question: on the 15-processor E6000, would k JVM instances have scaled
better?  Splitting sidesteps JVM/pool serialization (and gives each
instance its own collector) at the cost of bean-cache interference —
so the answer flips with scale, workload and k.
"""

from bench_support import BENCH_SIM

from repro.figures.common import measured_cpi_fn
from repro.perfmodel import WorkloadScalingParams
from repro.perfmodel.cluster import compare_clusterings

INSTANCE_COUNTS = [1, 2, 3]
PROCS = [6, 15]


def _study() -> dict:
    out = {}
    for name, params in (
        ("specjbb", WorkloadScalingParams.specjbb_default()),
        ("ecperf", WorkloadScalingParams.ecperf_default()),
    ):
        cpi = measured_cpi_fn(name, BENCH_SIM)
        out[name] = {
            p: compare_clusterings(params, cpi, p, INSTANCE_COUNTS) for p in PROCS
        }
    return out


def test_extension_clustering(benchmark):
    results = benchmark.pedantic(_study, iterations=1, rounds=1)
    print()
    print("speedup by (workload, procs, instances):")
    print("workload  procs  " + "  ".join(f"k={k}" for k in INSTANCE_COUNTS))
    for name, by_procs in results.items():
        for p, by_k in by_procs.items():
            cells = "  ".join(f"{by_k[k]:4.2f}" for k in INSTANCE_COUNTS)
            print(f"{name:8}  {p:5d}  {cells}")
    # At 15 processors, clustering relieves SPECjbb's serialization.
    jbb15 = results["specjbb"][15]
    assert jbb15[3] > jbb15[1]
    # ECperf at 6 processors: interference loss outweighs the relief.
    ec6 = results["ecperf"][6]
    assert ec6[3] < ec6[1]
