"""Benchmark harness support.

Every figure bench runs its driver once under pytest-benchmark, prints
the reproduced rows next to the paper's claim (the record kept in
EXPERIMENTS.md), and asserts the shape checks.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import SimConfig

#: Effort used by the figure benches (matches figures.common.FIGURE_SIM).
BENCH_SIM = SimConfig(seed=1234, refs_per_proc=250_000, warmup_fraction=0.5)

#: Rendered figure tables are persisted here so a plain
#: ``pytest benchmarks/ --benchmark-only`` run (no ``-s``) still leaves
#: the paper-vs-measured record on disk.
REPORT_DIR = Path(__file__).resolve().parent.parent / "benchmark_reports"


def run_figure_bench(benchmark, module, sim: SimConfig) -> None:
    """Run one figure driver under the benchmark, report, and verify."""
    result = benchmark.pedantic(module.run, args=(sim,), iterations=1, rounds=1)
    lines = [result.render()]
    failures = []
    for claim, ok in module.checks(result):
        lines.append(f'  [{"ok" if ok else "FAIL"}] {claim}')
        if not ok:
            failures.append(claim)
    report = "\n".join(lines)
    print()
    print(report)
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{result.figure_id}.txt").write_text(report + "\n")
    assert not failures, f"shape checks failed: {failures}"
