"""Benchmark: reproduce fig12 — instruction miss rate vs cache size (Figure 12)."""

from repro.figures import fig12_icache as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig12_icache(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
