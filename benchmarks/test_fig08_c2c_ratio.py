"""Benchmark: reproduce fig08 — cache-to-cache transfer ratio (Figure 8)."""

from repro.figures import fig08_c2c_ratio as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig08_c2c_ratio(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
