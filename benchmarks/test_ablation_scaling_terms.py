"""Ablation: which mechanism produces which feature of Figure 4.

The throughput model composes four mechanisms (DESIGN.md decision 4).
Switching each off shows its fingerprint:

- no falling path length  -> ECperf loses its super-linearity;
- no kernel contention    -> ECperf stops declining past its peak;
- no lock/pool contention -> SPECjbb stops leveling off;
- no GC                   -> a small uniform lift (Figure 9).
"""

from bench_support import BENCH_SIM
from dataclasses import replace

from repro.figures.common import measured_cpi_fn
from repro.osmodel.netstack import KernelNetworkModel
from repro.perfmodel import (
    ContentionModel,
    PathLengthModel,
    ThroughputModel,
    WorkloadScalingParams,
)

PROCS = [1, 2, 4, 8, 12, 15]


def _curves() -> dict:
    cpi_ec = measured_cpi_fn("ecperf", BENCH_SIM)
    cpi_jbb = measured_cpi_fn("specjbb", BENCH_SIM)
    ec = WorkloadScalingParams.ecperf_default()
    jbb = WorkloadScalingParams.specjbb_default()
    variants = {
        "ecperf.full": (ec, cpi_ec),
        "ecperf.flat_path": (
            replace(ec, path_length=PathLengthModel.flat()),
            cpi_ec,
        ),
        "ecperf.no_kernel": (
            replace(ec, kernel=KernelNetworkModel.none()),
            cpi_ec,
        ),
        "specjbb.full": (jbb, cpi_jbb),
        "specjbb.no_contention": (
            replace(jbb, contention=ContentionModel(jvm_lock_demand=0.001)),
            cpi_jbb,
        ),
        "specjbb.no_gc": (replace(jbb, gc_fraction_1p=0.0), cpi_jbb),
    }
    return {
        label: [ThroughputModel(params, cpi).point(p).speedup for p in PROCS]
        for label, (params, cpi) in variants.items()
    }


def test_ablation_scaling_terms(benchmark):
    curves = benchmark.pedantic(_curves, iterations=1, rounds=1)
    print()
    print("speedup by variant " + "  ".join(f"p={p}" for p in PROCS))
    for label, speedups in curves.items():
        print(f"{label:22} " + "  ".join(f"{s:5.2f}" for s in speedups))
    s = {label: dict(zip(PROCS, v)) for label, v in curves.items()}
    # Super-linearity requires the falling path length.
    assert s["ecperf.full"][8] > 8.0
    assert s["ecperf.flat_path"][8] < 8.0
    # The post-peak decline requires kernel contention.
    assert s["ecperf.full"][15] < max(s["ecperf.full"].values())
    assert s["ecperf.no_kernel"][15] >= s["ecperf.no_kernel"][12] - 0.05
    # Leveling off requires contention.
    assert s["specjbb.no_contention"][15] > s["specjbb.full"][15] + 1.0
    # GC removal is a small, uniform lift.
    assert all(
        s["specjbb.no_gc"][p] >= s["specjbb.full"][p] - 1e-9 for p in PROCS
    )
