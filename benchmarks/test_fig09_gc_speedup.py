"""Benchmark: reproduce fig09 — GC effect on scaling (Figure 9)."""

from repro.figures import fig09_gc_speedup as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig09_gc_speedup(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
