"""Future-work study: do the conclusions carry to newer hardware?

Section 7: "Further study is needed to determine how well these
results apply to ... different versions of the underlying hardware and
software."  Two what-ifs:

1. **Next-generation machine** (UltraSPARC-III-class: 900 MHz, 8 MB
   L2, memory relatively slower in cycles).  Capacity misses shrink
   with the big L2, so the *sharing* misses — which no capacity fixes
   — take over the miss mix: the paper's C2C story gets stronger, not
   weaker, with hardware generations.
2. **Parallel garbage collection**.  The measured JVM's collector is
   single-threaded; dividing collector demand across threads shows how
   much of the (modest) GC cost a parallel collector recovers.
"""

from bench_support import BENCH_SIM

from repro.core.config import e6000_machine, next_generation_machine
from repro.cpu import InOrderCpuModel, UltraSparcIIParams
from repro.figures.common import measured_cpi_fn, workload_for_procs
from repro.memsys.hierarchy import MemoryHierarchy
from repro.perfmodel import ThroughputModel, WorkloadScalingParams
from repro.rng import RngFactory

N_PROCS = 8


def _machine_comparison() -> dict:
    out = {}
    for label, machine in (
        ("e6000", e6000_machine(N_PROCS)),
        ("next_gen", next_generation_machine(N_PROCS)),
    ):
        workload = workload_for_procs("ecperf", N_PROCS)
        bundle = workload.generate(N_PROCS, BENCH_SIM, RngFactory(BENCH_SIM.seed))
        hierarchy = MemoryHierarchy(machine)
        hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
        model = InOrderCpuModel(UltraSparcIIParams(latencies=machine.latencies))
        out[label] = {
            "data_mpki": hierarchy.data_mpki(),
            "c2c_ratio": hierarchy.c2c_ratio(),
            "cpi": model.cpi_for_machine(hierarchy).total,
        }
    return out


def test_next_generation_machine(benchmark):
    results = benchmark.pedantic(_machine_comparison, iterations=1, rounds=1)
    print()
    print("machine    data MPKI  c2c_ratio   CPI")
    for label, row in results.items():
        print(
            f"{label:9}  {row['data_mpki']:9.2f}  {row['c2c_ratio']:9.2f}  "
            f"{row['cpi']:5.2f}"
        )
    # The 8 MB L2 removes capacity misses...
    assert results["next_gen"]["data_mpki"] < results["e6000"]["data_mpki"]
    # ...so sharing dominates the remaining misses even more strongly.
    assert results["next_gen"]["c2c_ratio"] > results["e6000"]["c2c_ratio"]


def test_parallel_gc_whatif(benchmark):
    cpi = benchmark.pedantic(
        lambda: measured_cpi_fn("specjbb", BENCH_SIM), iterations=1, rounds=1
    )
    params = WorkloadScalingParams.specjbb_default()
    serial = ThroughputModel(params, cpi, gc_threads=1)
    parallel = ThroughputModel(params, cpi, gc_threads=4)
    print()
    print("procs  speedup(1 GC thread)  speedup(4 GC threads)")
    for p in (4, 8, 15):
        s1, s4 = serial.point(p).speedup, parallel.point(p).speedup
        print(f"{p:5d}  {s1:20.2f}  {s4:21.2f}")
        assert s4 >= s1 - 1e-9
        assert parallel.gc_wall_fraction(p) < serial.gc_wall_fraction(p)
    # The gain is real but modest — GC was never the main scaling loss.
    gain = parallel.point(15).speedup / serial.point(15).speedup
    assert 1.0 < gain < 1.25
