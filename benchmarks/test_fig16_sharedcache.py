"""Benchmark: reproduce fig16 — shared-cache CMP study (Figure 16)."""

from repro.figures import fig16_sharedcache as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig16_sharedcache(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
