"""Benchmark: the paper's headline claims, end to end."""

from repro.figures import claims as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_paper_claims(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
