"""Supporting study: how close do the workloads come to the bus limit?

The paper's E6000 is a snooping machine; its scaling stories are
software-side (contention, kernel time), which presumes the bus itself
is not the wall.  This bench checks that presumption in the model:
utilization grows roughly linearly with processors and stays below
saturation at 16 — so attributing the Figure 4 rolloff to software is
consistent.
"""

from bench_support import BENCH_SIM

from repro.core.sweep import sweep
from repro.cpu import InOrderCpuModel
from repro.figures.common import simulate_multiprocessor, workload_for_procs
from repro.memsys.bandwidth import BusModel

PROCS = [2, 4, 8, 14]


def _utilization(name: str):
    bus = BusModel()
    model = InOrderCpuModel()

    def measure(p):
        hierarchy = simulate_multiprocessor(workload_for_procs(name, p), p, BENCH_SIM)
        cpi = model.cpi_for_machine(hierarchy).total
        return bus.utilization_of(hierarchy, cpi=cpi)

    return sweep("procs", PROCS, measure, metric=f"{name} bus util")


def test_bus_utilization(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _utilization(name) for name in ("ecperf", "specjbb")},
        iterations=1,
        rounds=1,
    )
    print()
    for name, result in results.items():
        print(result.render())
        print(
            f"  queueing slowdown @14p: "
            f"{BusModel.queueing_slowdown(result.at(14)):.2f}x"
        )
        assert result.is_monotonic(increasing=True, tolerance=0.02), name
        assert result.at(14) < 0.9, f"{name}: bus should not saturate"
    # ECperf moves more data (DB marshalling, beans) than SPECjbb.
    assert results["ecperf"].at(8) > results["specjbb"].at(8)
