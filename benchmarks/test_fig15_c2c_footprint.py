"""Benchmark: reproduce fig15 — C2C absolute footprint (Figure 15)."""

from repro.figures import fig15_c2c_footprint as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig15_c2c_footprint(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
