"""Trace-plane acceptance bench: replay parity and generate-once win.

Two properties the shared-memory trace plane must hold on a
miss-curve sweep (the workload shape it was built for — one trace,
many cache sizes):

1. **Parity** — sharded sweeps produce *identical* points with the
   plane on, with the plane off, and in a single direct
   ``simulate_miss_curve`` call;
2. **Plane win** — generating the trace once and replaying it from
   shared memory beats regenerating it in every shard by at least
   1.5x wall time (the plane timing *includes* publishing).
"""

from __future__ import annotations

import time

from repro.core.config import SimConfig
from repro.figures.fig12_icache import CACHE_SIZES
from repro.harness.runner import run_tasks
from repro.harness.tasks import build_miss_curve_sweep_tasks
from repro.harness.traceplane import TracePlane, TraceSpec
from repro.memsys.multisim import simulate_miss_curve

#: Reduced effort: enough trace-generation work that regenerating it
#: per shard is the dominant cost, small enough to keep the bench fast.
SIM = SimConfig(seed=1234, refs_per_proc=25_000, warmup_fraction=0.5)

SPEC = TraceSpec(workload="specjbb", scale=8, n_procs=1, sim=SIM)

JOBS = 2


def _sweep(plane: TracePlane | None) -> list[tuple[int, int, int, float]]:
    tasks = build_miss_curve_sweep_tasks(SPEC, CACHE_SIZES, "instr", plane=plane)
    outcomes = run_tasks(tasks, jobs=JOBS, plane=plane)
    points: list[tuple[int, int, int, float]] = []
    for outcome in outcomes:
        assert outcome.ok, outcome.failure
        points.extend(outcome.value)
    return points


def test_plane_sweep_beats_cold_sweep_and_matches_serial(tmp_path):
    t0 = time.perf_counter()
    cold = _sweep(plane=None)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    plane = TracePlane(root=tmp_path / "traceplane")
    try:
        shared = _sweep(plane=plane)
    finally:
        plane.close()
    plane_s = time.perf_counter() - t0

    direct = [
        (p.size, p.accesses, p.misses, p.mpki)
        for p in simulate_miss_curve(
            SPEC.generate().merged(), list(CACHE_SIZES), kind="instr",
            warmup_fraction=0.5,
        )
    ]
    assert cold == direct
    assert shared == direct

    assert plane_s < cold_s / 1.5, (
        f"plane sweep took {plane_s:.2f}s vs cold {cold_s:.2f}s "
        f"({cold_s / plane_s:.2f}x); expected >= 1.5x"
    )
