"""Supporting characterization: primary working sets are small.

The paper's summary claim — "the memory footprint and primary working
sets of these workloads are small compared to other commercial
workloads" — backed here with LRU stack-distance profiles: the block
count a fully-associative cache needs for 90% of warm data hits.
"""

from bench_support import BENCH_SIM

from repro.figures.common import make_workload
from repro.memsys.fastpath import block_stream
from repro.memsys.stackdist import StackDistanceProfiler
from repro.rng import RngFactory


def _working_sets() -> dict:
    out = {}
    for name in ("specjbb", "ecperf"):
        workload = make_workload(name, scale=4)
        sim = BENCH_SIM.with_refs(80_000)  # stack distance is O(n log n)
        bundle = workload.generate(1, sim, RngFactory(seed=sim.seed))
        profiler = StackDistanceProfiler()
        profiler.feed(block_stream(bundle.per_cpu[0], kind="data"))
        out[name] = {
            "ws90_blocks": profiler.working_set_size(0.90),
            "ws99_blocks": profiler.working_set_size(0.99),
        }
    return out


def test_working_sets(benchmark):
    results = benchmark.pedantic(_working_sets, iterations=1, rounds=1)
    print()
    print("data working sets (fully-associative LRU, 64 B blocks)")
    for name, row in results.items():
        print(
            f"{name:8}  90%: {row['ws90_blocks'] * 64 / 1024:8.0f} KB   "
            f"99%: {row['ws99_blocks'] * 64 / 1024:8.0f} KB"
        )
        # "Small primary working sets": 90% of reuse within ~1 MB.
        assert row["ws90_blocks"] * 64 <= 1 << 20, name
