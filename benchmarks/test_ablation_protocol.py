"""Ablation: MOSI vs MSI vs MESI coherence (DESIGN.md decision 2).

MOSI's OWNED state lets the last writer keep supplying readers; MSI
hands ownership back to memory after one copyback; MESI's EXCLUSIVE
state turns private read-then-write sequences (freshly allocated
objects) into silent upgrades.  On ECperf's read-shared beans MSI
shows fewer copybacks and extra writebacks; on SPECjbb's migratory
locks MOSI and MSI tie — which is itself the interesting result.
"""

from bench_support import BENCH_SIM

from repro.figures.common import simulate_multiprocessor, workload_for_procs

N_PROCS = 8


def _measure(protocol: str) -> dict:
    out = {}
    for name in ("ecperf", "specjbb"):
        hierarchy = simulate_multiprocessor(
            workload_for_procs(name, N_PROCS), N_PROCS, BENCH_SIM, protocol=protocol
        )
        out[name] = {
            "c2c": hierarchy.total_c2c_fills,
            "writebacks": hierarchy.bus.stats.writebacks,
            "c2c_ratio": hierarchy.c2c_ratio(),
            "upgrades": hierarchy.bus.stats.upgrades,
            "silent": hierarchy.bus.stats.silent_upgrades,
        }
    return out


def test_ablation_mosi_vs_msi(benchmark):
    results = benchmark.pedantic(
        lambda: {p: _measure(p) for p in ("mosi", "msi", "mesi")},
        iterations=1,
        rounds=1,
    )
    print()
    print("protocol  workload  c2c_fills  writebacks  upgrades  silent  c2c_ratio")
    for protocol, by_wl in results.items():
        for name, stats in by_wl.items():
            print(
                f"{protocol:8}  {name:8}  {stats['c2c']:9d}  "
                f"{stats['writebacks']:10d}  {stats['upgrades']:8d}  "
                f"{stats['silent']:6d}  {stats['c2c_ratio']:.2f}"
            )
    # MSI pays writebacks on every read-supply.
    assert results["msi"]["ecperf"]["writebacks"] > results["mosi"]["ecperf"]["writebacks"]
    # MOSI supplies at least as often on the read-shared workload.
    assert results["mosi"]["ecperf"]["c2c"] >= results["msi"]["ecperf"]["c2c"]
    # MESI converts a chunk of bus upgrades into silent ones.
    for name in ("ecperf", "specjbb"):
        assert results["mesi"][name]["silent"] > 0
        assert results["mesi"][name]["upgrades"] < results["mosi"][name]["upgrades"]
