"""Benchmark: reproduce fig04 — throughput scaling on the E6000 (Figure 4)."""

from repro.figures import fig04_scaling as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig04_scaling(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
