"""Benchmark: reproduce fig05 — execution-mode breakdown (Figure 5)."""

from repro.figures import fig05_modes as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig05_modes(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
