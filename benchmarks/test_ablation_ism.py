"""Ablation: Intimate Shared Memory (4 MB pages) on ECperf.

Section 3.2 / Section 6: enabling ISM raised ECperf throughput more
than 10%, because 8 KB pages give the 64-entry TLB only 512 KB of
reach against a heap of hundreds of MB.  This bench replays an ECperf
trace through the TLB at both page sizes and converts the miss-rate
difference into a CPI effect.
"""

from bench_support import BENCH_SIM

from repro.cpu import InOrderCpuModel, UltraSparcIIParams
from repro.figures.common import simulate_multiprocessor, workload_for_procs
from repro.memsys.block import IFETCH
from repro.osmodel.ism import IsmSetting, tlb_for
from repro.rng import RngFactory


def _measure() -> dict:
    workload = workload_for_procs("ecperf", 2)
    bundle = workload.generate(2, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    out = {}
    for enabled in (False, True):
        tlb = tlb_for(IsmSetting(enabled=enabled))
        instructions = 0
        for trace in bundle.per_cpu:
            for ref in trace:
                if ref & 3 == IFETCH:
                    instructions += 8
                    continue
                tlb.access(ref >> 2)
        out["ism_on" if enabled else "ism_off"] = tlb.mpki(instructions)
    # CPI effect: run the cache hierarchy once, apply both TLB rates.
    hierarchy = simulate_multiprocessor(workload, 2, BENCH_SIM)
    for key in list(out):
        model = InOrderCpuModel(UltraSparcIIParams(tlb_mpki=out[key]))
        out[key + "_cpi"] = model.cpi_for_machine(hierarchy).total
    return out


def test_ablation_ism(benchmark):
    results = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(f"TLB misses/1000 instr: ISM off {results['ism_off']:.2f}, "
          f"ISM on {results['ism_on']:.3f}")
    speedup = results["ism_off_cpi"] / results["ism_on_cpi"]
    print(f"CPI {results['ism_off_cpi']:.2f} -> {results['ism_on_cpi']:.2f} "
          f"(ISM win: {100 * (speedup - 1):.1f}%)")
    assert results["ism_on"] < results["ism_off"] / 5
    # The paper reports >10% on the real 1.4 GB-heap system.  Our
    # measurement interval touches a far smaller page set, so the
    # absolute win is conservative; the direction and the order-of-
    # magnitude TLB-miss reduction are the reproducible facts.
    assert speedup > 1.01, "ISM should be a clear win"
