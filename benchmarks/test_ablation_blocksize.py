"""Ablation: cache block size (DESIGN.md decision 1).

The paper fixes 64-byte blocks; this bench replays the same traces at
32/64/128 B.  Larger blocks help the sequential components (code,
allocation, marshalling) and waste capacity on the pointer-chasing
tree descents — the classic spatial-locality trade.
"""

from bench_support import BENCH_SIM

from repro.figures.common import make_workload
from repro.memsys.multisim import simulate_miss_curve
from repro.rng import RngFactory
from repro.units import mb

BLOCKS = [32, 64, 128]


def _sweep() -> dict:
    out = {}
    for name in ("specjbb", "ecperf"):
        workload = make_workload(name, scale=8)
        bundle = workload.generate(1, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
        trace = bundle.merged()
        rows = {}
        for block in BLOCKS:
            points = simulate_miss_curve(
                trace, [mb(1)], kind="data", assoc=4, block=block, warmup_fraction=0.5
            )
            rows[block] = points[0].mpki
        out[name] = rows
    return out


def test_ablation_block_size(benchmark):
    results = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    print()
    print("data misses/1000 instr at 1 MB, by block size")
    print("workload   " + "  ".join(f"{b:>5d}B" for b in BLOCKS))
    for name, rows in results.items():
        print(f"{name:9}  " + "  ".join(f"{rows[b]:6.2f}" for b in BLOCKS))
    for name, rows in results.items():
        # Spatial locality: the smallest block misses most per instr.
        assert rows[32] >= rows[64] * 0.9, name
        assert all(v >= 0 for v in rows.values())
