"""Benchmark: reproduce fig13 — data miss rate vs cache size (Figure 13)."""

from repro.figures import fig13_dcache as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig13_dcache(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
