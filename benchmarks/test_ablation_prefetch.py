"""Extension: next-line prefetching vs Figure 12's instruction misses.

Sequential fetch streams prefetch well; pointer-chasing data streams
do not.  A tagged next-line prefetcher in front of a 256 KB
instruction cache should recover much of ECperf's intermediate-size
instruction miss rate — and do far less for the data side.
"""

from bench_support import BENCH_SIM

from repro.figures.common import make_workload
from repro.memsys.block import IFETCH, STORE
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import CacheConfig
from repro.memsys.prefetch import NextLinePrefetcher
from repro.rng import RngFactory
from repro.units import kb


def _run(kind: str, prefetch: bool) -> float:
    workload = make_workload("ecperf", scale=8)
    bundle = workload.generate(1, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    trace = bundle.merged()
    cache = SetAssociativeCache(CacheConfig(size=kb(256), assoc=4, block=64))
    target = NextLinePrefetcher(cache) if prefetch else cache
    want_instr = kind == "instr"
    split = len(trace) // 2
    instructions = 0
    misses_before = 0
    for phase, part in (("warm", trace[:split]), ("meas", trace[split:])):
        if phase == "meas":
            misses_before = (
                target.stats.demand_misses if prefetch else cache.stats.misses
            )
        for ref in part:
            ref_kind = ref & 3
            if ref_kind == IFETCH:
                if phase == "meas":
                    instructions += 8
                if not want_instr:
                    continue
                write = False
            else:
                if want_instr:
                    continue
                write = ref_kind == STORE
            target.access((ref >> 2) >> 6, write)
    misses = (
        target.stats.demand_misses if prefetch else cache.stats.misses
    ) - misses_before
    return 1000.0 * misses / instructions


def test_ablation_prefetch(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (kind, pf): _run(kind, pf)
            for kind in ("instr", "data")
            for pf in (False, True)
        },
        iterations=1,
        rounds=1,
    )
    print()
    print("ECperf misses/1000 instr at 256 KB, 4-way, 64 B")
    for kind in ("instr", "data"):
        base = results[(kind, False)]
        with_pf = results[(kind, True)]
        saved = 100 * (1 - with_pf / base) if base else 0.0
        print(f"  {kind:5}  base {base:6.2f}  +next-line {with_pf:6.2f}  ({saved:.0f}% fewer)")
    instr_gain = 1 - results[("instr", True)] / results[("instr", False)]
    data_gain = 1 - results[("data", True)] / results[("data", False)]
    assert instr_gain > 0.3, "sequential code must prefetch well"
    assert instr_gain > data_gain, "code gains more than pointer-chasing data"
