"""Ablation: bus interleaving quantum.

The trace interleaver time-slices processors in round-robin quanta
(the deterministic stand-in for scheduling granularity).  Finer
interleaving exposes more ping-pong on contended lines; coarse quanta
let each processor batch its reuse.  The C2C ratio should move gently
— if results hinged strongly on the quantum, the interleaving model
would be doing the work instead of the workload structure.
"""

from bench_support import BENCH_SIM

from repro.core.config import e6000_machine
from repro.figures.common import workload_for_procs
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory

QUANTA = [16, 64, 256, 1024]
N_PROCS = 8


def _sweep() -> dict:
    workload = workload_for_procs("specjbb", N_PROCS)
    bundle = workload.generate(N_PROCS, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    out = {}
    for quantum in QUANTA:
        hierarchy = MemoryHierarchy(e6000_machine(N_PROCS))
        hierarchy.run_trace(bundle.per_cpu, quantum=quantum, warmup_fraction=0.5)
        out[quantum] = hierarchy.c2c_ratio()
    return out


def test_ablation_quantum(benchmark):
    ratios = benchmark.pedantic(_sweep, iterations=1, rounds=1)
    print()
    print("SPECjbb 8p C2C ratio by interleave quantum:")
    for quantum, ratio in ratios.items():
        print(f"  quantum {quantum:5d} refs: {ratio:.3f}")
    values = list(ratios.values())
    # Finer interleaving sees at least as much ping-pong...
    assert values[0] >= values[-1] - 0.02
    # ...but the effect is second-order (workload structure dominates).
    assert max(values) - min(values) < 0.25
