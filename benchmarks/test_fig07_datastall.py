"""Benchmark: reproduce fig07 — data-stall decomposition (Figure 7)."""

from repro.figures import fig07_datastall as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig07_datastall(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
