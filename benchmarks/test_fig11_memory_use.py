"""Benchmark: reproduce fig11 — live memory vs scale factor (Figure 11)."""

from repro.figures import fig11_memory_use as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig11_memory_use(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
