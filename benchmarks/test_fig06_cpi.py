"""Benchmark: reproduce fig06 — CPI breakdown vs processors (Figure 6)."""

from repro.figures import fig06_cpi as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig06_cpi(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
