"""Benchmark: reproduce fig10 — C2C rate over time with GC pauses (Figure 10)."""

from repro.figures import fig10_c2c_timeline as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig10_c2c_timeline(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
