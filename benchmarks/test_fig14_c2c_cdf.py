"""Benchmark: reproduce fig14 — C2C distribution vs %% of lines (Figure 14)."""

from repro.figures import fig14_c2c_cdf as figure

from bench_support import BENCH_SIM, run_figure_bench


def test_fig14_c2c_cdf(benchmark):
    run_figure_bench(benchmark, figure, BENCH_SIM)
