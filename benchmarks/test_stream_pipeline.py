"""Streaming acceptance bench: pipelined generate+replay parity and win.

Two properties the chunk-ring streaming plane must hold on a
fig12-shaped sweep (several single-CPU traces, many cache sizes):

1. **Parity** — the pipelined sweep
   (:func:`repro.harness.chunkring.miss_curve_sweep_stream`: one
   producer per spec filling ring slots while the consumer replays
   with carried state) produces points *identical* to generating each
   trace fully and then replaying it;
2. **Pipelining win** — overlapping every spec's generation with the
   running replay beats generate-then-replay by at least 1.5x wall
   time.  Producers are real processes, so the win only physically
   exists with >= 2 usable CPUs; on a single-CPU machine the gate is
   skipped (parity is still asserted) and multi-core CI enforces it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import SimConfig
from repro.figures.fig12_icache import CACHE_SIZES, CONFIGS, _sweep_sim
from repro.harness.chunkring import miss_curve_sweep_stream
from repro.harness.traceplane import TraceSpec
from repro.memsys.multisim import simulate_miss_curve

#: Reduced effort, same shape as fig12: every paper configuration at a
#: trace length where generation is a real cost but the bench stays fast.
SIM = SimConfig(seed=1234, refs_per_proc=20_000, warmup_fraction=0.5)

SPECS = [
    TraceSpec(workload=name, scale=scale, n_procs=1, sim=_sweep_sim(SIM, scale))
    for _label, name, scale in CONFIGS
]

SIZES = list(CACHE_SIZES[:5])

CHUNK_REFS = 8_192


def _sequential() -> dict:
    """Generate-then-replay: each trace fully materialized first."""
    out = {}
    for spec in SPECS:
        trace = spec.generate().merged()
        out[spec.key()] = simulate_miss_curve(
            trace, SIZES, kind="instr",
            warmup_fraction=spec.sim.warmup_fraction,
        )
    return out


def test_pipelined_sweep_matches_sequential_and_beats_it():
    t0 = time.perf_counter()
    sequential = _sequential()
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pipelined = miss_curve_sweep_stream(
        SPECS, SIZES, "instr",
        warmup_fraction=SIM.warmup_fraction, chunk_refs=CHUNK_REFS,
    )
    pipe_s = time.perf_counter() - t0

    assert set(pipelined) == set(sequential)
    for key in sequential:
        seq_points = [
            (p.size, p.accesses, p.misses, p.mpki) for p in sequential[key]
        ]
        pipe_points = [
            (p.size, p.accesses, p.misses, p.mpki) for p in pipelined[key]
        ]
        assert pipe_points == seq_points, key

    if len(os.sched_getaffinity(0)) < 2:
        pytest.skip(
            "pipelining needs >= 2 usable CPUs for a real win "
            f"(parity held; seq={seq_s:.2f}s pipe={pipe_s:.2f}s)"
        )
    assert pipe_s < seq_s / 1.5, (
        f"pipelined sweep took {pipe_s:.2f}s vs sequential {seq_s:.2f}s "
        f"({seq_s / pipe_s:.2f}x); expected >= 1.5x"
    )
