"""Harness acceptance bench: parallel parity and warm-cache speedup.

Two properties the parallel experiment engine must hold:

1. **Parity** — fanning figures across worker processes produces
   byte-identical rendered output (the benchmark_reports content) and
   identical check verdicts to serial execution;
2. **Cache win** — a warm-cache re-run of the same figures completes in
   under 25% of the cold-run wall time.
"""

from __future__ import annotations

import time

from repro.core.config import SimConfig
from repro.figures.common import figure_checks
from repro.harness import ResultCache, Telemetry, run_tasks
from repro.harness.tasks import build_figure_tasks

#: Reduced effort: enough work for a meaningful cold-run baseline,
#: small enough to keep the bench under a minute.
SIM = SimConfig(seed=1234, refs_per_proc=25_000, warmup_fraction=0.5)

#: One simulation-heavy figure, one analytic one.
MODULES = ["fig04_scaling", "fig11_memory_use"]


def _report(outcome, module_name: str) -> str:
    """The benchmark_reports-style text for one figure outcome."""
    assert outcome.ok, outcome.failure
    lines = [outcome.value.render()]
    for claim, ok in figure_checks(module_name, outcome.value):
        lines.append(f'  [{"ok" if ok else "FAIL"}] {claim}')
    return "\n".join(lines)


def test_parallel_reports_identical_to_serial():
    serial = run_tasks(build_figure_tasks(MODULES, SIM), jobs=1)
    parallel = run_tasks(build_figure_tasks(MODULES, SIM), jobs=2)
    for module_name, a, b in zip(MODULES, serial, parallel):
        assert _report(a, module_name) == _report(b, module_name)


def test_warm_cache_run_under_quarter_of_cold(tmp_path):
    cache = ResultCache(tmp_path)

    t0 = time.perf_counter()
    cold = run_tasks(build_figure_tasks(MODULES, SIM), cache=cache)
    cold_s = time.perf_counter() - t0
    assert all(o.ok and not o.cached for o in cold)

    t0 = time.perf_counter()
    warm_telemetry = Telemetry()
    warm = run_tasks(
        build_figure_tasks(MODULES, SIM), cache=cache, telemetry=warm_telemetry
    )
    warm_s = time.perf_counter() - t0

    assert all(o.ok and o.cached for o in warm)
    assert warm_telemetry.counters["cache/hit"] == len(MODULES)
    for module_name, a, b in zip(MODULES, cold, warm):
        assert _report(a, module_name) == _report(b, module_name)
    assert warm_s < 0.25 * cold_s, (
        f"warm cache run took {warm_s:.2f}s vs cold {cold_s:.2f}s "
        f"({warm_s / cold_s:.0%}); expected < 25%"
    )
