"""Fast-path replay gate: vectorized >= 3x scalar, bit-identical output.

The parity assertion runs unconditionally — including under
``--benchmark-disable``, which CI uses as a cheap smoke test.  The
timing gate only applies when the benchmark is enabled, so a loaded CI
box can't flake the suite on wall-clock noise while the contract that
actually matters (identical results) is always enforced.

Run the full gate with::

    pytest benchmarks/test_fastpath_speedup.py --benchmark-only -s
"""

import time

from bench_support import BENCH_SIM

from repro.figures.common import make_workload
from repro.memsys.multisim import simulate_miss_curve
from repro.rng import RngFactory
from repro.units import kb, mb

#: The Figure 12/13 sweep geometries: 64 KB .. 16 MB, 4-way, 64 B.
SIZES = [kb(64), kb(128), kb(256), kb(512), mb(1), mb(2), mb(4), mb(8), mb(16)]

MIN_SPEEDUP = 3.0


def _figure_trace():
    workload = make_workload("specjbb", scale=10)
    bundle = workload.generate(1, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    return bundle.per_cpu[0]


def _replay(trace, fastpath: bool):
    return simulate_miss_curve(
        trace, SIZES, kind="data", warmup_fraction=0.5, fastpath=fastpath
    )


def test_fastpath_replay_speedup(benchmark):
    trace = _figure_trace()
    fast_points = benchmark.pedantic(
        _replay, args=(trace, True), iterations=1, rounds=1
    )

    t0 = time.perf_counter()
    scalar_points = _replay(trace, False)
    t_scalar = time.perf_counter() - t0

    # The contract the fast path exists under: bit-identical points
    # (dataclass equality covers the float mpki exactly).
    assert fast_points == scalar_points

    if not benchmark.enabled:
        return  # smoke mode: parity checked, timing skipped
    t0 = time.perf_counter()
    _replay(trace, True)
    t_fast = time.perf_counter() - t0
    speedup = t_scalar / t_fast
    print(
        f"\nfig12/13 data replay ({len(SIZES)} geometries): "
        f"scalar {t_scalar:.3f}s, vectorized {t_fast:.3f}s, {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized replay only {speedup:.2f}x faster than scalar "
        f"(gate: {MIN_SPEEDUP}x)"
    )
