"""Fast-path replay gate: vectorized >= 3x scalar, bit-identical output.

The parity assertion runs unconditionally — including under
``--benchmark-disable``, which CI uses as a cheap smoke test.  The
timing gate only applies when the benchmark is enabled, so a loaded CI
box can't flake the suite on wall-clock noise while the contract that
actually matters (identical results) is always enforced.

Run the full gate with::

    pytest benchmarks/test_fastpath_speedup.py --benchmark-only -s
"""

import time

import pytest
from bench_support import BENCH_SIM

from repro.figures.common import make_workload
from repro.memsys import fastpath_coherence
from repro.memsys.config import e6000_machine
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.multisim import simulate_miss_curve
from repro.rng import RngFactory
from repro.units import kb, mb

#: The Figure 12/13 sweep geometries: 64 KB .. 16 MB, 4-way, 64 B.
SIZES = [kb(64), kb(128), kb(256), kb(512), mb(1), mb(2), mb(4), mb(8), mb(16)]

MIN_SPEEDUP = 3.0


def _figure_trace():
    workload = make_workload("specjbb", scale=10)
    bundle = workload.generate(1, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    return bundle.per_cpu[0]


def _replay(trace, fastpath: bool):
    return simulate_miss_curve(
        trace, SIZES, kind="data", warmup_fraction=0.5, fastpath=fastpath
    )


def test_fastpath_replay_speedup(benchmark):
    trace = _figure_trace()
    fast_points = benchmark.pedantic(
        _replay, args=(trace, True), iterations=1, rounds=1
    )

    t0 = time.perf_counter()
    scalar_points = _replay(trace, False)
    t_scalar = time.perf_counter() - t0

    # The contract the fast path exists under: bit-identical points
    # (dataclass equality covers the float mpki exactly).
    assert fast_points == scalar_points

    if not benchmark.enabled:
        return  # smoke mode: parity checked, timing skipped
    t0 = time.perf_counter()
    _replay(trace, True)
    t_fast = time.perf_counter() - t0
    speedup = t_scalar / t_fast
    print(
        f"\nfig12/13 data replay ({len(SIZES)} geometries): "
        f"scalar {t_scalar:.3f}s, vectorized {t_fast:.3f}s, {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized replay only {speedup:.2f}x faster than scalar "
        f"(gate: {MIN_SPEEDUP}x)"
    )


#: The compiled coherence kernel has a much stronger gate than the
#: numpy miss-curve path: Figure 16's replay must be an order of
#: magnitude faster, or batching the MOSI hierarchy wasn't worth it.
MIN_COHERENT_SPEEDUP = 10.0

#: Figure 16's CMP sharing sweep: 8 CPUs over 1/2/4/8 CPUs per L2.
FIG16_SHARING = (1, 2, 4, 8)


def _fig16_traces():
    workload = make_workload("specjbb", scale=8)
    bundle = workload.generate(8, BENCH_SIM, RngFactory(seed=BENCH_SIM.seed))
    # Arrays, exactly as simulate_multiprocessor hands them to run_trace.
    return list(bundle.per_cpu)


def _coherent_state(hierarchy):
    return (
        [vars(s) for s in hierarchy.proc_stats],
        vars(hierarchy.bus.stats),
        [vars(s) for s in hierarchy.bus.cache_stats],
        hierarchy.bus._holders,
    )


def _coherent_replay(traces, fastpath: bool):
    states = []
    for procs_per_l2 in FIG16_SHARING:
        machine = e6000_machine(len(traces)).with_shared_l2(procs_per_l2)
        hierarchy = MemoryHierarchy(machine)
        hierarchy.run_trace(
            traces,
            quantum=BENCH_SIM.interleave_quantum,
            warmup_fraction=0.5,
            fastpath=fastpath,
        )
        states.append(_coherent_state(hierarchy))
    return states


def test_coherent_replay_speedup(benchmark):
    traces = _fig16_traces()
    fast_states = benchmark.pedantic(
        _coherent_replay, args=(traces, True), iterations=1, rounds=1
    )

    t0 = time.perf_counter()
    scalar_states = _coherent_replay(traces, False)
    t_scalar = time.perf_counter() - t0

    # Parity across every Figure 16 sharing level, always enforced:
    # per-CPU stats, bus counters, per-cache side counters, holders.
    assert fast_states == scalar_states

    if not benchmark.enabled:
        return  # smoke mode: parity checked, timing skipped
    if not fastpath_coherence.kernel_available():
        pytest.skip("no C compiler: coherence kernel unavailable")
    t0 = time.perf_counter()
    _coherent_replay(traces, True)
    t_fast = time.perf_counter() - t0
    speedup = t_scalar / t_fast
    print(
        f"\nfig16 coherent replay ({len(FIG16_SHARING)} sharing levels): "
        f"scalar {t_scalar:.3f}s, kernel {t_fast:.3f}s, {speedup:.1f}x"
    )
    assert speedup >= MIN_COHERENT_SPEEDUP, (
        f"coherence kernel only {speedup:.2f}x faster than scalar "
        f"(gate: {MIN_COHERENT_SPEEDUP}x)"
    )
