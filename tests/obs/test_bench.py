"""Bench suite: timing math, snapshots, regression gate, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.obs import bench

#: Cheapest suite stage (pure kernel; setup is one tiny trace-gen).
KERNEL_STAGE = "fastpath/lru_miss_mask"
#: Cheapest stage whose runtime clears the comparison noise floor.
SLOW_STAGE = "scalar/miss_curve"


def test_stage_result_median_and_iqr():
    r = bench.StageResult(name="s", reps=[3.0, 1.0, 2.0, 4.0])
    assert r.median_s == 2.5
    assert r.iqr_s == pytest.approx(1.5)
    assert bench.StageResult(name="s", reps=[5.0]).iqr_s == 0.0


def test_regression_ratio_and_text():
    r = bench.Regression(stage="s", baseline_s=0.1, current_s=0.3, threshold=1.5)
    assert r.ratio == pytest.approx(3.0)
    assert "3.00x > 1.50x" in str(r)


def test_run_suite_validates_inputs():
    with pytest.raises(ConfigError, match="reps"):
        bench.run_suite(reps=0)
    with pytest.raises(ConfigError, match="unknown stages"):
        bench.run_suite(reps=1, stages=["no/such/stage"])


def test_run_suite_quick_caps_reps():
    results = bench.run_suite(reps=5, quick=True, stages=[KERNEL_STAGE])
    assert [r.name for r in results] == [KERNEL_STAGE]
    assert len(results[0].reps) == 3  # quick caps reps at 3
    assert all(t >= 0.0 for t in results[0].reps)


def _payload(stages: dict, quick: bool = True) -> dict:
    return {
        "schema": bench.SCHEMA_VERSION,
        "quick": quick,
        "reps": 1,
        "stages": {
            name: {"median_s": median, "iqr_s": 0.0, "reps_s": [median]}
            for name, median in stages.items()
        },
    }


def test_compare_snapshots_flags_regression():
    baseline = _payload({"a": 0.010, "b": 0.010})
    current = _payload({"a": 0.020, "b": 0.011})
    regressions = bench.compare_snapshots(current, baseline, threshold=1.5)
    assert [r.stage for r in regressions] == ["a"]
    assert regressions[0].ratio == pytest.approx(2.0)


def test_compare_snapshots_threshold_validation():
    with pytest.raises(ConfigError, match="threshold"):
        bench.compare_snapshots(_payload({}), _payload({}), threshold=1.0)


def test_compare_snapshots_never_crosses_quick_and_full():
    slow = _payload({"a": 0.010}, quick=False)
    fast = _payload({"a": 1.000}, quick=True)
    assert bench.compare_snapshots(fast, slow) == []


def test_compare_snapshots_noise_floor_and_missing_stage():
    baseline = _payload({"tiny": 0.0002, "gone": 0.010})
    current = _payload({"tiny": 0.0009, "new": 5.0})
    # 4.5x "regression" below MIN_COMPARABLE_S is timer noise; "new"
    # has no baseline; "gone" no longer runs.
    assert bench.compare_snapshots(current, baseline) == []


def test_write_snapshot_never_overwrites(tmp_path):
    payload = _payload({"a": 0.01})
    first = bench.write_snapshot(payload, tmp_path)
    second = bench.write_snapshot(payload, tmp_path)
    assert first != second
    assert first.name.startswith(bench.SNAPSHOT_PREFIX)
    assert json.loads(first.read_text())["stages"]["a"]["median_s"] == 0.01
    assert bench.previous_snapshot(tmp_path) == second


def test_previous_snapshot_empty_dir(tmp_path):
    assert bench.previous_snapshot(tmp_path) is None


def test_run_bench_end_to_end(tmp_path):
    path, regressions, report = bench.run_bench(
        out_dir=tmp_path, reps=1, quick=True, stages=[KERNEL_STAGE]
    )
    assert path.exists()
    assert regressions == []
    assert KERNEL_STAGE in report
    assert "snapshot:" in report


def test_run_bench_detects_regression_against_doctored_baseline(tmp_path):
    # A baseline claiming the stage once ran just above the noise floor
    # (sorts after any real timestamp, so it is the comparison target).
    doctored = tmp_path / f"{bench.SNAPSHOT_PREFIX}zz-doctored.json"
    doctored.write_text(json.dumps(_payload({SLOW_STAGE: 0.0011})))
    path, regressions, report = bench.run_bench(
        out_dir=tmp_path, reps=1, quick=True, stages=[SLOW_STAGE],
        threshold=1.5,
    )
    assert [r.stage for r in regressions] == [SLOW_STAGE]
    assert "REGRESSION" in report
    assert str(doctored) in report


def test_run_bench_tolerates_corrupt_baseline(tmp_path):
    (tmp_path / f"{bench.SNAPSHOT_PREFIX}zz-corrupt.json").write_text("{oops")
    _, regressions, _ = bench.run_bench(
        out_dir=tmp_path, reps=1, quick=True, stages=[KERNEL_STAGE]
    )
    assert regressions == []


def test_run_bench_no_compare_skips_baseline(tmp_path):
    doctored = tmp_path / f"{bench.SNAPSHOT_PREFIX}zz-doctored.json"
    doctored.write_text(json.dumps(_payload({SLOW_STAGE: 0.0011})))
    _, regressions, report = bench.run_bench(
        out_dir=tmp_path, reps=1, quick=True, stages=[SLOW_STAGE],
        compare=False,
    )
    assert regressions == []
    assert str(doctored) not in report


# -- CLI ---------------------------------------------------------------------


def test_cli_bench_writes_snapshot(tmp_path, capsys):
    rc = main(
        ["bench", "--quick", "--reps", "1", "--out-dir", str(tmp_path),
         "--stage", KERNEL_STAGE]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert KERNEL_STAGE in out
    assert list(tmp_path.glob(f"{bench.SNAPSHOT_PREFIX}*.json"))


def test_cli_bench_exits_3_on_regression(tmp_path, capsys):
    doctored = tmp_path / f"{bench.SNAPSHOT_PREFIX}zz-doctored.json"
    doctored.write_text(
        json.dumps(_payload({SLOW_STAGE: 0.0011}))
    )
    rc = main(
        ["bench", "--quick", "--reps", "1", "--out-dir", str(tmp_path),
         "--stage", SLOW_STAGE]
    )
    assert rc == 3
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "regress" in captured.err.lower()


def test_cli_bench_unknown_stage(tmp_path, capsys):
    rc = main(["bench", "--out-dir", str(tmp_path), "--stage", "bogus"])
    assert rc == 2
    assert "unknown stages" in capsys.readouterr().err
