"""Span tracker: free when off, structured when on."""

import json

from repro.obs.spans import _NULL_SPAN, SpanTracker


def test_disabled_span_is_shared_noop():
    tracker = SpanTracker()
    cm = tracker.span("anything", refs=42)
    assert cm is _NULL_SPAN
    assert tracker.span("other") is cm
    with cm:
        pass
    assert tracker.finished == []
    # Disabled means no instance-level override is installed.
    assert "span" not in tracker.__dict__


def test_enable_shadows_and_disable_restores():
    tracker = SpanTracker()
    tracker.enable()
    assert "span" in tracker.__dict__
    with tracker.span("work"):
        pass
    assert len(tracker.finished) == 1
    tracker.disable()
    assert "span" not in tracker.__dict__
    with tracker.span("ignored"):
        pass
    assert len(tracker.finished) == 1


def test_nesting_records_depth_and_parent():
    tracker = SpanTracker()
    tracker.enable()
    with tracker.span("outer", module="fig12"):
        with tracker.span("inner", refs=10):
            pass
    inner, outer = tracker.finished  # inner closes first
    assert inner["span"] == "inner"
    assert inner["depth"] == 1
    assert inner["parent"] == "outer"
    assert inner["refs"] == 10
    assert outer["span"] == "outer"
    assert outer["depth"] == 0
    assert "parent" not in outer
    assert outer["module"] == "fig12"
    assert outer["duration_s"] >= inner["duration_s"] >= 0.0


def test_drain_clears_and_ingest_merges():
    tracker = SpanTracker()
    tracker.enable()
    with tracker.span("a"):
        pass
    records = tracker.drain()
    assert [r["span"] for r in records] == ["a"]
    assert tracker.finished == []
    tracker.ingest(records)
    tracker.ingest([{"span": "worker", "t": 0.0, "duration_s": 0.5, "depth": 0}])
    assert [r["span"] for r in tracker.finished] == ["a", "worker"]


def test_summary_rows_aggregate_per_name():
    tracker = SpanTracker()
    tracker.ingest(
        [
            {"span": "x", "t": 0.0, "duration_s": 1.0, "depth": 0},
            {"span": "x", "t": 1.0, "duration_s": 3.0, "depth": 0},
            {"span": "y", "t": 2.0, "duration_s": 0.25, "depth": 0},
        ]
    )
    rows = tracker.summary_rows()
    assert rows == [("x", 2, 4.0, 2.0, 3.0), ("y", 1, 0.25, 0.25, 0.25)]
    rendered = tracker.render_summary()
    assert "x" in rendered and "y" in rendered


def test_render_summary_empty():
    assert "no spans" in SpanTracker().render_summary()


def test_write_jsonl_appends(tmp_path):
    tracker = SpanTracker()
    tracker.enable()
    with tracker.span("a"):
        pass
    path = tmp_path / "sub" / "obs.jsonl"
    assert tracker.write_jsonl(path) == 1
    assert tracker.write_jsonl(path) == 1  # append, not truncate
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    record = json.loads(lines[0])
    assert record["type"] == "span"
    assert record["span"] == "a"
