"""Every published figure configuration passes its differential check."""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.obs.diffcheck import (
    FIGURE_DIFF_CONFIGS,
    run_all_figure_diffchecks,
    run_figure_diffcheck,
)

#: Smaller than DIFF_SIM: enough to exercise warmup, sharing and the
#: sweep, cheap enough to run one test per figure.
TEST_SIM = SimConfig(seed=1234, refs_per_proc=2_000, warmup_fraction=0.5)


def test_all_13_figures_are_covered():
    ids = sorted({c.fig_id for c in FIGURE_DIFF_CONFIGS})
    assert ids == [f"fig{n:02d}" for n in range(4, 17)]
    modes = {c.mode for c in FIGURE_DIFF_CONFIGS}
    assert modes == {
        "hierarchy", "miss_curve", "stackdist",
        "miss_curve_stream", "stackdist_stream",
    }
    # The special machine setups all have coverage.
    assert any(c.include_os for c in FIGURE_DIFF_CONFIGS)
    assert any(c.with_gc_stream for c in FIGURE_DIFF_CONFIGS)
    assert any(c.procs_per_l2 > 1 for c in FIGURE_DIFF_CONFIGS)
    # Every streamed sweep/profile path has an oracle-backed row too.
    streamed = {c.fig_id for c in FIGURE_DIFF_CONFIGS if c.mode.endswith("_stream")}
    assert streamed == {"fig11", "fig12", "fig13"}


@pytest.mark.parametrize(
    "config", FIGURE_DIFF_CONFIGS, ids=[c.fig_id for c in FIGURE_DIFF_CONFIGS]
)
def test_figure_config_diffcheck_green(config):
    report = run_figure_diffcheck(config, sim=TEST_SIM)
    assert report.ok, report.render()
    assert report.n_refs > 0
    assert report.checks >= 1


def test_run_all_subset_preserves_declaration_order():
    reports = run_all_figure_diffchecks(["fig16", "fig11"], sim=TEST_SIM)
    assert [r.name for r in reports] == [
        "fig11/stackdist", "fig11/stackdist_stream", "fig16/hierarchy"
    ]
    assert all(r.ok for r in reports)


def test_run_all_rejects_unknown_ids():
    with pytest.raises(ConfigError, match="fig99"):
        run_all_figure_diffchecks(["fig99"])
