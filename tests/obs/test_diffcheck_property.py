"""Property-based differential testing: random traces vs the oracles.

Hypothesis drives adversarial inputs at the three oracle layers — raw
block streams against the LRU kernel and the stack-distance profiler,
mixed-kind traces against the miss-curve sweep (both replay paths, with
warmup snapshots), and multi-CPU traces against the full coherent
hierarchy including shared-L2 (Figure 16 style) configurations.  Any
counterexample Hypothesis finds shrinks to a minimal diverging trace.
"""

from hypothesis import given, settings, strategies as st

from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import CacheConfig, MachineConfig
from repro.obs.diffcheck import (
    diff_hierarchy_replay,
    diff_lru,
    diff_miss_curve,
    diff_stackdist,
)

#: Tiny footprint so a few dozen references already conflict and share.
TINY_MACHINE = MachineConfig(
    n_procs=2,
    l1i=CacheConfig(size=256, assoc=2, block=32, name="L1I"),
    l1d=CacheConfig(size=256, assoc=2, block=32, name="L1D"),
    l2=CacheConfig(size=1024, assoc=2, block=64, name="L2"),
)

blocks_strategy = st.lists(st.integers(0, 31), min_size=1, max_size=120)

refs_strategy = st.lists(
    st.builds(
        encode_ref,
        st.integers(0, 127).map(lambda a: a * 32),
        st.sampled_from([IFETCH, LOAD, STORE]),
    ),
    min_size=1,
    max_size=150,
)


@settings(max_examples=25, deadline=None)
@given(blocks=blocks_strategy)
def test_lru_kernel_matches_oracle(blocks):
    config = CacheConfig(size=512, assoc=2, block=64)  # 4 sets
    report = diff_lru(blocks, config)
    assert report.ok, report.render()


@settings(max_examples=25, deadline=None)
@given(blocks=blocks_strategy)
def test_stackdist_profiler_matches_recount(blocks):
    report = diff_stackdist(blocks)
    assert report.ok, report.render()


@settings(max_examples=20, deadline=None)
@given(
    trace=refs_strategy,
    kind=st.sampled_from(["data", "instr"]),
    warmup=st.sampled_from([0.0, 0.3]),
)
def test_miss_curve_both_paths_match_oracle(trace, kind, warmup):
    report = diff_miss_curve(
        trace, sizes=[1024, 2048], kind=kind, assoc=2,
        warmup_fraction=warmup,
    )
    assert report.ok, report.render()


@settings(max_examples=20, deadline=None)
@given(
    traces=st.lists(refs_strategy, min_size=2, max_size=2),
    protocol=st.sampled_from(["mosi", "msi", "mesi"]),
    shared_l2=st.booleans(),
    warmup=st.sampled_from([0.0, 0.4]),
    quantum=st.sampled_from([1, 7, 64]),
)
def test_hierarchy_matches_oracle(traces, protocol, shared_l2, warmup, quantum):
    machine = TINY_MACHINE.with_shared_l2(2) if shared_l2 else TINY_MACHINE
    report = diff_hierarchy_replay(
        traces, machine=machine, protocol=protocol, quantum=quantum,
        warmup_fraction=warmup, check_every=64,
    )
    assert report.ok, report.render()
