"""Observability tests must never leak enablement into other tests."""

from __future__ import annotations

import os

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_hygiene():
    """Restore the disabled, empty default state after every test."""
    prev_obs = os.environ.get(obs.OBS_ENV)
    prev_file = os.environ.get(obs.OBS_FILE_ENV)
    yield
    obs.disable()
    obs.reset()
    for key, prev in ((obs.OBS_ENV, prev_obs), (obs.OBS_FILE_ENV, prev_file)):
        if prev is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = prev
