"""Differential-validation oracles and diff drivers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import CacheConfig, MachineConfig
from repro.obs.diffcheck import (
    DiffReport,
    Divergence,
    OracleCoherentMachine,
    OracleLRUCache,
    diff_hierarchy_replay,
    diff_lru,
    diff_miss_curve,
    diff_stackdist,
    oracle_stack_histogram,
    reference_miss_flags,
)

#: A machine small enough that short traces evict, upgrade and write back.
SMALL_MACHINE = MachineConfig(
    n_procs=2,
    l1i=CacheConfig(size=512, assoc=2, block=32, name="L1I"),
    l1d=CacheConfig(size=512, assoc=2, block=32, name="L1D"),
    l2=CacheConfig(size=2048, assoc=2, block=64, name="L2"),
)


def random_trace(rng: np.random.Generator, n_refs: int) -> list[int]:
    """Refs over a small footprint: conflict, sharing, all three kinds."""
    addrs = rng.integers(0, 256, size=n_refs) * 32
    kinds = rng.choice([IFETCH, LOAD, STORE], size=n_refs, p=[0.4, 0.4, 0.2])
    return [encode_ref(int(a), int(k)) for a, k in zip(addrs, kinds)]


# -- reports -----------------------------------------------------------------


def test_report_render_ok_and_fail():
    ok = DiffReport(name="x", n_refs=10, checks=2)
    assert ok.ok
    assert "[ok]" in ok.render() and "10 refs" in ok.render()
    bad = DiffReport(
        name="x", n_refs=10, checks=1,
        divergence=Divergence(index=3, detail="boom", context="ring"),
    )
    assert not bad.ok
    text = bad.render()
    assert "[FAIL]" in text and "#3" in text and "boom" in text and "ring" in text


# -- LRU oracle --------------------------------------------------------------


def test_oracle_lru_semantics():
    cache = OracleLRUCache(n_sets=1, assoc=2)
    assert not cache.access(1)          # cold miss
    assert not cache.access(2)          # cold miss
    assert cache.access(1)              # hit refreshes 1 -> MRU
    assert not cache.access(3)          # evicts 2 (LRU)
    assert cache.access(1)              # 1 survived thanks to the refresh
    assert not cache.access(2)          # 2 was the victim
    assert cache.accesses == 6
    assert cache.misses == 4
    assert cache.evictions == 2


def test_oracle_lru_validates():
    with pytest.raises(ConfigError):
        OracleLRUCache(n_sets=0, assoc=2)


def test_reference_miss_flags():
    flags = reference_miss_flags([1, 2, 1, 3, 1], n_sets=1, assoc=2)
    assert flags == [True, True, False, True, False]


def test_diff_lru_agrees_on_random_blocks():
    rng = np.random.default_rng(11)
    blocks = rng.integers(0, 64, size=600, dtype=np.uint64)
    config = CacheConfig(size=1024, assoc=2, block=64)  # 8 sets
    report = diff_lru(blocks, config)
    assert report.ok, report.render()
    assert report.n_refs == 600


# -- stack-distance oracle ---------------------------------------------------


def test_oracle_stack_histogram_literal_example():
    # A B A A C: distances -1 -1 1 0 -1.
    assert oracle_stack_histogram([7, 9, 7, 7, 3]) == {-1: 3, 1: 1, 0: 1}


def test_diff_stackdist_agrees_on_random_blocks():
    rng = np.random.default_rng(5)
    blocks = rng.integers(0, 48, size=500, dtype=np.uint64).tolist()
    report = diff_stackdist(blocks)
    assert report.ok, report.render()
    assert report.checks == 2  # fastpath and scalar paths both diffed


# -- miss-curve sweep --------------------------------------------------------


@pytest.mark.parametrize("kind", ["data", "instr"])
@pytest.mark.parametrize("warmup", [0.0, 0.3])
def test_diff_miss_curve_agrees(kind, warmup):
    rng = np.random.default_rng(23)
    trace = random_trace(rng, 1_500)
    report = diff_miss_curve(
        trace, sizes=[2048, 4096], kind=kind, assoc=4,
        warmup_fraction=warmup,
    )
    assert report.ok, report.render()
    assert report.checks == 2


# -- coherent-machine oracle -------------------------------------------------


def test_oracle_machine_rejects_unknown_protocol():
    with pytest.raises(ConfigError):
        OracleCoherentMachine(SMALL_MACHINE, protocol="moesi")


def test_oracle_machine_sharing_scenario():
    oracle = OracleCoherentMachine(SMALL_MACHINE, include_l1=False)
    x = encode_ref(0x1000, STORE)
    assert oracle.access(0, x) == "mem"       # write miss: BusRdX
    assert oracle.access(1, encode_ref(0x1000, LOAD)) == "c2c"  # dirty supply
    assert oracle.access(0, x) == "upgrade"   # O -> M invalidates cpu1
    assert oracle.bus_stats["c2c_transfers"] == 1
    assert oracle.bus_stats["invalidations"] == 1
    assert oracle.c2c_by_line == {0x1000 >> 6: 1}


def test_oracle_machine_mesi_silent_upgrade():
    oracle = OracleCoherentMachine(SMALL_MACHINE, protocol="mesi", include_l1=False)
    assert oracle.access(0, encode_ref(0x40, LOAD)) == "mem"  # sole copy -> E
    assert oracle.access(0, encode_ref(0x40, STORE)) == "hit"
    assert oracle.bus_stats["silent_upgrades"] == 1
    assert oracle.bus_stats["upgrades"] == 0


@pytest.mark.parametrize("protocol", ["mosi", "msi", "mesi"])
def test_diff_hierarchy_agrees_per_protocol(protocol):
    rng = np.random.default_rng(77)
    traces = [random_trace(rng, 700) for _ in range(2)]
    report = diff_hierarchy_replay(
        traces, machine=SMALL_MACHINE, protocol=protocol, quantum=16,
        check_every=256,
    )
    assert report.ok, report.render()
    assert report.checks >= 2  # periodic vector checks plus the final one


def test_diff_hierarchy_with_warmup_and_shared_l2():
    rng = np.random.default_rng(31)
    machine = SMALL_MACHINE.with_shared_l2(2)
    traces = [random_trace(rng, 600) for _ in range(2)]
    report = diff_hierarchy_replay(
        traces, machine=machine, quantum=8, warmup_fraction=0.4,
        check_every=128,
    )
    assert report.ok, report.render()


def test_diff_hierarchy_rejects_trace_count_mismatch():
    with pytest.raises(ConfigError, match="expected 2 traces"):
        diff_hierarchy_replay([[encode_ref(0, LOAD)]], machine=SMALL_MACHINE)
