"""Seeded defects: prove the validation layers fail *loudly*.

A validation harness that has never caught a bug is indistinguishable
from one that cannot.  These tests monkeypatch a deliberate defect into
the production simulators — a skipped LRU refresh, a MOSI supply that
forgets to downgrade the dirty holder — and assert that the
differential checks report a divergence at the exact reference that
exposes it, and that the runtime invariant checker independently
catches the coherence violation.
"""

import pytest

from repro.errors import InvariantViolation
from repro.memsys import coherence
from repro.memsys.block import LOAD, STORE, encode_ref
from repro.memsys.cache import CLEAN, DIRTY, SetAssociativeCache
from repro.memsys.coherence import MOSIBus, State
from repro.memsys.config import CacheConfig, MachineConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.obs.diffcheck import diff_hierarchy_replay, diff_lru

SMALL_MACHINE = MachineConfig(
    n_procs=2,
    l1i=CacheConfig(size=512, assoc=2, block=32, name="L1I"),
    l1d=CacheConfig(size=512, assoc=2, block=32, name="L1D"),
    l2=CacheConfig(size=2048, assoc=2, block=64, name="L2"),
)


# -- defect 1: a hit that forgets to refresh its LRU position ---------------


def _access_without_lru_refresh(self, block, write):
    line_set = self._sets[block & self._set_mask]
    self.stats.accesses += 1
    if block in line_set:
        return True  # seeded defect: hit leaves the LRU order stale
    self.stats.misses += 1
    if len(line_set) >= self._assoc:
        victim, vstate = next(iter(line_set.items()))
        del line_set[victim]
        self.stats.evictions += 1
        if vstate == DIRTY:
            self.stats.writebacks += 1
    line_set[block] = DIRTY if write else CLEAN
    return False


def test_diff_lru_catches_missing_refresh(monkeypatch):
    # 1 2 1 3 1 in a single 2-way set: the refresh on the third access
    # decides whether block 1 or block 2 is evicted by block 3.
    blocks = [1, 2, 1, 3, 1]
    config = CacheConfig(size=128, assoc=2, block=64)  # one set
    assert diff_lru(blocks, config).ok  # control: healthy code agrees

    monkeypatch.setattr(SetAssociativeCache, "access", _access_without_lru_refresh)
    report = diff_lru(blocks, config)
    assert not report.ok
    assert report.divergence.index == 4
    assert "oracle hit" in report.divergence.detail
    assert "scalar miss" in report.divergence.detail
    assert "recent blocks" in report.divergence.context


# -- defect 2: a snoop copyback that leaves the holder MODIFIED -------------


def _supply_without_downgrade(self, requester, block, exclusive):
    holders = self._holders.get(block)
    if holders:
        for holder_id in holders:
            holder = self.caches[holder_id]
            state = holder.probe(block)
            if state == State.EXCLUSIVE and not exclusive:
                holder.set_state(block, State.SHARED)
                continue
            if state in (State.MODIFIED, State.OWNED):
                self.stats.c2c_transfers += 1
                if self._track:
                    count = self.stats.c2c_by_line.get(block, 0)
                    self.stats.c2c_by_line[block] = count + 1
                # Seeded defect: the dirty holder keeps MODIFIED
                # instead of dropping to OWNED/SHARED.
                return coherence.FILL_C2C
    self.stats.memory_fetches += 1
    return coherence.FILL_MEM


#: cpu0 dirties a line, cpu1 reads it, cpu0 writes it again.  With the
#: defect, cpu0 still sees MODIFIED on the second write ("hit") where
#: the specification says OWNED ("upgrade" with an invalidation).
X = 0x2000
TRACES = [
    [encode_ref(X, STORE), encode_ref(X, STORE)],
    [encode_ref(X, LOAD)],
]


def test_diffcheck_catches_sticky_modified(monkeypatch):
    control = diff_hierarchy_replay(
        [list(t) for t in TRACES], machine=SMALL_MACHINE, quantum=1
    )
    assert control.ok, control.render()

    monkeypatch.setattr(MOSIBus, "_supply", _supply_without_downgrade)
    report = diff_hierarchy_replay(
        [list(t) for t in TRACES], machine=SMALL_MACHINE, quantum=1
    )
    assert not report.ok
    assert report.divergence.index == 2  # cpu0's second store
    assert "model filled from 'hit'" in report.divergence.detail
    assert "'upgrade'" in report.divergence.detail
    assert "recent accesses" in report.divergence.context


def test_invariant_checker_catches_sticky_modified(monkeypatch):
    monkeypatch.setattr(MOSIBus, "_supply", _supply_without_downgrade)
    hierarchy = MemoryHierarchy(
        SMALL_MACHINE, check_invariants=True, check_sample=1
    )
    with pytest.raises(InvariantViolation, match="MODIFIED copy is not exclusive"):
        hierarchy.run_trace([list(t) for t in TRACES], quantum=1)
