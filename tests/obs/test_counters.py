"""Counter registry: free when off, exact when on."""

import json

import pytest

from repro import obs
from repro.obs.counters import CounterRegistry


def test_disabled_incr_is_noop():
    reg = CounterRegistry()
    reg.incr("memsys/bus/reads", 100)
    assert reg.snapshot() == {}
    assert "incr" not in reg.__dict__


def test_enable_counts_and_disable_restores():
    reg = CounterRegistry()
    reg.enable()
    reg.incr("a")
    reg.incr("a", 2)
    reg.incr("jvm/gc/pause_s", 0.125)
    assert reg.get("a") == 3
    assert reg.get("jvm/gc/pause_s") == pytest.approx(0.125)
    reg.disable()
    reg.incr("a", 100)
    assert reg.get("a") == 3


def test_drain_clears_and_merge_adds():
    reg = CounterRegistry()
    reg.enable()
    reg.incr("x", 5)
    counts = reg.drain()
    assert counts == {"x": 5}
    assert reg.snapshot() == {}
    reg.merge(counts)
    reg.merge({"x": 1, "y": 2.5})
    assert reg.snapshot() == {"x": 6, "y": 2.5}


def test_summary_sorted_by_name():
    reg = CounterRegistry()
    reg.merge({"b": 2, "a": 1})
    assert reg.summary_rows() == [("a", 1), ("b", 2)]
    assert "no counters" in CounterRegistry().render_summary()


def test_write_jsonl(tmp_path):
    reg = CounterRegistry()
    reg.merge({"memsys/bus/reads": 7})
    path = tmp_path / "obs.jsonl"
    assert reg.write_jsonl(path) == 1
    record = json.loads(path.read_text())
    assert record == {"type": "counter", "name": "memsys/bus/reads", "value": 7}


# -- the module-level facade -------------------------------------------------


def test_facade_enable_disable_roundtrip():
    assert not obs.enabled()
    obs.incr("never", 9)
    assert obs.COUNTERS.get("never") == 0
    obs.enable()
    assert obs.enabled()
    obs.incr("seen", 2)
    with obs.span("facade"):
        pass
    counters, spans = obs.drain_payload()
    assert counters == {"seen": 2}
    assert [s["span"] for s in spans] == ["facade"]
    # Drained: nothing left to ship.
    assert obs.drain_payload() is None
    obs.disable()
    assert obs.drain_payload() is None


def test_facade_ingest_none_is_noop():
    obs.ingest(None)
    assert obs.COUNTERS.snapshot() == {}


def test_facade_render_and_export(tmp_path):
    obs.enable()
    obs.incr("c", 1)
    with obs.span("s"):
        pass
    text = obs.render_summary()
    assert "-- spans --" in text and "-- counters --" in text
    path = tmp_path / "dump.jsonl"
    assert obs.export_jsonl(path) == 2
    types = [json.loads(line)["type"] for line in path.read_text().splitlines()]
    assert types == ["span", "counter"]


def test_env_enabled_parsing(monkeypatch):
    for value, expected in [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("", False), ("0", False), ("off", False),
    ]:
        monkeypatch.setenv(obs.OBS_ENV, value)
        assert obs.env_enabled() is expected
    monkeypatch.delenv(obs.OBS_ENV)
    assert obs.env_enabled() is False
