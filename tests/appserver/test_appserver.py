"""Application-server substrate: pools, bean cache, container."""

import numpy as np
import pytest

from repro.appserver.beancache import BeanCache
from repro.appserver.connpool import ConnectionPool
from repro.appserver.container import ApplicationServer, CodeRegionSpec
from repro.appserver.ejb import ECPERF_BEAN_REGIONS, all_bean_regions, ejb_container_regions
from repro.appserver.servlet import servlet_regions
from repro.appserver.threadpool import ThreadPool
from repro.errors import ConfigError, SimulationError


def test_thread_pool_exhaustion():
    pool = ThreadPool(size=2)
    assert pool.try_acquire() and pool.try_acquire()
    assert not pool.try_acquire()
    assert pool.rejection_ratio == pytest.approx(1 / 3)
    pool.release()
    assert pool.try_acquire()
    assert pool.peak_in_use == 2


def test_thread_pool_release_guard():
    pool = ThreadPool(size=1)
    with pytest.raises(SimulationError):
        pool.release()


def test_kernel_overhead_factor():
    assert ThreadPool.kernel_overhead_factor(16, 8) == 1.0
    assert ThreadPool.kernel_overhead_factor(128, 8) > 1.2
    with pytest.raises(ConfigError):
        ThreadPool.kernel_overhead_factor(0, 8)


def test_connection_pool_blocking():
    pool = ConnectionPool(size=1)
    assert pool.try_acquire()
    assert not pool.try_acquire()
    assert pool.block_ratio == pytest.approx(0.5)
    pool.release()
    with pytest.raises(SimulationError):
        pool.release()
        pool.release()


def test_wait_fraction_shape():
    heavy = ConnectionPool.wait_fraction(15, 8, 0.8)
    assert heavy > 0.2
    assert ConnectionPool.wait_fraction(4, 8, 0.0) == 0.0
    with pytest.raises(ConfigError):
        ConnectionPool.wait_fraction(0, 8, 0.5)


def test_wait_fraction_never_waits_with_a_connection_per_thread():
    # A thread can always grab a dedicated connection: exactly zero
    # wait whenever n_procs <= pool_size, including the degenerate
    # single-client pool (the c=1 M/M/c edge).
    assert ConnectionPool.wait_fraction(2, 8, 0.5) == 0.0
    assert ConnectionPool.wait_fraction(8, 8, 1.0) == 0.0
    assert ConnectionPool.wait_fraction(1, 1, 0.99) == 0.0
    # One thread beyond the pool is where waiting may begin.
    assert ConnectionPool.wait_fraction(9, 8, 1.0) > 0.0


def test_connection_pool_peak_tracking():
    pool = ConnectionPool(size=2)
    assert pool.try_acquire() and pool.try_acquire()
    assert not pool.try_acquire()
    pool.release()
    assert pool.try_acquire()
    assert pool.peak_in_use == 2


def test_bean_cache_hit_rate_interference():
    cache = BeanCache()
    assert cache.hit_rate(1) == cache.single_thread_hit_rate
    rates = [cache.hit_rate(n) for n in (1, 2, 4, 8, 24)]
    assert all(a < b for a, b in zip(rates, rates[1:]))
    assert rates[-1] <= cache.max_hit_rate
    with pytest.raises(ConfigError):
        cache.hit_rate(0)


def test_bean_cache_lookup_addresses():
    cache = BeanCache(capacity_beans=1024, bean_size=256)
    rng = np.random.default_rng(3)
    hits = [cache.lookup(rng, n_threads=24) for _ in range(500)]
    addrs = [a for a in hits if a is not None]
    assert addrs, "expected some hits"
    for addr in addrs:
        assert cache.base_addr <= addr < cache.base_addr + cache.footprint_bytes
    assert 0.5 < cache.observed_hit_rate <= 1.0


def test_bean_cache_footprint_fixed():
    cache = BeanCache(capacity_beans=100, bean_size=256)
    assert cache.footprint_bytes == 25_600
    with pytest.raises(ConfigError):
        cache.bean_addr(100)


def test_bean_cache_validation():
    with pytest.raises(ConfigError):
        BeanCache(capacity_beans=0)
    with pytest.raises(ConfigError):
        BeanCache(single_thread_hit_rate=0.9, max_hit_rate=0.5)


def test_code_region_spec():
    spec = CodeRegionSpec("x", instructions=1000, hotness=2.0)
    assert spec.code_bytes == 4000
    with pytest.raises(ConfigError):
        CodeRegionSpec("bad", instructions=0)
    with pytest.raises(ConfigError):
        CodeRegionSpec("bad", instructions=10, hotness=0)


def test_application_server_tuning():
    server = ApplicationServer.tuned_for(8)
    assert server.threads.size == 24
    assert server.connections.size == 16
    with pytest.raises(ConfigError):
        ApplicationServer.tuned_for(0)


def test_code_inventories():
    container = ejb_container_regions()
    beans = all_bean_regions()
    servlets = servlet_regions()
    assert len(beans) == sum(len(v) for v in ECPERF_BEAN_REGIONS.values())
    server = ApplicationServer()
    total = server.code_footprint_bytes(container + beans + servlets)
    # ECperf's middleware code is a few hundred KB of hot text.
    assert 200_000 < total < 2_000_000
