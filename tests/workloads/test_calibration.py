"""Calibration contracts for the workload generators.

The figure reproductions depend on structural properties of the
generated streams (reference mix, footprint ordering, sharing
behavior).  These tests pin those properties at reduced effort so a
refactor that silently de-calibrates a generator fails here, not in a
ten-minute benchmark run.
"""

import pytest

from repro.core.config import SimConfig, e6000_machine
from repro.memsys.block import IFETCH, LOAD, STORE
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.specjbb import SpecJbbWorkload

SIM = SimConfig(seed=1234, refs_per_proc=60_000, warmup_fraction=0.5)


def mix_of(bundle):
    counts = {IFETCH: 0, LOAD: 0, STORE: 0}
    for trace in bundle.per_cpu:
        for ref in trace:
            counts[ref & 3] += 1
    total = sum(counts.values())
    return {k: v / total for k, v in counts.items()}


@pytest.mark.parametrize("workload_cls", [SpecJbbWorkload, EcperfWorkload])
def test_reference_mix_realistic(workload_cls):
    """SPARC integer code: ~1 fetch line / 8 instr, ~0.3-0.5 data/instr."""
    bundle = workload_cls().generate(2, SIM, RngFactory(SIM.seed))
    mix = mix_of(bundle)
    data_per_instr = (mix[LOAD] + mix[STORE]) / (mix[IFETCH] * 8)
    assert 0.25 <= data_per_instr <= 0.60
    assert mix[LOAD] > mix[STORE]  # loads outnumber stores


def test_data_mpki_in_paper_band():
    """Steady-state L2 data misses stay in the low-MPKI band the paper
    reports for 1 MB caches."""
    for workload, lo, hi in (
        (SpecJbbWorkload(warehouses=4), 0.5, 8.0),
        (EcperfWorkload(), 0.5, 10.0),
    ):
        bundle = workload.generate(4, SIM, RngFactory(SIM.seed))
        hierarchy = MemoryHierarchy(e6000_machine(4))
        hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
        assert lo <= hierarchy.data_mpki() <= hi, workload.name


def test_c2c_ordering_with_processors():
    """More processors, more sharing misses — for both workloads."""
    for workload_cls in (SpecJbbWorkload, EcperfWorkload):
        ratios = []
        for p in (2, 8):
            workload = (
                workload_cls(warehouses=p)
                if workload_cls is SpecJbbWorkload
                else workload_cls()
            )
            bundle = workload.generate(p, SIM, RngFactory(SIM.seed))
            hierarchy = MemoryHierarchy(e6000_machine(p))
            hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
            ratios.append(hierarchy.c2c_ratio())
        assert ratios[1] > ratios[0] - 0.05, workload_cls.__name__


def test_specjbb_hot_line_is_company_state():
    """SPECjbb's hottest communicating line must be the company
    lock/counters region, not an accident of the trace."""
    from repro.workloads import layout

    workload = SpecJbbWorkload(warehouses=4)
    bundle = workload.generate(4, SIM, RngFactory(SIM.seed))
    hierarchy = MemoryHierarchy(e6000_machine(4))
    hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
    by_line = hierarchy.bus.stats.c2c_by_line
    hottest = max(by_line, key=by_line.get)
    shared_lo = layout.SHARED_BASE >> 6
    shared_hi = (layout.SHARED_BASE + 0x10000) >> 6
    assert shared_lo <= hottest < shared_hi


def test_ecperf_communication_wider_than_specjbb():
    footprints = {}
    for workload_cls in (SpecJbbWorkload, EcperfWorkload):
        workload = (
            workload_cls(warehouses=4)
            if workload_cls is SpecJbbWorkload
            else workload_cls()
        )
        bundle = workload.generate(4, SIM, RngFactory(SIM.seed))
        hierarchy = MemoryHierarchy(e6000_machine(4))
        hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
        footprints[workload.name] = len(hierarchy.bus.stats.c2c_by_line)
    assert footprints["ecperf"] > footprints["specjbb"]
