"""VolanoMark-style workload (related-work comparison)."""

import pytest

from repro.errors import WorkloadError
from repro.rng import RngFactory
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.volanomark import VolanoMarkWorkload


def test_generation(tiny_sim, rng_factory):
    w = VolanoMarkWorkload(connections=40, rooms=4)
    bundle = w.generate(2, tiny_sim, rng_factory)
    assert all(len(t) == tiny_sim.refs_per_proc for t in bundle.per_cpu)
    assert bundle.meta["threads_per_proc"] == 20
    assert bundle.workload == "volanomark"


def test_deterministic(tiny_sim, rng_factory):
    w = VolanoMarkWorkload(connections=20, rooms=2)
    assert (
        w.generate(1, tiny_sim, rng_factory).per_cpu_lists()
        == w.generate(1, tiny_sim, rng_factory).per_cpu_lists()
    )


def test_kernel_time_far_above_ecperf():
    """The related-work contrast the model exists to expose."""
    volano = VolanoMarkWorkload().kernel_time_model
    ecperf = EcperfWorkload().kernel_time_model
    for p in (1, 8, 15):
        assert volano.system_fraction(p) > 1.5 * ecperf.system_fraction(p)


def test_many_threads_per_processor(tiny_sim, rng_factory):
    w = VolanoMarkWorkload(connections=400)
    bundle = w.generate(4, tiny_sim, rng_factory)
    assert bundle.meta["threads_per_proc"] == 100


def test_tiny_code_footprint():
    assert VolanoMarkWorkload().code.total_code_bytes < EcperfWorkload().code.total_code_bytes


def test_live_memory_flat():
    w = VolanoMarkWorkload()
    assert w.live_memory_mb(400) - w.live_memory_mb(40) < 20


def test_validation():
    with pytest.raises(WorkloadError):
        VolanoMarkWorkload(connections=0)
    with pytest.raises(WorkloadError):
        VolanoMarkWorkload(connections=10, rooms=11)
    with pytest.raises(WorkloadError):
        VolanoMarkWorkload().live_memory_mb(0)
    with pytest.raises(WorkloadError):
        VolanoMarkWorkload().generate(0, None, None)
