"""StreamBuilder and trace-bundle mechanics."""

import numpy as np
import pytest

from repro.jvm.heap import GenerationalHeap
from repro.jvm.objects import ObjectTree
from repro.memsys.block import IFETCH, LOAD, STORE, decode_ref
from repro.workloads.base import (
    StreamBuilder,
    TraceBundle,
    code_sweep_refs,
    os_background_trace,
    region_sweep_refs,
)
from repro.workloads.codepath import CodeLayout, jvm_runtime_regions


def make_builder() -> StreamBuilder:
    return StreamBuilder(np.random.default_rng(11), stack_base=0xF000_0000)


def test_loads_and_stores():
    b = make_builder()
    b.load(0x100)
    b.store(0x200)
    b.rmw(0x300)
    kinds = [decode_ref(r)[1] for r in b.refs]
    assert kinds == [LOAD, STORE, LOAD, STORE]


def test_scan():
    b = make_builder()
    b.scan(0x1000, 256, stride=64, write=True)
    addrs = [decode_ref(r)[0] for r in b.refs]
    assert addrs == [0x1000, 0x1040, 0x1080, 0x10C0]
    assert all(decode_ref(r)[1] == STORE for r in b.refs)


def test_code_burst_emits_fetches_and_locals():
    b = make_builder()
    layout = CodeLayout(jvm_runtime_regions())
    b.code_burst(layout)
    kinds = [decode_ref(r)[1] for r in b.refs]
    assert IFETCH in kinds
    assert LOAD in kinds  # locals traffic accompanies the burst
    assert b.instructions > 0
    # Locals land in the active stack window.
    data_addrs = [decode_ref(r)[0] for r in b.refs if decode_ref(r)[1] != IFETCH]
    assert all(0xF000_0000 <= a < 0xF000_0000 + 4096 for a in data_addrs)


def test_tree_descent_reads_path():
    b = make_builder()
    tree = ObjectTree(base=0x6000_0000, fanout=4, depth=3, node_size=64)
    leaf = b.tree_descent(tree, write_leaf=True)
    assert 0x6000_0000 <= leaf < 0x6000_0000 + tree.total_bytes
    kinds = [decode_ref(r)[1] for r in b.refs]
    assert kinds.count(STORE) == 1  # the leaf update
    assert kinds.count(LOAD) == 2 * (tree.depth - 1) + 2


def test_allocate_emits_initializing_stores():
    b = make_builder()
    heap = GenerationalHeap()
    cursor = heap.cursor(0.1)
    addr = b.allocate(cursor, 256, stride=64)
    addrs = [decode_ref(r)[0] for r in b.refs]
    assert addrs == [addr, addr + 64, addr + 128, addr + 192]


def test_object_access_single_line():
    b = make_builder()
    b.object_access(0x7000, n_fields=3, write_fields=1)
    addrs = [decode_ref(r)[0] for r in b.refs]
    assert all(0x7000 < a < 0x7000 + 64 for a in addrs)


def test_sweeps():
    layout = CodeLayout(jvm_runtime_regions())
    code = code_sweep_refs(layout)
    expected = sum((s.code_bytes + 31) // 32 for s in layout.segments)
    assert len(code) == expected
    data = region_sweep_refs(0x9000, 512)
    assert len(data) == 8


def test_os_background_trace():
    rng = np.random.default_rng(5)
    shared = [0x800_0000, 0x800_0040]
    trace = os_background_trace(rng, 500, shared)
    assert len(trace) == 500
    touched = {decode_ref(r)[0] for r in trace}
    assert any(a in touched for a in shared)


def test_trace_bundle_aggregates():
    bundle = TraceBundle(
        workload="x", per_cpu=[[1, 2], [3]], instructions=[10, 20]
    )
    assert bundle.n_procs == 2
    assert bundle.total_refs == 3
    assert bundle.total_instructions == 30
    assert bundle.merged().tolist() == [1, 2, 3]
