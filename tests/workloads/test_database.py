"""Emulated databases: warehouse layout, footprints, stagger."""

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.units import mb
from repro.workloads import layout
from repro.workloads.database import DatabaseTier, EmulatedDatabase


def test_footprint_scales_linearly():
    per_wh = EmulatedDatabase(1).bytes_per_warehouse
    db10 = EmulatedDatabase(10)
    assert db10.total_bytes == pytest.approx(10 * per_wh + db10.item_tree.total_bytes)
    # Each warehouse carries on the order of 10 MB of object trees.
    assert mb(8) < per_wh < mb(20)


def test_warehouse_bounds():
    db = EmulatedDatabase(3)
    assert db.warehouse(2).warehouse_id == 2
    with pytest.raises(WorkloadError):
        db.warehouse(3)
    with pytest.raises(WorkloadError):
        EmulatedDatabase(0)
    with pytest.raises(WorkloadError):
        EmulatedDatabase(layout.MAX_WAREHOUSES + 1)


def test_trees_stay_inside_their_slot():
    db = EmulatedDatabase(layout.MAX_WAREHOUSES)
    for data in db.data:
        slot_lo = layout.WAREHOUSE_BASE + data.warehouse_id * layout.WAREHOUSE_STRIDE
        slot_hi = slot_lo + layout.WAREHOUSE_STRIDE
        for tree in data.trees():
            assert slot_lo <= tree.base
            assert tree.base + tree.total_bytes <= slot_hi


def test_trees_do_not_overlap_within_warehouse():
    data = EmulatedDatabase(1).warehouse(0)
    spans = sorted((t.base, t.base + t.total_bytes) for t in data.trees())
    for (lo_a, hi_a), (lo_b, _) in zip(spans, spans[1:]):
        assert hi_a <= lo_b


def test_stagger_avoids_set_aliasing():
    """Tree roots across warehouses must not share L2 set indices.

    Without the sub-MB stagger every warehouse's roots mapped to the
    same sets (24 MB strides alias the index bits) and thrashed.
    """
    db = EmulatedDatabase(8)
    set_mask = 4096 - 1  # 1 MB, 4-way, 64 B
    root_sets = [(w.stock.base >> 6) & set_mask for w in db.data]
    assert len(set(root_sets)) >= 6


def test_database_tier():
    tier = DatabaseTier()
    a = tier.marshal_buffer_addr(0)
    b = tier.marshal_buffer_addr(1)
    assert b - a == layout.MARSHAL_BUFFER_STRIDE
    assert tier.result_bytes() > 0
    with pytest.raises(ConfigError):
        tier.marshal_buffer_addr(-1)
    with pytest.raises(ConfigError):
        DatabaseTier(mean_roundtrip_s=0)
