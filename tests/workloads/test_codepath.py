"""Code segments, layouts and fetch bursts."""

import numpy as np
import pytest

from repro.appserver.container import CodeRegionSpec
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, decode_ref
from repro.workloads.codepath import (
    CODE_REGION_BASE,
    CodeLayout,
    CodeSegment,
    jvm_runtime_regions,
)


def test_segment_fetch_refs_sequential():
    seg = CodeSegment("s", base=CODE_REGION_BASE, instructions=256)
    refs = seg.fetch_refs(start_instr=0, n_instr=64)
    addrs = [decode_ref(r)[0] for r in refs]
    assert addrs == [CODE_REGION_BASE + 32 * i for i in range(8)]
    assert all(decode_ref(r)[1] == IFETCH for r in refs)


def test_segment_wraps_like_a_loop():
    seg = CodeSegment("s", base=CODE_REGION_BASE, instructions=16)  # 64 bytes
    refs = seg.fetch_refs(start_instr=8, n_instr=16)
    addrs = [decode_ref(r)[0] for r in refs]
    assert addrs[0] == CODE_REGION_BASE + 32
    assert addrs[1] == CODE_REGION_BASE  # wrapped


def test_segment_validation():
    with pytest.raises(ConfigError):
        CodeSegment("s", base=CODE_REGION_BASE, instructions=0)
    with pytest.raises(ConfigError):
        CodeSegment("s", base=CODE_REGION_BASE + 1, instructions=8)


def test_layout_assigns_disjoint_segments():
    specs = [CodeRegionSpec(f"r{i}", instructions=1000, hotness=1.0) for i in range(5)]
    layout = CodeLayout(specs)
    ends = []
    for seg in layout.segments:
        for lo, hi in ends:
            assert seg.base >= hi or seg.base + seg.code_bytes <= lo
        ends.append((seg.base, seg.base + seg.code_bytes))
    assert layout.total_code_bytes == 5 * 4000


def test_layout_hotness_weighting():
    specs = [
        CodeRegionSpec("hot", instructions=100, hotness=50.0),
        CodeRegionSpec("cold", instructions=100, hotness=1.0),
    ]
    layout = CodeLayout(specs)
    rng = np.random.default_rng(1)
    picks = [layout.pick_segment(rng).name for _ in range(500)]
    assert picks.count("hot") > 400


def test_burst_instruction_accounting():
    layout = CodeLayout(jvm_runtime_regions())
    rng = np.random.default_rng(2)
    refs, n_instr, cont = layout.burst(rng, mean_burst_instr=100)
    assert n_instr >= 16
    assert len(refs) == pytest.approx(n_instr / 8, abs=2)
    assert cont[0] in layout.segments


def test_burst_locality_continuation():
    layout = CodeLayout(jvm_runtime_regions(), locality=0.99)
    rng = np.random.default_rng(3)
    _, _, cont = layout.burst(rng)
    segments = set()
    for _ in range(20):
        _, _, cont = layout.burst(rng, prev=cont)
        segments.add(cont[0].name)
    # With near-certain locality, execution stays in very few segments.
    assert len(segments) <= 3


def test_burst_refs_stay_inside_segment():
    layout = CodeLayout(jvm_runtime_regions())
    rng = np.random.default_rng(4)
    for _ in range(50):
        refs, _, cont = layout.burst(rng)
        seg = cont[0]
        for r in refs:
            addr = decode_ref(r)[0]
            assert seg.base <= addr < seg.base + seg.code_bytes


def test_layout_validation():
    with pytest.raises(ConfigError):
        CodeLayout([])
    with pytest.raises(ConfigError):
        CodeLayout(jvm_runtime_regions(), locality=1.0)
    with pytest.raises(ConfigError):
        CodeLayout(jvm_runtime_regions(), offset_skew=0)
