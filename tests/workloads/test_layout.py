"""Address-space map sanity."""

import pytest

from repro.errors import ConfigError
from repro.workloads import layout


def test_no_region_overlaps():
    layout.check_no_overlaps()


def test_region_validation():
    with pytest.raises(ConfigError):
        layout.Region("bad", 10, 10)


def test_region_overlap_predicate():
    a = layout.Region("a", 0, 100)
    b = layout.Region("b", 50, 150)
    c = layout.Region("c", 100, 200)
    assert a.overlaps(b)
    assert not a.overlaps(c)  # end-exclusive


def test_shared_lines_are_distinct_cache_lines():
    hot = [
        layout.GLOBAL_HEAP_LOCK,
        layout.COMPANY_LOCK,
        layout.COMPANY_TOTALS,
        layout.CONN_POOL_LOCK,
        layout.THREAD_POOL_QUEUE,
    ]
    blocks = {addr >> 6 for addr in hot}
    assert len(blocks) == len(hot), "hot structures must not share 64 B lines"


def test_warehouse_region_capacity():
    region = [r for r in layout.address_map() if r.name == "warehouses"][0]
    assert region.end - region.start == layout.MAX_WAREHOUSES * layout.WAREHOUSE_STRIDE
