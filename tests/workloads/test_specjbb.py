"""SPECjbb workload model."""

import pytest

from repro.errors import WorkloadError
from repro.memsys.block import IFETCH
from repro.rng import RngFactory
from repro.workloads import layout
from repro.workloads.specjbb import SpecJbbWorkload


def test_generation_deterministic(tiny_sim, rng_factory):
    w = SpecJbbWorkload(warehouses=4)
    a = w.generate(2, tiny_sim, rng_factory)
    b = w.generate(2, tiny_sim, rng_factory)
    assert a.per_cpu_lists() == b.per_cpu_lists()
    assert a.instructions == b.instructions


def test_generation_respects_budget(tiny_sim, rng_factory):
    bundle = SpecJbbWorkload(warehouses=4).generate(2, tiny_sim, rng_factory)
    assert all(len(t) == tiny_sim.refs_per_proc for t in bundle.per_cpu)
    assert bundle.total_instructions > 0


def test_perturbed_runs_differ(tiny_sim):
    w = SpecJbbWorkload(warehouses=2)
    a = w.generate(1, tiny_sim, RngFactory(seed=5, run_index=0))
    b = w.generate(1, tiny_sim, RngFactory(seed=5, run_index=1))
    assert a.per_cpu_lists() != b.per_cpu_lists()


def test_idle_processors_get_empty_traces(tiny_sim, rng_factory):
    """More processors than warehouses leaves some with no threads."""
    bundle = SpecJbbWorkload(warehouses=2).generate(4, tiny_sim, rng_factory)
    assert bundle.per_cpu[2].size == 0
    assert bundle.per_cpu[3].size == 0
    assert bundle.instructions[2] == 0


def test_metadata(tiny_sim, rng_factory):
    w = SpecJbbWorkload(warehouses=3)
    bundle = w.generate(1, tiny_sim, rng_factory)
    assert bundle.workload == "specjbb"
    assert bundle.meta["warehouses"] == 3
    assert bundle.meta["live_bytes"] == w.db.total_bytes
    assert bundle.meta["code_bytes"] == w.code.total_code_bytes


def test_touches_company_and_warehouse_state(small_sim, rng_factory):
    bundle = SpecJbbWorkload(warehouses=2).generate(2, small_sim, rng_factory)
    touched = {(r >> 2) >> 6 for t in bundle.per_cpu for r in t}
    assert layout.COMPANY_LOCK >> 6 in touched
    assert any(
        (layout.WAREHOUSE_BASE >> 6) <= b < (0xF000_0000 >> 6) for b in touched
    )


def test_reference_mix_plausible(small_sim, rng_factory):
    bundle = SpecJbbWorkload(warehouses=2).generate(1, small_sim, rng_factory)
    trace = bundle.per_cpu[0]
    ifetches = sum(1 for r in trace if r & 3 == IFETCH)
    # Fetches are a third to two thirds of the stream (one per 8 instr,
    # with ~0.35 data refs per instruction on top).
    assert 0.30 <= ifetches / len(trace) <= 0.70


def test_live_memory_curve_shape():
    w = SpecJbbWorkload(warehouses=1)
    values = {s: w.live_memory_mb(s) for s in (1, 10, 20, 30, 35, 40)}
    assert values[20] > values[10] > values[1]
    assert values[35] < values[30]  # compaction regime
    assert values[40] <= values[35]
    with pytest.raises(WorkloadError):
        w.live_memory_mb(0)


def test_validation():
    with pytest.raises(WorkloadError):
        SpecJbbWorkload(warehouses=0)
    with pytest.raises(WorkloadError):
        SpecJbbWorkload(remote_visit_prob=1.5)
    with pytest.raises(WorkloadError):
        SpecJbbWorkload(warehouses=2).generate(0, None, None)


def test_kernel_time_model_is_none():
    model = SpecJbbWorkload(warehouses=1).kernel_time_model
    assert model.system_fraction(15) == 0.0
