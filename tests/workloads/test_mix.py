"""Transaction mixes and sampling."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.mix import (
    ECPERF_MIX,
    SPECJBB_MIX,
    EcperfTxnType,
    JbbTxnType,
    pick_txn,
)


def test_specjbb_mix_tpcc_like():
    weights = {t.name: t.weight for t in SPECJBB_MIX}
    assert weights["new_order"] + weights["payment"] > 0.8
    assert set(weights) == {
        "new_order",
        "payment",
        "order_status",
        "delivery",
        "stock_level",
    }


def test_ecperf_mix_covers_domains():
    domains = {t.domain for t in ECPERF_MIX}
    assert domains == {"customer", "manufacturing", "supplier"}
    customer_weight = sum(t.weight for t in ECPERF_MIX if t.domain == "customer")
    assert customer_weight > 0.5  # customer interactions dominate (OLTP-like)
    assert any(t.supplier_xml for t in ECPERF_MIX)


def test_pick_txn_respects_weights():
    rng = np.random.default_rng(5)
    picks = [pick_txn(rng, SPECJBB_MIX).name for _ in range(4000)]
    frequency = picks.count("new_order") / len(picks)
    assert 0.38 <= frequency <= 0.50


def test_pick_txn_empty_mix():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigError):
        pick_txn(rng, [])


def test_txn_type_validation():
    with pytest.raises(ConfigError):
        JbbTxnType(
            name="x",
            weight=0.0,
            tree_visits=1,
            leaf_writes=0,
            item_lookups=0,
            alloc_bytes=0,
            code_bursts=1,
            company_update=False,
        )
    with pytest.raises(ConfigError):
        JbbTxnType(
            name="x",
            weight=1.0,
            tree_visits=1,
            leaf_writes=2,
            item_lookups=0,
            alloc_bytes=0,
            code_bursts=1,
            company_update=False,
        )
    with pytest.raises(ConfigError):
        EcperfTxnType(
            name="x",
            domain="warehouse",
            weight=1.0,
            bean_lookups=1,
            bean_updates=0,
            db_roundtrips_on_miss=0,
            supplier_xml=False,
            alloc_bytes=0,
            servlet_bursts=1,
            container_bursts=1,
        )
