"""ECperf workload model."""

import pytest

from repro.errors import WorkloadError
from repro.rng import RngFactory
from repro.workloads import layout
from repro.workloads.ecperf import EcperfWorkload


def test_generation_deterministic(tiny_sim, rng_factory):
    w = EcperfWorkload()
    a = w.generate(2, tiny_sim, rng_factory)
    b = w.generate(2, tiny_sim, rng_factory)
    assert a.per_cpu_lists() == b.per_cpu_lists()


def test_every_processor_has_threads(tiny_sim, rng_factory):
    bundle = EcperfWorkload(threads_per_proc=2).generate(3, tiny_sim, rng_factory)
    assert all(len(t) == tiny_sim.refs_per_proc for t in bundle.per_cpu)


def test_metadata_records_fixed_footprints(tiny_sim, rng_factory):
    w = EcperfWorkload(injection_rate=12)
    bundle = w.generate(2, tiny_sim, rng_factory)
    assert bundle.meta["injection_rate"] == 12
    assert bundle.meta["bean_cache_bytes"] == w.bean_cache.footprint_bytes
    assert bundle.meta["thread_pool"] == 6
    assert bundle.meta["connection_pool"] == 4


def test_injection_rate_does_not_move_footprint(tiny_sim, rng_factory):
    """The paper's key ECperf property: the middle tier's memory use is
    insensitive to the benchmark's scale factor."""
    low = EcperfWorkload(injection_rate=2)
    high = EcperfWorkload(injection_rate=40)
    assert low.bean_cache.footprint_bytes == high.bean_cache.footprint_bytes
    assert high.live_memory_mb(40) < 1.35 * low.live_memory_mb(10)


def test_touches_shared_middleware_state(small_sim, rng_factory):
    bundle = EcperfWorkload().generate(2, small_sim, rng_factory)
    touched = {(r >> 2) >> 6 for t in bundle.per_cpu for r in t}
    assert layout.THREAD_POOL_QUEUE >> 6 in touched
    assert layout.CONN_POOL_LOCK >> 6 in touched
    bean_lo = layout.BEAN_CACHE_BASE >> 6
    assert any(bean_lo <= b < bean_lo + (32 << 14) for b in touched)


def test_larger_code_footprint_than_specjbb():
    from repro.workloads.specjbb import SpecJbbWorkload

    ec = EcperfWorkload().code.total_code_bytes
    jbb = SpecJbbWorkload(warehouses=1).code.total_code_bytes
    assert ec > 2 * jbb


def test_live_memory_knee():
    w = EcperfWorkload()
    assert w.live_memory_mb(6) - w.live_memory_mb(1) > 30
    assert w.live_memory_mb(40) - w.live_memory_mb(10) < 10
    with pytest.raises(WorkloadError):
        w.live_memory_mb(0)


def test_kernel_time_model_grows():
    model = EcperfWorkload().kernel_time_model
    assert model.system_fraction(15) > 4 * model.system_fraction(1)


def test_validation():
    with pytest.raises(WorkloadError):
        EcperfWorkload(injection_rate=0)
    with pytest.raises(WorkloadError):
        EcperfWorkload(threads_per_proc=0)
