"""Driver model and BBop accounting."""

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.workloads.driver import BBopCounter, DriverModel


def test_bbop_counter():
    counter = BBopCounter()
    counter.record("new_order", 3)
    counter.record("order_status")
    assert counter.completed == 4
    assert counter.by_type == {"new_order": 3, "order_status": 1}
    assert counter.bbops_per_minute(elapsed_s=60.0) == pytest.approx(4.0)


def test_bbop_counter_validation():
    counter = BBopCounter()
    with pytest.raises(WorkloadError):
        counter.record("x", -1)
    with pytest.raises(WorkloadError):
        counter.bbops_per_minute(0.0)


def test_driver_offered_load_scales_with_injection_rate():
    low = DriverModel(injection_rate=2)
    high = DriverModel(injection_rate=20)
    assert high.offered_ops_per_s == pytest.approx(10 * low.offered_ops_per_s)


def test_required_concurrency_littles_law():
    driver = DriverModel(injection_rate=4, orders_per_ir_per_s=2.5, think_time_s=1.0)
    # X = 10 ops/s; N = X * (S + Z) = 10 * 1.5 = 15.
    assert driver.required_concurrency(0.5) == pytest.approx(15.0)


def test_required_concurrency_zero_service_is_the_think_limit():
    # An infinitely fast server still needs X * Z users in think.
    driver = DriverModel(injection_rate=4, orders_per_ir_per_s=2.5, think_time_s=1.0)
    assert driver.required_concurrency(0.0) == pytest.approx(10.0)
    with pytest.raises(ConfigError):
        driver.required_concurrency(-0.1)


def test_driver_validation():
    with pytest.raises(ConfigError):
        DriverModel(injection_rate=0)
    with pytest.raises(ConfigError):
        DriverModel(orders_per_ir_per_s=0)
