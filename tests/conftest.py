"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SimConfig
from repro.rng import RngFactory


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the frozen golden reports instead of diffing them",
    )


@pytest.fixture
def obs_enabled():
    """Observability on for one test, fully reset afterwards."""
    from repro import obs

    obs.enable()
    obs.reset()
    yield obs
    obs.disable()
    obs.reset()


@pytest.fixture(autouse=True, scope="session")
def _hermetic_result_cache(tmp_path_factory):
    """Point the harness result cache at a per-session temp dir.

    Keeps the suite from reading or writing ``~/.cache/jmmw`` — CLI
    tests stay cold-start deterministic, and a stale user cache can
    never mask a regression.  Tests that exercise the cache explicitly
    override ``JMMW_CACHE_DIR`` themselves via ``monkeypatch``.
    """
    import os

    cache_dir = tmp_path_factory.mktemp("jmmw-cache")
    previous = os.environ.get("JMMW_CACHE_DIR")
    os.environ["JMMW_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("JMMW_CACHE_DIR", None)
    else:
        os.environ["JMMW_CACHE_DIR"] = previous


@pytest.fixture
def tiny_sim() -> SimConfig:
    """A simulation config small enough for unit tests."""
    return SimConfig(seed=7, refs_per_proc=8_000, warmup_fraction=0.25)


@pytest.fixture
def small_sim() -> SimConfig:
    """A config large enough for coarse behavioral assertions."""
    return SimConfig(seed=7, refs_per_proc=40_000, warmup_fraction=0.5)


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(seed=99)
