"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SimConfig
from repro.rng import RngFactory


@pytest.fixture
def tiny_sim() -> SimConfig:
    """A simulation config small enough for unit tests."""
    return SimConfig(seed=7, refs_per_proc=8_000, warmup_fraction=0.25)


@pytest.fixture
def small_sim() -> SimConfig:
    """A config large enough for coarse behavioral assertions."""
    return SimConfig(seed=7, refs_per_proc=40_000, warmup_fraction=0.5)


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(seed=99)
