"""Distribution and curve analysis helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CommunicationFootprint,
    MissCurve,
    cumulative_share,
    mean_std,
    relative_change,
)
from repro.analysis.stats import geometric_mean
from repro.errors import AnalysisError
from repro.memsys.multisim import MissCurvePoint


def test_cumulative_share_basic():
    assert cumulative_share([6, 3, 1]) == [0.6, 0.9, 1.0]
    assert cumulative_share([]) == []
    assert cumulative_share([0, 0]) == [0.0, 0.0]
    with pytest.raises(AnalysisError):
        cumulative_share([-1])


@settings(max_examples=50, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
def test_cumulative_share_properties(counts):
    shares = cumulative_share(counts)
    assert len(shares) == len(counts)
    assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))
    if sum(counts) > 0:
        assert shares[-1] == pytest.approx(1.0)


def make_footprint() -> CommunicationFootprint:
    return CommunicationFootprint(
        c2c_by_line={1: 50, 2: 30, 3: 15, 4: 5}, touched_lines=1000
    )


def test_footprint_stats():
    fp = make_footprint()
    assert fp.total_transfers == 100
    assert fp.hottest_line_share() == pytest.approx(0.5)
    assert fp.communicating_fraction == pytest.approx(0.004)
    assert fp.share_from_top_fraction(0.001) == pytest.approx(0.5)
    assert fp.lines_for_share(0.79) == 2
    assert fp.lines_for_share(0.81) == 3
    assert fp.lines_for_share(1.0) == 4


def test_footprint_cdfs():
    fp = make_footprint()
    pct = fp.cdf_percent_of_touched()
    assert pct[0] == (pytest.approx(0.1), pytest.approx(0.5))
    assert pct[-1][0] == 100.0
    absolute = fp.cdf_absolute_lines()
    assert absolute == [
        (1, pytest.approx(0.5)),
        (2, pytest.approx(0.8)),
        (3, pytest.approx(0.95)),
        (4, pytest.approx(1.0)),
    ]


def test_lines_for_share_exact_boundary_no_float_drift():
    """share=1.0 must resolve exactly even when 1/n is not a binary float.

    Seven equal counts: accumulating 1/7 seven times in floating point
    lands at 0.9999999999999998, which would push ``share=1.0`` past the
    end of the CDF; the integer running sum makes the last share exactly
    1.0.
    """
    fp = CommunicationFootprint(
        c2c_by_line={line: 1 for line in range(1, 8)}, touched_lines=10
    )
    assert fp.lines_for_share(1.0) == 7
    assert fp.share_from_top_fraction(1.0) == 1.0
    assert fp.cdf_absolute_lines()[-1] == (7, 1.0)


def test_lines_for_share_zero_transfers():
    fp = CommunicationFootprint(c2c_by_line={1: 0, 2: 0}, touched_lines=5)
    # No line can ever reach the requested share; report the whole set.
    assert fp.lines_for_share(0.5) == 2
    assert fp.share_from_top_fraction(0.5) == 0.0


def test_footprint_validation():
    with pytest.raises(AnalysisError):
        CommunicationFootprint(c2c_by_line={1: 1, 2: 1}, touched_lines=1)
    fp = make_footprint()
    with pytest.raises(AnalysisError):
        fp.share_from_top_fraction(0.0)
    with pytest.raises(AnalysisError):
        fp.lines_for_share(0.0)


def test_empty_footprint():
    fp = CommunicationFootprint(c2c_by_line={}, touched_lines=0)
    assert fp.hottest_line_share() == 0.0
    assert fp.communicating_fraction == 0.0
    assert fp.cdf_percent_of_touched() == []


def curve_from(mpkis) -> MissCurve:
    points = [
        MissCurvePoint(size=1024 * (2**i), accesses=100, misses=0, mpki=m)
        for i, m in enumerate(mpkis)
    ]
    return MissCurve.from_points("t", points)


def test_miss_curve_monotonic_check():
    assert curve_from([5.0, 3.0, 1.0]).is_monotonic_nonincreasing()
    assert not curve_from([5.0, 6.0, 1.0]).is_monotonic_nonincreasing()
    assert curve_from([5.0, 5.04, 1.0]).is_monotonic_nonincreasing(tolerance=0.05)


def test_miss_curve_knee():
    curve = curve_from([5.0, 2.0, 0.5])
    assert curve.knee_size(1.0) == 4096
    assert curve.knee_size(0.1) is None


def test_miss_curve_lookup_and_validation():
    curve = curve_from([5.0, 2.0])
    assert curve.mpki_at(1024) == 5.0
    with pytest.raises(AnalysisError):
        curve.mpki_at(999)
    with pytest.raises(AnalysisError):
        MissCurve(label="x", points=())
    assert "misses/1000" in curve.describe()


def test_mean_std():
    mu, sigma = mean_std([2.0, 4.0, 6.0])
    assert mu == pytest.approx(4.0)
    assert sigma == pytest.approx(2.0)
    assert mean_std([5.0]) == (5.0, 0.0)
    with pytest.raises(AnalysisError):
        mean_std([])


def test_relative_change():
    assert relative_change(2.0, 2.5) == pytest.approx(0.25)
    with pytest.raises(AnalysisError):
        relative_change(0.0, 1.0)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(AnalysisError):
        geometric_mean([1.0, -1.0])
    with pytest.raises(AnalysisError):
        geometric_mean([])
