"""CLI harness integration: --jobs/--no-cache/--trace, smoke + degradation."""

import json

import pytest

import repro.figures.common as common
from repro.cli import main
from repro.core.config import SimConfig

#: Smallest effort at which fig04's shape checks pass with margin.
SMOKE_SIM = SimConfig(seed=1234, refs_per_proc=25_000, warmup_fraction=0.5)


@pytest.fixture
def smoke_env(monkeypatch, tmp_path):
    """Tiny --quick sim + private cache dir, so the smoke test is fast."""
    monkeypatch.setattr(common, "QUICK_SIM", SMOKE_SIM)
    monkeypatch.setenv("JMMW_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def _events(path):
    return [json.loads(line)["event"] for line in path.read_text().splitlines()]


def test_figures_smoke_parallel_then_cached(smoke_env, capsys):
    """`jmmw figures fig04 --quick --jobs 2` exits 0; second run hits cache."""
    trace1 = smoke_env / "t1.jsonl"
    argv = ["figures", "fig04", "--quick", "--jobs", "2"]
    assert main(argv + ["--trace", str(trace1)]) == 0
    first_out = capsys.readouterr().out
    assert "fig04" in first_out and "[ok]" in first_out
    assert "cache/miss" in _events(trace1)

    trace2 = smoke_env / "t2.jsonl"
    assert main(argv + ["--trace", str(trace2)]) == 0
    second_out = capsys.readouterr().out
    assert "cache/hit" in _events(trace2)
    # cached stdout is byte-identical to the computed one
    assert second_out == first_out


def test_figures_no_cache_recomputes(smoke_env, capsys):
    argv = ["figures", "fig04", "--quick", "--no-cache"]
    trace1 = smoke_env / "t1.jsonl"
    trace2 = smoke_env / "t2.jsonl"
    assert main(argv + ["--trace", str(trace1)]) == 0
    assert main(argv + ["--trace", str(trace2)]) == 0
    out = capsys.readouterr()
    for trace in (trace1, trace2):
        events = _events(trace)
        assert "cache/hit" not in events and "cache/miss" not in events
        assert "task/end" in events


def test_figures_harness_summary_goes_to_stderr(smoke_env, capsys):
    assert main(["figures", "fig04", "--quick"]) == 0
    captured = capsys.readouterr()
    assert "event" in captured.err and "count" in captured.err
    assert "event" not in captured.out.split("===")[0]


def test_characterize_multirun_reports_error_bars(smoke_env, capsys):
    rc = main(
        ["characterize", "specjbb", "-p", "2", "--quick", "--runs", "3", "--jobs", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "3/3 replicas" in out
    assert "mean" in out and "std" in out
    assert "cpi" in out and "c2c_ratio" in out


def test_characterize_injected_failure_degrades_gracefully(
    smoke_env, monkeypatch, capsys
):
    """A raising replica is excluded, summarized on stderr, and exits 1."""
    import repro.harness.tasks as harness_tasks

    real = harness_tasks.characterize_replica

    def flaky(workload, n_procs, sim, factory):
        if factory.run_index == 1:
            raise RuntimeError("injected replica failure")
        return real(workload, n_procs, sim, factory)

    monkeypatch.setattr(harness_tasks, "characterize_replica", flaky)
    trace = smoke_env / "trace.jsonl"
    rc = main(
        [
            "characterize", "specjbb", "-p", "2", "--quick",
            "--runs", "3", "--no-cache", "--trace", str(trace),
        ]
    )
    assert rc == 1
    captured = capsys.readouterr()
    assert "2/3 replicas" in captured.out
    assert "1 replica(s) failed" in captured.err
    assert "injected replica failure" in captured.err
    failures = [
        json.loads(line)
        for line in trace.read_text().splitlines()
        if json.loads(line)["event"] == "task/error"
    ]
    assert failures and "injected replica failure" in failures[0]["error"]
