"""Fault policy: validation, backoff, timeouts, worker death."""

import os
import time

import pytest

from repro.errors import ConfigError
from repro.harness import (
    KIND_BROKEN_POOL,
    KIND_TIMEOUT,
    FaultPolicy,
    Task,
    TaskFailure,
    Telemetry,
    run_tasks,
)


def sleep_for(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def kill_worker(_: int) -> None:
    os._exit(17)  # simulates a segfaulting / OOM-killed worker


def test_policy_validation():
    with pytest.raises(ConfigError):
        FaultPolicy(timeout_s=0)
    with pytest.raises(ConfigError):
        FaultPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        FaultPolicy(backoff_s=-1)
    with pytest.raises(ConfigError):
        FaultPolicy(backoff_factor=0.5)


def test_backoff_schedule():
    policy = FaultPolicy(max_attempts=3, backoff_s=0.1, backoff_factor=2.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.should_retry(1) and policy.should_retry(2)
    assert not policy.should_retry(3)


def test_task_failure_str():
    failure = TaskFailure(key="fig04", kind="error", error="ValueError('x')", attempts=2)
    text = str(failure)
    assert "fig04" in text and "2 attempt" in text and "ValueError" in text


def test_pool_timeout_fails_slow_task_only():
    telemetry = Telemetry()
    tasks = [
        Task(key="slow", fn=sleep_for, args=(0.8,)),
        Task(key="fast", fn=sleep_for, args=(0.01,)),
    ]
    outcomes = run_tasks(
        tasks, jobs=2, faults=FaultPolicy(timeout_s=0.2), telemetry=telemetry
    )
    by_key = {o.key: o for o in outcomes}
    assert by_key["fast"].ok
    assert not by_key["slow"].ok
    assert by_key["slow"].failure.kind == KIND_TIMEOUT
    assert telemetry.counters["task/timeout"] == 1


def test_serial_timeout_is_advisory():
    # jobs=1 cannot preempt: the result is kept, the overrun recorded.
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="slow", fn=sleep_for, args=(0.1,))],
        jobs=1,
        faults=FaultPolicy(timeout_s=0.01),
        telemetry=telemetry,
    )
    assert outcomes[0].ok and outcomes[0].value == 0.1
    assert telemetry.counters["task/overtime"] == 1


def test_worker_death_degrades_gracefully():
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="die", fn=kill_worker, args=(0,))], jobs=2, telemetry=telemetry
    )
    assert not outcomes[0].ok
    assert outcomes[0].failure.kind == KIND_BROKEN_POOL
    assert telemetry.counters["run/broken-pool"] == 1
