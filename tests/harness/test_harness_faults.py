"""Fault policy: validation, backoff, timeouts, worker death."""

import os
import time

import pytest

from repro.errors import ConfigError
from repro.harness import (
    KIND_BROKEN_POOL,
    KIND_TIMEOUT,
    FaultPolicy,
    Task,
    TaskFailure,
    Telemetry,
    run_tasks,
)


def sleep_for(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def kill_worker(_: int) -> None:
    os._exit(17)  # simulates a segfaulting / OOM-killed worker


def test_policy_validation():
    with pytest.raises(ConfigError):
        FaultPolicy(timeout_s=0)
    with pytest.raises(ConfigError):
        FaultPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        FaultPolicy(backoff_s=-1)
    with pytest.raises(ConfigError):
        FaultPolicy(backoff_factor=0.5)


def test_backoff_schedule():
    policy = FaultPolicy(max_attempts=3, backoff_s=0.1, backoff_factor=2.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.should_retry(1) and policy.should_retry(2)
    assert not policy.should_retry(3)


def test_task_failure_str():
    failure = TaskFailure(key="fig04", kind="error", error="ValueError('x')", attempts=2)
    text = str(failure)
    assert "fig04" in text and "2 attempt" in text and "ValueError" in text


def test_pool_timeout_fails_slow_task_only():
    telemetry = Telemetry()
    tasks = [
        Task(key="slow", fn=sleep_for, args=(0.8,)),
        Task(key="fast", fn=sleep_for, args=(0.01,)),
    ]
    outcomes = run_tasks(
        tasks, jobs=2, faults=FaultPolicy(timeout_s=0.2), telemetry=telemetry
    )
    by_key = {o.key: o for o in outcomes}
    assert by_key["fast"].ok
    assert not by_key["slow"].ok
    assert by_key["slow"].failure.kind == KIND_TIMEOUT
    assert telemetry.counters["task/timeout"] == 1


def test_serial_timeout_is_advisory():
    # jobs=1 cannot preempt: the result is kept, the overrun recorded.
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="slow", fn=sleep_for, args=(0.1,))],
        jobs=1,
        faults=FaultPolicy(timeout_s=0.01),
        telemetry=telemetry,
    )
    assert outcomes[0].ok and outcomes[0].value == 0.1
    assert telemetry.counters["task/overtime"] == 1


def test_policy_validation_backoff_cap_and_jitter():
    with pytest.raises(ConfigError):
        FaultPolicy(backoff_max_s=0)
    with pytest.raises(ConfigError):
        FaultPolicy(jitter=-0.1)
    with pytest.raises(ConfigError):
        FaultPolicy(jitter=1.5)


def test_backoff_cap_bounds_the_schedule():
    policy = FaultPolicy(
        max_attempts=5, backoff_s=0.1, backoff_factor=4.0, backoff_max_s=0.25
    )
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.25)  # 0.4 capped
    assert policy.delay(3) == pytest.approx(0.25)  # 1.6 capped


def test_jitter_is_deterministic_and_pure():
    policy = FaultPolicy(backoff_s=0.1, jitter=0.5, jitter_seed=7)
    # Pure: same (policy, attempt, key) -> same delay, every time.
    assert policy.delay(1, key="fig04") == policy.delay(1, key="fig04")
    # Decorrelated: key, attempt and seed all move the jitter.
    assert policy.delay(1, key="fig04") != policy.delay(1, key="fig05")
    assert policy.delay(1, key="fig04") != policy.delay(2, key="fig04")
    other_seed = FaultPolicy(backoff_s=0.1, jitter=0.5, jitter_seed=8)
    assert policy.delay(1, key="fig04") != other_seed.delay(1, key="fig04")
    # Bounded: within +/- jitter of the base delay, never negative.
    for key in ("a", "b", "c", "d"):
        for attempt in (1, 2, 3):
            delay = policy.delay(attempt, key=key)
            base = 0.1 * 2.0 ** (attempt - 1)
            assert 0.0 <= base * 0.5 <= delay <= base * 1.5


def test_jitter_off_by_default_keeps_exact_schedule():
    policy = FaultPolicy(max_attempts=3, backoff_s=0.1, backoff_factor=2.0)
    assert policy.delay(1, key="anything") == pytest.approx(0.1)
    assert policy.delay(2, key="anything") == pytest.approx(0.2)


# -- retry_timeouts: one flag, identical semantics on both paths -------------


def hang_once(root: str, name: str, value, hang_s: float, hang_attempts: int = 1):
    from repro.harness.chaos import hang_task

    return hang_task(root, name, value, hang_s, hang_attempts)


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_retry_timeouts_recovers_identically_on_both_paths(tmp_path, jobs):
    telemetry = Telemetry()
    outcomes = run_tasks(
        [
            Task(
                key="h", fn=hang_once,
                args=(str(tmp_path / f"j{jobs}"), "h", 42, 0.6, 1),
            )
        ],
        jobs=jobs,
        faults=FaultPolicy(
            timeout_s=0.2, max_attempts=2, backoff_s=0.0, retry_timeouts=True
        ),
        telemetry=telemetry,
    )
    # Pinning test: whichever path ran it, the overrun attempt is a
    # discarded timeout failure and the retry produced the value.
    assert outcomes[0].ok and outcomes[0].value == 42
    assert outcomes[0].attempts == 2
    assert telemetry.counters["task/timeout"] == 1
    assert telemetry.counters["task/retry"] == 1
    assert "task/overtime" not in telemetry.counters


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
def test_retry_timeouts_exhausts_budget_identically(tmp_path, jobs):
    outcomes = run_tasks(
        [
            Task(
                key="h", fn=hang_once,
                args=(str(tmp_path / f"j{jobs}"), "h", 42, 0.5, 9),
            )
        ],
        jobs=jobs,
        faults=FaultPolicy(
            timeout_s=0.2, max_attempts=2, backoff_s=0.0, retry_timeouts=True
        ),
    )
    assert not outcomes[0].ok
    assert outcomes[0].failure.kind == KIND_TIMEOUT
    assert outcomes[0].failure.attempts == 2


def test_pool_timeout_not_retried_when_flag_off(tmp_path):
    # Default retry_timeouts=False: a timed-out task fails on the first
    # attempt even with retry budget left — a deterministic task that
    # blew its budget once will blow it again.
    outcomes = run_tasks(
        [Task(key="slow", fn=sleep_for, args=(0.8,))],
        jobs=2,
        faults=FaultPolicy(timeout_s=0.2, max_attempts=3, backoff_s=0.0),
    )
    assert not outcomes[0].ok
    assert outcomes[0].failure.kind == KIND_TIMEOUT
    assert outcomes[0].failure.attempts == 1


def test_worker_death_degrades_gracefully():
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="die", fn=kill_worker, args=(0,))], jobs=2, telemetry=telemetry
    )
    assert not outcomes[0].ok
    assert outcomes[0].failure.kind == KIND_BROKEN_POOL
    assert telemetry.counters["run/broken-pool"] == 1
