"""Content-addressed result cache: keys, storage, invalidation, durability."""

import multiprocessing
import pickle

import pytest

from repro.core.config import SimConfig
from repro.harness import ResultCache, code_version, content_key, default_cache_dir
from repro.harness.cache import QUARANTINE_DIR
from repro.harness.chaos import CORRUPTION_MODES, corrupt_cache_entry
from repro.harness.tasks import figure_cache_key


def test_content_key_is_stable_and_order_insensitive():
    assert content_key(a=1, b="x") == content_key(b="x", a=1)


def test_content_key_distinguishes_fields():
    base = content_key(workload="specjbb", run_index=0)
    assert content_key(workload="specjbb", run_index=1) != base
    assert content_key(workload="ecperf", run_index=0) != base


def test_content_key_covers_sim_config_fields():
    sim = SimConfig(seed=1, refs_per_proc=1000)
    assert content_key(sim=sim) == content_key(sim=SimConfig(seed=1, refs_per_proc=1000))
    assert content_key(sim=sim) != content_key(sim=sim.with_refs(2000))
    assert content_key(sim=sim) != content_key(sim=SimConfig(seed=2, refs_per_proc=1000))


def test_figure_cache_key_varies_by_module_and_sim():
    sim = SimConfig()
    assert figure_cache_key("fig04_scaling", sim) != figure_cache_key(
        "fig06_cpi", sim
    )
    assert figure_cache_key("fig04_scaling", sim) != figure_cache_key(
        "fig04_scaling", sim.with_refs(999)
    )


def test_code_version_is_memoized_hex():
    v = code_version()
    assert v == code_version()
    assert len(v) == 64 and int(v, 16) >= 0


def test_round_trip_and_contains(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x=1)
    assert cache.get(key) == (False, None)
    cache.put(key, {"rows": [(1, 2.0)]})
    assert key in cache
    hit, value = cache.get(key)
    assert hit and value == {"rows": [(1, 2.0)]}
    assert len(cache) == 1


def test_cached_none_is_a_hit(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x="none")
    cache.put(key, None)
    assert cache.get(key) == (True, None)


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x=2)
    cache.put(key, 42)
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) == (False, None)
    assert not path.exists()


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
def test_every_corruption_mode_quarantines(tmp_path, mode):
    cache = ResultCache(tmp_path)
    key = content_key(mode=mode)
    cache.put(key, {"answer": 42})
    damaged = corrupt_cache_entry(cache, key, mode)
    assert cache.get(key) == (False, None)
    assert cache.quarantined == 1
    # The evidence is preserved aside, not destroyed.
    assert not damaged.exists()
    assert (tmp_path / QUARANTINE_DIR / damaged.name).exists()
    # Quarantined entries don't count as live, and a re-put heals the key.
    assert len(cache) == 0
    cache.put(key, {"answer": 43})
    assert cache.get(key) == (True, {"answer": 43})


def test_checksum_catches_single_flipped_bit(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x="bitrot")
    cache.put(key, list(range(100)))
    path = cache._path(key)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0x01  # one bit, last byte of the payload
    path.write_bytes(bytes(data))
    assert cache.get(key) == (False, None)
    assert cache.quarantined == 1


def test_stale_pre_checksum_entry_dropped_silently(tmp_path):
    """An old-layout entry (plain pickle dict) is stale, not corrupt."""
    cache = ResultCache(tmp_path)
    key = content_key(x="old")
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"format": 1, "key": key, "value": 5}))
    assert cache.get(key) == (False, None)
    assert cache.quarantined == 0
    assert not path.exists()
    assert not (tmp_path / QUARANTINE_DIR).exists()


def test_put_leaves_no_temp_droppings(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(content_key(x=3), "value")
    assert not list(tmp_path.rglob("*.tmp"))


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(content_key(x=i), i)
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0


def _stress_writer(root: str, worker: int, iterations: int, out) -> None:
    """Hammer one shared cache with interleaved put/get/clear."""
    try:
        cache = ResultCache(root)
        for i in range(iterations):
            key = content_key(stress=i % 8)
            cache.put(key, {"worker": worker, "i": i, "pad": "x" * 256})
            hit, value = cache.get(key)
            # A concurrent clear may turn any get into a miss; a hit
            # must always be a complete, well-formed entry.
            if hit:
                assert set(value) == {"worker", "i", "pad"}
                assert len(value["pad"]) == 256
            if worker == 0 and i % 16 == 7:
                cache.clear()
        out.put(("ok", worker, cache.quarantined))
    except BaseException as exc:  # pragma: no cover - failure reporting
        out.put(("error", worker, repr(exc)))


def test_two_process_stress_never_corrupts(tmp_path):
    """Two processes sharing a root: no torn reads, no quarantines.

    Atomic renames mean a reader sees complete entries or nothing;
    clear racing put must never expose a half-entry as a hit.
    """
    ctx = multiprocessing.get_context()
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_stress_writer, args=(str(tmp_path), w, 200, out))
        for w in range(2)
    ]
    for p in procs:
        p.start()
    results = [out.get(timeout=60) for _ in procs]
    for p in procs:
        p.join(timeout=60)
    assert all(status == "ok" for status, _, _ in results), results
    # Concurrency alone must never manufacture corrupt entries.
    assert all(quarantined == 0 for _, _, quarantined in results), results
    assert not (tmp_path / QUARANTINE_DIR).exists()


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("JMMW_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("JMMW_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "jmmw"
