"""Content-addressed result cache: keys, storage, invalidation."""

from repro.core.config import SimConfig
from repro.harness import ResultCache, code_version, content_key, default_cache_dir
from repro.harness.tasks import figure_cache_key


def test_content_key_is_stable_and_order_insensitive():
    assert content_key(a=1, b="x") == content_key(b="x", a=1)


def test_content_key_distinguishes_fields():
    base = content_key(workload="specjbb", run_index=0)
    assert content_key(workload="specjbb", run_index=1) != base
    assert content_key(workload="ecperf", run_index=0) != base


def test_content_key_covers_sim_config_fields():
    sim = SimConfig(seed=1, refs_per_proc=1000)
    assert content_key(sim=sim) == content_key(sim=SimConfig(seed=1, refs_per_proc=1000))
    assert content_key(sim=sim) != content_key(sim=sim.with_refs(2000))
    assert content_key(sim=sim) != content_key(sim=SimConfig(seed=2, refs_per_proc=1000))


def test_figure_cache_key_varies_by_module_and_sim():
    sim = SimConfig()
    assert figure_cache_key("fig04_scaling", sim) != figure_cache_key(
        "fig06_cpi", sim
    )
    assert figure_cache_key("fig04_scaling", sim) != figure_cache_key(
        "fig04_scaling", sim.with_refs(999)
    )


def test_code_version_is_memoized_hex():
    v = code_version()
    assert v == code_version()
    assert len(v) == 64 and int(v, 16) >= 0


def test_round_trip_and_contains(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x=1)
    assert cache.get(key) == (False, None)
    cache.put(key, {"rows": [(1, 2.0)]})
    assert key in cache
    hit, value = cache.get(key)
    assert hit and value == {"rows": [(1, 2.0)]}
    assert len(cache) == 1


def test_cached_none_is_a_hit(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x="none")
    cache.put(key, None)
    assert cache.get(key) == (True, None)


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x=2)
    cache.put(key, 42)
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) == (False, None)
    assert not path.exists()


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(3):
        cache.put(content_key(x=i), i)
    assert len(cache) == 3
    cache.clear()
    assert len(cache) == 0


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("JMMW_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("JMMW_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "jmmw"
