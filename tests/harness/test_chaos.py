"""Chaos tests: scripted faults exercise every harness recovery path.

Each test injects a deterministic fault through
:mod:`repro.harness.chaos` — a worker that dies mid-task, a task that
hangs past its budget, a task that raises, a cache entry rotted on
disk — and asserts the batch completes with the documented degradation
and that recovered results are bit-identical to a clean run.
"""

import time

import pytest

from repro.harness import (
    KIND_BROKEN_POOL,
    KIND_ERROR,
    KIND_TIMEOUT,
    FaultPolicy,
    ResultCache,
    Task,
    Telemetry,
    content_key,
    run_tasks,
)
from repro.harness.chaos import (
    CORRUPTION_MODES,
    ChaosError,
    corrupt_cache_entry,
    crash_task,
    error_task,
    hang_task,
    take_ticket,
)


def identity(value):
    return value


def test_take_ticket_is_monotonic(tmp_path):
    assert [take_ticket(tmp_path, "t") for _ in range(3)] == [0, 1, 2]
    assert take_ticket(tmp_path, "other") == 0


# -- KIND_BROKEN_POOL: a worker dies mid-task --------------------------------


def test_crashed_worker_is_respawned_and_task_retried(tmp_path):
    telemetry = Telemetry()
    tasks = [
        Task(key="crash", fn=crash_task, args=(str(tmp_path), "c1", 41)),
        Task(key="ok-a", fn=identity, args=(1,)),
        Task(key="ok-b", fn=identity, args=(2,)),
    ]
    outcomes = run_tasks(
        tasks, jobs=2, faults=FaultPolicy(max_attempts=2, backoff_s=0.0),
        telemetry=telemetry,
    )
    by_key = {o.key: o for o in outcomes}
    # The crash killed a worker; the retry ran in a respawned one and
    # produced the task's real value.
    assert by_key["crash"].ok and by_key["crash"].value == 41
    assert by_key["crash"].attempts == 2
    assert by_key["ok-a"].value == 1 and by_key["ok-b"].value == 2
    assert telemetry.counters["run/broken-pool"] == 1
    assert telemetry.counters["pool/respawn"] >= 1


def test_crash_beyond_retry_budget_fails_only_that_task(tmp_path):
    tasks = [
        Task(key="crash", fn=crash_task, args=(str(tmp_path), "c2", 0, 3)),
        Task(key="ok", fn=identity, args=(7,)),
    ]
    outcomes = run_tasks(
        tasks, jobs=2, faults=FaultPolicy(max_attempts=2, backoff_s=0.0)
    )
    by_key = {o.key: o for o in outcomes}
    assert not by_key["crash"].ok
    assert by_key["crash"].failure.kind == KIND_BROKEN_POOL
    assert "died" in by_key["crash"].failure.error
    assert by_key["ok"].ok and by_key["ok"].value == 7


def test_recovered_result_is_bit_identical_to_clean_run(tmp_path):
    """A result computed on the retry after a crash equals a clean result."""
    payload = {"points": [(1, 2.5), (2, 5.0)], "name": "curve"}
    clean = run_tasks([Task(key="t", fn=identity, args=(payload,))], jobs=2)
    chaotic = run_tasks(
        [Task(key="t", fn=crash_task, args=(str(tmp_path), "c3", payload))],
        jobs=2,
        faults=FaultPolicy(max_attempts=2, backoff_s=0.0),
    )
    assert chaotic[0].ok
    assert chaotic[0].value == clean[0].value


# -- KIND_TIMEOUT: the watchdog reclaims a hung slot -------------------------


def test_hung_task_is_killed_and_slot_reclaimed(tmp_path):
    telemetry = Telemetry()
    tasks = [
        Task(key="hang", fn=hang_task, args=(str(tmp_path), "h1", 0, 30.0)),
        Task(key="q1", fn=identity, args=(1,)),
        Task(key="q2", fn=identity, args=(2,)),
        Task(key="q3", fn=identity, args=(3,)),
    ]
    t0 = time.monotonic()
    outcomes = run_tasks(
        tasks, jobs=2, faults=FaultPolicy(timeout_s=0.3), telemetry=telemetry
    )
    wall = time.monotonic() - t0
    by_key = {o.key: o for o in outcomes}
    assert not by_key["hang"].ok
    assert by_key["hang"].failure.kind == KIND_TIMEOUT
    assert "worker killed" in by_key["hang"].failure.error
    assert all(by_key[k].ok for k in ("q1", "q2", "q3"))
    # The documented caveat fix: the hung worker was killed and its
    # slot reclaimed — total wall time is the timeout, not the hang.
    assert wall < 10.0
    assert telemetry.counters["pool/respawn"] >= 1


# -- KIND_ERROR: a raising task retries under policy -------------------------


def test_transient_error_recovers_with_identical_value(tmp_path):
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="e", fn=error_task, args=(str(tmp_path), "e1", "payload"))],
        jobs=2,
        faults=FaultPolicy(max_attempts=2, backoff_s=0.0),
        telemetry=telemetry,
    )
    assert outcomes[0].ok and outcomes[0].value == "payload"
    assert outcomes[0].attempts == 2
    assert telemetry.counters["task/retry"] == 1


def test_persistent_error_exhausts_policy(tmp_path):
    outcomes = run_tasks(
        [Task(key="e", fn=error_task, args=(str(tmp_path), "e2", 0, 5))],
        jobs=2,
        faults=FaultPolicy(max_attempts=2, backoff_s=0.0),
    )
    assert not outcomes[0].ok
    assert outcomes[0].failure.kind == KIND_ERROR
    assert "ChaosError" in outcomes[0].failure.error
    assert outcomes[0].failure.attempts == 2


def test_error_task_raises_chaos_error_directly(tmp_path):
    with pytest.raises(ChaosError):
        error_task(str(tmp_path), "direct", 0)


# -- cache corruption: quarantined, recomputed, never fatal ------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
def test_corrupt_cache_entry_is_quarantined_and_recomputed(tmp_path, mode):
    cache = ResultCache(tmp_path / "cache")
    key = content_key(chaos=mode)
    task = Task(key="t", fn=identity, args=(123,), cache_key=key)

    first = run_tasks([task], cache=cache)
    assert first[0].ok and not first[0].cached
    corrupt_cache_entry(cache, key, mode)

    telemetry = Telemetry()
    second = run_tasks([task], cache=cache, telemetry=telemetry)
    # Corruption is a miss, not a crash: the task recomputed the same
    # value and the damaged entry went to quarantine.
    assert second[0].ok and not second[0].cached
    assert second[0].value == 123
    assert cache.quarantined >= 1
    assert "cache/quarantined" in telemetry.counters

    third = run_tasks([task], cache=cache)
    assert third[0].cached  # the recompute repaired the entry
    assert third[0].value == 123


def test_unknown_corruption_mode_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(content_key(x=1), 1)
    with pytest.raises(ValueError):
        corrupt_cache_entry(cache, content_key(x=1), "melt")
