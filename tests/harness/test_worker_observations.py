"""Worker-side spans and counters must reach the parent process.

Workers historically reported only their wall-clock duration over the
result pipe; anything a task published to :mod:`repro.obs` died with
the worker.  These tests pin the contract: observations recorded inside
a worker are shipped back with the result message and merged into the
parent's singletons *and* the campaign Telemetry — identically for
serial runs, parallel runs, failed tasks, and workers respawned after a
crash.
"""

import os

from repro.harness import FaultPolicy, Task, Telemetry, run_tasks


def observed_payload(n: int) -> int:
    from repro import obs

    with obs.span("test/task", n=n):
        obs.incr("test/points", n)
        obs.incr("test/tasks")
    return n * 2


def observe_then_fail(n: int) -> None:
    from repro import obs

    obs.incr("test/points", n)
    raise RuntimeError("task failed after observing")


def crash_once_then_observe(marker: str, n: int) -> int:
    from repro import obs

    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("x")
        os._exit(23)  # simulates a segfaulting / OOM-killed worker
    obs.incr("test/respawn_points", n)
    return n


def _tasks():
    return [Task(key=f"t{n}", fn=observed_payload, args=(n,)) for n in (1, 2, 3)]


def _run(obs, jobs: int) -> Telemetry:
    telemetry = Telemetry()
    outcomes = run_tasks(_tasks(), jobs=jobs, telemetry=telemetry)
    assert [o.value for o in outcomes] == [2, 4, 6]
    assert obs.COUNTERS.get("test/points") == 6
    assert obs.COUNTERS.get("test/tasks") == 3
    spans = [r for r in obs.SPANS.finished if r["span"] == "test/task"]
    assert sorted(r["n"] for r in spans) == [1, 2, 3]
    return telemetry


def test_parallel_workers_ship_observations(obs_enabled):
    telemetry = _run(obs_enabled, jobs=2)
    assert telemetry.counters["test/points"] == 6
    assert telemetry.counters["test/tasks"] == 3


def test_serial_run_reports_identical_totals(obs_enabled):
    telemetry = _run(obs_enabled, jobs=1)
    assert telemetry.counters["test/points"] == 6
    assert telemetry.counters["test/tasks"] == 3


def test_disabled_obs_ships_nothing():
    from repro import obs

    telemetry = Telemetry()
    outcomes = run_tasks(_tasks(), jobs=2, telemetry=telemetry)
    assert all(o.ok for o in outcomes)
    assert obs.COUNTERS.snapshot() == {}
    assert obs.SPANS.finished == []
    assert not any(name.startswith("test/") for name in telemetry.counters)


def test_failed_task_observations_still_arrive(obs_enabled):
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="boom", fn=observe_then_fail, args=(5,))],
        jobs=2,
        telemetry=telemetry,
        faults=FaultPolicy(max_attempts=1),
    )
    assert not outcomes[0].ok
    # The counter was published before the exception: it must survive
    # the error path of the result pipe.
    assert obs_enabled.COUNTERS.get("test/points") == 5
    assert telemetry.counters["test/points"] == 5


def test_respawned_worker_observations_arrive(obs_enabled, tmp_path):
    marker = tmp_path / "crashed-once"
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="phoenix", fn=crash_once_then_observe, args=(str(marker), 7))],
        jobs=2,
        telemetry=telemetry,
        faults=FaultPolicy(max_attempts=3, backoff_s=0.0),
    )
    assert outcomes[0].ok and outcomes[0].value == 7
    assert outcomes[0].attempts == 2
    assert telemetry.counters["run/broken-pool"] >= 1  # the crash happened
    # The replacement worker's observations made it back regardless.
    assert obs_enabled.COUNTERS.get("test/respawn_points") == 7
    assert telemetry.counters["test/respawn_points"] == 7
