"""JSONL event tracing and hierarchical counters."""

import json

from repro.harness import Telemetry, read_trace


def test_counters_without_trace_file():
    tel = Telemetry()
    tel.emit("task/start", task="a")
    tel.emit("task/end", task="a", wall_s=0.5)
    tel.emit("task/start", task="b")
    tel.incr("cache/hit", 3)
    assert tel.counters["task/start"] == 2
    assert tel.counters["cache/hit"] == 3
    assert tel.trace_path is None


def test_trace_file_records_events(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry(path) as tel:
        tel.emit("task/start", task="fig04", attempt=1)
        tel.emit("task/end", task="fig04", wall_s=1.25, worker=123)
    events = read_trace(path)
    assert [e["event"] for e in events] == ["task/start", "task/end"]
    assert events[0]["task"] == "fig04"
    assert events[1]["worker"] == 123
    assert all("t" in e for e in events)  # relative timestamps
    # every line is standalone JSON
    for line in path.read_text().splitlines():
        json.loads(line)


def test_trace_parent_dir_created(tmp_path):
    path = tmp_path / "deep" / "dir" / "trace.jsonl"
    with Telemetry(path) as tel:
        tel.emit("x")
    assert read_trace(path)[0]["event"] == "x"


def test_incr_does_not_write_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry(path) as tel:
        tel.incr("task/ok")
    assert read_trace(path) == []
    assert tel.counters["task/ok"] == 1


def test_render_summary_table():
    tel = Telemetry()
    tel.emit("task/end")
    tel.emit("task/end")
    tel.emit("cache/hit")
    text = tel.render_summary()
    assert "event" in text and "count" in text
    assert "task/end" in text and "2" in text
    assert Telemetry().render_summary() == "harness: no events recorded"


def test_non_json_fields_are_stringified(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Telemetry(path) as tel:
        tel.emit("odd", value={1, 2})  # sets are not JSON-serializable
    assert "odd" == read_trace(path)[0]["event"]
