"""Campaign manifest: incremental journaling, crash tolerance, resume."""

import json
import os
import signal

import pytest

from repro.errors import CampaignInterrupted
from repro.harness import CampaignManifest, Task, Telemetry, run_tasks
from repro.harness.runner import TaskOutcome
from repro.harness.faults import KIND_ERROR, TaskFailure

SIG = "a" * 64


def identity(value):
    return value


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


# -- journal mechanics -------------------------------------------------------


def test_fresh_manifest_writes_header(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        assert not manifest.resumed
    lines = _lines(path)
    assert lines[0] == {"campaign": SIG, "format": 1}


def test_record_and_lookup_round_trip(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record(
            "t1", TaskOutcome(key="t1", value={"x": 1}, wall_s=0.5, attempts=1)
        )
        assert manifest.completed == frozenset({"t1"})
        assert manifest.lookup("t1") == (True, {"x": 1})
        assert manifest.lookup("t2") == (False, None)
    record = _lines(path)[1]
    assert record["task"] == "t1" and record["status"] == "ok"


def test_resume_serves_previous_results(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record("t1", TaskOutcome(key="t1", value=11))
        manifest.record("t2", TaskOutcome(key="t2", value=22))
    with CampaignManifest.open_resume(path, SIG) as resumed:
        assert resumed.resumed
        assert resumed.completed == frozenset({"t1", "t2"})
        assert resumed.lookup("t1") == (True, 11)
        assert resumed.lookup("t2") == (True, 22)


def test_failed_record_clears_completion(tmp_path):
    path = tmp_path / "c.jsonl"
    failure = TaskFailure(key="t1", kind=KIND_ERROR, error="boom", attempts=1)
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record("t1", TaskOutcome(key="t1", value=1))
        manifest.record("t1", TaskOutcome(key="t1", failure=failure))
    with CampaignManifest.open_resume(path, SIG) as resumed:
        assert "t1" not in resumed.completed


def test_torn_tail_is_tolerated(tmp_path):
    """A writer killed mid-append loses at most that one record."""
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record("t1", TaskOutcome(key="t1", value=1))
    with path.open("a") as fh:
        fh.write('{"task": "t2", "status"')  # torn mid-write
    with CampaignManifest.open_resume(path, SIG) as resumed:
        assert resumed.resumed
        assert resumed.completed == frozenset({"t1"})


def test_signature_mismatch_starts_fresh(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record("t1", TaskOutcome(key="t1", value=1))
    with CampaignManifest.open_resume(path, "b" * 64) as other:
        assert not other.resumed
        assert other.completed == frozenset()
    # The journal was restarted under the new signature.
    assert _lines(path)[0]["campaign"] == "b" * 64


def test_missing_journal_starts_fresh(tmp_path):
    with CampaignManifest.open_resume(tmp_path / "none.jsonl", SIG) as manifest:
        assert not manifest.resumed


# -- runner integration ------------------------------------------------------


def test_run_tasks_journals_and_resume_skips(tmp_path):
    path = tmp_path / "c.jsonl"
    tasks = [Task(key=f"t{i}", fn=identity, args=(i,)) for i in range(3)]

    with CampaignManifest.open_fresh(path, SIG) as manifest:
        first = run_tasks(tasks, manifest=manifest)
    assert [o.value for o in first] == [0, 1, 2]

    telemetry = Telemetry()
    with CampaignManifest.open_resume(path, SIG) as manifest:
        second = run_tasks(tasks, manifest=manifest, telemetry=telemetry)
    # Identical values, no task executed a second time.
    assert [o.value for o in second] == [0, 1, 2]
    assert all(o.cached for o in second)
    assert telemetry.counters["resume/skip"] == 3
    assert "task/start" not in telemetry.counters


def test_cache_hits_are_journaled_into_fresh_manifests(tmp_path):
    from repro.harness import ResultCache, content_key

    cache = ResultCache(tmp_path / "cache")
    task = Task(key="t", fn=identity, args=(9,), cache_key=content_key(n=9))
    run_tasks([task], cache=cache)  # populate the cache

    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        run_tasks([task], cache=cache, manifest=manifest)
    # The cache hit became part of the campaign journal, so a resume
    # works even if the cache is later cleared.
    cache.clear()
    with CampaignManifest.open_resume(path, SIG) as resumed:
        outcomes = run_tasks([task], manifest=resumed)
    assert outcomes[0].cached and outcomes[0].value == 9


def interrupt_self(value):
    os.kill(os.getpid(), signal.SIGINT)
    return value


def test_serial_interrupt_drains_and_resumes_bit_identically(tmp_path):
    """SIGINT mid-campaign: in-flight work persists, resume finishes it."""
    path = tmp_path / "c.jsonl"
    tasks = [
        Task(key="t0", fn=identity, args=(10,)),
        Task(key="t1", fn=interrupt_self, args=(11,)),
        Task(key="t2", fn=identity, args=(12,)),
    ]
    telemetry = Telemetry()
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_tasks(
                tasks, manifest=manifest, telemetry=telemetry, interruptible=True
            )
    # The interrupted task itself completed (drained, not lost).
    assert excinfo.value.completed == 2
    assert excinfo.value.remaining == ("t2",)
    assert telemetry.counters["run/interrupted"] == 1

    with CampaignManifest.open_resume(path, SIG) as resumed:
        outcomes = run_tasks(tasks, manifest=resumed, interruptible=True)
    assert [o.value for o in outcomes] == [10, 11, 12]
    by_key = {o.key: o for o in outcomes}
    assert by_key["t0"].cached and by_key["t1"].cached
    assert not by_key["t2"].cached  # the only task that actually ran


def test_uninterruptible_batch_ignores_manifest_interrupt_plumbing(tmp_path):
    """Without interruptible=True, SIGINT raises KeyboardInterrupt as ever."""
    tasks = [Task(key="t", fn=interrupt_self, args=(1,))]
    with pytest.raises(KeyboardInterrupt):
        run_tasks(tasks)


def test_unpicklable_value_is_journaled_but_not_resumable(tmp_path):
    path = tmp_path / "c.jsonl"
    with CampaignManifest.open_fresh(path, SIG) as manifest:
        manifest.record("t", TaskOutcome(key="t", value=lambda: None))
        assert manifest.lookup("t") == (False, None)
    record = _lines(path)[1]
    assert record["status"] == "ok" and record["ref"] is None
