"""Trace-plane lifecycle: publish/attach parity and leak-proof cleanup.

The trace plane's contract has two halves, and this suite pins both:

1. **Parity** — a bundle replayed through a shared-memory (or spill)
   attachment is bit-identical to one regenerated from its spec, so
   plane-on, plane-off and serial campaigns produce identical results;
2. **No leaks, ever** — after a clean campaign, a SIGINT-drained
   campaign, a chaos campaign (workers crashing *while attached*,
   hanging past the watchdog, being respawned), and even a parent
   killed dead without cleanup (via :func:`sweep_stale`), zero
   ``/dev/shm`` segments, spill files, or ledgers remain.

Every test that creates segments asserts the ``/dev/shm`` delta is
empty on the way out; the ``_no_leaks`` helper is the single source of
truth for what "leaked" means.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.figures.common as common
from repro.cli import main
from repro.core.config import SimConfig
from repro.errors import TracePlaneError
from repro.figures.common import FigureResult
from repro.harness import FaultPolicy, Task, run_tasks
from repro.harness import traceplane
from repro.harness.chaos import crash_while_attached, hang_task
from repro.harness.tasks import build_miss_curve_sweep_tasks, miss_curve_shard
from repro.harness.traceplane import (
    SEGMENT_PREFIX,
    TracePlane,
    TraceSpec,
    attach,
    detach_all,
    resolve,
    sweep_stale,
    use_refs,
)
from repro.memsys.multisim import simulate_miss_curve

TINY = SimConfig(seed=1234, refs_per_proc=4_000, warmup_fraction=0.5)

SIZES = [16 * 1024, 64 * 1024, 256 * 1024]


def _spec(n_procs: int = 1, seed: int = 1234) -> TraceSpec:
    sim = dataclasses.replace(TINY, seed=seed)
    return TraceSpec(workload="specjbb", scale=2, n_procs=n_procs, sim=sim)


def _shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir() if p.name.startswith(SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test in this file must leave /dev/shm and the cache clean."""
    detach_all()
    before = _shm_segments()
    yield
    detach_all()
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _plane_files(root: Path) -> list[str]:
    return sorted(
        p.name for p in root.glob("*") if p.suffix in (".trace", ".ledger")
    )


# -- publish / attach parity -------------------------------------------------


def test_publish_attach_roundtrip_is_bit_identical(tmp_path):
    spec = _spec(n_procs=2)
    reference = spec.generate()
    with TracePlane(root=tmp_path) as plane:
        ref = plane.publish(spec)
        assert ref.backend == "shm"
        assert ref.lengths == tuple(t.size for t in reference.per_cpu)
        got = attach(ref)
        assert got.workload == reference.workload
        assert got.instructions == reference.instructions
        for mine, theirs in zip(got.per_cpu, reference.per_cpu):
            assert mine.dtype == np.uint64
            assert np.array_equal(mine, theirs)
        detach_all()
    assert _plane_files(tmp_path) == []


def test_publish_is_idempotent_per_spec(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        first = plane.publish(spec)
        second = plane.publish(spec)
        assert first is second or first == second
        assert len(plane.refs) == 1


def test_spill_backend_roundtrip(tmp_path):
    spec = _spec(n_procs=2)
    reference = spec.generate()
    with TracePlane(root=tmp_path, spill_bytes=1) as plane:
        ref = plane.publish(spec)
        assert ref.backend == "spill"
        assert Path(ref.location).exists()
        got = attach(ref)
        assert np.array_equal(got.merged(), reference.merged())
        detach_all()
    # Spill file and ledger both retired at close.
    assert _plane_files(tmp_path) == []


def test_resolve_uses_installed_refs_and_misses_without(tmp_path):
    spec = _spec()
    assert resolve(spec) is None
    with TracePlane(root=tmp_path) as plane:
        refs = plane.refs_for([spec])
        with use_refs(refs):
            bundle = resolve(spec)
            assert bundle is not None
            assert np.array_equal(bundle.merged(), spec.generate().merged())
        assert resolve(spec) is None  # refs uninstalled on exit
        detach_all()


def test_sweep_parity_plane_on_off_serial(tmp_path):
    """The acceptance bar: three execution modes, one answer."""
    spec = _spec()
    direct = simulate_miss_curve(
        spec.generate().merged(), SIZES, kind="data", assoc=4, block=64,
        warmup_fraction=0.5,
    )
    expect = [(p.size, p.accesses, p.misses, p.mpki) for p in direct]

    def sweep(jobs: int, plane: TracePlane | None):
        tasks = build_miss_curve_sweep_tasks(spec, SIZES, "data", plane=plane)
        outcomes = run_tasks(tasks, jobs=jobs, plane=plane)
        assert all(o.ok for o in outcomes)
        return [point for o in outcomes for point in o.value]

    with TracePlane(root=tmp_path) as plane:
        plane_on = sweep(jobs=2, plane=plane)
    plane_off = sweep(jobs=2, plane=None)
    serial = sweep(jobs=1, plane=None)
    assert plane_on == plane_off == serial == expect


def test_shard_task_regenerates_without_refs():
    spec = _spec()
    points = miss_curve_shard(spec, SIZES[:1], "data", plane_refs=None)
    direct = simulate_miss_curve(
        spec.generate().merged(), SIZES[:1], kind="data", assoc=4, block=64,
        warmup_fraction=0.5,
    )
    assert points == [(p.size, p.accesses, p.misses, p.mpki) for p in direct]


# -- seeded defects: every bad ref fails loudly and typed --------------------


def test_stale_ref_after_close_raises_typed_error(tmp_path):
    spec = _spec()
    plane = TracePlane(root=tmp_path)
    ref = plane.publish(spec)
    plane.close()
    with pytest.raises(TracePlaneError, match="stale TraceRef"):
        attach(ref)


def test_wrong_generation_ref_raises_typed_error(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        ref = plane.publish(spec)
        forged = dataclasses.replace(ref, generation="f" * 32)
        with pytest.raises(TracePlaneError, match="generation"):
            attach(forged)
        detach_all()


def test_truncated_spill_file_raises_typed_error(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path, spill_bytes=1) as plane:
        ref = plane.publish(spec)
        path = Path(ref.location)
        path.write_bytes(path.read_bytes()[: ref.nbytes // 2])
        with pytest.raises(TracePlaneError, match="truncated"):
            attach(ref)


def test_garbage_spill_header_raises_typed_error(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path, spill_bytes=1) as plane:
        ref = plane.publish(spec)
        Path(ref.location).write_bytes(b"\xff" * 256)
        with pytest.raises(TracePlaneError, match="magic"):
            attach(ref)


def test_unknown_backend_rejected(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        ref = dataclasses.replace(plane.publish(spec), backend="carrier-pigeon")
        with pytest.raises(TracePlaneError, match="backend"):
            attach(ref)


def test_publish_on_closed_plane_raises(tmp_path):
    plane = TracePlane(root=tmp_path)
    plane.close()
    with pytest.raises(TracePlaneError, match="closed"):
        plane.publish(_spec())


# -- refcounted early unlink -------------------------------------------------


def test_release_to_zero_unlinks_before_campaign_end(tmp_path):
    keep, drop = _spec(seed=1), _spec(seed=2)
    with TracePlane(root=tmp_path) as plane:
        refs = plane.refs_for([keep, drop])
        keep_key, drop_key = keep.key(), drop.key()
        plane.retain((keep_key,))
        plane.retain((keep_key,))
        plane.retain((drop_key,))

        plane.release((drop_key,))
        assert refs[drop_key].location not in _shm_segments()
        assert refs[keep_key].location in _shm_segments()

        plane.release((keep_key,))
        assert refs[keep_key].location in _shm_segments()  # one holder left
        plane.release((keep_key,))
        assert refs[keep_key].location not in _shm_segments()


def test_runner_releases_plane_keys_as_tasks_finish(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        tasks = build_miss_curve_sweep_tasks(spec, SIZES, "data", plane=plane)
        assert all(t.plane_keys == (spec.key(),) for t in tasks)
        outcomes = run_tasks(tasks, jobs=2, plane=plane)
        assert all(o.ok for o in outcomes)
        # Every consumer finished: the runner's release() calls already
        # unlinked the segment, before plane.close() ran.
        assert plane.refs == {}


# -- lifecycle: clean, interrupted and chaotic campaigns all leave zero ------


def test_clean_parallel_campaign_leaves_nothing(tmp_path):
    spec = _spec(n_procs=2)
    plane = TracePlane(root=tmp_path)
    try:
        tasks = build_miss_curve_sweep_tasks(spec, SIZES, "data", plane=plane)
        outcomes = run_tasks(tasks, jobs=2, plane=plane)
        assert all(o.ok for o in outcomes)
    finally:
        plane.close()
    assert _plane_files(tmp_path) == []


def test_worker_crash_while_attached_retries_and_leaks_nothing(tmp_path):
    """The worst case: SIGKILL-style death while holding a mapping."""
    spec = _spec()
    scratch = tmp_path / "chaos"
    plane = TracePlane(root=tmp_path / "plane")
    try:
        ref = plane.publish(spec)
        tasks = [
            Task(
                key="crash",
                fn=crash_while_attached,
                args=(str(scratch), "c1", 41),
                kwargs={"ref": ref},
                plane_keys=(spec.key(),),
            ),
            Task(key="ok", fn=miss_curve_shard, args=(spec, SIZES[:1], "data"),
                 kwargs={"plane_refs": {spec.key(): ref}},
                 plane_keys=(spec.key(),)),
        ]
        outcomes = run_tasks(
            tasks, jobs=2, plane=plane,
            faults=FaultPolicy(max_attempts=2, backoff_s=0.0),
        )
        by_key = {o.key: o for o in outcomes}
        # The respawned worker re-attached and finished the task.
        assert by_key["crash"].ok and by_key["crash"].attempts == 2
        value, checksum = by_key["crash"].value
        assert value == 41
        bundle = spec.generate()
        assert checksum == int(
            sum(int(t[:16].sum()) for t in bundle.per_cpu if t.size)
        )
        assert by_key["ok"].ok
    finally:
        plane.close()
    assert _plane_files(tmp_path / "plane") == []


def test_hung_worker_killed_while_attached_leaks_nothing(tmp_path):
    spec = _spec()
    plane = TracePlane(root=tmp_path / "plane")
    try:
        ref = plane.publish(spec)

        tasks = [
            Task(key="hang", fn=hang_task,
                 args=(str(tmp_path / "chaos"), "h1", 0, 30.0),
                 plane_keys=(spec.key(),)),
            Task(key="ok", fn=miss_curve_shard, args=(spec, SIZES[:1], "data"),
                 kwargs={"plane_refs": {spec.key(): ref}},
                 plane_keys=(spec.key(),)),
        ]
        outcomes = run_tasks(
            tasks, jobs=2, plane=plane, faults=FaultPolicy(timeout_s=0.3)
        )
        by_key = {o.key: o for o in outcomes}
        assert not by_key["hang"].ok  # watchdog killed it
        assert by_key["ok"].ok
    finally:
        plane.close()
    assert _plane_files(tmp_path / "plane") == []


def test_sigint_drained_figures_campaign_leaks_nothing(monkeypatch, tmp_path):
    """A drained interrupt still unlinks every published segment."""
    monkeypatch.setenv("JMMW_CACHE_DIR", str(tmp_path))
    plane_root = tmp_path / "traceplane"

    def interrupting(module_name, sim, plane_refs=None):
        if module_name.startswith("fig12"):
            os.kill(os.getpid(), signal.SIGINT)
        return FigureResult(
            figure_id=module_name.split("_", 1)[0],
            title="stub", columns=["k"], rows=[(1,)], paper_claim="stub",
        )

    monkeypatch.setattr(common, "run_figure", interrupting)
    monkeypatch.setattr(
        common, "figure_checks", lambda module_name, result: []
    )
    rc = main(["figures", "fig12", "fig16", "--quick", "--no-cache"])
    assert rc == 130
    assert _plane_files(plane_root) == []


def test_fork_inherited_plane_never_closes_parents_segments(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        ref = plane.publish(spec)
        # Simulate the close() call a forked worker's atexit would make.
        original = plane._owner_pid
        plane._owner_pid = original + 1
        plane.close()
        assert ref.location in _shm_segments()  # untouched
        plane._owner_pid = original


# -- crash-safe sweep: a parent killed dead cannot leak forever --------------

_ORPHAN_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
from multiprocessing import resource_tracker
# Simulate a SIGKILL of the *whole process tree*: the resource tracker
# dies too, so its unlink-on-death backstop never fires and only the
# ledger sweep can reclaim the segment.
_orig = resource_tracker.register
resource_tracker.register = (
    lambda path, rtype: None if rtype == "shared_memory" else _orig(path, rtype)
)
from repro.core.config import SimConfig
from repro.harness.traceplane import TracePlane, TraceSpec
sim = SimConfig(seed=1234, refs_per_proc=4000, warmup_fraction=0.5)
plane = TracePlane(root={root!r})
ref = plane.publish(TraceSpec(workload="specjbb", scale=2, n_procs=1, sim=sim))
print(ref.location, flush=True)
os._exit(9)  # SIGKILL-style: no atexit, no close
"""


def _orphan_a_segment(root: Path) -> str:
    src = str(Path(__file__).resolve().parents[2] / "src")
    script = _ORPHAN_SCRIPT.format(src=src, root=str(root))
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        timeout=120,
    )
    location = out.stdout.strip()
    assert location, out.stderr
    return location


def test_sweep_stale_reaps_segments_of_dead_processes(tmp_path):
    location = _orphan_a_segment(tmp_path)
    assert location in _shm_segments()  # genuinely leaked by the kill
    assert len(list(tmp_path.glob("*.ledger"))) == 1
    reaped = sweep_stale(tmp_path)
    assert reaped == 1
    assert location not in _shm_segments()
    assert _plane_files(tmp_path) == []


def test_new_plane_sweeps_predecessors_leak_on_construction(tmp_path):
    location = _orphan_a_segment(tmp_path)
    assert location in _shm_segments()
    with TracePlane(root=tmp_path):
        assert location not in _shm_segments()
    assert _plane_files(tmp_path) == []


def test_sweep_leaves_live_planes_alone(tmp_path):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        ref = plane.publish(spec)
        assert sweep_stale(tmp_path) == 0  # our pid is alive
        assert ref.location in _shm_segments()


def test_normal_interpreter_exit_runs_atexit_backstop(tmp_path):
    """A plane abandoned without close() is cleaned by atexit."""
    src = str(Path(__file__).resolve().parents[2] / "src")
    script = _ORPHAN_SCRIPT.format(src=src, root=str(tmp_path)).replace(
        "os._exit(9)  # SIGKILL-style: no atexit, no close",
        "raise SystemExit(0)  # normal exit: atexit must clean up",
    )
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        timeout=120,
    )
    location = out.stdout.strip()
    assert location, out.stderr
    assert location not in _shm_segments()
    assert _plane_files(tmp_path) == []


# -- obs counters ------------------------------------------------------------


def test_plane_obs_counters(tmp_path, obs_enabled):
    spec = _spec()
    with TracePlane(root=tmp_path) as plane:
        ref = plane.publish(spec)
        attach(ref)
        attach(ref)  # cached mapping; the counter still ticks
        detach_all()
    counters = obs_enabled.COUNTERS.snapshot()
    assert counters["harness/trace_plane/segments"] == 1
    assert counters["harness/trace_plane/segments_live"] == 0
    assert counters["harness/trace_plane/bytes_shared"] == ref.nbytes
    assert counters["harness/trace_plane/attaches"] == 2
    assert counters["harness/trace_plane/pickle_bytes_avoided"] == 2 * ref.nbytes


# -- publish never materializes the merged payload ---------------------------


def test_publish_never_concatenates_the_bundle(tmp_path, monkeypatch):
    """Publishing streams per-CPU arrays into the segment one by one.

    The spill cliff this pins down: publish used to build one merged
    payload array before deciding shm vs spill, doubling peak memory
    at exactly the trace sizes the spill path exists for.  Outlawing
    payload-sized ``np.concatenate`` calls for the whole publish
    proves the payload is written per-array, on both backends, with
    round-trips still bit-identical.  (Tiny concatenations — RNG seed
    derivation during generation — stay legal; the cliff is about the
    payload.)
    """
    spec = _spec(n_procs=2)
    reference = spec.generate()
    payload_bytes = sum(t.nbytes for t in reference.per_cpu)
    original = np.concatenate

    def guarded(arrays, *args, **kwargs):
        total = sum(np.asarray(a).nbytes for a in arrays)
        assert total < payload_bytes, (
            f"publish concatenated {total} bytes — the merged-payload "
            "cliff is back"
        )
        return original(arrays, *args, **kwargs)

    monkeypatch.setattr(traceplane.np, "concatenate", guarded)
    for backend, kwargs in (("shm", {}), ("spill", {"spill_bytes": 1})):
        with TracePlane(root=tmp_path / backend, **kwargs) as plane:
            ref = plane.publish(spec)
            assert ref.backend == backend
            got = attach(ref)
            for mine, theirs in zip(got.per_cpu, reference.per_cpu):
                assert np.array_equal(mine, theirs)
            detach_all()
