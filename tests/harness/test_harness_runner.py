"""Parallel experiment engine: serial/parallel parity, fallbacks."""

import math
import os

import pytest

from repro.errors import HarnessError
from repro.harness import (
    FaultPolicy,
    ResultCache,
    Task,
    Telemetry,
    content_key,
    run_tasks,
)


def square(x: float) -> float:
    return float(x * x)


def fail_below(x: float) -> float:
    if x < 0:
        raise ValueError(f"negative input {x}")
    return math.sqrt(x)


def make_tasks(values):
    return [Task(key=f"v{i}", fn=square, args=(v,)) for i, v in enumerate(values)]


def test_serial_and_pool_results_identical():
    values = [0.5, 1.5, 2.5, 3.5, 4.5]
    serial = run_tasks(make_tasks(values), jobs=1)
    pooled = run_tasks(make_tasks(values), jobs=3)
    assert [o.value for o in serial] == [o.value for o in pooled]
    assert [o.key for o in serial] == [o.key for o in pooled]
    assert all(o.ok for o in pooled)


def test_pool_runs_in_worker_processes():
    outcomes = run_tasks(make_tasks([1.0, 2.0, 3.0, 4.0]), jobs=2)
    assert all(o.worker is not None and o.worker != os.getpid() for o in outcomes)


def test_serial_runs_in_parent_process():
    outcomes = run_tasks(make_tasks([1.0]), jobs=1)
    assert outcomes[0].worker == os.getpid()


def test_duplicate_keys_rejected():
    tasks = [Task(key="same", fn=square, args=(1.0,)) for _ in range(2)]
    with pytest.raises(HarnessError):
        run_tasks(tasks)


def test_unpicklable_task_falls_back_to_serial():
    captured = []
    tasks = [
        Task(key="closure", fn=lambda: captured.append(1) or 7.0),
        Task(key="plain", fn=square, args=(2.0,)),
    ]
    telemetry = Telemetry()
    outcomes = run_tasks(tasks, jobs=4, telemetry=telemetry)
    assert [o.value for o in outcomes] == [7.0, 4.0]
    assert captured == [1]  # ran in this process, not a worker
    assert telemetry.counters["run/serial-fallback"] == 1


def test_failure_is_recorded_not_raised():
    tasks = [
        Task(key="bad", fn=fail_below, args=(-1.0,)),
        Task(key="good", fn=fail_below, args=(4.0,)),
    ]
    for jobs in (1, 2):
        outcomes = run_tasks(tasks, jobs=jobs)
        by_key = {o.key: o for o in outcomes}
        assert not by_key["bad"].ok
        assert by_key["bad"].failure.kind == "error"
        assert "negative input" in by_key["bad"].failure.error
        assert by_key["good"].ok and by_key["good"].value == 2.0


def test_bounded_retry_counts_attempts():
    telemetry = Telemetry()
    outcomes = run_tasks(
        [Task(key="bad", fn=fail_below, args=(-1.0,))],
        faults=FaultPolicy(max_attempts=3, backoff_s=0.0),
        telemetry=telemetry,
    )
    assert outcomes[0].attempts == 3
    assert telemetry.counters["task/retry"] == 2
    assert telemetry.counters["task/error"] == 3


def test_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    tasks = [Task(key="v", fn=square, args=(3.0,), cache_key=content_key(x=3.0))]
    cold = Telemetry()
    assert run_tasks(tasks, cache=cache, telemetry=cold)[0].cached is False
    assert cold.counters["cache/miss"] == 1
    warm = Telemetry()
    outcome = run_tasks(tasks, cache=cache, telemetry=warm)[0]
    assert outcome.cached is True and outcome.value == 9.0
    assert warm.counters["cache/hit"] == 1
    assert warm.counters["task/start"] == 0  # nothing recomputed


def test_failed_tasks_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    key = content_key(x=-1.0)
    tasks = [Task(key="bad", fn=fail_below, args=(-1.0,), cache_key=key)]
    assert not run_tasks(tasks, cache=cache)[0].ok
    assert key not in cache


def test_outcomes_preserve_task_order_under_pool():
    # Varying work sizes so completion order differs from submission order.
    values = [5.0, 0.1, 3.0, 0.2, 4.0, 0.3]
    outcomes = run_tasks(make_tasks(values), jobs=3)
    assert [o.value for o in outcomes] == [v * v for v in values]
