"""Serial-vs-parallel determinism and graceful degradation.

The harness's core guarantee: because each replica's perturbation is
fully determined by ``(seed, run_index)`` and workers add nothing,
``jobs=1`` and ``jobs=4`` produce bit-identical samples.  And because
replicas are redundant by design, a raising replica degrades the
experiment (fewer samples) instead of aborting it.
"""

import pytest

from repro.core.config import SimConfig
from repro.core.experiment import run_repeated
from repro.errors import AnalysisError
from repro.harness import FaultPolicy, ResultCache, Telemetry, content_key, read_trace
from repro.harness.tasks import characterize_replica, characterize_run_fn
from repro.rng import RngFactory

TINY = SimConfig(seed=7, refs_per_proc=8_000, warmup_fraction=0.5)


def test_specjbb_characterization_identical_serial_vs_parallel():
    fn = characterize_run_fn("specjbb", 2, TINY)
    serial = run_repeated(fn, n_runs=4, seed=TINY.seed, jobs=1)
    parallel = run_repeated(fn, n_runs=4, seed=TINY.seed, jobs=4)
    assert set(serial) == set(parallel)
    for name in serial:
        # bit-identical, not merely approximately equal
        assert serial[name].samples == parallel[name].samples
    assert serial["cpi"].std > 0.0  # replicas really were perturbed


def test_replica_results_do_not_depend_on_scheduling_order():
    fn = characterize_run_fn("specjbb", 2, TINY)
    a = run_repeated(fn, n_runs=3, seed=TINY.seed, jobs=3)
    b = run_repeated(fn, n_runs=3, seed=TINY.seed, jobs=2)
    assert {k: v.samples for k, v in a.items()} == {
        k: v.samples for k, v in b.items()
    }


def test_replica_is_deterministic_per_run_index():
    one = characterize_replica("specjbb", 2, TINY, RngFactory(TINY.seed, run_index=1))
    two = characterize_replica("specjbb", 2, TINY, RngFactory(TINY.seed, run_index=1))
    other = characterize_replica("specjbb", 2, TINY, RngFactory(TINY.seed, run_index=2))
    assert one == two
    assert one != other


def raising_replica(factory):
    if factory.run_index == 1:
        raise RuntimeError("injected replica failure")
    return {"metric": float(factory.run_index)}


def test_failed_replica_is_excluded_not_fatal(tmp_path):
    trace = tmp_path / "trace.jsonl"
    results = run_repeated(
        raising_replica,
        n_runs=4,
        seed=3,
        telemetry=Telemetry(trace),
        faults=FaultPolicy(),
    )
    # remaining replicas complete; the bad one is excluded
    assert results["metric"].samples == (0.0, 2.0, 3.0)
    events = [e["event"] for e in read_trace(trace)]
    assert "task/error" in events
    failed = [e for e in read_trace(trace) if e["event"] == "task/error"]
    assert "injected replica failure" in failed[0]["error"]


def test_all_replicas_failing_raises():
    def always_fail(factory):
        raise RuntimeError("nope")

    with pytest.raises(AnalysisError, match="all 3 runs failed"):
        run_repeated(always_fail, n_runs=3, faults=FaultPolicy())


def test_legacy_serial_path_still_propagates():
    with pytest.raises(RuntimeError):
        run_repeated(raising_replica, n_runs=4, seed=3)


def test_replica_caching_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    fn = characterize_run_fn("specjbb", 2, TINY)

    def key_fn(run_index: int) -> str:
        return content_key(kind="test-replica", sim=TINY, run_index=run_index)

    cold = Telemetry()
    first = run_repeated(
        fn, n_runs=3, seed=TINY.seed, cache=cache, cache_key_fn=key_fn, telemetry=cold
    )
    assert cold.counters["cache/miss"] == 3
    warm = Telemetry()
    second = run_repeated(
        fn, n_runs=3, seed=TINY.seed, cache=cache, cache_key_fn=key_fn, telemetry=warm
    )
    assert warm.counters["cache/hit"] == 3
    assert warm.counters["task/start"] == 0
    assert {k: v.samples for k, v in first.items()} == {
        k: v.samples for k, v in second.items()
    }
