"""Multi-config replay and miss-curve generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SimulationError
from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import CacheConfig
from repro.memsys.multisim import MultiConfigSimulator, simulate_miss_curve
from repro.units import kb


def mixed_trace(n: int) -> list[int]:
    refs = []
    for i in range(n):
        refs.append(encode_ref(0x100000 + (i % 64) * 32, IFETCH))
        refs.append(encode_ref(0x200000 + (i * 7 % 512) * 64, LOAD))
        if i % 5 == 0:
            refs.append(encode_ref(0x300000 + (i % 32) * 64, STORE))
    return refs


def test_kind_filtering():
    trace = mixed_trace(100)
    data_sim = MultiConfigSimulator([CacheConfig(size=kb(8), assoc=2, block=64)], "data")
    data_sim.replay(trace)
    instr_sim = MultiConfigSimulator(
        [CacheConfig(size=kb(8), assoc=2, block=64)], "instr"
    )
    instr_sim.replay(trace)
    n_data = sum(1 for r in trace if r & 3 != IFETCH)
    n_instr = sum(1 for r in trace if r & 3 == IFETCH)
    assert data_sim.caches[0].stats.accesses == n_data
    assert instr_sim.caches[0].stats.accesses == n_instr
    assert instr_sim.instructions == n_instr * 8


def test_invalid_kind_rejected():
    with pytest.raises(ConfigError):
        MultiConfigSimulator([CacheConfig(size=kb(8), assoc=2, block=64)], "both")
    with pytest.raises(ConfigError):
        MultiConfigSimulator([], "data")


def test_miss_curve_monotonic_in_size():
    """Bigger caches of the same shape never miss more (LRU inclusion)."""
    trace = mixed_trace(3000)
    points = simulate_miss_curve(
        trace, [kb(8), kb(16), kb(32), kb(64)], kind="data", assoc=4
    )
    mpkis = [p.mpki for p in points]
    for smaller, larger in zip(mpkis, mpkis[1:]):
        assert larger <= smaller + 1e-9


def test_warmup_reduces_reported_misses():
    trace = mixed_trace(2000)
    cold = simulate_miss_curve(trace, [kb(64)], kind="data", warmup_fraction=0.0)
    warm = simulate_miss_curve(trace, [kb(64)], kind="data", warmup_fraction=0.5)
    assert warm[0].mpki <= cold[0].mpki


def test_warmup_fraction_validation():
    with pytest.raises(ConfigError):
        simulate_miss_curve([], [kb(8)], kind="data", warmup_fraction=1.0)


def test_results_without_mark_warm_raises_when_warmup_requested():
    """A requested warmup window silently ignored is the bug this guards."""
    sim = MultiConfigSimulator(
        [CacheConfig(size=kb(8), assoc=2, block=64)], "data", warmup_fraction=0.5
    )
    sim.replay(mixed_trace(100))
    with pytest.raises(SimulationError):
        sim.results()
    sim.mark_warm()
    sim.replay(mixed_trace(100))
    assert sim.results()[0].accesses > 0


def test_results_without_warmup_needs_no_snapshot():
    sim = MultiConfigSimulator([CacheConfig(size=kb(8), assoc=2, block=64)], "data")
    sim.replay(mixed_trace(100))
    assert sim.results()[0].accesses > 0


def test_warmup_fraction_constructor_validation():
    with pytest.raises(ConfigError):
        MultiConfigSimulator(
            [CacheConfig(size=kb(8), assoc=2, block=64)], "data", warmup_fraction=1.0
        )


def test_point_metadata():
    trace = mixed_trace(500)
    points = simulate_miss_curve(trace, [kb(8), kb(32)], kind="instr")
    assert [p.size for p in points] == [kb(8), kb(32)]
    for p in points:
        assert 0 <= p.misses <= p.accesses
        assert p.miss_ratio <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=511), min_size=16, max_size=400)
)
def test_inclusion_property_random_traces(blocks):
    """Strict LRU inclusion: same sets, growing associativity.

    (Growing the number of *sets* does not guarantee inclusion for
    set-associative LRU, so the strict property is asserted along the
    associativity axis, where it provably holds.)
    """
    trace = [encode_ref(b * 64, LOAD) for b in blocks]
    sets = 16
    sims = [
        MultiConfigSimulator(
            [CacheConfig(size=sets * assoc * 64, assoc=assoc, block=64)], "data"
        )
        for assoc in (1, 2, 4)
    ]
    for sim in sims:
        sim.replay(trace)
    misses = [sim.caches[0].stats.misses for sim in sims]
    assert misses[0] >= misses[1] >= misses[2]
