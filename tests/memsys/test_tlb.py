"""TLB model and the ISM page-size effect."""

import pytest

from repro.errors import ConfigError
from repro.memsys.tlb import Tlb
from repro.osmodel.ism import IsmSetting, tlb_for
from repro.units import kb, mb


def test_reach():
    assert Tlb(entries=64, page_size=kb(8)).reach == kb(512)
    assert Tlb(entries=64, page_size=mb(4)).reach == mb(256)


def test_hit_miss():
    tlb = Tlb(entries=2, page_size=kb(8))
    assert tlb.access(0) is False
    assert tlb.access(100) is True  # same page
    assert tlb.access(kb(8)) is False
    assert tlb.miss_ratio == pytest.approx(2 / 3)


def test_lru_replacement():
    tlb = Tlb(entries=2, page_size=kb(8))
    tlb.access(0 * kb(8))
    tlb.access(1 * kb(8))
    tlb.access(0 * kb(8))  # refresh page 0
    tlb.access(2 * kb(8))  # evicts page 1
    assert tlb.access(0 * kb(8)) is True
    assert tlb.access(1 * kb(8)) is False


def test_mpki():
    tlb = Tlb(entries=4)
    tlb.access(0)
    tlb.access(kb(8))
    assert tlb.mpki(1000) == pytest.approx(2.0)
    assert tlb.mpki(0) == 0.0


def test_validation():
    with pytest.raises(ConfigError):
        Tlb(entries=0)


def test_ism_reduces_misses_on_large_heap():
    """The paper's >10% ISM win comes from TLB reach vs the heap."""
    span = mb(64)
    step = kb(16)
    addrs = [i * step for i in range(span // step)] * 2
    small_pages = tlb_for(IsmSetting(enabled=False))
    large_pages = tlb_for(IsmSetting(enabled=True))
    for addr in addrs:
        small_pages.access(addr)
        large_pages.access(addr)
    assert large_pages.misses < small_pages.misses / 10


def test_ism_describe():
    assert "4096 KB" in IsmSetting(enabled=True).describe()
    assert "8 KB" in IsmSetting(enabled=False).describe()
