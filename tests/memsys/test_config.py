"""Machine/cache/simulation config validation and presets."""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.memsys.config import (
    E6000,
    CacheConfig,
    MachineConfig,
    cmp_machine,
    e6000_machine,
)
from repro.units import kb, mb


def test_e6000_preset_matches_paper():
    assert E6000.n_procs == 16
    assert E6000.l2.size == mb(1)
    assert E6000.l2.assoc == 4
    assert E6000.l2.block == 64
    assert E6000.procs_per_l2 == 1
    assert E6000.clock_hz == 248_000_000
    assert E6000.latencies.c2c_penalty_ratio == pytest.approx(1.4, abs=0.01)


def test_cache_geometry():
    cfg = CacheConfig(size=mb(1), assoc=4, block=64)
    assert cfg.n_sets == 4096
    assert cfg.block_bits == 6
    assert cfg.set_mask == 4095
    assert cfg.scaled(mb(2)).n_sets == 8192


def test_machine_sharing_validation():
    with pytest.raises(ConfigError):
        MachineConfig(n_procs=8, procs_per_l2=3)
    with pytest.raises(ConfigError):
        MachineConfig(n_procs=0)
    m = cmp_machine(8, 4)
    assert m.n_l2_caches == 2


def test_with_procs_and_shared_l2():
    m = e6000_machine(8).with_procs(4).with_shared_l2(2)
    assert m.n_procs == 4
    assert m.n_l2_caches == 2


def test_describe_strings():
    assert "private L2s" in e6000_machine(2).describe()
    assert "per shared L2" in cmp_machine(8, 8).describe()
    assert "64 KB" in CacheConfig(size=kb(64), assoc=4, block=64).describe()


def test_sim_config_validation():
    with pytest.raises(ConfigError):
        SimConfig(refs_per_proc=0)
    with pytest.raises(ConfigError):
        SimConfig(warmup_fraction=1.0)
    with pytest.raises(ConfigError):
        SimConfig(interleave_quantum=0)
    with pytest.raises(ConfigError):
        SimConfig(n_runs=0)


def test_sim_config_builders():
    sim = SimConfig().with_refs(123).with_runs(3)
    assert sim.refs_per_proc == 123
    assert sim.n_runs == 3
