"""StoreBuffer vs. the history-rescanning oracle, under random programs.

Hypothesis issues random store programs — nondecreasing issue times,
arbitrary drain latencies, every buffer depth — and the production
FIFO-of-completion-times model must agree with
:class:`repro.obs.diffcheck.OracleStoreBuffer` (which rescans its full
drain history on every issue) on the stall of *every individual store*
and on the final counters.  Model invariants that hold regardless of
the oracle are pinned separately.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys.storebuffer import StoreBuffer
from repro.obs.diffcheck import OracleStoreBuffer, diff_store_buffer

import pytest

#: (gap to previous issue, drain latency) pairs; gaps of zero are
#: common in real streams (several stores in one cycle).
PROGRAMS = st.lists(
    st.tuples(st.integers(0, 12), st.integers(1, 40)),
    min_size=1,
    max_size=300,
)


def _events(program: list[tuple[int, int]]) -> list[tuple[int, int]]:
    now = 0
    events = []
    for gap, latency in program:
        now += gap
        events.append((now, latency))
    return events


@settings(max_examples=120, deadline=None)
@given(program=PROGRAMS, depth=st.integers(1, 10))
def test_store_buffer_matches_oracle(program, depth):
    report = diff_store_buffer(_events(program), depth=depth)
    assert report.ok, report.render()


@settings(max_examples=80, deadline=None)
@given(program=PROGRAMS, depth=st.integers(1, 10))
def test_store_buffer_invariants(program, depth):
    sb = StoreBuffer(depth=depth)
    for now, latency in _events(program):
        stall = sb.issue(now, latency)
        assert stall >= 0
        assert sb.occupancy <= depth  # a stalled store waits for room
    assert sb.stalled_stores <= sb.stores
    assert (sb.stall_cycles == 0) == (sb.stalled_stores == 0)


def test_oracle_rejects_bad_config():
    with pytest.raises(ConfigError):
        OracleStoreBuffer(depth=0)
    with pytest.raises(ConfigError):
        OracleStoreBuffer(depth=2).issue(now=0, drain_latency=0)


def test_divergence_reports_first_disagreeing_issue():
    """A deliberately broken replay produces a debuggable report."""
    events = [(0, 5), (0, 5), (1, 5)]
    report = diff_store_buffer(events, depth=1)
    assert report.ok  # sanity: the real pair agrees
    # Diverge by hand: replay different event lists through each side.
    model = StoreBuffer(depth=1)
    oracle = OracleStoreBuffer(depth=1)
    model.issue(0, 5)
    oracle.issue(0, 50)
    assert model.issue(1, 5) != oracle.issue(1, 5)
