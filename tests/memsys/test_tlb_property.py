"""Tlb vs. the list-based LRU oracle, under random address streams.

The production TLB keeps residency as an insertion-ordered dict and
refreshes LRU position by delete + reinsert; the oracle in
:mod:`repro.obs.diffcheck` keeps an explicit list and divides instead
of shifting.  Hypothesis drives both with random byte-address streams
across entry counts and (power-of-two) page sizes and compares every
per-access hit/miss decision plus the final counters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys.tlb import Tlb
from repro.obs.diffcheck import OracleTlb, diff_tlb

import pytest

ADDRS = st.lists(st.integers(0, 2**24 - 1), min_size=1, max_size=400)


@settings(max_examples=120, deadline=None)
@given(
    addrs=ADDRS,
    entries=st.integers(1, 16),
    page_bits=st.integers(6, 14),
)
def test_tlb_matches_oracle(addrs, entries, page_bits):
    report = diff_tlb(addrs, entries=entries, page_size=1 << page_bits)
    assert report.ok, report.render()


@settings(max_examples=80, deadline=None)
@given(
    addrs=ADDRS,
    entries=st.integers(1, 16),
    page_bits=st.integers(6, 14),
)
def test_tlb_invariants(addrs, entries, page_bits):
    page_size = 1 << page_bits
    tlb = Tlb(entries=entries, page_size=page_size)
    pages_touched: set[int] = set()
    for addr in addrs:
        page = addr >> page_bits
        hit = tlb.access(addr)
        if page not in pages_touched:
            assert not hit  # first touch of a page can never hit
        pages_touched.add(page)
        assert len(tlb._pages) <= entries  # residency bounded by capacity
    assert tlb.misses <= tlb.accesses == len(addrs)
    assert tlb.misses >= len(pages_touched) and tlb.misses >= 1
    assert tlb.reach == entries * page_size


@settings(max_examples=40, deadline=None)
@given(addrs=ADDRS, page_bits=st.integers(6, 14))
def test_tlb_with_enough_entries_misses_once_per_page(addrs, page_bits):
    """With capacity for every page, only compulsory misses remain."""
    pages = {addr >> page_bits for addr in addrs}
    tlb = Tlb(entries=len(pages), page_size=1 << page_bits)
    for addr in addrs:
        tlb.access(addr)
    assert tlb.misses == len(pages)


def test_oracle_rejects_bad_config():
    with pytest.raises(ConfigError):
        OracleTlb(entries=0, page_size=4096)
    with pytest.raises(ConfigError):
        OracleTlb(entries=4, page_size=0)
