"""Next-line prefetcher."""

import pytest

from repro.errors import ConfigError
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import CacheConfig
from repro.memsys.prefetch import NextLinePrefetcher


def make_prefetcher(degree=1, sets=64, assoc=4) -> NextLinePrefetcher:
    cache = SetAssociativeCache(
        CacheConfig(size=sets * assoc * 64, assoc=assoc, block=64)
    )
    return NextLinePrefetcher(cache, degree=degree)


def test_sequential_stream_mostly_hits():
    pf = make_prefetcher()
    misses = sum(0 if pf.access(b) else 1 for b in range(100))
    # Only the first access misses; the tagged scheme stays ahead.
    assert misses == 1
    assert pf.stats.prefetch_hits >= 98
    assert pf.stats.accuracy > 0.9


def test_random_stream_gains_little():
    import random

    random.seed(5)
    pf = make_prefetcher()
    blocks = [random.randrange(0, 10_000) for _ in range(400)]
    for b in blocks:
        pf.access(b)
    assert pf.stats.accuracy < 0.2


def test_degree_two_runs_further_ahead():
    shallow = make_prefetcher(degree=1)
    deep = make_prefetcher(degree=2)
    # Strided pattern skipping one block defeats degree-1.
    for b in range(0, 200, 2):
        shallow.access(b)
        deep.access(b)
    assert deep.stats.demand_misses < shallow.stats.demand_misses


def test_prefetch_does_not_count_as_demand():
    pf = make_prefetcher()
    pf.access(0)
    assert pf.stats.demand_accesses == 1
    assert pf.cache.contains(1)  # the next line was prefetched in


def test_validation():
    cache = SetAssociativeCache(CacheConfig(size=4096, assoc=2, block=64))
    with pytest.raises(ConfigError):
        NextLinePrefetcher(cache, degree=0)


def test_miss_ratio_property():
    pf = make_prefetcher()
    assert pf.stats.miss_ratio == 0.0
    pf.access(10)
    assert pf.stats.miss_ratio == 1.0
