"""Latency book invariants."""

import pytest

from repro.errors import ConfigError
from repro.memsys.latency import E6000_LATENCIES, LatencyBook, numa


def test_e6000_c2c_penalty():
    """The paper: a C2C transfer is ~40% slower than memory on the E6000."""
    assert E6000_LATENCIES.c2c_penalty_ratio == pytest.approx(1.4, abs=0.01)


def test_numa_book():
    book = numa(2.5)
    assert book.cache_to_cache == pytest.approx(book.memory * 2.5, abs=1)


def test_with_c2c_ratio():
    book = E6000_LATENCIES.with_c2c_ratio(3.0)
    assert book.c2c_penalty_ratio == pytest.approx(3.0, abs=0.01)
    with pytest.raises(ConfigError):
        E6000_LATENCIES.with_c2c_ratio(0)


def test_ordering_validation():
    with pytest.raises(ConfigError):
        LatencyBook(l1_hit=5, l2_hit=2, memory=100)
    with pytest.raises(ConfigError):
        LatencyBook(memory=10, l2_hit=20)
    with pytest.raises(ConfigError):
        LatencyBook(cache_to_cache=0)
