"""Compiled coherence kernel vs. the scalar hierarchy (bit-identical).

The parity contract is *full machine state*, not just headline
counters: per-CPU :class:`ProcessorStats`, bus and per-cache side
counters, the per-line C2C footprint, the holders mirror, the miss
classifiers' history sets, the L1-internal counters, and every cache's
contents **in LRU order** (dict equality ignores insertion order, so
the comparisons use ``list(d.items())`` per set).

Adversarial sharing patterns target the protocol paths a uniform
random trace rarely stresses: migratory lines (M→c2c→upgrade cycles),
producer-consumer (stable dirty supplier), false sharing (distinct
words, one block) and all-CPUs-one-block contention.

The seeded-defect tests prove the gates fail loudly: a kernel bug in
MSI copyback crediting trips the InvariantChecker conservation
identity, and a kernel bug in LRU maintenance diverges from the scalar
replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvariantViolation
from repro.memsys import fastpath, fastpath_coherence
from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import CacheConfig, MachineConfig
from repro.memsys.hierarchy import MemoryHierarchy

needs_kernel = pytest.mark.skipif(
    not fastpath_coherence.kernel_available(),
    reason="no C compiler available to build the coherence kernel",
)

PROTOCOLS = ("mosi", "msi", "mesi")


def small_machine(n_procs: int = 4, procs_per_l2: int = 1) -> MachineConfig:
    """Tiny caches so short traces still evict, share and write back."""
    return MachineConfig(
        n_procs=n_procs,
        l1i=CacheConfig(size=1024, assoc=2, block=32, name="L1I"),
        l1d=CacheConfig(size=1024, assoc=2, block=32, name="L1D"),
        l2=CacheConfig(size=4096, assoc=4, block=64, name="L2"),
        procs_per_l2=procs_per_l2,
    )


def full_state(h: MemoryHierarchy):
    """Everything the scalar replay leaves behind, LRU order included."""
    return (
        [vars(s) for s in h.proc_stats],
        vars(h.bus.stats),
        [vars(s) for s in h.bus.cache_stats],
        h.bus._holders,
        [(c._ever_held, c._invalidated) for c in h.bus.classifiers],
        [
            [list(line_set.items()) for line_set in cache._sets]
            for cache in list(h.bus.caches) + h._l1i + h._l1d
        ],
        [(vars(i.stats), vars(d.stats)) for i, d in zip(h._l1i, h._l1d)],
    )


def replay_both(machine, traces, protocol="mosi", warmup_fraction=0.0):
    """Scalar and kernel replays of the same traces; returns both."""
    scalar = MemoryHierarchy(machine, protocol=protocol)
    scalar.run_trace(
        traces, quantum=64, warmup_fraction=warmup_fraction, fastpath=False
    )
    fast = MemoryHierarchy(machine, protocol=protocol)
    used = fastpath_coherence.run_trace_kernel(fast, traces, 64, warmup_fraction)
    assert used, "kernel unexpectedly declined a cold replay"
    return scalar, fast


# -- adversarial sharing patterns ------------------------------------------


def migratory_traces(n_procs: int, n_blocks: int = 24, rounds: int = 12):
    """Every CPU read-modify-writes every block, in phase-shifted order."""
    out = []
    for cpu in range(n_procs):
        refs = []
        for r in range(rounds):
            for i in range(n_blocks):
                addr = ((i + cpu + r) % n_blocks) * 64
                refs.append(encode_ref(addr, LOAD))
                refs.append(encode_ref(addr, STORE))
        out.append(refs)
    return out


def producer_consumer_traces(n_procs: int, n_blocks: int = 16, rounds: int = 30):
    """CPU 0 writes a buffer ring; everyone else polls it."""
    out = []
    for cpu in range(n_procs):
        refs = []
        for r in range(rounds):
            for i in range(n_blocks):
                addr = i * 64
                kind = STORE if cpu == 0 else LOAD
                refs.append(encode_ref(addr, kind))
        out.append(refs)
    return out


def false_sharing_traces(n_procs: int, rounds: int = 150):
    """Each CPU stores its own word of the same 64-byte line."""
    return [
        [encode_ref(cpu * 8, STORE) for _ in range(rounds)]
        for cpu in range(n_procs)
    ]


def one_block_traces(n_procs: int, rounds: int = 150):
    """All CPUs load and store the same block."""
    return [
        [
            encode_ref(0, LOAD if (cpu + r) % 2 else STORE)
            for r in range(rounds)
        ]
        for cpu in range(n_procs)
    ]


PATTERNS = [
    ("migratory", migratory_traces),
    ("producer-consumer", producer_consumer_traces),
    ("false-sharing", false_sharing_traces),
    ("one-block", one_block_traces),
]


@needs_kernel
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("pattern", [name for name, _ in PATTERNS])
def test_adversarial_sharing_parity(protocol, pattern):
    make = dict(PATTERNS)[pattern]
    traces = make(4)
    for procs_per_l2 in (1, 2):
        machine = small_machine(4, procs_per_l2)
        scalar, fast = replay_both(machine, traces, protocol=protocol)
        assert full_state(fast) == full_state(scalar)


@needs_kernel
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_warmup_discard_parity(protocol):
    traces = migratory_traces(4)
    scalar, fast = replay_both(
        small_machine(4), traces, protocol=protocol, warmup_fraction=0.5
    )
    assert full_state(fast) == full_state(scalar)


@needs_kernel
def test_no_l1_parity():
    traces = producer_consumer_traces(4)
    machine = small_machine(4)
    scalar = MemoryHierarchy(machine, include_l1=False)
    scalar.run_trace(traces, fastpath=False)
    fast = MemoryHierarchy(machine, include_l1=False)
    assert fastpath_coherence.run_trace_kernel(fast, traces, 64, 0.0)
    assert full_state(fast) == full_state(scalar)


@needs_kernel
def test_untracked_lines_parity():
    traces = migratory_traces(4)
    machine = small_machine(4)
    scalar = MemoryHierarchy(machine, track_lines=False)
    scalar.run_trace(traces, fastpath=False)
    fast = MemoryHierarchy(machine, track_lines=False)
    assert fastpath_coherence.run_trace_kernel(fast, traces, 64, 0.0)
    assert full_state(fast) == full_state(scalar)
    assert fast.bus.stats.c2c_by_line == {}
    assert fast.bus.stats.touched_lines == set()


# -- hypothesis differential ------------------------------------------------


def random_traces(seed: int, n_procs: int, n: int, n_blocks: int):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_procs):
        kinds = rng.choice([IFETCH, LOAD, STORE], size=n, p=[0.3, 0.45, 0.25])
        addrs = rng.integers(0, n_blocks, size=n) * 32
        out.append(
            [encode_ref(int(a), int(k)) for a, k in zip(addrs, kinds)]
        )
    return out


@needs_kernel
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    protocol=st.sampled_from(PROTOCOLS),
    procs_per_l2=st.sampled_from([1, 2]),
    warmup=st.sampled_from([0.0, 0.5]),
)
def test_random_traffic_parity(seed, protocol, procs_per_l2, warmup):
    traces = random_traces(seed, 4, 1500, 96)
    machine = small_machine(4, procs_per_l2)
    scalar, fast = replay_both(
        machine, traces, protocol=protocol, warmup_fraction=warmup
    )
    assert full_state(fast) == full_state(scalar)


@needs_kernel
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_invariants_hold_after_kernel_replay(protocol):
    fast = MemoryHierarchy(small_machine(4), protocol=protocol)
    assert fastpath_coherence.run_trace_kernel(
        fast, migratory_traces(4), 64, 0.0
    )
    fast.check_invariants()
    fast.bus.check_invariants()


@needs_kernel
def test_kernel_state_carries_into_scalar_replay():
    """A kernel-warmed hierarchy must continue exactly like a scalar one."""
    first = migratory_traces(4)
    second = producer_consumer_traces(4)
    scalar = MemoryHierarchy(small_machine(4))
    scalar.run_trace(first, fastpath=False)
    scalar.run_trace(second, fastpath=False)
    mixed = MemoryHierarchy(small_machine(4))
    assert fastpath_coherence.run_trace_kernel(mixed, first, 64, 0.0)
    # Warm machine: the kernel declines, the scalar loop continues on
    # the imported state.
    mixed.run_trace(second, fastpath=True)
    assert full_state(mixed) == full_state(scalar)


# -- seeded defects: the gates fail loudly ----------------------------------


@needs_kernel
def test_seeded_msi_copyback_defect_trips_invariant_checker():
    """Re-introducing the MSI writeback-credit bug must fail the checker."""
    traces = producer_consumer_traces(4)  # stable dirty supplier: many copybacks
    fastpath_coherence.set_kernel_defect(1)
    try:
        fast = MemoryHierarchy(small_machine(4), protocol="msi")
        assert fastpath_coherence.run_trace_kernel(fast, traces, 64, 0.0)
    finally:
        fastpath_coherence.set_kernel_defect(0)
    assert fast.bus.stats.c2c_transfers > 0, "pattern produced no copybacks"
    with pytest.raises(InvariantViolation, match="writebacks"):
        fast.check_invariants()


@needs_kernel
def test_seeded_lru_defect_diverges_from_scalar():
    """Skipping the LRU refresh on L2 read hits must break parity."""
    traces = random_traces(99, 4, 1500, 96)
    machine = small_machine(4)
    scalar = MemoryHierarchy(machine)
    scalar.run_trace(traces, fastpath=False)
    fastpath_coherence.set_kernel_defect(2)
    try:
        fast = MemoryHierarchy(machine)
        assert fastpath_coherence.run_trace_kernel(fast, traces, 64, 0.0)
    finally:
        fastpath_coherence.set_kernel_defect(0)
    assert full_state(fast) != full_state(scalar)


# -- routing and escape hatches ---------------------------------------------


def test_fastpath_false_never_calls_kernel(monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("kernel called despite fastpath=False")

    monkeypatch.setattr(fastpath_coherence, "run_trace_kernel", boom)
    h = MemoryHierarchy(small_machine(2))
    h.run_trace(one_block_traces(2), fastpath=False)
    assert h.bus.stats.total_misses > 0


def test_env_escape_hatch_disables_kernel(monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("kernel called despite JMMW_FASTPATH=0")

    monkeypatch.setattr(fastpath_coherence, "run_trace_kernel", boom)
    monkeypatch.setattr(fastpath, "_forced", None)
    monkeypatch.setenv(fastpath.FASTPATH_ENV, "0")
    h = MemoryHierarchy(small_machine(2))
    h.run_trace(one_block_traces(2))
    assert h.bus.stats.total_misses > 0


def test_invariant_checker_forces_scalar_path(monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("kernel called with an invariant checker attached")

    monkeypatch.setattr(fastpath_coherence, "run_trace_kernel", boom)
    h = MemoryHierarchy(small_machine(2), check_invariants=True, check_sample=64)
    h.run_trace(one_block_traces(2), fastpath=True)
    assert h.bus.stats.total_misses > 0


def test_missing_compiler_falls_back_to_scalar(monkeypatch):
    monkeypatch.setattr(fastpath_coherence, "_load_library", lambda: None)
    machine = small_machine(2)
    traces = one_block_traces(2)
    assert not fastpath_coherence.run_trace_kernel(
        MemoryHierarchy(machine), traces, 64, 0.0
    )
    h = MemoryHierarchy(machine)
    h.run_trace(traces, fastpath=True)  # silently scalar
    ref = MemoryHierarchy(machine)
    ref.run_trace(traces, fastpath=False)
    assert full_state(h) == full_state(ref)


@needs_kernel
def test_warm_hierarchy_declines_kernel():
    h = MemoryHierarchy(small_machine(2))
    traces = one_block_traces(2)
    h.run_trace(traces, fastpath=False)
    assert not fastpath_coherence.run_trace_kernel(h, traces, 64, 0.0)


@needs_kernel
def test_too_many_l2_caches_declines_kernel():
    machine = MachineConfig(
        n_procs=65,
        l1i=CacheConfig(size=1024, assoc=2, block=32, name="L1I"),
        l1d=CacheConfig(size=1024, assoc=2, block=32, name="L1D"),
        l2=CacheConfig(size=4096, assoc=4, block=64, name="L2"),
    )
    h = MemoryHierarchy(machine)
    assert not fastpath_coherence.run_trace_kernel(
        h, [[] for _ in range(65)], 64, 0.0
    )
