"""LRU stack-distance profiler vs. brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.memsys.stackdist import StackDistanceProfiler


def brute_force_distances(blocks):
    """Reference stack distances via an explicit LRU stack."""
    stack = []
    out = []
    for block in blocks:
        if block in stack:
            depth = stack.index(block)
            out.append(depth)
            stack.remove(block)
        else:
            out.append(StackDistanceProfiler.COLD)
        stack.insert(0, block)
    return out


def test_simple_sequence():
    profiler = StackDistanceProfiler()
    profiler.feed([1, 2, 1, 3, 2, 1])
    hist = profiler.histogram()
    # 1,2,3 are cold; second 1 has distance 1; 2 distance 2; 1 distance 2.
    assert hist[StackDistanceProfiler.COLD] == 3
    assert hist[1] == 1
    assert hist[2] == 2


def test_repeated_block_distance_zero():
    profiler = StackDistanceProfiler()
    profiler.feed([9, 9, 9])
    hist = profiler.histogram()
    assert hist[0] == 2


def test_misses_at_capacities():
    profiler = StackDistanceProfiler()
    # Cyclic access over 3 blocks: capacity 3 holds them, 2 does not.
    profiler.feed([1, 2, 3] * 10)
    misses = profiler.misses_at([2, 3, 4])
    assert misses[3] == 3  # only compulsory misses
    assert misses[4] == 3
    assert misses[2] == 30  # thrash


def test_misses_at_rejects_nonpositive():
    profiler = StackDistanceProfiler()
    profiler.feed([1])
    with pytest.raises(AnalysisError):
        profiler.misses_at([0])


def test_working_set_size():
    profiler = StackDistanceProfiler()
    profiler.feed([1, 2, 3] * 20)
    assert profiler.working_set_size(0.95) == 3


def test_working_set_validation():
    profiler = StackDistanceProfiler()
    with pytest.raises(AnalysisError):
        profiler.working_set_size(0.0)


def test_feed_after_histogram_not_ignored():
    """The memo must be invalidated by feed(), not just populated once."""
    profiler = StackDistanceProfiler()
    profiler.feed([1, 2])
    assert profiler.histogram() == {StackDistanceProfiler.COLD: 2}
    profiler.feed([1])  # distance 2 past block 2
    assert profiler.histogram() == {StackDistanceProfiler.COLD: 2, 1: 1}


def test_histogram_returns_a_copy():
    profiler = StackDistanceProfiler()
    profiler.feed([5, 5])
    hist = profiler.histogram()
    hist[0] = 999
    assert profiler.histogram()[0] == 1


def test_histogram_accepts_numpy_arrays():
    import numpy as np

    profiler = StackDistanceProfiler()
    profiler.feed(np.asarray([1, 2, 1], dtype=np.int64))
    assert profiler.histogram()[1] == 1


def test_empty_profile():
    profiler = StackDistanceProfiler()
    assert profiler.histogram() == {}
    assert profiler.working_set_size() == 0


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
def test_matches_brute_force(blocks):
    profiler = StackDistanceProfiler()
    profiler.feed(blocks)
    hist = profiler.histogram()
    reference = brute_force_distances(blocks)
    expected: dict[int, int] = {}
    for d in reference:
        expected[d] = expected.get(d, 0) + 1
    assert hist == expected


@settings(max_examples=30, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=150))
def test_miss_counts_monotonic_in_capacity(blocks):
    profiler = StackDistanceProfiler()
    profiler.feed(blocks)
    misses = profiler.misses_at([1, 2, 4, 8, 16])
    counts = [misses[c] for c in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    # Cold misses bound from below: distinct blocks always miss once.
    assert counts[-1] >= len(set(blocks)) - 0  # == distinct when cap large
