"""Property-based tests on the full hierarchy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import cmp_machine, e6000_machine
from repro.memsys.hierarchy import MemoryHierarchy

ref_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),  # cpu
    st.integers(min_value=0, max_value=255),  # 64 B block index
    st.sampled_from([IFETCH, LOAD, STORE]),
)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(ref_strategy, min_size=1, max_size=300))
def test_invariants_and_accounting(ops):
    """Coherence invariants + counter identities under random traffic."""
    h = MemoryHierarchy(e6000_machine(4))
    for cpu, block, kind in ops:
        h.access(cpu, encode_ref(block * 64, kind))
    h.bus.check_invariants()
    for stats in h.proc_stats:
        assert stats.c2c_fills + stats.mem_fills == stats.l2_misses
        assert stats.l2_instr_misses + stats.l2_data_misses == stats.l2_misses
        assert stats.l1i_misses <= stats.l1i_accesses
        assert stats.l1d_misses <= stats.l1d_accesses
        assert stats.c2c_load_fills <= stats.c2c_fills
        assert stats.mem_load_fills <= stats.mem_fills
    # Bus totals equal the per-processor sums.
    assert h.bus.stats.total_misses == h.total_l2_misses
    assert h.bus.stats.c2c_transfers == h.total_c2c_fills


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(ref_strategy, min_size=1, max_size=200))
def test_shared_l2_never_has_more_misses_than_private_on_shared_data(ops):
    """Fully shared L2 cannot produce coherence misses at all."""
    shared = MemoryHierarchy(cmp_machine(4, 4))
    for cpu, block, kind in ops:
        shared.access(cpu, encode_ref(block * 64, kind))
    assert shared.total_c2c_fills == 0
    shared.bus.check_invariants()


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(ref_strategy, min_size=1, max_size=200))
def test_msi_and_mosi_agree_on_miss_or_hit_sequence_totals(ops):
    """Protocol choice changes fill *sources*, never demand accounting."""
    a = MemoryHierarchy(e6000_machine(4), protocol="mosi")
    b = MemoryHierarchy(e6000_machine(4), protocol="msi")
    for cpu, block, kind in ops:
        a.access(cpu, encode_ref(block * 64, kind))
        b.access(cpu, encode_ref(block * 64, kind))
    for sa, sb in zip(a.proc_stats, b.proc_stats):
        assert sa.loads == sb.loads
        assert sa.stores == sb.stores
        # Cache contents evolve identically (same insertions/evictions),
        # so misses match too; only c2c vs mem fills differ.
        assert sa.l2_misses == sb.l2_misses
        assert sa.c2c_fills + sa.mem_fills == sb.c2c_fills + sb.mem_fills
