"""Store-buffer occupancy model."""

import pytest

from repro.errors import ConfigError
from repro.memsys.storebuffer import StoreBuffer


def test_empty_buffer_no_stall():
    sb = StoreBuffer(depth=4)
    assert sb.issue(now=0, drain_latency=10) == 0
    assert sb.occupancy == 1


def test_full_buffer_stalls_until_head_drains():
    sb = StoreBuffer(depth=2)
    sb.issue(now=0, drain_latency=10)  # drains at 10
    sb.issue(now=0, drain_latency=10)  # drains at 20
    stall = sb.issue(now=1, drain_latency=10)
    assert stall == 9  # wait for the head to finish at t=10
    assert sb.stalled_stores == 1
    assert sb.stall_cycles == 9


def test_spaced_stores_never_stall():
    sb = StoreBuffer(depth=2)
    total = 0
    for i in range(20):
        total += sb.issue(now=i * 100, drain_latency=10)
    assert total == 0


def test_in_order_drain():
    sb = StoreBuffer(depth=8)
    sb.issue(now=0, drain_latency=10)
    sb.issue(now=0, drain_latency=1)
    # Second store cannot finish before the first (FIFO drain).
    assert sb._last_drain_done == 11


def test_stall_fraction():
    sb = StoreBuffer(depth=1)
    sb.issue(now=0, drain_latency=100)
    sb.issue(now=0, drain_latency=100)
    assert sb.stall_fraction(total_cycles=1000) == pytest.approx(0.1)
    assert StoreBuffer().stall_fraction(0) == 0.0


def test_validation():
    with pytest.raises(ConfigError):
        StoreBuffer(depth=0)
    with pytest.raises(ConfigError):
        StoreBuffer().issue(now=0, drain_latency=0)


def test_burst_then_idle_recovers():
    sb = StoreBuffer(depth=2)
    for _ in range(4):
        sb.issue(now=0, drain_latency=10)
    # After the burst drains, a late store sees an empty buffer.
    assert sb.issue(now=10_000, drain_latency=10) == 0
    assert sb.occupancy == 1
