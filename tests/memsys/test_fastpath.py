"""Vectorized replay kernels vs. the scalar references (bit-identical)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys import fastpath
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, LOAD, STORE, encode_ref
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import CacheConfig
from repro.memsys.multisim import simulate_miss_curve
from repro.memsys.stackdist import StackDistanceProfiler
from repro.units import kb


def random_trace(rng, n: int, n_blocks: int = 512) -> list[int]:
    """Encoded references mixing all three kinds over a small block pool."""
    kinds = rng.choice([IFETCH, LOAD, STORE], size=n, p=[0.4, 0.45, 0.15])
    addrs = rng.integers(0, n_blocks, size=n) * 64 + rng.integers(0, 16, size=n) * 4
    return [encode_ref(int(a), int(k)) for a, k in zip(addrs, kinds)]


# -- trace classification -------------------------------------------------


def test_classify_trace_splits_and_counts():
    trace = [
        encode_ref(0x1000, IFETCH),
        encode_ref(0x2000, LOAD),
        encode_ref(0x3000, STORE),
        encode_ref(0x1040, IFETCH),
    ]
    instr = fastpath.classify_trace(trace, "instr")
    data = fastpath.classify_trace(trace, "data")
    assert instr.addrs.tolist() == [0x1000, 0x1040]
    assert instr.positions.tolist() == [0, 3]
    assert data.addrs.tolist() == [0x2000, 0x3000]
    assert instr.n_ifetch == 2
    assert instr.instructions == 2 * INSTRUCTIONS_PER_IFETCH
    # trace[:2] holds one ifetch and one data ref.
    assert instr.instructions_before(2) == INSTRUCTIONS_PER_IFETCH
    assert instr.class_count_before(2) == 1
    assert data.class_count_before(2) == 1
    assert instr.instructions_before(0) == 0


def test_classify_trace_rejects_bad_kind():
    with pytest.raises(ConfigError):
        fastpath.classify_trace([], "both")


def test_as_ref_array_rejects_non_1d():
    with pytest.raises(ConfigError):
        fastpath.as_ref_array([[1, 2], [3, 4]])


def test_block_stream_matches_listcomp():
    rng = np.random.default_rng(11)
    trace = random_trace(rng, 2000)
    got = fastpath.block_stream(trace, kind="data")
    want = [r >> 2 >> 6 for r in trace if r & 3 != IFETCH]
    assert got.tolist() == want
    got_i = fastpath.block_stream(trace, kind="instr")
    want_i = [r >> 2 >> 6 for r in trace if r & 3 == IFETCH]
    assert got_i.tolist() == want_i


# -- kernel 1: exact set-associative LRU ----------------------------------


@pytest.mark.parametrize("assoc", [1, 2, 4, 8])
@pytest.mark.parametrize("n_sets", [4, 16])
def test_lru_miss_mask_matches_scalar_cache(assoc, n_sets):
    rng = np.random.default_rng(assoc * 100 + n_sets)
    blocks = rng.integers(0, 6 * n_sets, size=3000).astype(np.uint64)
    cfg = CacheConfig(size=n_sets * assoc * 64, assoc=assoc, block=64)
    cache = SetAssociativeCache(cfg)
    expected = [not cache.access(int(b), False) for b in blocks]
    got = fastpath.lru_miss_mask(blocks, cfg.set_mask, assoc)
    assert got.tolist() == expected


def test_lru_miss_mask_empty_and_validation():
    empty = fastpath.lru_miss_mask(np.asarray([], dtype=np.uint64), 0, 2)
    assert empty.size == 0
    with pytest.raises(ConfigError):
        fastpath.lru_miss_mask(np.asarray([1], dtype=np.uint64), 0, 0)


@settings(max_examples=50, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300),
    assoc=st.sampled_from([1, 2, 3, 4]),
)
def test_lru_miss_mask_matches_scalar_cache_random(blocks, assoc):
    """Adversarial shapes (runs, thrash, singletons) via hypothesis."""
    n_sets = 8
    cfg = CacheConfig(size=n_sets * assoc * 64, assoc=assoc, block=64)
    cache = SetAssociativeCache(cfg)
    expected = [not cache.access(b, False) for b in blocks]
    got = fastpath.lru_miss_mask(np.asarray(blocks, dtype=np.uint64), cfg.set_mask, assoc)
    assert got.tolist() == expected


# -- miss-curve parity ----------------------------------------------------


@pytest.mark.parametrize("kind", ["instr", "data"])
@pytest.mark.parametrize("warmup", [0.0, 0.3])
def test_miss_curve_parity(kind, warmup):
    """The tentpole contract: vectorized and scalar sweeps are bit-identical.

    MissCurvePoint is a dataclass, so ``==`` compares every field —
    including the float mpki, which must match exactly, not approximately.
    """
    rng = np.random.default_rng(1234)
    sizes = [kb(8), kb(16), kb(64)]
    for _ in range(3):
        trace = random_trace(rng, 4000)
        fast = simulate_miss_curve(
            trace, sizes, kind=kind, warmup_fraction=warmup, fastpath=True
        )
        slow = simulate_miss_curve(
            trace, sizes, kind=kind, warmup_fraction=warmup, fastpath=False
        )
        assert fast == slow


def test_miss_curve_parity_array_input():
    """The fast path accepts uint64 arrays directly (no list detour)."""
    rng = np.random.default_rng(5)
    trace = random_trace(rng, 2000)
    arr = np.asarray(trace, dtype=np.uint64)
    fast = simulate_miss_curve(arr, [kb(16)], kind="data", warmup_fraction=0.5, fastpath=True)
    slow = simulate_miss_curve(trace, [kb(16)], kind="data", warmup_fraction=0.5, fastpath=False)
    assert fast == slow


def test_miss_curve_empty_trace():
    fast = simulate_miss_curve([], [kb(8)], kind="data", warmup_fraction=0.0, fastpath=True)
    slow = simulate_miss_curve([], [kb(8)], kind="data", warmup_fraction=0.0, fastpath=False)
    assert fast == slow
    assert fast[0].accesses == 0 and fast[0].mpki == 0.0


# -- kernel 2: stack distances --------------------------------------------


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=40), max_size=300))
def test_stack_distance_histogram_matches_scalar(blocks):
    fast = fastpath.stack_distance_histogram(blocks)
    profiler = StackDistanceProfiler()
    profiler.feed(blocks)
    assert fast == profiler._scalar_histogram()


def test_profiler_routes_both_paths_identically():
    rng = np.random.default_rng(7)
    blocks = rng.integers(0, 64, size=5000).tolist()
    fast = StackDistanceProfiler()
    fast.feed(blocks)
    slow = StackDistanceProfiler()
    slow.feed(blocks)
    assert fast.histogram(fastpath=True) == slow.histogram(fastpath=False)


# -- the toggle -----------------------------------------------------------


def test_env_toggle(monkeypatch):
    fastpath.set_fastpath(None)
    monkeypatch.delenv(fastpath.FASTPATH_ENV, raising=False)
    assert fastpath.fastpath_enabled()  # default on
    for off in ("0", "false", "no", "FALSE"):
        monkeypatch.setenv(fastpath.FASTPATH_ENV, off)
        assert not fastpath.fastpath_enabled()
    monkeypatch.setenv(fastpath.FASTPATH_ENV, "1")
    assert fastpath.fastpath_enabled()


def test_set_fastpath_overrides_env(monkeypatch):
    monkeypatch.setenv(fastpath.FASTPATH_ENV, "0")
    try:
        fastpath.set_fastpath(True)
        assert fastpath.fastpath_enabled()
        fastpath.set_fastpath(False)
        assert not fastpath.fastpath_enabled()
        fastpath.set_fastpath(None)
        assert not fastpath.fastpath_enabled()  # env takes over again
    finally:
        fastpath.set_fastpath(None)
