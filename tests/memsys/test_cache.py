"""Set-associative cache: LRU, eviction, writeback, stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys.cache import CLEAN, DIRTY, SetAssociativeCache
from repro.memsys.config import CacheConfig


def small_cache(assoc=2, sets=4) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(size=assoc * sets * 64, assoc=assoc, block=64))


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0, write=False) is False
    assert cache.access(0, write=False) is True
    assert cache.stats.accesses == 2
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = small_cache(assoc=2, sets=1)
    cache.access(0, write=False)
    cache.access(1, write=False)
    cache.access(0, write=False)  # refresh 0; 1 becomes LRU
    cache.access(2, write=False)  # evicts 1
    assert cache.contains(0)
    assert not cache.contains(1)
    assert cache.contains(2)


def test_dirty_eviction_counts_writeback():
    cache = small_cache(assoc=1, sets=1)
    cache.access(0, write=True)
    cache.access(1, write=False)  # evicts dirty block 0
    assert cache.stats.writebacks == 1
    assert cache.stats.evictions == 1


def test_clean_eviction_no_writeback():
    cache = small_cache(assoc=1, sets=1)
    cache.access(0, write=False)
    cache.access(1, write=False)
    assert cache.stats.writebacks == 0


def test_write_hit_dirties_line():
    cache = small_cache(assoc=1, sets=1)
    cache.access(0, write=False)
    cache.access(0, write=True)
    cache.access(1, write=False)  # evicts now-dirty block 0
    assert cache.stats.writebacks == 1


def test_set_mapping_isolation():
    cache = small_cache(assoc=1, sets=4)
    # Blocks 0 and 4 map to the same set; 1 maps elsewhere.
    cache.access(0, write=False)
    cache.access(1, write=False)
    cache.access(4, write=False)  # evicts 0, not 1
    assert not cache.contains(0)
    assert cache.contains(1)


def test_primitive_interface_roundtrip():
    cache = small_cache()
    assert cache.probe(10) is None
    victim = cache.insert(10, "S")
    assert victim is None
    assert cache.probe(10) == "S"
    cache.set_state(10, "M")
    assert cache.probe(10) == "M"
    assert cache.remove(10) == "M"
    assert cache.probe(10) is None


def test_set_state_on_absent_line_raises():
    cache = small_cache()
    with pytest.raises(KeyError):
        cache.set_state(123, "M")


def test_insert_returns_victim():
    cache = small_cache(assoc=1, sets=1)
    cache.insert(0, "M")
    victim = cache.insert(1, "S")
    assert victim == (0, "M")


def test_occupancy_and_flush():
    cache = small_cache()
    for block in range(5):
        cache.access(block, write=False)
    assert cache.occupancy() == 5
    cache.flush()
    assert cache.occupancy() == 0
    # Stats survive a flush.
    assert cache.stats.misses == 5


def test_miss_ratio():
    cache = small_cache()
    assert cache.stats.miss_ratio == 0.0
    cache.access(0, write=False)
    cache.access(0, write=False)
    assert cache.stats.miss_ratio == pytest.approx(0.5)


def test_config_validation():
    with pytest.raises(ConfigError):
        CacheConfig(size=1000, assoc=4, block=64)  # not divisible
    with pytest.raises(ConfigError):
        CacheConfig(size=4096, assoc=4, block=48)  # not a power of two
    with pytest.raises(ConfigError):
        CacheConfig(size=4096, assoc=4, block=16)  # below 32 B floor
    with pytest.raises(ConfigError):
        CacheConfig(size=-1, assoc=4, block=64)


class _ReferenceLru:
    """Brute-force fully-associative-per-set LRU model."""

    def __init__(self, assoc: int, sets: int) -> None:
        self.assoc = assoc
        self.sets = [[] for _ in range(sets)]
        self.n_sets = sets

    def access(self, block: int) -> bool:
        entries = self.sets[block % self.n_sets]
        if block in entries:
            entries.remove(block)
            entries.append(block)
            return True
        if len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(block)
        return False


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=400),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_matches_reference_lru(blocks, assoc):
    """The dict-based LRU must agree with a brute-force model."""
    sets = 4
    cache = SetAssociativeCache(
        CacheConfig(size=assoc * sets * 64, assoc=assoc, block=64)
    )
    reference = _ReferenceLru(assoc=assoc, sets=sets)
    for block in blocks:
        assert cache.access(block, write=False) == reference.access(block)


@settings(max_examples=40, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
def test_occupancy_never_exceeds_capacity(blocks):
    cache = small_cache(assoc=2, sets=8)
    for block in blocks:
        cache.access(block, write=bool(block % 3 == 0))
    assert cache.occupancy() <= 16
    assert cache.stats.accesses == len(blocks)
    assert cache.stats.hits + cache.stats.misses == len(blocks)
