"""Trace persistence round-trips."""

import pytest

from repro.errors import AnalysisError
from repro.memsys.tracefile import load_trace, save_trace
from repro.rng import RngFactory
from repro.workloads.base import TraceBundle
from repro.workloads.specjbb import SpecJbbWorkload


def test_roundtrip_synthetic(tmp_path):
    bundle = TraceBundle(
        workload="demo",
        per_cpu=[[1, 2, 3], [4, 5]],
        instructions=[10, 20],
        meta={"k": 1, "s": "x"},
    )
    path = save_trace(bundle, tmp_path / "t")
    assert path.suffix == ".npz"
    loaded = load_trace(path)
    assert loaded.per_cpu_lists() == bundle.per_cpu_lists()
    assert loaded.instructions == bundle.instructions
    assert loaded.meta == bundle.meta
    assert loaded.workload == "demo"


def test_roundtrip_real_workload(tmp_path, tiny_sim):
    bundle = SpecJbbWorkload(warehouses=2).generate(
        2, tiny_sim, RngFactory(seed=3)
    )
    path = save_trace(bundle, tmp_path / "jbb.npz")
    loaded = load_trace(path)
    assert loaded.per_cpu_lists() == bundle.per_cpu_lists()
    assert loaded.meta["warehouses"] == 2


def test_replay_equivalence(tmp_path, tiny_sim):
    """A reloaded trace drives the simulator identically."""
    from repro.core.config import e6000_machine
    from repro.memsys.hierarchy import MemoryHierarchy

    bundle = SpecJbbWorkload(warehouses=2).generate(2, tiny_sim, RngFactory(4))
    loaded = load_trace(save_trace(bundle, tmp_path / "t.npz"))
    a = MemoryHierarchy(e6000_machine(2))
    a.run_trace(bundle.per_cpu)
    b = MemoryHierarchy(e6000_machine(2))
    b.run_trace(loaded.per_cpu)
    assert a.total_l2_misses == b.total_l2_misses
    assert a.total_c2c_fills == b.total_c2c_fills


def test_missing_file(tmp_path):
    with pytest.raises(AnalysisError):
        load_trace(tmp_path / "missing.npz")


def test_non_trace_npz_rejected(tmp_path):
    import numpy as np

    path = tmp_path / "other.npz"
    np.savez(path, x=np.arange(3))
    with pytest.raises(AnalysisError):
        load_trace(path)


def test_unserializable_meta_stringified(tmp_path):
    bundle = TraceBundle(
        workload="demo", per_cpu=[[1]], instructions=[8], meta={"obj": object()}
    )
    loaded = load_trace(save_trace(bundle, tmp_path / "m.npz"))
    assert isinstance(loaded.meta["obj"], str)
