"""Runtime model invariants: clean runs pass, injected corruption is caught."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, InvariantViolation
from repro.memsys.cache import CLEAN
from repro.memsys.coherence import State
from repro.memsys.config import CacheConfig, MachineConfig
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.invariants import (
    CHECK_ENV,
    SAMPLE_ENV,
    InvariantChecker,
    checking_enabled,
    sample_period,
)

#: Tiny caches so short traces still trigger evictions, upgrades and
#: cross-cache sharing — the paths an invariant checker must survive.
TINY = MachineConfig(
    n_procs=2,
    l1i=CacheConfig(size=256, assoc=2, block=32, name="L1I"),
    l1d=CacheConfig(size=256, assoc=2, block=32, name="L1D"),
    l2=CacheConfig(size=1024, assoc=2, block=64, name="L2"),
)


def _ref(addr: int, kind: int) -> int:
    return (addr << 2) | kind


refs = st.builds(
    _ref,
    st.integers(min_value=0, max_value=2047),
    st.integers(min_value=0, max_value=2),
)
trace_pair = st.tuples(
    st.lists(refs, max_size=120), st.lists(refs, max_size=120)
)


def _checked(protocol: str = "mosi", **kwargs) -> MemoryHierarchy:
    return MemoryHierarchy(
        TINY, protocol=protocol, check_invariants=True, check_sample=1, **kwargs
    )


# -- property: the model never violates its own invariants -------------------


@settings(max_examples=40, deadline=None)
@given(traces=trace_pair, protocol=st.sampled_from(["mosi", "msi", "mesi"]))
def test_random_traces_produce_zero_violations(traces, protocol):
    """Every access of every random trace passes the full check."""
    h = _checked(protocol)
    h.run_trace(list(traces), quantum=7)
    assert h.checker.checks_run >= 1


@settings(max_examples=15, deadline=None)
@given(traces=trace_pair)
def test_shared_l2_and_no_l1_variants_hold(traces):
    shared = MachineConfig(
        n_procs=2,
        l1i=TINY.l1i,
        l1d=TINY.l1d,
        l2=TINY.l2,
        procs_per_l2=2,
    )
    MemoryHierarchy(shared, check_invariants=True, check_sample=1).run_trace(
        list(traces)
    )
    h = MemoryHierarchy(
        TINY, include_l1=False, check_invariants=True, check_sample=1
    )
    h.run_trace(list(traces))


# -- deliberate corruption is detected ---------------------------------------


def _warm_hierarchy() -> MemoryHierarchy:
    h = _checked()
    h.run_trace([[_ref(a * 64, a % 3) for a in range(40)],
                 [_ref(a * 64, (a + 1) % 3) for a in range(40)]])
    return h


def test_two_modified_copies_are_caught():
    h = _warm_hierarchy()
    bus = h.bus
    block = next(iter(bus.mirrored_blocks()))
    holder = next(iter(bus.holder_ids(block)))
    bus.caches[holder].set_state(block, State.MODIFIED)
    other = (holder + 1) % len(bus.caches)
    bus.caches[other].insert(block, State.MODIFIED)
    with pytest.raises(InvariantViolation):
        h.check_invariants()


def test_holders_mirror_drift_is_caught():
    h = _warm_hierarchy()
    bus = h.bus
    block = next(iter(bus.mirrored_blocks()))
    holder = next(iter(bus.holder_ids(block)))
    bus._holders[block].discard(holder)
    bus._holders[block].add(holder ^ 1)
    with pytest.raises(InvariantViolation) as excinfo:
        h.check_invariants()
    assert "mirror" in str(excinfo.value)


def test_stale_l1_line_breaks_inclusion():
    h = _warm_hierarchy()
    # An L1 line whose L2 block cannot be resident (address far outside
    # everything the trace touched).
    h._l1d[0].insert(0xDEAD00, CLEAN)
    with pytest.raises(InvariantViolation) as excinfo:
        h.check_invariants()
    assert "inclusion" in str(excinfo.value)


def test_stats_tampering_breaks_conservation():
    h = _warm_hierarchy()
    h.proc_stats[0].l2_misses += 1
    with pytest.raises(InvariantViolation):
        h.check_invariants()


def test_violation_carries_diagnostic_dump():
    h = _warm_hierarchy()
    bus = h.bus
    block = next(iter(bus.mirrored_blocks()))
    bus._holders[block].add(5)  # a cache id that does not exist
    with pytest.raises(InvariantViolation) as excinfo:
        h.check_invariants()
    exc = excinfo.value
    assert exc.dump
    assert "recorded accesses" in exc.dump
    assert f"{block:#x}" in exc.dump  # per-cache state of the offender


def test_checker_detects_violation_mid_trace():
    """A violation surfaces at the access that exposes it, not at the end."""
    h = _checked()
    h.run_trace([[_ref(a * 64, 1) for a in range(10)], []])
    h.proc_stats[0].loads += 1  # corrupt between replays
    with pytest.raises(InvariantViolation):
        h.run_trace([[_ref(0, 1)], []])


# -- sampling and configuration ----------------------------------------------


def test_sampling_period_counts_checks():
    h = MemoryHierarchy(TINY, check_invariants=True, check_sample=16)
    traces = [[_ref(a * 64, 1) for a in range(32)], []]
    h.run_trace(traces)
    # 32 accesses at period 16 -> 2 sampled checks + 1 end-of-trace.
    assert h.checker.checks_run == 3


def test_checker_rejects_bad_parameters():
    h = MemoryHierarchy(TINY)
    with pytest.raises(ConfigError):
        InvariantChecker(h, sample_every=0)
    with pytest.raises(ConfigError):
        InvariantChecker(h, sample_every=1, history=0)


def test_env_gating(monkeypatch):
    monkeypatch.delenv(CHECK_ENV, raising=False)
    assert not checking_enabled()
    assert MemoryHierarchy(TINY).checker is None
    monkeypatch.setenv(CHECK_ENV, "1")
    assert checking_enabled()
    h = MemoryHierarchy(TINY)
    assert h.checker is not None
    # Explicit constructor choice beats the environment.
    assert MemoryHierarchy(TINY, check_invariants=False).checker is None


def test_sample_period_env(monkeypatch):
    monkeypatch.delenv(SAMPLE_ENV, raising=False)
    assert sample_period() == 8192
    monkeypatch.setenv(SAMPLE_ENV, "64")
    assert sample_period() == 64
    monkeypatch.setenv(SAMPLE_ENV, "zero")
    with pytest.raises(ConfigError):
        sample_period()
    monkeypatch.setenv(SAMPLE_ENV, "0")
    with pytest.raises(ConfigError):
        sample_period()


def test_unchecked_hierarchy_supports_on_demand_check():
    # Pin checking off so the test holds under JMMW_CHECK=1 (CI runs
    # the suite both ways).
    h = MemoryHierarchy(TINY, check_invariants=False)
    assert h.checker is None
    h.run_trace([[_ref(a * 64, 0) for a in range(20)], []])
    h.check_invariants()  # builds a one-shot checker; no violation
