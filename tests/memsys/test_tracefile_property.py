"""Property tests: random TraceBundles survive every persistence path.

Hypothesis generates arbitrary bundles — empty streams, zero
processors, extreme ``uint64`` values, odd lengths — and round-trips
them through (1) ``save_trace``/``load_trace``, (2) a shared-memory
publish/attach, and (3) an mmap spill publish/attach, asserting array
equality, dtype, and per-CPU split stability on every path.  Seeded
defects (truncation, garbage) then prove the load path fails with the
typed :class:`~repro.errors.TraceFileError`, never a raw
numpy/zipfile exception.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, TraceFileError
from repro.harness.traceplane import TracePlane, detach_all
from repro.memsys.tracefile import save_trace, load_trace
from repro.workloads.base import TraceBundle

UINT64 = st.integers(min_value=0, max_value=2**64 - 1)

STREAMS = st.lists(
    st.lists(UINT64, min_size=0, max_size=120), min_size=0, max_size=4
)

META = st.dictionaries(
    st.sampled_from(["scale", "label", "note"]),
    st.one_of(st.integers(-1000, 1000), st.text(max_size=12)),
    max_size=3,
)


@st.composite
def bundles(draw) -> TraceBundle:
    per_cpu = draw(STREAMS)
    return TraceBundle(
        workload=draw(st.sampled_from(["specjbb", "ecperf", "synthetic"])),
        per_cpu=[np.asarray(t, dtype=np.uint64) for t in per_cpu],
        instructions=[draw(st.integers(0, 10**9)) for _ in per_cpu],
        meta=draw(META),
    )


def _assert_equal_bundles(got: TraceBundle, want: TraceBundle) -> None:
    assert got.workload == want.workload
    assert got.n_procs == want.n_procs
    assert list(got.instructions) == list(want.instructions)
    for mine, theirs in zip(got.per_cpu, want.per_cpu):
        assert mine.dtype == np.uint64
        assert mine.ndim == 1
        assert np.array_equal(mine, theirs)


@settings(max_examples=60, deadline=None)
@given(bundle=bundles())
def test_save_load_roundtrip(bundle):
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(bundle, Path(tmp) / "t")
        got = load_trace(path)
    _assert_equal_bundles(got, bundle)
    assert dict(got.meta) == dict(bundle.meta)


@settings(max_examples=40, deadline=None)
@given(bundle=bundles())
def test_shm_publish_attach_roundtrip(bundle):
    """Arbitrary bundles survive the shared-memory plane unchanged."""
    from repro.harness.traceplane import TraceSpec, attach
    from repro.core.config import SimConfig

    spec = TraceSpec(
        workload=bundle.workload, scale=None, n_procs=bundle.n_procs,
        sim=SimConfig(seed=1, refs_per_proc=1, warmup_fraction=0.5),
    )
    with tempfile.TemporaryDirectory() as tmp:
        with TracePlane(root=tmp) as plane:
            ref = plane.publish(spec, bundle=bundle)
            assert ref.backend == "shm"
            assert ref.lengths == tuple(t.size for t in bundle.per_cpu)
            got = attach(ref)
            _assert_equal_bundles(got, bundle)
            detach_all()


@settings(max_examples=40, deadline=None)
@given(bundle=bundles())
def test_spill_publish_attach_roundtrip(bundle):
    """The mmap spill path is byte-for-byte the same as shm."""
    from repro.harness.traceplane import TraceSpec, attach
    from repro.core.config import SimConfig

    spec = TraceSpec(
        workload=bundle.workload, scale=None, n_procs=bundle.n_procs,
        sim=SimConfig(seed=1, refs_per_proc=1, warmup_fraction=0.5),
    )
    with tempfile.TemporaryDirectory() as tmp:
        with TracePlane(root=tmp, spill_bytes=0) as plane:
            ref = plane.publish(spec, bundle=bundle)
            assert ref.backend == "spill"
            got = attach(ref)
            _assert_equal_bundles(got, bundle)
            detach_all()


# -- seeded defects ----------------------------------------------------------


def _sample_bundle() -> TraceBundle:
    return TraceBundle(
        workload="specjbb",
        per_cpu=[np.arange(64, dtype=np.uint64), np.arange(32, dtype=np.uint64)],
        instructions=[100, 50],
        meta={"scale": 2},
    )


def test_missing_file_raises_typed_error(tmp_path):
    with pytest.raises(TraceFileError, match="does not exist"):
        load_trace(tmp_path / "nope.npz")


def test_truncated_archive_raises_typed_error(tmp_path):
    path = save_trace(_sample_bundle(), tmp_path / "t")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceFileError):
        load_trace(path)


def test_garbage_file_raises_typed_error(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an archive at all")
    with pytest.raises(TraceFileError):
        load_trace(path)


def test_foreign_npz_raises_typed_error(tmp_path):
    """A valid npz without our header is rejected, not misread."""
    path = tmp_path / "foreign.npz"
    np.savez_compressed(path, something=np.arange(4))
    with pytest.raises(TraceFileError, match="not a repro trace file"):
        load_trace(path)


def test_trace_file_error_is_an_analysis_error(tmp_path):
    """Existing except-AnalysisError handlers keep working."""
    assert issubclass(TraceFileError, AnalysisError)
    with pytest.raises(AnalysisError):
        load_trace(tmp_path / "absent.npz")
