"""Bit-parity of streamed replay against the materialized paths.

The streaming contract (:mod:`repro.memsys.stream`) is *exactness*:
replaying a trace chunk-by-chunk with carried state must produce
results bit-identical to materializing the whole trace first — every
counter, every miss class, the final LRU contents of every cache.
These tests check that contract on hypothesis-generated traces across
chunk sizes including the degenerate ones (chunk=1, chunk larger than
the trace) and on deterministic traces built to straddle chunk
boundaries with same-set runs.

The suite must also *fail loudly* when carried state is broken:
:func:`repro.memsys.stream.set_carried_state_defect` drops the carried
state at every chunk boundary, and the seeded-defect tests assert the
parity checks then diverge — proof the suite has teeth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimConfig
from repro.memsys import stream as stream_mod
from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import CacheConfig, e6000_machine
from repro.memsys.fastpath import lru_miss_mask, stack_distance_histogram
from repro.memsys.hierarchy import MemoryHierarchy
from repro.memsys.multisim import simulate_miss_curve
from repro.memsys.stream import (
    MissCurveAccumulator,
    StackAccumulator,
    TraceStream,
    lru_carried_state,
    set_carried_state_defect,
    simulate_miss_curve_stream,
)

#: Tiny sweep sizes so short traces still evict and conflict.
SIZES = [1024, 2048, 4096]

#: A few block bits of address space: dense same-set collisions.
_ADDRS = st.integers(min_value=0, max_value=0x3FFF)
_KINDS = st.sampled_from([IFETCH, LOAD, STORE])
_REFS = st.lists(
    st.builds(encode_ref, _ADDRS, _KINDS), min_size=1, max_size=400
)


def _chunks(arr: np.ndarray, chunk: int):
    for start in range(0, int(arr.size), chunk):
        yield arr[start : start + chunk]


def _chunk_sizes(n: int) -> list[int]:
    return sorted({1, 3, max(1, n // 2), n + 5})


def _curve_vectors(points) -> list[tuple]:
    return [(p.size, p.accesses, p.misses, p.mpki) for p in points]


# -- miss curves -------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(refs=_REFS, kind=st.sampled_from(["instr", "data"]))
def test_streamed_miss_curve_matches_materialized(refs, kind):
    arr = np.asarray(refs, dtype=np.uint64)
    want = _curve_vectors(
        simulate_miss_curve(arr, SIZES, kind=kind, assoc=2, warmup_fraction=0.5)
    )
    for chunk in _chunk_sizes(arr.size):
        for fastpath in (True, False):
            got = _curve_vectors(
                simulate_miss_curve_stream(
                    _chunks(arr, chunk), int(arr.size), SIZES, kind=kind,
                    assoc=2, warmup_fraction=0.5, fastpath=fastpath,
                )
            )
            assert got == want, (chunk, fastpath)


def test_streamed_miss_curve_boundary_straddling_same_set_run():
    """A run of same-set conflicting blocks split mid-run by a boundary.

    Four blocks aliasing to one set of a 2-way cache, repeated so the
    LRU order at every chunk boundary decides downstream hits; any
    carried-state slip moves misses between chunks.
    """
    config = CacheConfig(size=1024, assoc=2, block=64)
    stride = config.n_sets * 64
    blocks = [i * stride for i in (1, 2, 3, 4)] * 20
    refs = np.asarray([encode_ref(a, LOAD) for a in blocks], dtype=np.uint64)
    want = _curve_vectors(
        simulate_miss_curve(refs, [1024], kind="data", assoc=2)
    )
    for chunk in (1, 2, 3, 7, 79):
        got = _curve_vectors(
            simulate_miss_curve_stream(
                _chunks(refs, chunk), int(refs.size), [1024], kind="data",
                assoc=2,
            )
        )
        assert got == want, chunk


# -- carried LRU state vs the scalar cache -----------------------------------


@settings(max_examples=25, deadline=None)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=300),
    split=st.integers(min_value=0, max_value=300),
)
def test_carried_state_reproduces_scalar_cache_contents(blocks, split):
    """lru_carried_state == the scalar cache's final per-set LRU order."""
    config = CacheConfig(size=512, assoc=2, block=64)
    arr = np.asarray(blocks, dtype=np.int64)
    split = min(split, arr.size)
    state = lru_carried_state(arr[:split], config.set_mask, config.assoc)
    state = lru_carried_state(
        arr[split:], config.set_mask, config.assoc, prefix=state
    )
    cache = SetAssociativeCache(config)
    for b in blocks:
        cache.access(int(b), write=False)
    # The scalar cache keeps insertion-ordered dicts per set with the
    # MRU block at the tail; the carried state emits each set LRU->MRU.
    by_set: dict[int, list[int]] = {}
    for b in state.tolist():
        by_set.setdefault(int(b) & config.set_mask, []).append(int(b))
    for set_index, line_set in enumerate(cache._sets):
        assert by_set.get(set_index, []) == list(line_set.keys()), set_index
    # And replaying through the prefix yields the exact miss flags.
    prefix = lru_carried_state(arr[:split], config.set_mask, config.assoc)
    concat = np.concatenate([prefix, arr[split:]])
    flags = lru_miss_mask(
        concat.astype(np.uint64), config.set_mask, config.assoc
    )[prefix.size:]
    whole = lru_miss_mask(
        arr.astype(np.uint64), config.set_mask, config.assoc
    )[split:]
    assert flags.tolist() == whole.tolist()


# -- stack distances ---------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(blocks=st.lists(st.integers(min_value=0, max_value=127), min_size=0,
                       max_size=300))
def test_stack_accumulator_merges_exactly(blocks):
    arr = np.asarray(blocks, dtype=np.int64)
    want = stack_distance_histogram(blocks)
    for chunk in _chunk_sizes(max(1, arr.size)):
        acc = StackAccumulator()
        for part in _chunks(arr, chunk):
            acc.feed(part)
        assert acc.histogram() == want, chunk
        assert acc.n_accesses == arr.size


# -- full-hierarchy replay ---------------------------------------------------


def _machine_state(hierarchy: MemoryHierarchy):
    """Every counter and the full final cache state, comparable."""
    procs = [vars(s).copy() for s in hierarchy.proc_stats]
    bus = vars(hierarchy.bus.stats).copy()
    c2c = dict(hierarchy.bus.stats.c2c_by_line)
    sides = [vars(s).copy() for s in hierarchy.bus.cache_stats]
    caches = []
    for cache in [*hierarchy.bus.caches, *hierarchy._l1i, *hierarchy._l1d]:
        caches.append([list(s.items()) for s in cache._sets])
    return procs, bus, c2c, sides, caches


def _workload_streams(chunk: int):
    from repro.rng import RngFactory
    from repro.workloads.specjbb import SpecJbbWorkload

    sim = SimConfig(seed=77, refs_per_proc=3_000, warmup_fraction=0.5)
    workload = SpecJbbWorkload(warehouses=2)
    bundle = workload.generate(2, sim, RngFactory(seed=sim.seed))
    stream = TraceStream.from_arrays(bundle.per_cpu, chunk_refs=chunk)
    return sim, bundle, stream


@pytest.mark.parametrize("fastpath", [False, True])
@pytest.mark.parametrize("chunk", [1, 277, 1_000_000])
def test_streamed_hierarchy_replay_matches_materialized(fastpath, chunk):
    if fastpath:
        from repro.memsys.fastpath_coherence import kernel_available

        if not kernel_available():
            pytest.skip("coherence kernel unavailable")
    sim, bundle, stream = _workload_streams(chunk)
    machine = e6000_machine(2)

    materialized = MemoryHierarchy(machine, protocol="mosi")
    materialized.run_trace(
        list(bundle.per_cpu), quantum=sim.interleave_quantum,
        warmup_fraction=sim.warmup_fraction, fastpath=fastpath,
    )
    streamed = MemoryHierarchy(machine, protocol="mosi")
    streamed.run_trace(
        stream, quantum=sim.interleave_quantum,
        warmup_fraction=sim.warmup_fraction, fastpath=fastpath,
    )
    assert _machine_state(streamed) == _machine_state(materialized)


# -- seeded defect: the suite must fail loudly -------------------------------


def test_dropped_carried_state_breaks_miss_curve_parity():
    # Two blocks ping-ponging in one set: after the cold misses every
    # access hits — unless the carried state is dropped at a boundary,
    # which turns each chunk's first accesses back into misses.
    arr = np.asarray(
        [encode_ref(a * 64, LOAD) for a in [1, 9] * 60],
        dtype=np.uint64,
    )
    want = _curve_vectors(simulate_miss_curve(arr, [512], kind="data", assoc=2))
    set_carried_state_defect(True)
    try:
        got = _curve_vectors(
            simulate_miss_curve_stream(
                _chunks(arr, 7), int(arr.size), [512], kind="data", assoc=2
            )
        )
    finally:
        set_carried_state_defect(False)
    assert got != want, "defect injection must break parity"


def test_dropped_carried_state_breaks_stackdist_parity():
    blocks = np.asarray([1, 2, 3, 4] * 25, dtype=np.int64)
    want = stack_distance_histogram(blocks.tolist())
    set_carried_state_defect(True)
    try:
        acc = StackAccumulator()
        for part in _chunks(blocks, 7):
            acc.feed(part)
        got = acc.histogram()
    finally:
        set_carried_state_defect(False)
    assert got != want, "defect injection must break parity"


def test_defect_flag_restores_cleanly():
    assert stream_mod._drop_carried_state is False
    arr = np.asarray([encode_ref(a * 64, LOAD) for a in [1, 9] * 20],
                     dtype=np.uint64)
    want = _curve_vectors(simulate_miss_curve(arr, [512], kind="data", assoc=2))
    got = _curve_vectors(
        simulate_miss_curve_stream(
            _chunks(arr, 7), int(arr.size), [512], kind="data", assoc=2
        )
    )
    assert got == want


# -- accumulator bookkeeping -------------------------------------------------


def test_miss_curve_accumulator_rejects_incomplete_stream():
    acc = MissCurveAccumulator(
        [CacheConfig(size=512, assoc=2, block=64)], kind="data",
        total_refs=100, warmup_fraction=0.5,
    )
    acc.feed(np.asarray([encode_ref(64, LOAD)] * 10, dtype=np.uint64))
    with pytest.raises(Exception):
        acc.points()
