"""SetAssociativeCache.access vs. a brute-force per-set LRU reference.

The production cache keeps each set as an insertion-ordered dict and
relies on delete + reinsert for LRU refresh; the reference below keeps
an explicit list ordered LRU-first, which is trivially auditable.  The
property test drives both with the same access stream (including
writes, so dirty-bit and writeback accounting is exercised) and
compares every per-access outcome plus all four counters, across
associativities from direct-mapped to fully associative.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.cache import SetAssociativeCache
from repro.memsys.config import CacheConfig


class BruteForceLru:
    """Per-set LRU lists with dirty bits and full accounting."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets: list[list[list]] = [[] for _ in range(n_sets)]  # LRU first
        self.accesses = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def access(self, block: int, write: bool) -> bool:
        self.accesses += 1
        lines = self.sets[block % self.n_sets]
        for i, line in enumerate(lines):
            if line[0] == block:
                lines.pop(i)
                if write:
                    line[1] = True
                lines.append(line)
                return True
        self.misses += 1
        if len(lines) >= self.assoc:
            victim = lines.pop(0)
            self.evictions += 1
            if victim[1]:
                self.writebacks += 1
        lines.append([block, write])
        return False


# (n_sets, assoc): direct-mapped, two set-associative shapes, and fully
# associative — all holding eight 64-byte lines.
GEOMETRIES = [(8, 1), (4, 2), (2, 4), (1, 8)]


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        min_size=1,
        max_size=250,
    ),
    geometry=st.sampled_from(GEOMETRIES),
)
def test_access_matches_brute_force(ops, geometry):
    n_sets, assoc = geometry
    cache = SetAssociativeCache(
        CacheConfig(size=n_sets * assoc * 64, assoc=assoc, block=64)
    )
    reference = BruteForceLru(n_sets, assoc)
    for block, write in ops:
        assert cache.access(block, write) == reference.access(block, write)
    stats = cache.stats
    assert stats.accesses == reference.accesses
    assert stats.misses == reference.misses
    assert stats.evictions == reference.evictions
    assert stats.writebacks == reference.writebacks
    assert stats.hits == reference.accesses - reference.misses
    # Occupancy can never exceed capacity.
    assert cache.occupancy() <= n_sets * assoc
