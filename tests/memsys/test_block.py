"""Reference encoding round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsys.block import (
    IFETCH,
    LOAD,
    STORE,
    Ref,
    decode_ref,
    encode_ref,
    is_data_kind,
    is_write_kind,
    kind_name,
)


@given(
    addr=st.integers(min_value=0, max_value=2**40),
    kind=st.sampled_from([IFETCH, LOAD, STORE]),
)
def test_roundtrip(addr, kind):
    assert decode_ref(encode_ref(addr, kind)) == (addr, kind)


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        encode_ref(0, 3)
    with pytest.raises(ValueError):
        encode_ref(-1, LOAD)


def test_kind_predicates():
    assert is_write_kind(STORE)
    assert not is_write_kind(LOAD)
    assert is_data_kind(LOAD)
    assert is_data_kind(STORE)
    assert not is_data_kind(IFETCH)
    assert kind_name(IFETCH) == "ifetch"


def test_ref_dataclass():
    ref = Ref(addr=0x1234, kind=STORE)
    assert ref.is_write and ref.is_data
    assert Ref.from_encoded(ref.encoded()) == ref
    assert ref.block(6) == 0x1234 >> 6
