"""Snooping-bus bandwidth model."""

import pytest

from repro.errors import ConfigError
from repro.memsys.bandwidth import BusModel


def test_capacity_numbers():
    bus = BusModel()
    assert bus.data_bandwidth_bytes_per_s == pytest.approx(83.3e6 * 32)
    assert bus.snoop_rate_per_s == pytest.approx(83.3e6)


def test_utilization_channels():
    bus = BusModel(bus_clock_hz=100e6, data_bytes_per_cycle=32)
    # Address-bound: many snoops, no data.
    assert bus.utilization(50e6, 0) == pytest.approx(0.5)
    # Data-bound: 64 B per transfer.
    assert bus.utilization(0, 25e6, block_bytes=64) == pytest.approx(0.5)
    # Max of the two channels.
    assert bus.utilization(80e6, 25e6) == pytest.approx(0.8)


def test_queueing_slowdown():
    assert BusModel.queueing_slowdown(0.0) == 1.0
    assert BusModel.queueing_slowdown(0.5) == 2.0
    assert BusModel.queueing_slowdown(2.0) == pytest.approx(20.0)  # capped rho
    with pytest.raises(ConfigError):
        BusModel.queueing_slowdown(-0.1)


def test_validation():
    with pytest.raises(ConfigError):
        BusModel(bus_clock_hz=0)
    with pytest.raises(ConfigError):
        BusModel().utilization(-1, 0)
    bus = BusModel()
    with pytest.raises(ConfigError):
        bus.utilization_of(None, cpi=0)  # cpi validated before use


def test_utilization_of_hierarchy(small_sim, rng_factory):
    from repro.core.config import e6000_machine
    from repro.memsys.hierarchy import MemoryHierarchy
    from repro.workloads.specjbb import SpecJbbWorkload

    bundle = SpecJbbWorkload(warehouses=4).generate(4, small_sim, rng_factory)
    hierarchy = MemoryHierarchy(e6000_machine(4))
    hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
    util = BusModel().utilization_of(hierarchy, cpi=2.0)
    assert 0.0 < util < 1.0


def test_empty_hierarchy_zero_utilization():
    from repro.core.config import e6000_machine
    from repro.memsys.hierarchy import MemoryHierarchy

    hierarchy = MemoryHierarchy(e6000_machine(1))
    assert BusModel().utilization_of(hierarchy, cpi=2.0) == 0.0
