"""MOSI snooping bus: protocol transitions, copyback accounting, invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.coherence import (
    FILL_C2C,
    FILL_HIT,
    FILL_MEM,
    FILL_UPGRADE,
    MOSIBus,
    State,
)
from repro.memsys.config import CacheConfig
from repro.memsys.misses import MissKind


def make_bus(n_caches=2, protocol="mosi", sets=8, assoc=2) -> MOSIBus:
    caches = [
        SetAssociativeCache(
            CacheConfig(size=assoc * sets * 64, assoc=assoc, block=64, name=f"L2-{i}")
        )
        for i in range(n_caches)
    ]
    return MOSIBus(caches, protocol=protocol)


def test_cold_read_fills_from_memory():
    bus = make_bus()
    assert bus.read(0, 5) == FILL_MEM
    assert bus.caches[0].probe(5) == State.SHARED
    assert bus.stats.memory_fetches == 1


def test_read_hit_no_bus_traffic():
    bus = make_bus()
    bus.read(0, 5)
    assert bus.read(0, 5) == FILL_HIT
    assert bus.stats.bus_reads == 1


def test_cold_write_fills_exclusive():
    bus = make_bus()
    assert bus.write(0, 5) == FILL_MEM
    assert bus.caches[0].probe(5) == State.MODIFIED


def test_dirty_remote_read_is_copyback():
    bus = make_bus()
    bus.write(0, 5)
    assert bus.read(1, 5) == FILL_C2C
    assert bus.stats.c2c_transfers == 1
    # MOSI: the supplier keeps the line in OWNED.
    assert bus.caches[0].probe(5) == State.OWNED
    assert bus.caches[1].probe(5) == State.SHARED


def test_clean_remote_read_comes_from_memory():
    bus = make_bus()
    bus.read(0, 5)  # SHARED, clean
    assert bus.read(1, 5) == FILL_MEM
    assert bus.stats.c2c_transfers == 0


def test_owned_supplier_keeps_supplying():
    """MOSI's point: the owner supplies every later reader."""
    bus = make_bus(n_caches=3)
    bus.write(0, 5)
    assert bus.read(1, 5) == FILL_C2C
    assert bus.read(2, 5) == FILL_C2C  # owner 0 supplies again
    assert bus.stats.c2c_transfers == 2


def test_msi_supplier_downgrades_to_memory():
    """MSI ablation: after one copyback, memory owns the line."""
    bus = make_bus(n_caches=3, protocol="msi")
    bus.write(0, 5)
    assert bus.read(1, 5) == FILL_C2C
    assert bus.caches[0].probe(5) == State.SHARED
    assert bus.read(2, 5) == FILL_MEM  # nobody dirty any more
    assert bus.stats.c2c_transfers == 1


def test_msi_copyback_credits_supplying_holder():
    """Regression: the MSI snoop-copyback writeback must be credited to
    the supplying cache's side counter, not just the bus total —
    otherwise ``sum(cs.writebacks) != stats.writebacks`` under MSI."""
    bus = make_bus(n_caches=3, protocol="msi")
    bus.write(0, 5)
    bus.read(1, 5)  # copyback: holder 0 supplies and writes back
    assert bus.stats.writebacks == 1
    assert bus.cache_stats[0].writebacks == 1
    assert bus.cache_stats[1].writebacks == 0
    assert bus.stats.writebacks == sum(cs.writebacks for cs in bus.cache_stats)


def test_write_to_shared_is_upgrade():
    bus = make_bus()
    bus.read(0, 5)
    bus.read(1, 5)
    assert bus.write(0, 5) == FILL_UPGRADE
    assert bus.caches[0].probe(5) == State.MODIFIED
    assert bus.caches[1].probe(5) is None
    assert bus.stats.upgrades == 1
    assert bus.stats.invalidations == 1


def test_write_miss_invalidates_dirty_holder():
    bus = make_bus()
    bus.write(0, 5)
    assert bus.write(1, 5) == FILL_C2C
    assert bus.caches[0].probe(5) is None
    assert bus.caches[1].probe(5) == State.MODIFIED


def test_write_hit_modified_is_silent():
    bus = make_bus()
    bus.write(0, 5)
    assert bus.write(0, 5) == FILL_HIT
    assert bus.stats.bus_read_exclusives == 1


def test_coherence_miss_classification():
    bus = make_bus()
    bus.read(0, 5)
    bus.write(1, 5)  # invalidates cache 0's copy
    bus.read(0, 5)  # coherence miss
    assert bus.cache_stats[0].misses_by_kind[MissKind.COHERENCE] == 1
    assert bus.cache_stats[0].misses_by_kind[MissKind.COLD] == 1


def test_replacement_miss_classification():
    bus = make_bus(sets=1, assoc=1)
    bus.read(0, 0)
    bus.read(0, 1)  # evicts block 0
    bus.read(0, 0)  # replacement miss
    assert bus.cache_stats[0].misses_by_kind[MissKind.REPLACEMENT] == 1


def test_dirty_eviction_writes_back():
    bus = make_bus(sets=1, assoc=1)
    bus.write(0, 0)
    bus.read(0, 1)  # evicts MODIFIED block 0
    assert bus.stats.writebacks == 1
    # And the holders mirror no longer lists it.
    bus.check_invariants()


def test_per_line_c2c_tracking():
    bus = make_bus()
    bus.write(0, 7)
    bus.read(1, 7)
    bus.write(0, 7)
    bus.read(1, 7)
    assert bus.stats.c2c_by_line[7] == 2
    assert 7 in bus.stats.touched_lines


def test_c2c_ratio():
    bus = make_bus()
    bus.write(0, 1)  # mem
    bus.read(1, 1)  # c2c
    assert bus.stats.c2c_ratio == pytest.approx(0.5)
    assert bus.cache_stats[1].c2c_ratio == pytest.approx(1.0)


def test_reset_stats_keeps_contents():
    bus = make_bus()
    bus.write(0, 5)
    bus.reset_stats()
    assert bus.stats.total_misses == 0
    assert bus.caches[0].probe(5) == State.MODIFIED
    # A hit after reset is not a miss: contents survived.
    assert bus.write(0, 5) == FILL_HIT


def test_rejects_unknown_protocol():
    caches = [SetAssociativeCache(CacheConfig(size=1024, assoc=2, block=64))]
    with pytest.raises(ConfigError):
        MOSIBus(caches, protocol="moesi-plus")


def test_mesi_silent_upgrade():
    bus = make_bus(protocol="mesi")
    assert bus.read(0, 5) == FILL_MEM
    assert bus.caches[0].probe(5) == State.EXCLUSIVE
    assert bus.write(0, 5) == FILL_HIT  # E -> M without bus traffic
    assert bus.stats.silent_upgrades == 1
    assert bus.stats.upgrades == 0
    bus.check_invariants()


def test_mesi_shared_read_installs_shared():
    bus = make_bus(protocol="mesi")
    bus.read(0, 5)
    bus.read(1, 5)  # second reader: E holder downgrades, both SHARED
    assert bus.caches[0].probe(5) == State.SHARED
    assert bus.caches[1].probe(5) == State.SHARED
    # A write now needs a real upgrade.
    assert bus.write(0, 5) == FILL_UPGRADE
    bus.check_invariants()


def test_mesi_dirty_supply_still_copyback():
    bus = make_bus(protocol="mesi")
    bus.write(0, 7)
    assert bus.read(1, 7) == FILL_C2C
    bus.check_invariants()


def test_rejects_empty_cache_list():
    with pytest.raises(ConfigError):
        MOSIBus([])


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # cache id
            st.integers(min_value=0, max_value=31),  # block
            st.booleans(),  # write?
        ),
        min_size=1,
        max_size=200,
    ),
    protocol=st.sampled_from(["mosi", "msi", "mesi"]),
)
def test_invariants_hold_under_random_traffic(ops, protocol):
    """Single-writer/single-owner/mirror invariants after any trace."""
    bus = make_bus(n_caches=3, protocol=protocol, sets=4, assoc=2)
    for cache_id, block, write in ops:
        if write:
            bus.write(cache_id, block)
        else:
            bus.read(cache_id, block)
    bus.check_invariants()
    # Accounting identities.
    total_fills = bus.stats.c2c_transfers + bus.stats.memory_fetches
    assert total_fills == bus.stats.total_misses
    for side in bus.cache_stats:
        assert side.c2c_fills + side.mem_fills == side.misses
        assert sum(side.misses_by_kind.values()) == side.misses
    # Bus totals must equal the per-cache sums (the MSI copyback
    # writeback bug broke the first of these).
    sides = bus.cache_stats
    assert bus.stats.writebacks == sum(s.writebacks for s in sides)
    assert bus.stats.upgrades == sum(s.upgrades for s in sides)
    assert bus.stats.invalidations == sum(s.invalidations_received for s in sides)
    assert bus.stats.total_misses == sum(s.misses for s in sides)
    assert bus.stats.c2c_transfers == sum(s.c2c_fills for s in sides)
    assert bus.stats.memory_fetches == sum(s.mem_fills for s in sides)
