"""Bounded-memory and crash-safety properties of the streaming plane.

The point of chunked streaming is that peak memory is a function of
the *ring* (slots x chunk size), not the *trace*: a billion-reference
replay must not cost a billion references of RSS.  These tests prove
the bound empirically with :func:`resource.getrusage` in subprocess
probes — a trace well past the trace plane's spill threshold replays
inside a fixed budget, and quadrupling the trace barely moves the
peak — and prove the crash story: a consumer SIGKILLed mid-chunk
leaves segments on ``/dev/shm`` only until the next
:func:`repro.harness.traceplane.sweep_stale`, which reaps them by
ledger.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

#: Ring shape for the probes: 4 slots x 100k refs = ~3.2 MB of ring.
CHUNK_REFS = 100_000
SLOTS = 4

#: The probe forces a tiny spill threshold so even the short trace is
#: ">= 2x spill threshold": materializing it through the plane would
#: spill, streaming it never materializes at all.
SPILL_BYTES = 1_000_000

#: Reference counts: the short trace is ~16 MB materialized (16x the
#: spill threshold), the long one 4x that.
SHORT_REFS = 2_000_000
LONG_REFS = 4 * SHORT_REFS

_PROBE = textwrap.dedent(
    """
    import resource, sys
    import numpy as np
    from repro.harness.chunkring import ChunkRing
    from repro.memsys.stream import simulate_miss_curve_stream

    total = int(sys.argv[1])
    chunk_refs = int(sys.argv[2])
    slots = int(sys.argv[3])

    def synthetic_chunks():
        # Deterministic synthetic loads over a 1 MB footprint, built
        # chunk-by-chunk: the full trace never exists in this process.
        for start in range(0, total, chunk_refs):
            n = min(chunk_refs, total - start)
            idx = np.arange(start, start + n, dtype=np.uint64)
            addrs = (idx * np.uint64(2654435761)) % np.uint64(1 << 20)
            yield (addrs << np.uint64(2)) | np.uint64(1)  # packed LOADs

    ring = ChunkRing(chunk_refs=chunk_refs, slots_per_stream=slots)
    try:
        points = simulate_miss_curve_stream(
            ring.stream_chunks(synthetic_chunks()), total,
            [64 * 1024, 256 * 1024], kind="data", warmup_fraction=0.5,
        )
    finally:
        ring.close()
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(peak_kb, sum(p.misses for p in points))
    """
)


def _probe_rss(total_refs: int) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["JMMW_TRACE_PLANE_SPILL"] = str(SPILL_BYTES)
    out = subprocess.run(
        [sys.executable, "-c", _PROBE,
         str(total_refs), str(CHUNK_REFS), str(SLOTS)],
        capture_output=True, text=True, env=env, check=True, timeout=540,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    peak_kb, misses = out.stdout.split()
    assert int(misses) > 0
    return int(peak_kb)


def test_peak_rss_bounded_and_independent_of_trace_length():
    short_kb = _probe_rss(SHORT_REFS)
    long_kb = _probe_rss(LONG_REFS)
    # Materializing would add ~16 MB (short) / ~64 MB (long) plus the
    # classifier's derived arrays; the ring bound is ~3 MB.  Budget:
    # interpreter + numpy + ring + replay scratch, with headroom.
    budget_kb = 400 * 1024
    assert short_kb < budget_kb, f"short replay peaked at {short_kb} KB"
    assert long_kb < budget_kb, f"long replay peaked at {long_kb} KB"
    # 4x the trace must not cost anything like 3x16 MB more RSS: the
    # allowance covers allocator noise, not a materialized trace.
    assert long_kb - short_kb < 24 * 1024, (
        f"RSS grew {long_kb - short_kb} KB from {SHORT_REFS} to "
        f"{LONG_REFS} refs; streaming must be O(ring), not O(trace)"
    )


_CHAOS = textwrap.dedent(
    """
    import json, os, sys
    import numpy as np
    from repro.harness.chunkring import ChunkRing

    root = sys.argv[1]

    def chunks():
        while True:  # endless producer: the consumer dies first
            yield np.arange(1000, dtype=np.uint64)

    ring = ChunkRing(chunk_refs=1000, slots_per_stream=3, root=root)
    feed = ring.stream_chunks(chunks())
    next(feed)  # consume one chunk so the ring is mid-flight
    names = [s.shm.name for s in ring._streams]
    pids = [s.proc.pid for s in ring._streams]
    print(json.dumps({"generation": ring.generation, "segments": names,
                      "producers": pids}), flush=True)
    os.kill(os.getpid(), 9)  # die mid-chunk: no close(), no atexit
    """
)


def test_killed_consumer_is_fully_swept(tmp_path):
    """SIGKILL mid-chunk: ledger retired, segments reaped, producer exits.

    The kill skips ``close()`` and every atexit hook, so cleanup rests
    on the crash protocol: the ledger names the segments for
    :func:`sweep_stale` (the resource tracker may race it to the
    unlink; either way nothing survives), and the orphaned producer
    notices its dead parent and exits on its own.
    """
    root = tmp_path / "traceplane"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [sys.executable, "-c", _CHAOS, str(root)],
        capture_output=True, text=True, env=env, timeout=120,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    assert proc.returncode == -signal.SIGKILL
    info = json.loads(proc.stdout)
    ledger = root / f"{info['generation']}.ledger"
    assert ledger.exists(), "killed consumer must leave its ledger behind"

    from repro.harness.traceplane import sweep_stale

    sweep_stale(root)
    assert not ledger.exists(), "sweep must retire the dead ledger"
    shm_dir = Path("/dev/shm")
    deadline = time.time() + 10
    for name in info["segments"]:
        while (shm_dir / name).exists() and time.time() < deadline:
            time.sleep(0.1)
        assert not (shm_dir / name).exists(), f"segment {name} leaked"
    for pid in info["producers"]:
        while Path(f"/proc/{pid}").exists() and time.time() < deadline:
            time.sleep(0.1)
        assert not Path(f"/proc/{pid}").exists(), (
            f"orphaned producer {pid} kept running after its consumer died"
        )
