"""Multi-processor hierarchy: L1 filtering, write-through, shoot-downs."""

import pytest

from repro.errors import ConfigError
from repro.memsys.block import IFETCH, LOAD, STORE, encode_ref
from repro.memsys.config import MachineConfig, cmp_machine, e6000_machine
from repro.memsys.hierarchy import MemoryHierarchy


def test_l1_filters_repeated_loads():
    h = MemoryHierarchy(e6000_machine(1))
    ref = encode_ref(0x1000, LOAD)
    assert h.access(0, ref) == "mem"
    assert h.access(0, ref) == "l1"
    stats = h.proc_stats[0]
    assert stats.l1d_misses == 1
    assert stats.l1d_accesses == 2


def test_ifetch_counts_instructions():
    h = MemoryHierarchy(e6000_machine(1))
    h.access(0, encode_ref(0x100000, IFETCH))
    assert h.proc_stats[0].instructions == 8
    assert h.proc_stats[0].l1i_accesses == 1


def test_stores_are_write_through():
    """Every store reaches the L2/bus even when the L1 holds the line."""
    h = MemoryHierarchy(e6000_machine(1))
    ref = encode_ref(0x2000, STORE)
    assert h.access(0, ref) == "mem"
    assert h.access(0, ref) == "hit"  # L2 hit, not absorbed by the L1
    assert h.proc_stats[0].stores == 2


def test_sharing_generates_c2c():
    h = MemoryHierarchy(e6000_machine(2))
    h.access(0, encode_ref(0x3000, STORE))
    assert h.access(1, encode_ref(0x3000, LOAD)) == "c2c"
    assert h.total_c2c_fills == 1
    assert h.c2c_ratio() == pytest.approx(0.5)


def test_l1_shoot_down_on_remote_write():
    """A remote write must invalidate the local L1 copy too."""
    h = MemoryHierarchy(e6000_machine(2))
    h.access(0, encode_ref(0x4000, LOAD))  # cpu0 L1 + L2 hold it
    h.access(1, encode_ref(0x4000, STORE))  # invalidate cpu0 everywhere
    # cpu0's next load must go back to the bus (c2c), not hit stale L1.
    assert h.access(0, encode_ref(0x4000, LOAD)) == "c2c"


def test_shared_l2_turns_sharing_into_hits():
    """The CMP effect: processors behind one L2 do not miss on sharing."""
    shared = MemoryHierarchy(cmp_machine(n_procs=2, procs_per_l2=2))
    shared.access(0, encode_ref(0x5000, STORE))
    assert shared.access(1, encode_ref(0x5000, LOAD)) == "hit"
    assert shared.total_c2c_fills == 0


def test_private_vs_shared_l2_cache_count():
    assert MemoryHierarchy(e6000_machine(4)).bus.caches.__len__() == 4
    assert MemoryHierarchy(cmp_machine(4, 4)).bus.caches.__len__() == 1
    assert MemoryHierarchy(cmp_machine(4, 2)).bus.caches.__len__() == 2


def test_run_trace_round_robin_determinism():
    t0 = [encode_ref(64 * i, LOAD) for i in range(50)]
    t1 = [encode_ref(64 * i + 0x8000, STORE) for i in range(50)]
    a = MemoryHierarchy(e6000_machine(2))
    a.run_trace([list(t0), list(t1)])
    b = MemoryHierarchy(e6000_machine(2))
    b.run_trace([list(t0), list(t1)])
    assert [s.l2_misses for s in a.proc_stats] == [s.l2_misses for s in b.proc_stats]


def test_run_trace_wrong_width_rejected():
    h = MemoryHierarchy(e6000_machine(2))
    with pytest.raises(ConfigError):
        h.run_trace([[]])


def test_run_trace_warmup_discards_counters():
    trace = [encode_ref(64 * i, LOAD) for i in range(100)] * 2
    h = MemoryHierarchy(e6000_machine(1))
    h.run_trace([trace], warmup_fraction=0.5)
    # The second half re-touches the same blocks: all warm at L2.
    assert h.total_l2_misses == 0
    assert h.proc_stats[0].loads == len(trace) // 2


def test_data_mpki_excludes_instruction_fills():
    h = MemoryHierarchy(e6000_machine(1))
    for i in range(32):
        h.access(0, encode_ref(0x100000 + 32 * i, IFETCH))
    assert h.data_mpki() == 0.0
    assert sum(s.l2_instr_misses for s in h.proc_stats) > 0


def test_uneven_trace_lengths_complete():
    h = MemoryHierarchy(e6000_machine(2))
    t0 = [encode_ref(64 * i, LOAD) for i in range(10)]
    t1 = [encode_ref(64 * i, LOAD) for i in range(200)]
    h.run_trace([t0, t1], quantum=16)
    assert h.proc_stats[0].loads == 10
    assert h.proc_stats[1].loads == 200


def test_load_side_counters_consistent():
    h = MemoryHierarchy(e6000_machine(2))
    h.access(0, encode_ref(0x9000, STORE))
    h.access(1, encode_ref(0x9000, LOAD))
    s1 = h.proc_stats[1]
    assert s1.c2c_load_fills == 1
    assert s1.l2_load_misses == 1
    assert s1.mem_load_fills == 0
