"""Deterministic named RNG streams."""

from repro.rng import RngFactory


def test_same_name_same_stream():
    factory = RngFactory(seed=1)
    a = factory.stream("x").random(5)
    b = factory.stream("x").random(5)
    assert list(a) == list(b)


def test_different_names_differ():
    factory = RngFactory(seed=1)
    a = factory.stream("x").random(5)
    b = factory.stream("y").random(5)
    assert list(a) != list(b)


def test_run_index_perturbs_all_streams():
    base = RngFactory(seed=1)
    other = base.perturbed(run_index=1)
    assert list(base.stream("x").random(3)) != list(other.stream("x").random(3))


def test_seed_separates_factories():
    assert list(RngFactory(1).stream("x").random(3)) != list(
        RngFactory(2).stream("x").random(3)
    )
