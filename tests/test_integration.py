"""End-to-end integration: workload -> hierarchy -> CPI -> model."""

import pytest

from repro.core.config import SimConfig, e6000_machine
from repro.core.experiment import run_repeated
from repro.cpu import InOrderCpuModel
from repro.figures.common import simulate_multiprocessor, workload_for_procs
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.specjbb import SpecJbbWorkload

SIM = SimConfig(seed=21, refs_per_proc=40_000, warmup_fraction=0.5)


@pytest.mark.parametrize("workload_cls", [SpecJbbWorkload, EcperfWorkload])
def test_full_pipeline_produces_plausible_cpi(workload_cls):
    workload = workload_cls()
    bundle = workload.generate(4, SIM, RngFactory(seed=SIM.seed))
    hierarchy = MemoryHierarchy(e6000_machine(4))
    hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
    hierarchy.bus.check_invariants()
    cpi = InOrderCpuModel().cpi_for_machine(hierarchy)
    assert 1.4 < cpi.total < 4.5
    assert 0.0 < cpi.data_stall.total < 2.0


def test_multiprocessor_sharing_appears_above_two_procs():
    one = simulate_multiprocessor(workload_for_procs("specjbb", 1), 1, SIM)
    four = simulate_multiprocessor(workload_for_procs("specjbb", 4), 4, SIM)
    assert one.c2c_ratio() == 0.0
    assert four.c2c_ratio() > 0.15


def test_shared_cache_removes_coherence_misses():
    private = simulate_multiprocessor(
        workload_for_procs("ecperf", 4), 4, SIM, procs_per_l2=1
    )
    shared = simulate_multiprocessor(
        workload_for_procs("ecperf", 4), 4, SIM, procs_per_l2=4
    )
    assert shared.total_c2c_fills == 0
    assert private.total_c2c_fills > 0


def test_msi_vs_mosi_copybacks():
    """MOSI keeps an owner; MSI pays a memory update per read-supply.

    On migratory (RMW) sharing the two protocols see similar copyback
    counts, but ECperf's read-shared beans let MOSI's OWNED state keep
    supplying, while MSI hands the line to memory — visible both as
    fewer copybacks and as the extra writebacks MSI's supply path
    performs.
    """
    mosi = simulate_multiprocessor(
        workload_for_procs("ecperf", 4), 4, SIM, protocol="mosi"
    )
    msi = simulate_multiprocessor(
        workload_for_procs("ecperf", 4), 4, SIM, protocol="msi"
    )
    assert mosi.total_c2c_fills >= msi.total_c2c_fills
    assert msi.bus.stats.writebacks > mosi.bus.stats.writebacks


def test_variability_methodology_end_to_end():
    """Alameldeen-Wood style: repeated runs give a mean and spread."""

    def one_run(factory):
        workload = SpecJbbWorkload(warehouses=2)
        bundle = workload.generate(2, SIM.with_refs(15_000), factory)
        hierarchy = MemoryHierarchy(e6000_machine(2))
        hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
        return {"c2c_ratio": hierarchy.c2c_ratio()}

    results = run_repeated(one_run, n_runs=3, seed=77)
    ratio = results["c2c_ratio"]
    assert ratio.n == 3
    assert 0.0 <= ratio.mean <= 1.0


def test_same_seed_same_results():
    a = simulate_multiprocessor(workload_for_procs("ecperf", 2), 2, SIM)
    b = simulate_multiprocessor(workload_for_procs("ecperf", 2), 2, SIM)
    assert a.total_l2_misses == b.total_l2_misses
    assert a.total_c2c_fills == b.total_c2c_fills


def test_public_api_exports():
    import repro

    assert repro.__version__
    assert repro.E6000.n_procs == 16
    for name in ("MemoryHierarchy", "SetAssociativeCache", "simulate_miss_curve"):
        assert hasattr(repro, name)
