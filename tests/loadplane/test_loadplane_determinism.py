"""Determinism and memory bounds of the load plane.

Two contracts:

- **bit-parity** — the same sweep produces byte-identical reports
  serial and under ``jobs=N`` (the harness re-seeds per task, and the
  engine draws from one named stream per run), and rerunning the same
  seed reproduces every number exactly;
- **bounded RSS** — a million-user run costs the O(users) column
  arrays and nothing more: subprocess probes (mirroring
  ``tests/memsys/test_stream_memory.py``) compare ``ru_maxrss`` at
  10^4 vs 10^6 users against a fixed budget.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.loadplane import SweepConfig, simulate_loadplane, sweep_tasks
from repro.loadplane.sweep import run_saturation

SMALL_SWEEP = SweepConfig(
    populations=(8, 64, 512),
    threads=4,
    connections=2,
    service_s=0.02,
    think_s=0.8,
    windows=4,
    window_s=0.5,
    seed=77,
)


def _report(jobs: int) -> str:
    return run_saturation(SMALL_SWEEP, jobs=jobs).render()


def test_serial_and_parallel_sweeps_are_bit_identical():
    assert _report(jobs=1) == _report(jobs=3)


def test_same_seed_reproduces_every_number():
    a = run_saturation(SMALL_SWEEP, jobs=1)
    b = run_saturation(SMALL_SWEEP, jobs=1)
    for left, right in zip(a.results, b.results):
        assert left.stable == right.stable
        assert left.events == right.events
    assert a.knee_users == b.knee_users


def test_different_seed_perturbs_the_run():
    import dataclasses

    other = dataclasses.replace(SMALL_SWEEP, seed=78)
    a = run_saturation(SMALL_SWEEP, jobs=1)
    b = run_saturation(other, jobs=1)
    assert any(
        x.stable.completions != y.stable.completions
        for x, y in zip(a.results, b.results)
    )


def test_sweep_tasks_have_distinct_cache_keys():
    tasks = sweep_tasks(SMALL_SWEEP)
    keys = {t.cache_key for t in tasks}
    assert len(keys) == len(tasks)
    assert all(t.cache_key for t in tasks)


def test_single_run_is_deterministic_under_repetition():
    config = SMALL_SWEEP.point(64)
    first = simulate_loadplane(config)
    second = simulate_loadplane(config)
    assert first.stable == second.stable
    assert [w.completions for w in first.windows] == [
        w.completions for w in second.windows
    ]


# -- bounded RSS at a million users -----------------------------------------

_PROBE = textwrap.dedent(
    """
    import resource, sys
    from repro.loadplane import LoadPlaneConfig, simulate_loadplane

    n_users = int(sys.argv[1])
    result = simulate_loadplane(LoadPlaneConfig(
        n_users=n_users, threads=8, connections=8, service_s=0.02,
        think_s=1.2, windows=6, window_s=0.5, seed=11,
    ))
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(peak_kb, result.stable.completions)
    """
)


def _probe_rss(n_users: int) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    out = subprocess.run(
        [sys.executable, "-c", _PROBE, str(n_users)],
        capture_output=True, text=True, env=env, check=True, timeout=540,
        cwd=str(Path(__file__).resolve().parents[2]),
    )
    peak_kb, completions = out.stdout.split()
    assert int(completions) > 0
    return int(peak_kb)


def test_million_user_rss_within_budget_of_ten_thousand():
    small_kb = _probe_rss(10_000)
    large_kb = _probe_rss(1_000_000)
    # The columns + pools cost ~58 MB per million users (26 B of
    # columns plus four int64 side arrays).  Allow 2x for allocator
    # and transient numpy scratch; anything like a per-user object
    # model would blow past this by an order of magnitude.
    assert large_kb - small_kb < 120 * 1024, (
        f"RSS grew {large_kb - small_kb} KB from 1e4 to 1e6 users; "
        f"the load plane must stay O(columns), not O(objects)"
    )
    assert large_kb < 400 * 1024, f"absolute peak {large_kb} KB too high"
