"""Frozen golden for ``jmmw loadplane --quick``.

The load-plane report is seeded end-to-end — population placement,
every exponential draw, the histogram bins, the table renderer — so
its stdout is a content hash of the whole stack, exactly like the
figure goldens.  Regenerate intentionally with::

    pytest tests/loadplane/test_golden_report.py --update-goldens
"""

from pathlib import Path

from repro.cli import main

GOLDEN = (
    Path(__file__).parent.parent / "figures" / "goldens" / "loadplane.quick.txt"
)


def test_quick_report_matches_golden(capsys, request):
    rc = main(["loadplane", "--quick", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    if request.config.getoption("--update-goldens"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(out, encoding="utf-8")
        import pytest

        pytest.skip("golden for loadplane rewritten")
    assert GOLDEN.exists(), (
        f"missing golden {GOLDEN}; regenerate with pytest --update-goldens"
    )
    assert out == GOLDEN.read_text(encoding="utf-8"), (
        "loadplane --quick stdout drifted from its golden; if the "
        "change is intentional rerun with --update-goldens"
    )


def test_golden_carries_the_analysis_lines():
    assert GOLDEN.exists(), "golden was never generated"
    text = GOLDEN.read_text(encoding="utf-8")
    assert "saturation sweep:" in text
    assert "bottleneck: threads" in text
    assert "measured knee:" in text
    assert "*=measured" in text  # the ASCII curve rides along
