"""The load plane vs analytic queueing oracles, adversarially sampled.

Hypothesis draws random operating points — population, servers,
service and think times for the closed loop; arrival rate, servers and
service for the open loop with utilization capped below 0.9 — and each
simulated run must land inside a statistical acceptance band around
the exact M/M/c / M/M/c//N prediction (a ~5-sigma band on the stable
completion count, so false alarms are vanishingly rare while real bias
is caught).  The operational laws are asserted as float-exact
identities per window, not statistics: they compare two *independent*
accountings of the same integrals.

The seeded-defect tests close the loop on the suite itself: biasing
the think-time sampler or breaking the residence clipping must make
the respective check fail loudly — proving the oracles have teeth.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvariantViolation
from repro.loadplane import (
    LoadPlaneConfig,
    closed_mmc_metrics,
    mmc_metrics,
    simulate_loadplane,
)
from repro.loadplane import engine as engine_mod

#: Acceptance band: |completions - X*T| <= SIGMAS * sqrt(X*T) + SLACK.
#: The stable-period completion count is Poisson-like; 5 sigma plus a
#: small absolute slack (for near-empty bands) makes a false alarm a
#: <1e-6 event per example while a 2x-biased sampler overshoots the
#: band many times over.
SIGMAS = 5.0
SLACK = 5.0


def _completions_band(expected_rate: float, duration_s: float) -> tuple[float, float]:
    expected = expected_rate * duration_s
    half_width = SIGMAS * math.sqrt(expected) + SLACK
    return expected - half_width, expected + half_width


def _assert_in_band(result, expected_rate: float) -> None:
    stable = result.stable
    lo, hi = _completions_band(expected_rate, stable.duration_s)
    assert lo <= stable.completions <= hi, (
        f"stable completions {stable.completions} outside "
        f"[{lo:.1f}, {hi:.1f}] for predicted X={expected_rate:.3f}/s "
        f"over {stable.duration_s:.1f}s"
    )


def _assert_exact_operational_identities(result) -> None:
    """Little's and the utilization law as per-window float identities."""
    assert result.identity_errors == ()
    threads = result.config.threads
    for w in result.windows:
        # N = X * R with N from the area integral and X * R expanded
        # from the independent per-user residence accounting.
        assert w.mean_in_system * w.duration_s == pytest.approx(
            w.residence_n, rel=1e-9, abs=1e-9
        )
        # U * c * T = sum of per-user thread-holding time.
        assert w.thread_utilization(threads) * threads * w.duration_s == (
            pytest.approx(w.residence_busy_threads, rel=1e-9, abs=1e-9)
        )


closed_points = st.fixed_dictionaries(
    {
        "n_users": st.integers(min_value=1, max_value=40),
        "threads": st.integers(min_value=1, max_value=4),
        "service_ms": st.floats(min_value=10.0, max_value=50.0),
        "think_s": st.floats(min_value=0.2, max_value=2.0),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(point=closed_points)
def test_closed_loop_converges_to_the_repairman_chain(point):
    config = LoadPlaneConfig(
        n_users=point["n_users"],
        threads=point["threads"],
        connections=1,
        service_s=point["service_ms"] / 1e3,
        think_s=point["think_s"],
        windows=10,
        window_s=2.0,
        seed=point["seed"],
    )
    result = simulate_loadplane(config)
    predicted = closed_mmc_metrics(
        config.n_users, config.think_s, config.service_s, config.threads
    )
    _assert_in_band(result, predicted.throughput)
    _assert_exact_operational_identities(result)


open_points = st.fixed_dictionaries(
    {
        "servers": st.integers(min_value=1, max_value=4),
        "service_ms": st.floats(min_value=10.0, max_value=50.0),
        "rho": st.floats(min_value=0.05, max_value=0.9, exclude_max=True),
        "seed": st.integers(min_value=0, max_value=2**31),
    }
)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(point=open_points)
def test_open_loop_converges_to_mmc(point):
    service_s = point["service_ms"] / 1e3
    arrival_rate = point["rho"] * point["servers"] / service_s
    predicted = mmc_metrics(arrival_rate, service_s, point["servers"])
    # Request slots far beyond the predicted population: no drops, so
    # the slot-capped process is the unbounded M/M/c to this horizon.
    slots = max(64, int(20 * predicted.mean_in_system))
    config = LoadPlaneConfig(
        n_users=slots,
        threads=point["servers"],
        connections=1,
        service_s=service_s,
        think_s=0.0,
        open_loop=True,
        arrival_rate=arrival_rate,
        windows=10,
        window_s=2.0,
        seed=point["seed"],
    )
    result = simulate_loadplane(config)
    assert result.stable.drops == 0
    _assert_in_band(result, arrival_rate)
    _assert_exact_operational_identities(result)
    # Utilization tracks rho: U's estimator is an average over busy
    # servers, tighter than the completion count; 5 sigma of the
    # per-completion contribution bounds it comfortably.
    sigma_u = point["rho"] / math.sqrt(
        max(result.stable.completions, 1)
    )
    assert result.stable.thread_utilization == pytest.approx(
        predicted.utilization, abs=SIGMAS * sigma_u + 0.01
    )


def test_closed_loop_response_time_tracks_the_chain():
    # One fixed moderately-loaded point, long horizon: operational
    # R = N/X must match the chain's response time within the band
    # implied by the completion noise.
    config = LoadPlaneConfig(
        n_users=64, threads=4, connections=1, service_s=0.03,
        think_s=0.8, windows=12, window_s=2.5, seed=1717,
    )
    result = simulate_loadplane(config)
    predicted = closed_mmc_metrics(64, 0.8, 0.03, 4)
    assert result.stable.response_time_s == pytest.approx(
        predicted.response_s, rel=0.15
    )
    assert result.stable.mean_in_system == pytest.approx(
        predicted.mean_in_system, rel=0.15
    )


# -- seeded defects: the oracles must have teeth ----------------------------


def test_biased_think_sampler_fails_the_throughput_oracle(monkeypatch):
    """A 2x-fast think sampler must overshoot the acceptance band.

    This is the canonical silent workload-generator bug: every think
    time is drawn from the right distribution family with the wrong
    rate.  Throughput stays plausible-looking (the run completes, no
    invariant trips) but the analytic cross-check must reject it.
    """
    config = LoadPlaneConfig(
        n_users=24, threads=4, connections=1, service_s=0.02,
        think_s=1.0, windows=10, window_s=2.0, seed=42,
    )
    predicted = closed_mmc_metrics(24, 1.0, 0.02, 4)

    healthy = simulate_loadplane(config)
    _assert_in_band(healthy, predicted.throughput)

    monkeypatch.setattr(engine_mod, "_THINK_RATE_SCALE", 2.0)
    biased = simulate_loadplane(config)
    lo, hi = _completions_band(
        predicted.throughput, biased.stable.duration_s
    )
    assert biased.stable.completions > hi, (
        "a 2x-biased think sampler must be caught by the oracle band"
    )


def test_broken_residence_clipping_fails_the_identity_audit(monkeypatch):
    """Unclipped sojourns must trip the operational-law audit.

    Dropping the window clip double-counts the pre-window part of any
    sojourn that straddles a boundary — the kind of off-by-a-window
    accounting slip that leaves throughput untouched and would
    otherwise skew response times silently.
    """
    monkeypatch.setattr(engine_mod, "_window_clip", lambda t0, start: t0)
    config = LoadPlaneConfig(
        n_users=40, threads=2, connections=1, service_s=0.05,
        think_s=0.2, windows=8, window_s=0.25, seed=7,
    )
    with pytest.raises(InvariantViolation):
        simulate_loadplane(config)
    result = simulate_loadplane(config, check_identities=False)
    assert result.identity_errors != ()
