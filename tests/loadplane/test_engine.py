"""Engine mechanics: state containers, histograms, windows, transitions."""

import pickle

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigError, SimulationError
from repro.loadplane import (
    LatencyHistogram,
    LoadPlaneConfig,
    UserColumns,
    FifoRing,
    IndexPool,
    profile_for,
    simulate_loadplane,
)
from repro.loadplane.windows import WindowStats, operational_identity_errors
from repro.workloads.mix import (
    ECPERF_MIX,
    SPECJBB_MIX,
    UNIFORM_PROFILE,
    service_profile,
)


# -- batched state containers -----------------------------------------------


def test_user_columns_footprint_is_linear_and_small():
    cols = UserColumns(10_000)
    # phase + txn (1 B each) + three float64 timestamps = 26 B/user.
    assert cols.nbytes() == 10_000 * 26
    with pytest.raises(ConfigError):
        UserColumns(0)


def test_index_pool_add_remove_sample():
    slots = np.full(16, -1, dtype=np.int64)
    pool = IndexPool(8, slot_of=slots)
    for user in (3, 7, 11):
        pool.add(user)
    pool.remove(7)
    assert pool.size == 2
    # The survivor set is exactly {3, 11} whatever the slot order.
    members = {pool.sample_remove(0.0), pool.sample_remove(0.99)}
    assert members == {3, 11}
    assert pool.size == 0


def test_index_pool_misuse_is_loud():
    slots = np.full(4, -1, dtype=np.int64)
    pool = IndexPool(2, slot_of=slots)
    with pytest.raises(SimulationError):
        pool.remove(1)  # never added
    with pytest.raises(SimulationError):
        pool.sample_remove(0.5)  # empty
    with pytest.raises(SimulationError):
        pool.pop()  # empty
    pool.add(0)
    pool.add(1)
    with pytest.raises(SimulationError):
        pool.add(2)  # over capacity


def test_fifo_ring_preserves_order_and_wraps():
    ring = FifoRing(3)
    for user in (5, 6, 7):
        ring.push(user)
    assert ring.pop() == 5
    ring.push(8)  # wraps around the freed head slot
    assert [ring.pop(), ring.pop(), ring.pop()] == [6, 7, 8]
    with pytest.raises(SimulationError):
        ring.pop()
    for user in (1, 2, 3):
        ring.push(user)
    with pytest.raises(SimulationError):
        ring.push(4)


# -- streaming histogram ----------------------------------------------------


def test_histogram_quantiles_within_declared_error():
    hist = LatencyHistogram()
    values = np.linspace(0.001, 1.0, 10_001)
    for v in values:
        hist.add(float(v))
    # Growth 1.04 guarantees ~2% relative quantile error.
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(values, q))
        assert hist.quantile(q) == pytest.approx(exact, rel=0.03)
    assert hist.mean_s == pytest.approx(float(values.mean()), rel=1e-9)


def test_histogram_merge_equals_single_pass():
    a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for i, v in enumerate(np.geomspace(1e-4, 10.0, 500)):
        (a if i % 2 else b).add(float(v))
        both.add(float(v))
    a.merge(b)
    assert a.total == both.total
    assert np.array_equal(a.counts, both.counts)
    assert a.percentiles() == both.percentiles()


def test_histogram_guards():
    hist = LatencyHistogram()
    with pytest.raises(AnalysisError):
        hist.add(-1e-9)
    with pytest.raises(AnalysisError):
        hist.merge(LatencyHistogram(growth=1.5))
    with pytest.raises(ConfigError):
        hist.quantile(1.5)
    with pytest.raises(ConfigError):
        LatencyHistogram(growth=1.0)
    assert hist.quantile(0.5) == 0.0  # empty histogram


# -- window audit -----------------------------------------------------------


def test_operational_identity_audit_flags_divergence():
    clean = WindowStats(start_s=0.0, end_s=1.0, area_n=3.0, residence_n=3.0)
    assert operational_identity_errors([clean]) == []
    broken = WindowStats(start_s=0.0, end_s=1.0, area_n=3.0, residence_n=3.1)
    errors = operational_identity_errors([clean, broken])
    assert len(errors) == 1
    assert "Little" in errors[0]


# -- service profiles -------------------------------------------------------


def test_service_profiles_are_normalized():
    for mix in (SPECJBB_MIX, ECPERF_MIX):
        profile = service_profile(mix)
        assert sum(profile.probs) == pytest.approx(1.0)
        mean = sum(p * w for p, w in zip(profile.probs, profile.weights))
        assert mean == pytest.approx(1.0)
    assert max(service_profile(SPECJBB_MIX).db_share) == 0.0
    assert min(service_profile(ECPERF_MIX).db_share) > 0.0
    with pytest.raises(ConfigError):
        service_profile([])


def test_profile_for_names():
    assert profile_for("uniform") is UNIFORM_PROFILE
    assert profile_for("ecperf").names == tuple(t.name for t in ECPERF_MIX)
    with pytest.raises(ConfigError):
        profile_for("tpcw")


# -- engine behavior --------------------------------------------------------


def test_config_validation():
    good = dict(n_users=10, threads=2, connections=2, service_s=0.01)
    LoadPlaneConfig(**good)
    for bad in (
        dict(good, n_users=0),
        dict(good, threads=0),
        dict(good, service_s=0.0),
        dict(good, think_s=-1.0),
        dict(good, open_loop=True),  # needs arrival_rate
        dict(good, arrival_rate=5.0),  # closed loop with a rate
        dict(good, windows=0),
        dict(good, warmup_fraction=1.0),
        dict(good, workload="tpcw"),
        dict(good, max_events=0),
    ):
        with pytest.raises(ConfigError):
            LoadPlaneConfig(**bad)


def test_ecperf_mix_contends_for_connections():
    result = simulate_loadplane(
        LoadPlaneConfig(
            n_users=200, threads=16, connections=2, service_s=0.03,
            think_s=0.5, workload="ecperf", windows=8, window_s=1.0, seed=3,
        )
    )
    # A 2-connection pool under 16 threads of ECperf load must block
    # and the DB phase must consume connection-pool tokens.
    assert result.conn_blocked > 0
    assert result.conn_peak == 2
    assert result.stable.conn_utilization > 0.2
    assert result.identity_errors == ()


def test_zero_think_closed_loop_pins_all_users_in_system():
    result = simulate_loadplane(
        LoadPlaneConfig(
            n_users=50, threads=4, connections=1, service_s=0.01,
            think_s=0.0, windows=6, window_s=1.0, seed=5,
        )
    )
    # Every user is always at the station; the station saturates.
    assert result.stable.mean_in_system == pytest.approx(50.0, rel=1e-6)
    assert result.stable.thread_utilization == pytest.approx(1.0, abs=1e-6)
    assert result.stable.throughput == pytest.approx(400.0, rel=0.15)


def test_open_loop_drops_when_slots_exhaust():
    # 4 request slots against an offered load that wants ~20 in
    # system: the drop counter must fire and completions continue.
    result = simulate_loadplane(
        LoadPlaneConfig(
            n_users=4, threads=1, connections=1, service_s=0.05,
            think_s=0.0, open_loop=True, arrival_rate=100.0,
            windows=6, window_s=1.0, seed=9,
        )
    )
    assert result.stable.drops > 0
    assert result.stable.completions > 0
    assert result.identity_errors == ()


def test_event_budget_is_enforced():
    with pytest.raises(SimulationError):
        simulate_loadplane(
            LoadPlaneConfig(
                n_users=100, threads=4, connections=1, service_s=0.001,
                think_s=0.01, windows=4, window_s=5.0, max_events=500,
            )
        )


def test_warm_and_cold_start_agree_on_the_steady_state():
    base = dict(
        n_users=120, threads=8, connections=2, service_s=0.02,
        think_s=0.6, windows=10, window_s=2.0, seed=21,
    )
    warm = simulate_loadplane(LoadPlaneConfig(**base, warm_start=True))
    cold = simulate_loadplane(LoadPlaneConfig(**base, warm_start=False))
    assert warm.stable.throughput == pytest.approx(
        cold.stable.throughput, rel=0.15
    )


def test_result_is_picklable_for_the_harness():
    result = simulate_loadplane(
        LoadPlaneConfig(
            n_users=20, threads=2, connections=1, service_s=0.01,
            windows=3, window_s=0.5,
        )
    )
    clone = pickle.loads(pickle.dumps(result))
    assert clone.stable == result.stable
    assert clone.events == result.events


def test_obs_counters_published_when_enabled(obs_enabled):
    simulate_loadplane(
        LoadPlaneConfig(
            n_users=20, threads=2, connections=1, service_s=0.01,
            windows=3, window_s=0.5,
        )
    )
    counters = obs_enabled.COUNTERS.snapshot()
    assert counters.get("loadplane/events", 0) > 0
    assert counters.get("loadplane/completions", 0) > 0
