"""Closed-form layer: Erlang C, M/M/c, the closed chain, the laws."""

import math

import pytest

from repro.errors import ConfigError
from repro.loadplane import (
    bottleneck_analysis,
    closed_mmc_metrics,
    erlang_c,
    interactive_response_time,
    littles_law,
    measured_knee,
    mm1_metrics,
    mmc_metrics,
    utilization_law,
)


def test_erlang_c_known_values():
    # M/M/1: P(wait) = rho.
    assert erlang_c(1, 0.5) == pytest.approx(0.5)
    # M/M/2 at rho = 0.5: the textbook value is exactly 1/3.
    assert erlang_c(2, 1.0) == pytest.approx(1 / 3)
    # Zero offered load never waits; saturation always waits.
    assert erlang_c(4, 0.0) == 0.0
    assert erlang_c(4, 4.0) == 1.0
    assert erlang_c(4, 17.0) == 1.0


def test_erlang_c_stable_at_scale():
    # Hundreds of servers near saturation: the factorial form would
    # overflow, the recurrence must stay in (0, 1].
    p = erlang_c(500, 495.0)
    assert 0.0 < p <= 1.0
    with pytest.raises(ConfigError):
        erlang_c(0, 1.0)
    with pytest.raises(ConfigError):
        erlang_c(2, -1.0)


def test_mm1_closed_form():
    # W = 1 / (mu - lambda), N = rho / (1 - rho).
    m = mm1_metrics(arrival_rate=50.0, service_s=0.01)
    assert m.utilization == pytest.approx(0.5)
    assert m.response_s == pytest.approx(1.0 / (100.0 - 50.0))
    assert m.mean_in_system == pytest.approx(0.5 / 0.5)


def test_mmc_internal_consistency():
    m = mmc_metrics(arrival_rate=120.0, service_s=0.02, servers=4)
    # Little's law ties every pair of the reported aggregates.
    assert m.mean_in_system == pytest.approx(m.arrival_rate * m.response_s)
    assert m.mean_queue == pytest.approx(m.arrival_rate * m.queue_wait_s)
    # In-system = queued + in service (the offered load in Erlangs).
    assert m.mean_in_system == pytest.approx(
        m.mean_queue + m.arrival_rate * m.service_s
    )


def test_mmc_rejects_saturation():
    with pytest.raises(ConfigError):
        mmc_metrics(arrival_rate=400.0, service_s=0.02, servers=8)
    with pytest.raises(ConfigError):
        mmc_metrics(arrival_rate=0.0, service_s=0.02, servers=8)


def test_closed_chain_single_user():
    # One user alternates think/service: X = 1 / (Z + S) exactly.
    m = closed_mmc_metrics(n_users=1, think_s=1.0, service_s=0.25, servers=4)
    assert m.throughput == pytest.approx(1.0 / 1.25)
    assert m.response_s == pytest.approx(0.25)
    assert m.cycle_s == pytest.approx(1.25)


def test_closed_chain_saturates_at_capacity():
    m = closed_mmc_metrics(n_users=5000, think_s=1.2, service_s=0.02, servers=8)
    assert m.throughput == pytest.approx(8 / 0.02, rel=1e-6)
    assert m.utilization == pytest.approx(1.0, abs=1e-6)
    # Little at the full cycle: N = X * (R + Z).
    assert m.n_users == pytest.approx(m.throughput * m.cycle_s)


def test_closed_chain_zero_think_degenerate():
    m = closed_mmc_metrics(n_users=50, think_s=0.0, service_s=0.01, servers=4)
    assert m.throughput == pytest.approx(400.0)
    assert m.mean_in_system == 50.0
    few = closed_mmc_metrics(n_users=2, think_s=0.0, service_s=0.01, servers=4)
    assert few.throughput == pytest.approx(200.0)


def test_closed_chain_light_load_matches_no_queueing():
    # Far below the knee the station barely queues: X ~= N / (Z + S).
    m = closed_mmc_metrics(n_users=10, think_s=2.0, service_s=0.01, servers=8)
    assert m.throughput == pytest.approx(10 / 2.01, rel=0.01)


def test_closed_chain_scales_to_a_million_users():
    m = closed_mmc_metrics(
        n_users=1_000_000, think_s=1.2, service_s=0.02, servers=8
    )
    assert m.throughput == pytest.approx(400.0, rel=1e-9)
    assert m.mean_in_system == pytest.approx(1_000_000 - 400 * 1.2, rel=1e-6)
    assert math.isfinite(m.response_s)


def test_closed_chain_validation():
    with pytest.raises(ConfigError):
        closed_mmc_metrics(0, 1.0, 0.01, 4)
    with pytest.raises(ConfigError):
        closed_mmc_metrics(10, -1.0, 0.01, 4)
    with pytest.raises(ConfigError):
        closed_mmc_metrics(10, 1.0, 0.0, 4)
    with pytest.raises(ConfigError):
        closed_mmc_metrics(10, 1.0, 0.01, 0)


def test_operational_laws():
    assert littles_law(throughput=100.0, response_s=0.05) == pytest.approx(5.0)
    assert utilization_law(100.0, 0.02, 4) == pytest.approx(0.5)
    assert interactive_response_time(
        n_users=24, throughput=10.0, think_s=1.0
    ) == pytest.approx(1.4)
    with pytest.raises(ConfigError):
        utilization_law(100.0, 0.02, 0)
    with pytest.raises(ConfigError):
        interactive_response_time(24, 0.0, 1.0)


def test_bottleneck_names_the_saturating_station():
    b = bottleneck_analysis(
        demands_s={"threads": 0.02, "connections": 0.005},
        capacities={"threads": 8, "connections": 1},
        think_s=1.2,
    )
    # connections: 1/0.005 = 200/s < threads: 8/0.02 = 400/s.
    assert b.station == "connections"
    assert b.max_throughput == pytest.approx(200.0)
    assert b.knee_users == pytest.approx(200.0 * (1.2 + 0.025))
    assert "connections" in b.describe()


def test_bottleneck_zero_demand_station_never_saturates():
    b = bottleneck_analysis(
        demands_s={"threads": 0.02, "connections": 0.0},
        capacities={"threads": 8, "connections": 8},
        think_s=1.2,
    )
    assert b.station == "threads"
    with pytest.raises(ConfigError):
        bottleneck_analysis({"a": 0.0}, {"a": 1}, 1.0)
    with pytest.raises(ConfigError):
        bottleneck_analysis({"a": 0.01}, {"b": 1}, 1.0)


def test_measured_knee_detects_falloff():
    # Linear up to the knee (X = N / 1.22), flat after.
    points = [(8, 6.5), (32, 26.2), (128, 104.0), (512, 396.0), (2048, 400.0)]
    assert measured_knee(points, think_s=1.2, base_response_s=0.02) == 2048


def test_measured_knee_ignores_a_noisy_dip():
    # The 32-user point dips below the 0.9x line but the curve
    # recovers at 128: a persistent-falloff knee must skip it.
    points = [(8, 6.5), (32, 21.0), (128, 104.0), (2048, 400.0)]
    assert measured_knee(points, think_s=1.2, base_response_s=0.02) == 2048


def test_measured_knee_none_in_linear_regime():
    points = [(8, 6.5), (32, 26.2), (128, 104.0)]
    assert measured_knee(points, think_s=1.2, base_response_s=0.02) is None
    with pytest.raises(ConfigError):
        measured_knee(points, think_s=0.0, base_response_s=0.0)
