"""Parameter-sweep helper."""

import pytest

from repro.core.sweep import SweepResult, sweep
from repro.errors import AnalysisError


def test_sweep_basic():
    result = sweep("n", [1, 2, 3], lambda n: float(n * n), metric="square")
    assert result.values() == [1.0, 4.0, 9.0]
    assert result.at(2) == 4.0
    assert result.argbest() == 1
    assert result.argbest(maximize=True) == 3


def test_monotonicity_checks():
    up = sweep("n", [1, 2, 3], float)
    assert up.is_monotonic(increasing=True)
    assert not up.is_monotonic(increasing=False)
    bumpy = sweep("n", [1, 2, 3], lambda n: [1.0, 3.0, 2.95][n - 1])
    assert bumpy.is_monotonic(increasing=True, tolerance=0.1)


def test_render():
    text = sweep("k", ["a", "b"], lambda k: 1.0).render()
    assert "k" in text and "a" in text


def test_validation():
    with pytest.raises(AnalysisError):
        sweep("n", [], float)
    result = sweep("n", [1], float)
    with pytest.raises(AnalysisError):
        result.at(9)
    with pytest.raises(AnalysisError):
        SweepResult(knob="n", metric="m", points=())


def test_at_uses_index_and_matches_scan():
    result = sweep("n", list(range(200)), float)
    assert result._index[150] == 150.0  # index built eagerly
    assert result.at(150) == 150.0
    assert result.at(0) == 0.0  # zero metric value is not a miss


def test_at_duplicate_knob_values_first_wins():
    result = SweepResult(knob="n", metric="m", points=((1, 10.0), (1, 20.0)))
    assert result.at(1) == 10.0


def test_at_unhashable_knob_falls_back_to_scan():
    result = SweepResult(knob="cfg", metric="m", points=(([1, 2], 5.0),))
    assert result.at([1, 2]) == 5.0
    with pytest.raises(AnalysisError):
        result.at([3])


def test_argbest_breaks_ties_toward_earliest_point():
    tied = SweepResult(
        knob="n", metric="m", points=(("a", 2.0), ("b", 1.0), ("c", 1.0), ("d", 2.0))
    )
    assert tied.argbest() == "b"  # first of the 1.0 tie
    assert tied.argbest(maximize=True) == "a"  # first of the 2.0 tie


def _cube(n) -> float:
    return float(n) ** 3


def test_parallel_sweep_matches_serial():
    values = [1, 2, 3, 4, 5]
    serial = sweep("n", values, _cube)
    parallel = sweep("n", values, _cube, jobs=2)
    assert parallel.points == serial.points


def _fail_on_three(n) -> float:
    if n == 3:
        raise ValueError("bad point")
    return float(n)


def test_parallel_sweep_failed_point_raises():
    with pytest.raises(AnalysisError, match="sweep over n failed"):
        sweep("n", [1, 2, 3], _fail_on_three, jobs=2)
