"""Parameter-sweep helper."""

import pytest

from repro.core.sweep import SweepResult, sweep
from repro.errors import AnalysisError


def test_sweep_basic():
    result = sweep("n", [1, 2, 3], lambda n: float(n * n), metric="square")
    assert result.values() == [1.0, 4.0, 9.0]
    assert result.at(2) == 4.0
    assert result.argbest() == 1
    assert result.argbest(maximize=True) == 3


def test_monotonicity_checks():
    up = sweep("n", [1, 2, 3], float)
    assert up.is_monotonic(increasing=True)
    assert not up.is_monotonic(increasing=False)
    bumpy = sweep("n", [1, 2, 3], lambda n: [1.0, 3.0, 2.95][n - 1])
    assert bumpy.is_monotonic(increasing=True, tolerance=0.1)


def test_render():
    text = sweep("k", ["a", "b"], lambda k: 1.0).render()
    assert "k" in text and "a" in text


def test_validation():
    with pytest.raises(AnalysisError):
        sweep("n", [], float)
    result = sweep("n", [1], float)
    with pytest.raises(AnalysisError):
        result.at(9)
    with pytest.raises(AnalysisError):
        SweepResult(knob="n", metric="m", points=())
