"""High-level characterization API."""

from repro.core.characterize import characterize
from repro.core.config import SimConfig

SIM = SimConfig(seed=9, refs_per_proc=30_000, warmup_fraction=0.5)


def test_characterize_specjbb():
    report = characterize("specjbb", n_procs=2, sim=SIM)
    assert report.workload == "specjbb"
    assert report.n_procs == 2
    assert report.l1d_mpki > 0
    assert 0.0 <= report.c2c_ratio <= 1.0
    assert 1.3 < report.cpi.total < 5.0
    text = report.render()
    assert "CPI (total)" in text and "specjbb" in text


def test_characterize_workloads_differ():
    jbb = characterize("specjbb", n_procs=2, sim=SIM)
    ec = characterize("ecperf", n_procs=2, sim=SIM)
    assert ec.code_footprint_kb > jbb.code_footprint_kb


def test_quick_characterization_renders():
    from repro import quick_characterization

    text = quick_characterization("ecperf", n_procs=2)
    assert "ecperf on 2 processors" in text


def test_quick_characterization_warehouse_cap():
    from repro import quick_characterization

    # Asking for fewer warehouses than processors caps the processor
    # count (SPECjbb has one thread per warehouse).
    text = quick_characterization("specjbb", n_procs=4, warehouses=2)
    assert "specjbb on 2 processors" in text
