"""Multi-run experiment support (variability methodology)."""

import pytest

from repro.core.experiment import Experiment, MultiRunResult, run_repeated
from repro.errors import AnalysisError


def test_multi_run_result_stats():
    result = MultiRunResult(name="x", samples=(1.0, 2.0, 3.0))
    assert result.mean == pytest.approx(2.0)
    assert result.std == pytest.approx(1.0)
    lo, hi = result.error_bar
    assert (lo, hi) == (pytest.approx(1.0), pytest.approx(3.0))
    assert "±" in str(result)
    assert "±" not in str(MultiRunResult(name="x", samples=(1.0,)))


def test_empty_samples_rejected():
    with pytest.raises(AnalysisError):
        MultiRunResult(name="x", samples=())


def test_run_repeated_perturbs_runs():
    def run(factory):
        return float(factory.stream("noise").random())

    results = run_repeated(run, n_runs=5, seed=3, name="noise")
    assert results["noise"].n == 5
    assert results["noise"].std > 0.0


def test_run_repeated_mapping_results():
    def run(factory):
        u = float(factory.stream("u").random())
        return {"a": u, "b": 2 * u}

    results = run_repeated(run, n_runs=3)
    assert set(results) == {"a", "b"}
    assert results["b"].mean == pytest.approx(2 * results["a"].mean)


def test_run_repeated_deterministic_given_seed():
    def run(factory):
        return float(factory.stream("u").random())

    a = run_repeated(run, n_runs=4, seed=11)["value"].samples
    b = run_repeated(run, n_runs=4, seed=11)["value"].samples
    assert a == b


def test_run_repeated_validation():
    with pytest.raises(AnalysisError):
        run_repeated(lambda f: 0.0, n_runs=0)


def test_inconsistent_quantities_rejected():
    calls = {"n": 0}

    def run(factory):
        calls["n"] += 1
        return {"a": 1.0} if calls["n"] == 1 else {"b": 1.0}

    with pytest.raises(AnalysisError):
        run_repeated(run, n_runs=2)


def test_experiment_wrapper():
    exp = Experiment(name="demo", fn=lambda f: 42.0, n_runs=2)
    results = exp.run()
    assert results["demo"].mean == 42.0
    assert exp.results is results


def _noise_run(factory):
    return float(factory.stream("noise").random())


def test_run_repeated_parallel_matches_serial():
    serial = run_repeated(_noise_run, n_runs=4, seed=11)
    parallel = run_repeated(_noise_run, n_runs=4, seed=11, jobs=4)
    assert serial["value"].samples == parallel["value"].samples


def test_experiment_with_jobs():
    exp = Experiment(name="demo", fn=_noise_run, n_runs=3, seed=5, jobs=3)
    assert exp.run()["demo"].samples == run_repeated(
        _noise_run, n_runs=3, seed=5, name="demo"
    )["demo"].samples
