"""Text table and plot rendering."""

import pytest

from repro.core.report import ascii_plot, render_table
from repro.errors import AnalysisError


def test_render_table_basic():
    text = render_table(["a", "b"], [(1, 2.5), ("x", 0.123456)])
    lines = text.splitlines()
    assert lines[0].split() == ["a", "b"]
    assert "2.5" in text
    assert "0.123" in text


def test_render_table_formats():
    text = render_table(["v"], [(True,), (12345.6,), (0.00001,)])
    assert "yes" in text
    assert "1.23e+04" in text or "12345" in text
    assert "1e-05" in text


def test_render_table_validation():
    with pytest.raises(AnalysisError):
        render_table([], [])
    with pytest.raises(AnalysisError):
        render_table(["a"], [(1, 2)])


def test_ascii_plot_linear():
    text = ascii_plot({"s": [(0, 0), (1, 1), (2, 4)]}, width=20, height=8)
    assert "*" in text
    assert "s" in text.splitlines()[-1]


def test_ascii_plot_log():
    text = ascii_plot(
        {"a": [(64, 10), (1024, 1)], "b": [(64, 5), (1024, 2)]},
        logx=True,
    )
    assert "(log)" in text
    assert "o=b" in text


def test_ascii_plot_empty():
    with pytest.raises(AnalysisError):
        ascii_plot({"s": []})
