"""Metric containers."""

import pytest

from repro.core.metrics import DataStallBreakdown, MissCounters, mpki
from repro.errors import AnalysisError
from repro.memsys.misses import MissKind


def test_mpki():
    assert mpki(5, 1000) == 5.0
    assert mpki(0, 0) == 0.0
    with pytest.raises(AnalysisError):
        mpki(-1, 100)


def test_miss_counters_ratios():
    counters = MissCounters(
        instructions=10_000,
        l1i_misses=100,
        l1d_misses=200,
        l2_misses=50,
        c2c_fills=20,
        mem_fills=30,
    )
    assert counters.c2c_ratio == pytest.approx(0.4)
    assert counters.l1i_mpki == pytest.approx(10.0)
    assert counters.l1d_mpki == pytest.approx(20.0)
    assert counters.l2_mpki == pytest.approx(5.0)
    assert set(counters.misses_by_kind) == set(MissKind)


def test_empty_counters_safe():
    counters = MissCounters()
    assert counters.c2c_ratio == 0.0
    assert counters.l2_mpki == 0.0


def test_data_stall_total_and_names():
    ds = DataStallBreakdown(
        store_buffer=0.01,
        raw_hazard=0.02,
        l2_hit=0.1,
        cache_to_cache=0.2,
        memory=0.15,
        other=0.02,
    )
    assert ds.total == pytest.approx(0.5)
    assert set(ds.fractions()) == set(ds.component_names())
