"""Ethernet link and message catalogue."""

import pytest

from repro.errors import ConfigError
from repro.net.ethernet import EthernetLink
from repro.net.messages import MessageType, message_bytes


def test_transfer_time_components():
    link = EthernetLink(bandwidth_bps=100e6, latency_s=150e-6)
    t = link.transfer_time(1000)
    assert t > 150e-6
    assert t == pytest.approx(150e-6 + (1000 + 78) * 8 / 100e6)


def test_transfer_time_monotonic_in_size():
    link = EthernetLink()
    assert link.transfer_time(100) < link.transfer_time(10_000)
    with pytest.raises(ConfigError):
        link.transfer_time(-1)


def test_utilization():
    link = EthernetLink(bandwidth_bps=100e6)
    assert link.utilization(12.5e6 / 8 * 8) == pytest.approx(1.0)
    with pytest.raises(ConfigError):
        link.utilization(-1)


def test_link_validation():
    with pytest.raises(ConfigError):
        EthernetLink(bandwidth_bps=0)


def test_message_sizes():
    assert message_bytes(MessageType.SUPPLIER_PO_XML) > message_bytes(
        MessageType.DRIVER_REQUEST
    )
    for message in MessageType:
        assert message_bytes(message) > 0
