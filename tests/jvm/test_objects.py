"""Object layout and object-tree arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.jvm.objects import DEFAULT_LAYOUT, ObjectLayout, ObjectTree


def test_instance_size_alignment():
    layout = ObjectLayout()
    assert layout.instance_size(0) == 16
    assert layout.instance_size(1) == 24
    assert layout.instance_size(2, n_scalar_bytes=4) == 40  # 16+16+4 -> 40
    with pytest.raises(ConfigError):
        layout.instance_size(-1)


def test_tree_counts():
    tree = ObjectTree(base=0, fanout=4, depth=3, node_size=64)
    assert tree.n_leaves == 16
    assert tree.n_nodes == 21
    assert tree.total_bytes == 21 * 64


def test_level_offsets():
    tree = ObjectTree(base=1000, fanout=4, depth=3, node_size=64)
    assert tree.level_offset(0) == 0
    assert tree.level_offset(1) == 64
    assert tree.level_offset(2) == 5 * 64
    with pytest.raises(ConfigError):
        tree.level_offset(3)


def test_node_addr_bounds():
    tree = ObjectTree(base=0, fanout=4, depth=2, node_size=64)
    assert tree.node_addr(0, 0) == 0
    assert tree.node_addr(1, 3) == 64 + 3 * 64
    with pytest.raises(ConfigError):
        tree.node_addr(1, 4)


def test_path_to_leaf_is_ancestor_chain():
    tree = ObjectTree(base=0, fanout=4, depth=3, node_size=64)
    path = tree.path_to_leaf(13)
    assert len(path) == 3
    assert path[0] == tree.node_addr(0, 0)
    assert path[1] == tree.node_addr(1, 13 // 4)
    assert path[2] == tree.node_addr(2, 13)


def test_validation():
    with pytest.raises(ConfigError):
        ObjectTree(base=0, fanout=1, depth=3, node_size=64)
    with pytest.raises(ConfigError):
        ObjectTree(base=0, fanout=4, depth=0, node_size=64)
    with pytest.raises(ConfigError):
        ObjectTree(base=0, fanout=4, depth=3, node_size=60)


def test_random_leaf_skew_concentrates():
    tree = ObjectTree(base=0, fanout=10, depth=4, node_size=64)
    rng = np.random.default_rng(1)
    uniform = [tree.random_leaf(rng, skew=0.0) for _ in range(2000)]
    skewed = [tree.random_leaf(rng, skew=6.0) for _ in range(2000)]
    assert np.mean(skewed) < np.mean(uniform) / 3


def test_hot_leaf_mostly_in_hot_set():
    tree = ObjectTree(base=0, fanout=10, depth=4, node_size=64)
    rng = np.random.default_rng(2)
    hot_span = int(0.05 * tree.n_leaves)
    draws = [tree.hot_leaf(rng, hot_fraction=0.05, hot_prob=0.9) for _ in range(3000)]
    in_hot = sum(1 for d in draws if d < hot_span)
    assert 0.85 <= in_hot / len(draws) <= 0.99


def test_hot_leaf_validation():
    tree = ObjectTree(base=0, fanout=4, depth=2, node_size=64)
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigError):
        tree.hot_leaf(rng, hot_fraction=0.0)
    with pytest.raises(ConfigError):
        tree.hot_leaf(rng, hot_prob=1.5)


@settings(max_examples=40, deadline=None)
@given(
    fanout=st.integers(min_value=2, max_value=12),
    depth=st.integers(min_value=1, max_value=4),
    leaf_frac=st.floats(min_value=0.0, max_value=0.999),
)
def test_paths_stay_inside_tree(fanout, depth, leaf_frac):
    tree = ObjectTree(base=4096, fanout=fanout, depth=depth, node_size=64)
    leaf = min(int(leaf_frac * tree.n_leaves), tree.n_leaves - 1)
    path = tree.path_to_leaf(leaf)
    assert len(path) == depth
    for addr in path:
        assert tree.base <= addr < tree.base + tree.total_bytes
    # Node count identity: sum of levels equals the closed form.
    assert sum(fanout**level for level in range(depth)) == tree.n_nodes
