"""Integration: the collector's traffic really is bus-quiet.

A focused version of Figure 10's mechanism test: run mutator traffic
that ping-pongs shared lines, then a collector phase, and verify the
coherence simulator sees the C2C rate collapse.
"""

from repro.core.config import SimConfig, e6000_machine
from repro.jvm.gc import GenerationalCollector
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory
from repro.workloads.specjbb import SpecJbbWorkload

SIM = SimConfig(seed=31, refs_per_proc=30_000, warmup_fraction=0.5)
N_PROCS = 4


def test_collector_phase_is_bus_quiet():
    workload = SpecJbbWorkload(warehouses=N_PROCS)
    bundle = workload.generate(N_PROCS, SIM, RngFactory(seed=SIM.seed))
    hierarchy = MemoryHierarchy(e6000_machine(N_PROCS))
    hierarchy.run_trace(bundle.per_cpu, warmup_fraction=0.5)
    mutator_c2c = hierarchy.bus.stats.c2c_transfers
    mutator_refs = sum(len(t) // 2 for t in bundle.per_cpu)

    # Stop-the-world: only processor 0 runs, copying survivors.
    layout = workload.heap.layout
    refs = GenerationalCollector.copy_ref_stream(
        from_base=layout.new_gen_base,
        to_base=layout.old_gen_base + layout.old_gen_size // 2,
        nbytes=256 * 1024,
    )
    hierarchy.reset_stats()
    hierarchy.run_trace([refs] + [[] for _ in range(N_PROCS - 1)])
    gc_c2c = hierarchy.bus.stats.c2c_transfers

    mutator_rate = mutator_c2c / mutator_refs
    gc_rate = gc_c2c / len(refs)
    assert gc_rate < 0.05 * max(mutator_rate, 1e-9)


def test_collector_traffic_is_memory_bound():
    """From-space reads fill from memory, not other caches."""
    hierarchy = MemoryHierarchy(e6000_machine(2))
    refs = GenerationalCollector.copy_ref_stream(
        from_base=0x2000_0000, to_base=0x6000_0000, nbytes=64 * 1024
    )
    hierarchy.run_trace([refs, []])
    stats = hierarchy.proc_stats[0]
    assert stats.c2c_fills == 0
    assert stats.mem_fills > 0
