"""Generational collector model."""

import pytest

from repro.errors import ConfigError
from repro.jvm.gc import GenerationalCollector
from repro.jvm.heap import GenerationalHeap, HeapLayout
from repro.memsys.block import LOAD, STORE, decode_ref
from repro.units import mb


def test_collect_accounting():
    heap = GenerationalHeap(HeapLayout(new_gen_size=mb(4)))
    cursor = heap.cursor(share=1.0)
    gc = GenerationalCollector(survival_fraction=0.1, promotion_fraction=0.5)
    for _ in range(4):
        cursor.allocate(mb(1))
    event = gc.collect(heap)
    assert event.bytes_copied == int(mb(4) * 0.1)
    assert event.bytes_promoted == int(mb(4) * 0.1 * 0.5)
    assert not event.compacting
    assert heap.old_gen_used == event.bytes_promoted
    assert heap.allocated_since_gc == 0
    assert gc.total_gc_seconds == pytest.approx(event.duration_s)


def test_compaction_triggers_on_old_gen_pressure():
    heap = GenerationalHeap(HeapLayout(new_gen_size=mb(4), old_gen_size=mb(16)))
    heap.cursor(share=1.0)
    gc = GenerationalCollector(fragmentation=1.3, compaction_trigger=0.5)
    heap.old_gen_used = mb(8)  # 8 * 1.3 > 0.5 * 16
    assert gc.is_compacting(heap)
    heap.allocated_since_gc = mb(4)
    event = gc.collect(heap)
    assert event.compacting
    # Compaction copies the old generation too and is slower.
    assert event.bytes_copied > mb(4) * gc.survival_fraction


def test_gc_time_fraction():
    gc = GenerationalCollector(copy_rate=100e6, survival_fraction=0.05)
    frac = gc.gc_time_fraction(alloc_rate=50e6, new_gen_size=mb(400))
    assert 0.0 < frac < 0.05
    with pytest.raises(ConfigError):
        gc.gc_time_fraction(alloc_rate=0, new_gen_size=mb(1))


def test_serial_idle_fraction():
    assert GenerationalCollector.serial_idle_fraction(1, 0.5) == 0.0
    assert GenerationalCollector.serial_idle_fraction(4, 0.2) == pytest.approx(0.15)
    with pytest.raises(ConfigError):
        GenerationalCollector.serial_idle_fraction(0, 0.1)
    with pytest.raises(ConfigError):
        GenerationalCollector.serial_idle_fraction(2, 1.5)


def test_copy_ref_stream_structure():
    refs = GenerationalCollector.copy_ref_stream(
        from_base=0x1000, to_base=0x2000, nbytes=256, stride=64
    )
    assert len(refs) == 8  # 4 loads + 4 stores
    kinds = [decode_ref(r)[1] for r in refs]
    assert kinds == [LOAD, STORE] * 4
    addrs = [decode_ref(r)[0] for r in refs]
    assert addrs[0] == 0x1000 and addrs[1] == 0x2000
    assert addrs[-2] == 0x1000 + 192


def test_copy_ref_stream_validation():
    with pytest.raises(ConfigError):
        GenerationalCollector.copy_ref_stream(0, 0, -1)
    assert GenerationalCollector.copy_ref_stream(0, 0, 0) == []


def test_collector_param_validation():
    with pytest.raises(ConfigError):
        GenerationalCollector(copy_rate=0)
    with pytest.raises(ConfigError):
        GenerationalCollector(survival_fraction=1.0)
    with pytest.raises(ConfigError):
        GenerationalCollector(fragmentation=0.9)
    with pytest.raises(ConfigError):
        GenerationalCollector(compaction_slowdown=0.5)
