"""Generational heap and allocation cursors."""

import pytest

from repro.errors import ConfigError
from repro.jvm.heap import HOTSPOT_131_LAYOUT, GenerationalHeap, HeapLayout
from repro.units import mb


def test_paper_layout():
    assert HOTSPOT_131_LAYOUT.new_gen_size == mb(400)
    assert HOTSPOT_131_LAYOUT.total_size == mb(400) + mb(1024)


def test_layout_validation():
    with pytest.raises(ConfigError):
        HeapLayout(new_gen_base=0x6000_0000, old_gen_base=0x2000_0000)
    with pytest.raises(ConfigError):
        HeapLayout(new_gen_size=0)


def test_cursor_allocation_is_disjoint():
    heap = GenerationalHeap()
    a = heap.cursor(share=0.5)
    b = heap.cursor(share=0.5)
    addr_a = a.allocate(64)
    addr_b = b.allocate(64)
    assert addr_a != addr_b
    assert a.base + a.size <= b.base


def test_cursor_share_overflow():
    heap = GenerationalHeap()
    heap.cursor(share=0.8)
    with pytest.raises(ConfigError):
        heap.cursor(share=0.3)
    with pytest.raises(ConfigError):
        heap.cursor(share=0.0)


def test_allocation_alignment_and_accounting():
    heap = GenerationalHeap()
    cursor = heap.cursor(share=0.1)
    addr = cursor.allocate(13)
    assert addr % 8 == 0
    assert heap.allocated_since_gc == 16  # rounded up
    assert cursor.used == 16


def test_allocation_wraps_within_slice():
    heap = GenerationalHeap(HeapLayout(new_gen_size=mb(1)))
    cursor = heap.cursor(share=1.0)
    first = cursor.allocate(512 * 1024)
    cursor.allocate(512 * 1024)
    wrapped = cursor.allocate(512 * 1024)
    assert wrapped == first


def test_oversized_allocation_rejected():
    heap = GenerationalHeap(HeapLayout(new_gen_size=mb(1)))
    cursor = heap.cursor(share=0.5)
    with pytest.raises(ConfigError):
        cursor.allocate(mb(1))
    with pytest.raises(ConfigError):
        cursor.allocate(0)


def test_gc_pressure_and_reset():
    heap = GenerationalHeap(HeapLayout(new_gen_size=mb(1)))
    cursor = heap.cursor(share=1.0)
    for _ in range(4):
        cursor.allocate(256 * 1024)
    assert heap.gc_pressure() == pytest.approx(1.0)
    assert heap.needs_gc()
    heap.reset_new_gen()
    assert heap.allocated_since_gc == 0
    assert heap.gc_count == 1


def test_live_delta_guard():
    heap = GenerationalHeap()
    heap.note_live_delta(100)
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        heap.note_live_delta(-200)
