"""Locks and threads."""

import pytest

from repro.errors import ConfigError
from repro.jvm.locks import LockSite, contended_wait_fraction
from repro.jvm.threads import STACK_SLOT, JavaThread, ThreadRegistry
from repro.memsys.block import LOAD, STORE, decode_ref


def test_lock_site_refs():
    lock = LockSite(addr=0x8000, name="company")
    acquire = lock.acquire_refs()
    assert [decode_ref(r)[1] for r in acquire] == [LOAD, STORE]
    assert all(decode_ref(r)[0] == 0x8000 for r in acquire)
    release = lock.release_refs()
    assert [decode_ref(r)[1] for r in release] == [STORE]


def test_contention_zero_cases():
    assert contended_wait_fraction(1, 0.5) == 0.0
    assert contended_wait_fraction(8, 0.0) == 0.0


def test_contention_grows_with_procs():
    waits = [contended_wait_fraction(p, 0.08) for p in (2, 4, 8, 16)]
    assert all(a <= b for a, b in zip(waits, waits[1:]))
    assert waits[-1] < 0.96


def test_contention_validation():
    with pytest.raises(ConfigError):
        contended_wait_fraction(0, 0.1)
    with pytest.raises(ConfigError):
        contended_wait_fraction(2, 1.0)


def test_thread_stack_addresses_disjoint():
    registry = ThreadRegistry(n_procs=4)
    threads = [registry.spawn() for _ in range(8)]
    bases = [t.stack_base for t in threads]
    assert len(set(bases)) == 8
    # Round-robin CPU binding.
    assert [t.cpu for t in threads] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert registry.threads_on(0) == [threads[0], threads[4]]


def test_stack_addr_bounds():
    thread = JavaThread(tid=1, cpu=0)
    assert thread.stack_addr(0) == thread.stack_base
    with pytest.raises(ConfigError):
        thread.stack_addr(STACK_SLOT)


def test_registry_validation():
    with pytest.raises(ConfigError):
        ThreadRegistry(0)
    with pytest.raises(ConfigError):
        JavaThread(tid=-1, cpu=0)
