"""CPI model and data-stall decomposition."""

import pytest

from repro.core.metrics import DataStallBreakdown
from repro.cpu import InOrderCpuModel, UltraSparcIIParams, decompose_data_stall
from repro.errors import AnalysisError, ConfigError
from repro.memsys.hierarchy import ProcessorStats
from repro.memsys.latency import E6000_LATENCIES


def stats_with(**kwargs) -> ProcessorStats:
    stats = ProcessorStats()
    stats.instructions = kwargs.pop("instructions", 1_000_000)
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


def test_base_cpi_only():
    model = InOrderCpuModel()
    cpi = model.cpi_for_stats(stats_with())
    assert cpi.other == model.params.base_cpi
    assert cpi.instruction_stall == 0.0
    # RAW and TLB terms are always present (frequency-based).
    assert cpi.data_stall.raw_hazard > 0


def test_instruction_stall_terms():
    model = InOrderCpuModel()
    cpi = model.cpi_for_stats(
        stats_with(l1i_misses=10_000, l2_instr_misses=1_000)
    )
    lat = model.params.latencies
    expected = (9_000 * lat.l2_hit + 1_000 * lat.memory) / 1_000_000
    assert cpi.instruction_stall == pytest.approx(expected)


def test_load_stall_terms():
    model = InOrderCpuModel()
    cpi = model.cpi_for_stats(
        stats_with(
            l1d_misses=20_000,
            l2_load_hits=15_000,
            c2c_load_fills=2_000,
            mem_load_fills=3_000,
        )
    )
    lat = model.params.latencies
    ds = cpi.data_stall
    assert ds.l2_hit == pytest.approx(15_000 * lat.l2_hit / 1e6)
    assert ds.cache_to_cache == pytest.approx(2_000 * lat.cache_to_cache / 1e6)
    assert ds.memory == pytest.approx(3_000 * lat.memory / 1e6)


def test_c2c_costs_more_than_memory():
    """The E6000 property the stall decomposition hinges on."""
    model = InOrderCpuModel()
    via_c2c = model.cpi_for_stats(
        stats_with(l1d_misses=10_000, c2c_load_fills=10_000)
    )
    via_mem = model.cpi_for_stats(
        stats_with(l1d_misses=10_000, mem_load_fills=10_000)
    )
    assert via_c2c.total > via_mem.total
    assert via_c2c.total - via_mem.total == pytest.approx(
        10_000 * (E6000_LATENCIES.cache_to_cache - E6000_LATENCIES.memory) / 1e6
    )


def test_store_buffer_grows_with_store_rate():
    model = InOrderCpuModel()
    light = model.cpi_for_stats(stats_with(stores=10_000))
    heavy = model.cpi_for_stats(stats_with(stores=400_000))
    assert heavy.data_stall.store_buffer >= light.data_stall.store_buffer


def test_zero_instructions_rejected():
    model = InOrderCpuModel()
    with pytest.raises(AnalysisError):
        model.cpi_for_stats(ProcessorStats())


def test_params_validation():
    with pytest.raises(ConfigError):
        UltraSparcIIParams(base_cpi=0)
    with pytest.raises(ConfigError):
        UltraSparcIIParams(store_buffer_depth=0)
    with pytest.raises(ConfigError):
        UltraSparcIIParams(raw_hazard_rate=1.0)


def test_decompose_validation():
    with pytest.raises(AnalysisError):
        decompose_data_stall(0, 0, 0, 0, 0, E6000_LATENCIES)
    with pytest.raises(AnalysisError):
        decompose_data_stall(100, -1, 0, 0, 0, E6000_LATENCIES)


def test_breakdown_fractions_sum_to_one():
    ds = DataStallBreakdown(
        store_buffer=0.1, raw_hazard=0.05, l2_hit=0.2, cache_to_cache=0.3, memory=0.3
    )
    assert sum(ds.fractions().values()) == pytest.approx(1.0)
    empty = DataStallBreakdown()
    assert all(v == 0 for v in empty.fractions().values())


def test_cpi_breakdown_properties():
    from repro.core.metrics import CpiBreakdown

    cpi = CpiBreakdown(
        instruction_stall=0.3,
        data_stall=DataStallBreakdown(memory=0.7),
        other=1.0,
    )
    assert cpi.total == pytest.approx(2.0)
    assert cpi.data_stall_fraction == pytest.approx(0.35)
    assert cpi.instruction_stall_fraction == pytest.approx(0.15)


def test_machine_average_weighted(small_sim, rng_factory):
    from repro.figures.common import simulate_multiprocessor
    from repro.workloads.specjbb import SpecJbbWorkload

    h = simulate_multiprocessor(SpecJbbWorkload(warehouses=2), 2, small_sim)
    model = InOrderCpuModel()
    machine = model.cpi_for_machine(h)
    assert 1.3 < machine.total < 4.0
