"""Examples: importable, documented, and wired to real APIs.

Full example runs take minutes (they use figure-level simulation
effort); importing them executes everything except ``main()``, which
catches broken imports, renamed APIs and bad constants.  The examples
are exercised end-to-end by the benchmark/figure suite, which runs the
same drivers they call.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_declares_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.stem} needs main()"
    assert module.__doc__ and "Run:" in module.__doc__


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "cache_design_study",
        "cmp_shared_cache_study",
        "scaling_study",
        "gc_pause_study",
        "trace_replay",
        "campaign_ablation",
    } <= names
