"""Throughput-scaling model: path length, contention, composition."""

import pytest

from repro.errors import ConfigError
from repro.perfmodel import (
    ContentionModel,
    PathLengthModel,
    ScalingPoint,
    ThroughputModel,
    WorkloadScalingParams,
)


def flat_cpi(p: int) -> float:
    return 2.0


def test_flat_path_length():
    model = PathLengthModel.flat(50_000)
    assert model.instr_per_op(1) == model.instr_per_op(16) == 50_000
    assert model.relative(8) == 1.0


def test_ecperf_path_length_falls_with_concurrency():
    model = PathLengthModel.ecperf_default()
    values = [model.instr_per_op(p) for p in (1, 2, 4, 8)]
    assert all(a > b for a, b in zip(values, values[1:]))
    assert 0.4 < model.relative(8) < 0.95


def test_path_length_validation():
    with pytest.raises(ConfigError):
        PathLengthModel(base_instr=0)
    with pytest.raises(ConfigError):
        PathLengthModel.flat().instr_per_op(0)


def test_contention_idle_grows():
    model = ContentionModel.specjbb_default()
    idles = [model.idle_fraction(p) for p in (1, 4, 8, 15)]
    assert idles[0] == pytest.approx(0.0, abs=1e-6)
    assert all(a <= b for a, b in zip(idles, idles[1:]))
    assert idles[-1] < 0.95


def test_contention_validation():
    with pytest.raises(ConfigError):
        ContentionModel(jvm_lock_demand=1.0)
    with pytest.raises(ConfigError):
        ContentionModel().idle_fraction(0)


def test_speedup_is_one_at_one_processor():
    for params in (
        WorkloadScalingParams.specjbb_default(),
        WorkloadScalingParams.ecperf_default(),
    ):
        model = ThroughputModel(params, flat_cpi)
        assert model.point(1).speedup == pytest.approx(1.0)
        assert model.point(1).speedup_no_gc == pytest.approx(1.0)


def test_speedup_bounded_by_linear():
    """With flat CPI and flat path length, speedup cannot exceed p."""
    model = ThroughputModel(WorkloadScalingParams.specjbb_default(), flat_cpi)
    for p in (2, 4, 8, 15):
        assert model.point(p).speedup <= p + 1e-9


def test_ecperf_superlinearity_comes_from_path_length():
    ec = ThroughputModel(WorkloadScalingParams.ecperf_default(), flat_cpi)
    assert ec.point(8).speedup > 8.0
    flat = WorkloadScalingParams(
        name="ecperf-flat-path",
        path_length=PathLengthModel.flat(),
        contention=WorkloadScalingParams.ecperf_default().contention,
        kernel=WorkloadScalingParams.ecperf_default().kernel,
        io_fraction=0.02,
        gc_fraction_1p=0.012,
    )
    without = ThroughputModel(flat, flat_cpi)
    assert without.point(8).speedup < 8.0


def test_no_gc_speedup_dominates_measured():
    model = ThroughputModel(WorkloadScalingParams.specjbb_default(), flat_cpi)
    for p in (2, 8, 15):
        point = model.point(p)
        assert point.speedup_no_gc >= point.speedup - 1e-9


def test_modes_are_normalized():
    model = ThroughputModel(WorkloadScalingParams.ecperf_default(), flat_cpi)
    for p in (1, 4, 15):
        modes = model.point(p).modes
        assert sum(modes.as_dict().values()) == pytest.approx(1.0)


def test_gc_wall_fraction_grows_with_throughput():
    model = ThroughputModel(WorkloadScalingParams.specjbb_default(), flat_cpi)
    assert model.gc_wall_fraction(8) > model.gc_wall_fraction(1)
    assert model.gc_wall_fraction(15) < 0.4


def test_peak_selection():
    model = ThroughputModel(WorkloadScalingParams.ecperf_default(), flat_cpi)
    peak = model.peak([1, 2, 4, 8, 12, 15])
    assert isinstance(peak, ScalingPoint)
    assert peak.speedup == max(pt.speedup for pt in model.curve([1, 2, 4, 8, 12, 15]))


def test_params_validation():
    with pytest.raises(ConfigError):
        WorkloadScalingParams(
            name="x",
            path_length=PathLengthModel.flat(),
            contention=ContentionModel(),
            kernel=WorkloadScalingParams.specjbb_default().kernel,
            io_fraction=0.6,
        )
    model = ThroughputModel(WorkloadScalingParams.specjbb_default(), flat_cpi)
    with pytest.raises(ConfigError):
        model.point(0)
