"""Application-server clustering extension."""

import pytest

from repro.errors import ConfigError
from repro.perfmodel import WorkloadScalingParams
from repro.perfmodel.cluster import ClusteredThroughputModel, compare_clusterings


def flat_cpi(p: int) -> float:
    return 2.2


def test_single_instance_matches_base_model():
    params = WorkloadScalingParams.ecperf_default()
    results = compare_clusterings(params, flat_cpi, n_procs=8, instance_counts=[1])
    from repro.perfmodel import ThroughputModel

    base = ThroughputModel(params, flat_cpi).point(8).speedup
    assert results[1] == pytest.approx(base)


def test_clustering_relieves_contention_at_scale():
    """At 15 processors SPECjbb's serialization dominates; splitting the
    JVM into instances sidesteps it."""
    params = WorkloadScalingParams.specjbb_default()
    results = compare_clusterings(
        params, flat_cpi, n_procs=15, instance_counts=[1, 3]
    )
    assert results[3] > results[1]


def test_clustering_costs_ecperf_interference_at_small_scale():
    """At small processor counts ECperf loses more bean-cache
    interference than it gains in contention relief."""
    params = WorkloadScalingParams.ecperf_default()
    results = compare_clusterings(params, flat_cpi, n_procs=4, instance_counts=[1, 4])
    assert results[4] < results[1]


def test_uneven_processor_split():
    params = WorkloadScalingParams.specjbb_default()
    model = ClusteredThroughputModel(params, flat_cpi, instances=3)
    # 7 processors across 3 instances: 3 + 2 + 2.
    assert model.speedup(7) > 0


def test_validation():
    params = WorkloadScalingParams.specjbb_default()
    with pytest.raises(ConfigError):
        ClusteredThroughputModel(params, flat_cpi, instances=0)
    with pytest.raises(ConfigError):
        ClusteredThroughputModel(params, flat_cpi, instances=4).speedup(2)


def test_gc_threads_validation():
    from repro.perfmodel import ThroughputModel

    with pytest.raises(ConfigError):
        ThroughputModel(
            WorkloadScalingParams.specjbb_default(), flat_cpi, gc_threads=0
        )


def test_next_generation_machine_preset():
    from repro.core.config import next_generation_machine

    machine = next_generation_machine(8)
    assert machine.l2.size == 8 << 20
    assert machine.clock_hz > 248_000_000
    assert machine.latencies.memory > 135  # relatively slower memory
