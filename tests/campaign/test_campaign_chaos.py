"""Campaign chaos suite: the issue's acceptance scenario.

A :class:`SubprocessFleetExecutor` campaign over the paper's ablation
run table survives, in a single run: an executor killed mid-cell, a
worker whose heartbeats stall while it holds a lease, and one
genuinely poisoned cell.  Leases are reclaimed, the poisoned cell is
quarantined with diagnostics, every surviving cell's bits match a
clean serial run, and the report states the degradation explicitly.
"""

import pytest

from repro.campaign import (
    Axis,
    CampaignPolicy,
    CampaignSpec,
    RunTable,
    STATUS_POISONED,
    SerialExecutor,
    SubprocessFleetExecutor,
    run_campaign,
)
from repro.campaign.report import render
from repro.campaign.studies import ablation_cell, smoke_cell
from repro.harness import FaultPolicy, Telemetry
from repro.harness.chaos import kill_executor, poison_cell, stall_heartbeat


def ablation_table(reps=2) -> RunTable:
    return RunTable(
        name="ablation",
        axes=(
            Axis("protocol", ("mosi", "msi")),
            Axis("workload", ("ecperf", "specjbb")),
        ),
        reps=reps,
    )


#: cell key -> injected failure mode for the acceptance scenario.
CHAOS_PLAN = {
    "protocol=mosi/workload=ecperf/rep1": "kill",
    "protocol=msi/workload=ecperf/rep0": "stall",
    "protocol=msi/workload=specjbb/rep1": "poison",
}


def chaotic_ablation_cell(point, rep, *, root, refs=6_000):
    """The real ablation cell, wrapped in the scripted chaos plan."""
    key = (
        f"protocol={point['protocol']}/workload={point['workload']}/rep{rep}"
    )
    mode = CHAOS_PLAN.get(key)
    name = key.replace("/", "_")
    if mode == "poison":
        return poison_cell(root, name, None)
    value = ablation_cell(point, rep, refs=refs)
    if mode == "kill":
        return kill_executor(root, name, value, 1)
    if mode == "stall":
        return stall_heartbeat(root, name, value, 60.0, 1)
    return value


def chaotic_smoke_cell(point, rep, *, root):
    """Same chaos shapes over arithmetic cells (fast regression net)."""
    mode = {"1": "kill", "2": "stall", "3": "poison"}.get(str(point["alpha"]))
    name = f"a{point['alpha']}-r{rep}"
    if mode == "poison" and rep == 0:
        return poison_cell(root, name, None)
    value = smoke_cell(point, rep)
    if mode == "kill" and rep == 0:
        return kill_executor(root, name, value, 1)
    if mode == "stall" and rep == 0:
        return stall_heartbeat(root, name, value, 60.0, 1)
    return value


def chaos_policy() -> CampaignPolicy:
    return CampaignPolicy(
        faults=FaultPolicy(max_attempts=4, backoff_s=0.0),
        lease_timeout_s=1.5,  # reclaim a stalled heartbeat quickly
        poison_k=2,
        straggler_min_s=30.0,  # keep speculation out of chaos accounting
    )


def test_fleet_survives_death_stall_and_poison_bit_identically(tmp_path):
    """The issue's acceptance criterion, end to end."""
    table = ablation_table(reps=2)
    chaotic = CampaignSpec(
        name="ablation", table=table, fn=chaotic_ablation_cell,
        kwargs={"root": str(tmp_path)},
    )
    clean = CampaignSpec(
        name="ablation", table=table, fn=ablation_cell, kwargs={"refs": 6_000}
    )

    telemetry = Telemetry()
    result = run_campaign(
        chaotic,
        SubprocessFleetExecutor(workers=3, heartbeat_s=0.2, max_respawns=8),
        policy=chaos_policy(),
        telemetry=telemetry,
    )
    reference = run_campaign(clean, SerialExecutor(), policy=chaos_policy())
    assert reference.complete

    # Exactly the poisoned cell is quarantined, with diagnostics.
    poisoned = result.by_status(STATUS_POISONED)
    assert [o.cell.key for o in poisoned] == [
        "protocol=msi/workload=specjbb/rep1"
    ]
    assert "quarantined" in poisoned[0].error
    assert "consecutive worker(s)" in poisoned[0].error

    # Every surviving cell is bit-identical to the clean serial run.
    by_key = {o.cell.key: o for o in result.outcomes}
    survivors = 0
    for ref_outcome in reference.outcomes:
        outcome = by_key[ref_outcome.cell.key]
        if outcome.cell.key in poisoned[0].cell.key:
            continue
        if outcome.ok:
            assert outcome.value == ref_outcome.value, outcome.cell.key
            survivors += 1
    assert survivors == len(table.cells()) - 1  # everything but the poison

    # The chaos left its fingerprints in telemetry: a dead worker
    # (kill_executor + poison kills), a reclaimed lease (heartbeat
    # stall), and the quarantine event.
    assert telemetry.counters["campaign/worker-dead"] >= 1
    assert telemetry.counters["campaign/lease-reclaimed"] >= 1
    assert telemetry.counters["campaign/cell-poisoned"] == 1
    assert telemetry.counters["campaign/cell-retry"] >= 1

    # And the report states the degradation explicitly.
    report = render(result)
    assert "DEGRADED" in report
    assert "1 poisoned" in report
    assert "protocol=msi/workload=specjbb/rep1" in report
    assert "quarantined" in report


def test_smoke_chaos_fast_net(tmp_path, obs_enabled):
    """Same failure shapes over arithmetic cells, with obs counters on."""
    table = RunTable(
        name="smoke-chaos", axes=(Axis("alpha", (0, 1, 2, 3)),), reps=2
    )
    chaotic = CampaignSpec(
        name="smoke-chaos", table=table, fn=chaotic_smoke_cell,
        kwargs={"root": str(tmp_path)},
    )
    clean = CampaignSpec(name="smoke-chaos", table=table, fn=smoke_cell)

    result = run_campaign(
        chaotic,
        SubprocessFleetExecutor(workers=2, heartbeat_s=0.2, max_respawns=8),
        policy=chaos_policy(),
    )
    reference = run_campaign(clean, SerialExecutor(), policy=chaos_policy())

    poisoned = result.by_status(STATUS_POISONED)
    assert [o.cell.key for o in poisoned] == ["alpha=3/rep0"]
    by_key = {o.cell.key: o for o in result.outcomes}
    for ref_outcome in reference.outcomes:
        if ref_outcome.cell.key == "alpha=3/rep0":
            continue
        assert by_key[ref_outcome.cell.key].value == ref_outcome.value

    # The campaign/* observability counters saw the whole story.
    snapshot = obs_enabled.COUNTERS.snapshot()
    assert snapshot["campaign/cells_total"] == table.n_cells * 2  # both runs
    assert snapshot["campaign/worker_deaths"] >= 1
    assert snapshot["campaign/lease_reclaims"] >= 1
    assert snapshot["campaign/cells_poisoned"] == 1
    assert snapshot["campaign/retries"] >= 1


def test_stalled_heartbeat_lease_is_reclaimed_not_waited_out(tmp_path):
    """A wedged worker costs ~lease_timeout_s, not the full hang."""
    import time

    table = RunTable(name="t", axes=(Axis("alpha", (2, 9)),), reps=1)
    spec = CampaignSpec(
        name="t", table=table, fn=chaotic_smoke_cell,
        kwargs={"root": str(tmp_path)},
    )
    trace = tmp_path / "trace.jsonl"
    t0 = time.monotonic()
    with Telemetry(trace_path=trace) as telemetry:
        result = run_campaign(
            spec,
            SubprocessFleetExecutor(workers=2, heartbeat_s=0.2),
            policy=chaos_policy(),
            telemetry=telemetry,
        )
    wall = time.monotonic() - t0
    assert result.complete  # the stall was scripted for one attempt only
    assert wall < 20.0  # nowhere near the 60s hang
    assert telemetry.counters["campaign/lease-reclaimed"] >= 1
    from repro.harness.telemetry import read_trace

    reclaim_events = [
        e for e in read_trace(trace) if e["event"] == "campaign/lease-reclaimed"
    ]
    assert any("no heartbeat" in e.get("reason", "") for e in reclaim_events)
