"""Run-table declaration and deterministic expansion."""

import pytest

from repro.campaign import Axis, CampaignSpec, RunTable
from repro.campaign.studies import get_study, smoke_cell
from repro.errors import ConfigError


def make_table(reps=2):
    return RunTable(
        name="t",
        axes=(Axis("protocol", ("mosi", "msi")), Axis("workload", ("ecperf",))),
        reps=reps,
    )


def test_cells_expand_in_declaration_order():
    cells = make_table().cells()
    assert [c.key for c in cells] == [
        "protocol=mosi/workload=ecperf/rep0",
        "protocol=mosi/workload=ecperf/rep1",
        "protocol=msi/workload=ecperf/rep0",
        "protocol=msi/workload=ecperf/rep1",
    ]
    assert cells[0].point_dict == {"protocol": "mosi", "workload": "ecperf"}
    assert cells[1].rep == 1


def test_shape_and_counts():
    table = make_table(reps=3)
    assert table.n_cells == 6
    assert table.shape() == "2x1 points x 3 reps = 6 cells"


def test_cell_keys_are_unique():
    table = RunTable(
        name="big",
        axes=(Axis("a", (1, 2, 3)), Axis("b", ("x", "y", "z"))),
        reps=4,
    )
    keys = [c.key for c in table.cells()]
    assert len(keys) == len(set(keys)) == table.n_cells


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Axis("", (1,)),
        lambda: Axis("a=b", (1,)),
        lambda: Axis("a/b", (1,)),
        lambda: Axis("a", ()),
        lambda: Axis("a", (1, 1)),
        lambda: RunTable(name="", axes=(Axis("a", (1,)),)),
        lambda: RunTable(name="t", axes=()),
        lambda: RunTable(name="t", axes=(Axis("a", (1,)), Axis("a", (2,)))),
        lambda: RunTable(name="t", axes=(Axis("a", (1,)),), reps=0),
    ],
)
def test_invalid_declarations_rejected(bad):
    with pytest.raises(ConfigError):
        bad()


def test_signature_covers_table_and_config_but_not_executor():
    spec_a = CampaignSpec(name="s", table=make_table(), fn=smoke_cell)
    spec_b = CampaignSpec(name="s", table=make_table(), fn=smoke_cell)
    assert spec_a.signature() == spec_b.signature()
    # Any input that could change a cell's bits changes the signature...
    assert (
        CampaignSpec(
            name="s", table=make_table(), fn=smoke_cell, kwargs={"scale": 2}
        ).signature()
        != spec_a.signature()
    )
    assert (
        CampaignSpec(name="s", table=make_table(reps=3), fn=smoke_cell).signature()
        != spec_a.signature()
    )
    # ...and the signature says nothing about executors: a campaign
    # interrupted on a fleet may resume on a local pool or serially.


def test_study_registry():
    spec = get_study("smoke", reps=2)
    assert spec.table.n_cells == 12
    assert get_study("ablation").table.axes[0].name == "protocol"
    with pytest.raises(ConfigError):
        get_study("nope")
    with pytest.raises(ConfigError):
        get_study("smoke", reps=0)
