"""Campaign scheduler: retries, quarantine, degradation, resume.

Fast-by-construction: every test drives the scheduler with the
arithmetic ``smoke_cell`` (or a scripted chaos wrapper around it), so
the suite exercises the full fault machinery in a few seconds.
"""

import time

import pytest

from repro.campaign import (
    Axis,
    CampaignPolicy,
    CampaignSpec,
    LocalPoolExecutor,
    RunTable,
    STATUS_FAILED,
    STATUS_MISSING,
    STATUS_POISONED,
    SerialExecutor,
    SubprocessFleetExecutor,
    run_campaign,
)
from repro.campaign.report import render, summarize
from repro.campaign.studies import smoke_cell
from repro.harness import CampaignManifest, FaultPolicy, Telemetry
from repro.harness.chaos import error_task, hang_task, kill_executor, take_ticket


def fast_policy(**overrides) -> CampaignPolicy:
    defaults = dict(
        faults=FaultPolicy(max_attempts=3, backoff_s=0.0),
        straggler_min_s=30.0,  # no accidental speculation in fast tests
    )
    defaults.update(overrides)
    return CampaignPolicy(**defaults)


def small_table(reps=1, points=2) -> RunTable:
    return RunTable(
        name="t", axes=(Axis("alpha", tuple(range(points))),), reps=reps
    )


def cell_name(point: dict, rep: int) -> str:
    return "-".join(f"{k}{v}" for k, v in sorted(point.items())) + f"-r{rep}"


# -- scripted chaos cells (module-level: workers pickle them by name) --------


def flaky_cell(point, rep, *, root, fail_attempts=1):
    return error_task(
        root, cell_name(point, rep), smoke_cell(point, rep), fail_attempts
    )


def killer_cell(point, rep, *, root, victim, kill_attempts=1):
    value = smoke_cell(point, rep)
    if point["alpha"] == victim:
        return kill_executor(root, cell_name(point, rep), value, kill_attempts)
    return value


def slow_cell(point, rep, *, root, victim, sleep_s):
    if point["alpha"] == victim and take_ticket(root, cell_name(point, rep)) == 0:
        time.sleep(sleep_s)
    return smoke_cell(point, rep)


def divergent_cell(point, rep, *, root, victim, sleep_s):
    if point["alpha"] != victim:
        return smoke_cell(point, rep)
    ticket = take_ticket(root, cell_name(point, rep))
    if ticket == 0:
        time.sleep(sleep_s)
    return {"which": float(ticket)}  # every attempt returns different bits


def hanging_cell(point, rep, *, root, victim, hang_s, hang_attempts=1):
    value = smoke_cell(point, rep)
    if point["alpha"] == victim:
        return hang_task(root, cell_name(point, rep), value, hang_s, hang_attempts)
    return value


def counting_cell(point, rep, *, root):
    take_ticket(root, cell_name(point, rep))
    return smoke_cell(point, rep)


# -- the basics --------------------------------------------------------------


def test_serial_campaign_completes_in_table_order():
    spec = CampaignSpec(name="s", table=small_table(reps=2, points=3), fn=smoke_cell)
    result = run_campaign(spec, SerialExecutor(), policy=fast_policy())
    assert result.complete and not result.degraded
    assert [o.cell.key for o in result.outcomes] == [
        c.key for c in spec.table.cells()
    ]
    assert all(o.ok and isinstance(o.value, dict) for o in result.outcomes)


@pytest.mark.parametrize(
    "make_executor",
    [
        lambda: LocalPoolExecutor(workers=2),
        lambda: SubprocessFleetExecutor(workers=2),
    ],
    ids=["local", "fleet"],
)
def test_executors_bit_identical_to_serial(make_executor):
    spec = CampaignSpec(name="s", table=small_table(reps=2, points=2), fn=smoke_cell)
    reference = run_campaign(spec, SerialExecutor(), policy=fast_policy())
    result = run_campaign(spec, make_executor(), policy=fast_policy())
    assert result.complete
    assert [(o.cell.key, o.value) for o in result.outcomes] == [
        (o.cell.key, o.value) for o in reference.outcomes
    ]


def test_transient_error_retried_with_backoff(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=2), fn=flaky_cell,
        kwargs={"root": str(tmp_path)},
    )
    result = run_campaign(
        spec, SerialExecutor(), policy=fast_policy(), telemetry=telemetry
    )
    assert result.complete
    assert all(o.attempts == 2 for o in result.outcomes)
    assert telemetry.counters["campaign/cell-retry"] == 2
    assert telemetry.counters["campaign/cells_ok"] == 2


def test_persistent_error_exhausts_budget_and_fails_cell(tmp_path):
    spec = CampaignSpec(
        name="s", table=small_table(points=2), fn=flaky_cell,
        kwargs={"root": str(tmp_path), "fail_attempts": 99},
    )
    result = run_campaign(spec, SerialExecutor(), policy=fast_policy())
    assert result.degraded
    failed = result.by_status(STATUS_FAILED)
    assert len(failed) == 2
    assert all(o.attempts == 3 for o in failed)
    assert all("ChaosError" in o.error for o in failed)
    # A survivable error is not a worker kill: nothing was quarantined.
    assert not result.by_status(STATUS_POISONED)


# -- worker death and quarantine ---------------------------------------------


def test_worker_death_reschedules_cell_and_respawns(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=3), fn=killer_cell,
        kwargs={"root": str(tmp_path), "victim": 1},
    )
    result = run_campaign(
        spec, SubprocessFleetExecutor(workers=2), policy=fast_policy(),
        telemetry=telemetry,
    )
    assert result.complete
    clean = run_campaign(spec, SerialExecutor(), policy=fast_policy())
    # tickets consumed by the serial run shift nothing: alpha=1 already
    # spent its one kill, so serial recomputes the same values.
    assert [o.value for o in result.outcomes] == [o.value for o in clean.outcomes]
    assert telemetry.counters["campaign/worker-dead"] >= 1
    assert telemetry.counters["campaign/cell-retry"] >= 1


def test_poisoned_cell_is_quarantined_with_diagnostics(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=3), fn=killer_cell,
        kwargs={"root": str(tmp_path), "victim": 2, "kill_attempts": 99},
    )
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=2, max_respawns=6),
        policy=fast_policy(faults=FaultPolicy(max_attempts=5, backoff_s=0.0)),
        telemetry=telemetry,
    )
    poisoned = result.by_status(STATUS_POISONED)
    assert len(poisoned) == 1
    assert poisoned[0].cell.point_dict["alpha"] == 2
    assert "quarantined" in poisoned[0].error
    assert "killed 2 consecutive worker(s)" in poisoned[0].error
    assert telemetry.counters["campaign/cell-poisoned"] == 1
    # The other cells survived the chaos untouched.
    assert sum(1 for o in result.outcomes if o.ok) == 2
    assert "poisoned" in render(result)


def test_respawn_budget_exhaustion_degrades_gracefully(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=3), fn=killer_cell,
        kwargs={"root": str(tmp_path), "victim": 0, "kill_attempts": 99},
    )
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=1, max_respawns=0),
        policy=fast_policy(),
        telemetry=telemetry,
    )
    # One worker, no respawns: the first kill ends all capacity and the
    # campaign shrinks to a partial result instead of hanging.
    assert result.degraded
    missing = result.by_status(STATUS_MISSING)
    assert missing and all("no surviving workers" in o.error for o in missing)
    assert telemetry.counters["campaign/degraded"] == 1
    report = render(result)
    assert "DEGRADED" in report and "missing" in report


# -- timeouts and stragglers -------------------------------------------------


def test_lease_timeout_kills_hung_worker_not_retried(tmp_path):
    spec = CampaignSpec(
        name="s", table=small_table(points=2), fn=hanging_cell,
        kwargs={"root": str(tmp_path), "victim": 0, "hang_s": 30.0},
    )
    t0 = time.monotonic()
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=2),
        policy=fast_policy(faults=FaultPolicy(timeout_s=0.4, backoff_s=0.0)),
    )
    assert time.monotonic() - t0 < 15.0
    failed = result.by_status(STATUS_FAILED)
    assert len(failed) == 1
    assert "timeout" in failed[0].error and "worker killed" in failed[0].error
    assert sum(1 for o in result.outcomes if o.ok) == 1


def test_lease_timeout_retried_when_policy_allows(tmp_path):
    spec = CampaignSpec(
        name="s", table=small_table(points=2), fn=hanging_cell,
        kwargs={"root": str(tmp_path), "victim": 0, "hang_s": 30.0},
    )
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=2),
        policy=fast_policy(
            faults=FaultPolicy(
                timeout_s=0.4, max_attempts=3, backoff_s=0.0,
                retry_timeouts=True,
            )
        ),
    )
    assert result.complete  # the hang was scripted for one attempt only


def test_straggler_speculation_first_result_wins(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=6), fn=slow_cell,
        kwargs={"root": str(tmp_path), "victim": 0, "sleep_s": 3.0},
    )
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=2),
        policy=fast_policy(straggler_min_s=0.3, straggler_factor=2.0),
        telemetry=telemetry,
    )
    assert result.complete
    assert telemetry.counters["campaign/speculate"] >= 1
    # Both copies compute identical bits: no divergence flagged.
    assert not any(o.divergent for o in result.outcomes)


def test_divergent_speculation_is_flagged_loudly(tmp_path):
    telemetry = Telemetry()
    spec = CampaignSpec(
        name="s", table=small_table(points=6), fn=divergent_cell,
        kwargs={"root": str(tmp_path), "victim": 0, "sleep_s": 3.0},
    )
    result = run_campaign(
        spec,
        SubprocessFleetExecutor(workers=2),
        policy=fast_policy(straggler_min_s=0.3, straggler_factor=2.0),
        telemetry=telemetry,
    )
    assert result.complete
    divergent = [o for o in result.outcomes if o.divergent]
    assert len(divergent) == 1
    assert divergent[0].cell.point_dict["alpha"] == 0
    assert telemetry.counters["campaign/divergent"] == 1
    assert "DIVERGENCE" in render(result)


# -- resume ------------------------------------------------------------------


def test_resume_serves_completed_cells_without_rerunning(tmp_path):
    root = tmp_path / "tickets"
    spec = CampaignSpec(
        name="s", table=small_table(reps=2, points=2), fn=counting_cell,
        kwargs={"root": str(root)},
    )
    journal = tmp_path / "campaign.jsonl"
    with CampaignManifest.open_fresh(journal, spec.signature()) as manifest:
        first = run_campaign(
            spec, SerialExecutor(), policy=fast_policy(), manifest=manifest
        )
    assert first.complete
    invocations = len(list(root.iterdir()))
    assert invocations == 4

    telemetry = Telemetry()
    with CampaignManifest.open_resume(journal, spec.signature()) as manifest:
        assert manifest.resumed
        second = run_campaign(
            spec, SerialExecutor(), policy=fast_policy(),
            manifest=manifest, telemetry=telemetry,
        )
    assert second.complete
    assert len(list(root.iterdir())) == invocations  # nothing re-ran
    assert all(o.cached for o in second.outcomes)
    assert telemetry.counters["campaign/resume-skip"] == 4
    assert [o.value for o in second.outcomes] == [o.value for o in first.outcomes]


# -- report ------------------------------------------------------------------


def test_report_mean_std_over_reps():
    spec = CampaignSpec(name="s", table=small_table(reps=3, points=1), fn=smoke_cell)
    result = run_campaign(spec, SerialExecutor(), policy=fast_policy())
    rows = summarize(result)
    by_metric = {metric: (mean, std, n) for _, metric, mean, std, n in rows}
    assert by_metric["rep"][2] == 3
    assert by_metric["rep"][0] == pytest.approx(1.0)  # mean of 0,1,2
    assert by_metric["rep"][1] == pytest.approx(1.0)  # sample std of 0,1,2
    report = render(result)
    assert "complete (3/3 cells ok)" in report


def test_report_is_deterministic_across_runs():
    spec = CampaignSpec(name="s", table=small_table(reps=2, points=2), fn=smoke_cell)
    a = render(run_campaign(spec, SerialExecutor(), policy=fast_policy()))
    b = render(run_campaign(spec, LocalPoolExecutor(workers=2), policy=fast_policy()))
    # No wall times, worker ids or timestamps leak into the report: the
    # serial and pool renderings are byte-identical.
    assert a.replace("executor: serial", "") == b.replace(
        "executor: local (2 workers)", ""
    )
