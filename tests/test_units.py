"""Units and conversions."""

import pytest

from repro.units import (
    E6000_CLOCK_HZ,
    cycles_to_seconds,
    format_size,
    is_power_of_two,
    kb,
    log2_int,
    mb,
    ns_to_cycles,
    seconds_to_cycles,
)


def test_kb_mb():
    assert kb(1) == 1024
    assert mb(1) == 1024 * 1024
    assert mb(1.5) == 1536 * 1024


def test_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-8)


def test_log2_int():
    assert log2_int(1) == 0
    assert log2_int(4096) == 12
    with pytest.raises(ValueError):
        log2_int(12)


def test_cycle_time_roundtrip():
    seconds = cycles_to_seconds(E6000_CLOCK_HZ)
    assert seconds == pytest.approx(1.0)
    assert seconds_to_cycles(seconds) == pytest.approx(E6000_CLOCK_HZ)


def test_ns_to_cycles_memory_latency():
    # ~550 ns at 248 MHz is ~136 cycles, the basis of the latency book.
    assert ns_to_cycles(550) == pytest.approx(136.4, abs=0.5)


def test_format_size():
    assert format_size(kb(64)) == "64 KB"
    assert format_size(mb(1)) == "1 MB"
    assert format_size(100) == "100 B"
