"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "HPCA 2003" in out
    assert "specjbb" in out and "ecperf" in out
    assert "fig16" in out


def test_unknown_figure_id(capsys):
    assert main(["figures", "fig99", "--quick"]) == 2
    # Diagnostics go to stderr; stdout stays clean for figure output.
    assert "unknown figure" in capsys.readouterr().err


def test_characterize_quick(capsys):
    assert main(["characterize", "specjbb", "-p", "2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "specjbb on 2 processors" in out
    assert "CPI (total)" in out


def test_single_figure_quick(capsys):
    assert main(["figures", "fig11"]) in (0, 1)
    out = capsys.readouterr().out
    assert "fig11" in out
    assert "paper:" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_loadplane_tiny_ladder(capsys):
    assert main([
        "loadplane", "--users", "4", "16", "--threads", "2",
        "--windows", "3", "--window-s", "0.5", "--no-cache", "--no-plot",
    ]) == 0
    out = capsys.readouterr().out
    assert "saturation sweep:" in out
    assert "bottleneck: threads" in out
    assert "measured knee:" in out
    assert "*=measured" not in out  # --no-plot suppresses the curve


def test_loadplane_bad_config_exits_2(capsys):
    assert main(["loadplane", "--users", "0", "--no-cache"]) == 2
    assert "bad sweep configuration" in capsys.readouterr().err
    assert main(["loadplane", "--users", "8", "8", "--no-cache"]) == 2
    assert "distinct" in capsys.readouterr().err


def test_loadplane_ecperf_reports_conn_utilization(capsys):
    assert main([
        "loadplane", "--workload", "ecperf", "--users", "64",
        "--threads", "8", "--connections", "1", "--windows", "3",
        "--window-s", "0.5", "--no-cache", "--no-plot",
    ]) == 0
    out = capsys.readouterr().out
    # With one connection under ECperf load the DB stage shows up.
    assert "workload=ecperf" in out
    assert "U_conn" in out
