"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "HPCA 2003" in out
    assert "specjbb" in out and "ecperf" in out
    assert "fig16" in out


def test_unknown_figure_id(capsys):
    assert main(["figures", "fig99", "--quick"]) == 2
    # Diagnostics go to stderr; stdout stays clean for figure output.
    assert "unknown figure" in capsys.readouterr().err


def test_characterize_quick(capsys):
    assert main(["characterize", "specjbb", "-p", "2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "specjbb on 2 processors" in out
    assert "CPI (total)" in out


def test_single_figure_quick(capsys):
    assert main(["figures", "fig11"]) in (0, 1)
    out = capsys.readouterr().out
    assert "fig11" in out
    assert "paper:" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
