"""CLI resilience: exit codes, --fail-fast, interrupt + --resume.

Figure execution is stubbed with a fast deterministic driver so these
tests exercise the campaign plumbing (manifest, drain, exit hygiene)
rather than the simulator.  The characterize resume test runs the real
pipeline at --quick effort to prove resumed stdout is byte-identical.
"""

import json
import os
import signal

import pytest

import repro.figures.common as common
from repro.cli import main
from repro.core.config import SimConfig
from repro.figures.common import FigureResult

SMOKE_SIM = SimConfig(seed=1234, refs_per_proc=25_000, warmup_fraction=0.5)


@pytest.fixture
def cli_env(monkeypatch, tmp_path):
    monkeypatch.setattr(common, "QUICK_SIM", SMOKE_SIM)
    monkeypatch.setenv("JMMW_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def _stub_result(module_name: str) -> FigureResult:
    fig_id = module_name.split("_", 1)[0]
    return FigureResult(
        figure_id=fig_id,
        title=f"stub {module_name}",
        columns=["k", "v"],
        rows=[(1, 2.0), (3, 4.0)],
        paper_claim="stubbed",
    )


@pytest.fixture
def stub_figures(monkeypatch):
    """Replace figure execution with a fast deterministic stub."""
    monkeypatch.setattr(
        common, "run_figure", lambda module_name, sim: _stub_result(module_name)
    )
    monkeypatch.setattr(
        common, "figure_checks", lambda module_name, result: [("stub claim", True)]
    )


# -- exit-code hygiene -------------------------------------------------------


def test_unknown_figure_exits_2_on_stderr(cli_env, capsys):
    assert main(["figures", "nope", "--quick"]) == 2
    captured = capsys.readouterr()
    assert "unknown figure" in captured.err
    assert "unknown figure" not in captured.out


def test_failed_figure_sets_exit_code_and_stderr_summary(
    cli_env, stub_figures, monkeypatch, capsys
):
    def explode(module_name, sim):
        if module_name.startswith("fig05"):
            raise RuntimeError("driver exploded")
        return _stub_result(module_name)

    monkeypatch.setattr(common, "run_figure", explode)
    rc = main(["figures", "fig04", "fig05", "--quick", "--no-cache"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "fig04" in captured.out  # the healthy figure still rendered
    assert "FAILED to run" in captured.out
    assert "1 task(s) failed" in captured.err
    assert "driver exploded" in captured.err


def test_fail_fast_aborts_remaining_figures(
    cli_env, stub_figures, monkeypatch, capsys
):
    def explode_first(module_name, sim):
        if module_name.startswith("fig04"):
            raise RuntimeError("first figure down")
        return _stub_result(module_name)

    monkeypatch.setattr(common, "run_figure", explode_first)
    rc = main(["figures", "fig04", "fig05", "fig06", "--quick", "--no-cache",
               "--fail-fast"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "3 task(s) failed" in captured.err
    assert "aborted" in captured.err


# -- interrupt + resume ------------------------------------------------------


def test_interrupted_figures_campaign_resumes_byte_identically(
    cli_env, stub_figures, monkeypatch, capsys
):
    argv = ["figures", "fig04", "fig05", "--quick", "--no-cache"]

    # Baseline: the campaign end to end, no interruption.
    assert main(argv) == 0
    baseline = capsys.readouterr().out

    # Fresh campaign in a fresh cache dir, interrupted during fig04.
    monkeypatch.setenv("JMMW_CACHE_DIR", str(cli_env / "cache2"))

    def interrupting(module_name, sim):
        if module_name.startswith("fig04"):
            os.kill(os.getpid(), signal.SIGINT)  # drain, don't lose it
        return _stub_result(module_name)

    monkeypatch.setattr(common, "run_figure", interrupting)
    rc = main(argv)
    assert rc == 130
    captured = capsys.readouterr()
    assert "campaign interrupted" in captured.err
    assert "--resume" in captured.err
    # The in-flight figure was drained into the manifest, fig05 never ran.
    assert "1 task(s) completed, 1 remaining" in captured.err

    # Resume: fig04 served from the manifest, fig05 computed, stdout
    # byte-identical to the uninterrupted baseline.
    rc = main(argv + ["--resume"])
    assert rc == 0
    captured = capsys.readouterr()
    assert captured.out == baseline
    assert "resuming campaign: 1 task(s)" in captured.err


def test_resume_without_prior_campaign_just_runs(cli_env, stub_figures, capsys):
    rc = main(["figures", "fig04", "--quick", "--no-cache", "--resume"])
    assert rc == 0
    assert "fig04" in capsys.readouterr().out


def test_characterize_resume_is_byte_identical(cli_env, capsys, tmp_path):
    argv = [
        "characterize", "specjbb", "-p", "2", "--quick", "--runs", "2",
        "--no-cache",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "2/2 replicas" in first

    trace = tmp_path / "resume-trace.jsonl"
    assert main(argv + ["--resume", "--trace", str(trace)]) == 0
    second = capsys.readouterr().out
    assert second == first
    events = [
        json.loads(line)["event"] for line in trace.read_text().splitlines()
    ]
    assert events.count("resume/skip") == 2
    assert "task/start" not in events


# -- campaign exit codes and resume ------------------------------------------


def sigint_cell(point, rep, *, root):
    """SIGINT the campaign process from inside one cell, once ever."""
    from repro.campaign.studies import smoke_cell
    from repro.harness.chaos import take_ticket

    if point["alpha"] == 2 and rep == 0 and take_ticket(root, "sigint") == 0:
        os.kill(os.getppid(), signal.SIGINT)
    return smoke_cell(point, rep)


def failing_cell(point, rep):
    from repro.campaign.studies import smoke_cell

    if point["alpha"] == 3:
        raise RuntimeError("cell permanently broken")
    return smoke_cell(point, rep)


@pytest.fixture
def campaign_studies(monkeypatch, tmp_path):
    """Register tiny test studies alongside the built-in ones."""
    from repro.campaign import Axis, CampaignSpec, RunTable
    from repro.campaign import studies

    table = RunTable(name="t", axes=(Axis("alpha", (1, 2, 3)),), reps=2)

    def sigint_spec(reps, quick):
        return CampaignSpec(
            name="t-sigint", table=table, fn=sigint_cell,
            kwargs={"root": str(tmp_path / "tickets")},
        )

    def failing_spec(reps, quick):
        return CampaignSpec(name="t-failing", table=table, fn=failing_cell)

    registry = dict(studies.STUDIES)
    registry["t-sigint"] = sigint_spec
    registry["t-failing"] = failing_spec
    monkeypatch.setattr(studies, "STUDIES", registry)


def test_campaign_unknown_study_exits_2(cli_env, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["campaign", "run", "nope"])
    assert excinfo.value.code == 2
    assert "unknown study" in capsys.readouterr().err


def test_campaign_complete_exits_0(cli_env, capsys):
    rc = main(["campaign", "run", "smoke", "--executor", "serial"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "status: complete (12/12 cells ok)" in captured.out
    # status and report agree, read-only, exit 0.
    assert main(["campaign", "status", "smoke"]) == 0
    assert "12 ok" in capsys.readouterr().out
    assert main(["campaign", "report", "smoke"]) == 0


def test_campaign_partial_exits_4_and_report_states_degradation(
    cli_env, campaign_studies, capsys
):
    rc = main(["campaign", "run", "t-failing", "--executor", "serial"])
    assert rc == 4
    captured = capsys.readouterr()
    assert "DEGRADED" in captured.out
    assert "2 failed" in captured.out
    assert "cell permanently broken" in captured.out
    # The journal-backed report reproduces the degradation and exit code.
    assert main(["campaign", "report", "t-failing"]) == 4
    captured = capsys.readouterr()
    assert "DEGRADED" in captured.out
    assert "alpha=3/rep0" in captured.out


def test_interrupted_fleet_campaign_resumes_byte_identically(
    cli_env, campaign_studies, capsys
):
    argv = ["campaign", "run", "t-sigint", "--executor", "fleet", "--jobs", "2"]

    # Interrupted mid-campaign: drained cells persist, exit 130.
    rc = main(argv)
    assert rc == 130
    captured = capsys.readouterr()
    assert "campaign interrupted" in captured.err
    assert "--resume" in captured.err

    # Resume completes the table; exit 0.
    rc = main(argv + ["--resume"])
    assert rc == 0
    resumed = capsys.readouterr()
    assert "resuming campaign" in resumed.err
    assert "status: complete (6/6 cells ok)" in resumed.out

    # The resumed report is byte-identical to an uninterrupted run
    # (fresh journal, same spec, serial executor — the reference).
    rc = main(["campaign", "run", "t-sigint", "--executor", "serial"])
    assert rc == 0
    baseline = capsys.readouterr().out
    assert resumed.out.replace(
        "executor: fleet (2 workers)", "executor: serial"
    ) == baseline


def test_campaign_status_without_journal(cli_env, capsys):
    assert main(["campaign", "status", "smoke"]) == 0
    captured = capsys.readouterr()
    assert "no journal" in captured.out
    assert "12 pending" in captured.out


def test_check_invariants_flag_passes_clean_run(cli_env, monkeypatch, capsys):
    # setenv first so monkeypatch restores the variable afterwards
    # (the CLI writes it through os.environ for workers to inherit).
    monkeypatch.setenv("JMMW_CHECK", "0")
    monkeypatch.setenv("JMMW_CHECK_SAMPLE", "4096")
    rc = main(
        ["characterize", "specjbb", "-p", "2", "--quick", "--runs", "1",
         "--check-invariants"]
    )
    assert rc == 0
    assert os.environ["JMMW_CHECK"] == "1"
    assert "specjbb on 2 processors" in capsys.readouterr().out
