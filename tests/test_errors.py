"""Exception hierarchy contract."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigError,
    ReproError,
    SimulationError,
    WorkloadError,
)


def test_all_derive_from_repro_error():
    for exc in (ConfigError, SimulationError, WorkloadError, AnalysisError):
        assert issubclass(exc, ReproError)


def test_one_catch_at_api_boundary():
    """Library callers can catch ReproError for any library failure."""
    from repro.memsys.config import CacheConfig

    with pytest.raises(ReproError):
        CacheConfig(size=-1, assoc=1, block=64)

    from repro.workloads.specjbb import SpecJbbWorkload

    with pytest.raises(ReproError):
        SpecJbbWorkload(warehouses=0)

    from repro.analysis import cumulative_share

    with pytest.raises(ReproError):
        cumulative_share([-1])


def test_repro_error_is_not_caught_by_accident():
    assert not issubclass(ReproError, ValueError)
