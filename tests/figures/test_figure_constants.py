"""Figure-driver constants must match the paper's experimental setup."""

from repro.figures import fig08_c2c_ratio, fig10_c2c_timeline, fig12_icache
from repro.figures.common import PAPER_PROC_SWEEP
from repro.figures.fig11_memory_use import SCALES
from repro.figures.fig16_sharedcache import N_PROCS, SHARING
from repro.units import kb, mb


def test_proc_sweep_matches_paper_axis():
    """Figures 4-7 sweep 1..15 processors on the 16-CPU E6000 (one CPU
    is left to the OS, hence 15 not 16)."""
    assert PAPER_PROC_SWEEP[0] == 1
    assert PAPER_PROC_SWEEP[-1] == 15
    assert PAPER_PROC_SWEEP == sorted(PAPER_PROC_SWEEP)


def test_fig8_sweep_reaches_fourteen():
    assert fig08_c2c_ratio.C2C_SWEEP[-1] == 14  # the paper's last point


def test_fig10_has_three_collections():
    """The paper's window contains three garbage collections."""
    gc_bins = sorted(fig10_c2c_timeline.GC_BINS)
    runs = 1
    for a, b in zip(gc_bins, gc_bins[1:]):
        if b != a + 1:
            runs += 1
    assert runs == 3
    assert max(gc_bins) < fig10_c2c_timeline.N_BINS


def test_fig12_axis_is_64kb_to_16mb_4way_64b():
    sizes = fig12_icache.CACHE_SIZES
    assert sizes[0] == kb(64)
    assert sizes[-1] == mb(16)
    assert sizes == sorted(sizes)
    labels = [label for label, _, _ in fig12_icache.CONFIGS]
    assert labels == ["ecperf", "specjbb-25", "specjbb-10", "specjbb-1"]


def test_fig16_is_the_paper_cmp_matrix():
    """8 processors; 1, 2, 4 and 8 processors per shared 1 MB L2."""
    assert N_PROCS == 8
    assert SHARING == [1, 2, 4, 8]
