"""Figure drivers: structural smoke tests at reduced effort.

Full shape checks against the paper run in ``benchmarks/`` at figure
effort; here each driver must produce well-formed results quickly.
The analytic figures (4, 5, 9, 11) are cheap enough to check fully.
"""

import pytest

from repro.core.config import SimConfig
from repro.figures import (
    fig04_scaling,
    fig05_modes,
    fig08_c2c_ratio,
    fig09_gc_speedup,
    fig10_c2c_timeline,
    fig11_memory_use,
    fig12_icache,
    fig13_dcache,
    fig14_c2c_cdf,
    fig15_c2c_footprint,
    fig16_sharedcache,
)
from repro.figures import fig06_cpi, fig07_datastall

TINY = SimConfig(seed=42, refs_per_proc=25_000, warmup_fraction=0.5)


def assert_well_formed(result, n_min_rows=2):
    assert result.figure_id.startswith("fig")
    assert len(result.rows) >= n_min_rows
    for row in result.rows:
        assert len(row) == len(result.columns)
    text = result.render()
    assert result.figure_id in text
    assert "paper:" in text


def test_fig11_full_checks():
    result = fig11_memory_use.run()
    assert_well_formed(result, n_min_rows=40)
    assert all(ok for _, ok in fig11_memory_use.checks(result))


def test_fig04_structure_and_monotone_prefix():
    result = fig04_scaling.run(TINY)
    assert_well_formed(result)
    ec = dict(result.series["ecperf"])
    # Speedup rises from 1 processor regardless of simulation effort.
    assert ec[1] == pytest.approx(1.0)
    assert ec[4] > ec[2] > ec[1]


def test_fig05_modes_normalized():
    result = fig05_modes.run(TINY)
    assert_well_formed(result)
    for row in result.rows:
        assert sum(row[2:]) == pytest.approx(1.0, abs=1e-6)


def test_fig06_small_sweep():
    result = fig06_cpi.run(TINY, sweep=[1, 2])
    assert_well_formed(result)
    for row in result.rows:
        assert 1.0 < row[2] < 6.0  # CPI plausible even at tiny effort


def test_fig07_small_sweep():
    result = fig07_datastall.run(TINY, sweep=[1, 2])
    assert_well_formed(result)
    for row in result.rows:
        shares = row[2:7]
        assert all(-1e-9 <= s <= 1.0 for s in shares)


def test_fig08_small_sweep():
    result = fig08_c2c_ratio.run(TINY, sweep=[1, 2, 4])
    assert_well_formed(result)
    ratios = dict(result.series["specjbb"])
    assert 0.0 <= ratios[4] <= 1.0
    assert ratios[4] > ratios[1]


def test_fig09_no_gc_dominates():
    result = fig09_gc_speedup.run(TINY)
    assert_well_formed(result)
    assert all(ok for _, ok in fig09_gc_speedup.checks(result))


def test_fig10_gc_bins_quiet():
    result = fig10_c2c_timeline.run(TINY)
    assert_well_formed(result, n_min_rows=30)
    gc_rates = [row[3] for row in result.rows if row[1]]
    mut_rates = [row[3] for row in result.rows if not row[1]]
    assert max(gc_rates) < sum(mut_rates) / len(mut_rates)


def test_fig12_fig13_curve_shapes():
    r12 = fig12_icache.run(TINY)
    r13 = fig13_dcache.run(TINY)
    for result in (r12, r13):
        assert_well_formed(result, n_min_rows=20)
        for label, points in result.series.items():
            mpkis = [m for _, m in points]
            assert all(m >= 0 for m in mpkis), label
            # Broad monotonicity: the largest cache misses least.
            assert mpkis[-1] <= mpkis[0] + 0.5


def test_fig14_fig15_distributions():
    r14 = fig14_c2c_cdf.run(TINY)
    assert_well_formed(r14)
    for row in r14.rows:
        assert 0.0 <= row[1] <= 1.0
        assert 0.0 <= row[3] <= 1.0
    r15 = fig15_c2c_footprint.run(TINY)
    assert_well_formed(r15)
    for row in r15.rows:
        assert row[1] <= row[2] <= row[3] <= row[4]


def test_fig16_structure():
    result = fig16_sharedcache.run(TINY)
    assert_well_formed(result, n_min_rows=8)
    for row in result.rows:
        assert row[1] * row[2] == 8  # procs/L2 times cache count
        assert row[3] >= 0
