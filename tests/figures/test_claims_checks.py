"""Headline-claims driver check logic (fabricated inputs)."""

from repro.figures import claims
from repro.figures.common import FigureResult


def claims_result(overrides=None):
    values = {
        ("working_set_90pct_kb", "specjbb"): 2.0,
        ("working_set_90pct_kb", "ecperf"): 3.0,
        ("c2c_miss_fraction_14p", "specjbb"): 0.49,
        ("c2c_miss_fraction_14p", "ecperf"): 0.60,
        ("instr_footprint_kb", "specjbb"): 217.0,
        ("instr_footprint_kb", "ecperf"): 807.0,
        ("live_memory_growth_5_to_25", "specjbb"): 3.2,
        ("live_memory_growth_5_to_25", "ecperf"): 1.14,
        ("shared_over_private_mpki", "ecperf"): 0.49,
        ("shared_over_private_mpki", "specjbb-25"): 1.43,
    }
    values.update(overrides or {})
    rows = [(metric, wl, v) for (metric, wl), v in values.items()]
    return FigureResult(
        figure_id="claims",
        title="t",
        columns=["claim metric", "workload", "value"],
        rows=rows,
        paper_claim="",
    )


def test_paper_shaped_values_pass():
    assert all(ok for _, ok in claims.checks(claims_result()))


def test_flat_specjbb_growth_fails():
    result = claims_result({("live_memory_growth_5_to_25", "specjbb"): 1.1})
    checks = dict(claims.checks(result))
    assert not checks["SPECjbb data grows ~linearly, ECperf stays flat"]


def test_small_instruction_gap_fails():
    result = claims_result({("instr_footprint_kb", "ecperf"): 300.0})
    checks = dict(claims.checks(result))
    assert not checks["ECperf instruction footprint >2x SPECjbb's"]


def test_sharing_helping_specjbb_fails():
    result = claims_result({("shared_over_private_mpki", "specjbb-25"): 0.9})
    checks = dict(claims.checks(result))
    assert not checks["shared 1 MB helps ECperf, hurts SPECjbb-25"]
