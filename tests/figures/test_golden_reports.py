"""Frozen golden reports for the cheap, deterministic figures.

The figure pipeline is seeded end-to-end, so its stdout is a content
hash of the whole stack: workload generation, cache replay, coherence
accounting, table rendering.  These tests freeze the ``--quick`` output
of the fast figures and diff byte-for-byte — any unintentional change
anywhere in the pipeline shows up as a golden mismatch.

Intentional changes regenerate the files with::

    pytest tests/figures/test_golden_reports.py --update-goldens

The byte-stability test at the bottom is the observability contract:
enabling ``--obs`` must not change figure stdout by a single byte
(summaries go to stderr or files).
"""

from pathlib import Path

import pytest

from repro.cli import main

#: Figures cheap enough to regenerate in the suite and whose quick-mode
#: checks pass (rc 0); the slow/failing-at-quick ones keep their
#: full-effort reference outputs under benchmark_reports/ instead.
GOLDEN_FIGURES = ["fig05", "fig09", "fig10", "fig11", "fig12", "fig13"]

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _golden_path(fig_id: str) -> Path:
    return GOLDEN_DIR / f"{fig_id}.quick.txt"


def _figure_stdout(fig_id: str, capsys, extra: tuple[str, ...] = ()) -> str:
    rc = main(["figures", fig_id, "--quick", "--no-cache", *extra])
    assert rc == 0, f"{fig_id} exited {rc}"
    return capsys.readouterr().out


@pytest.mark.parametrize("fig_id", GOLDEN_FIGURES)
def test_figure_stdout_matches_golden(fig_id, capsys, request):
    out = _figure_stdout(fig_id, capsys)
    golden = _golden_path(fig_id)
    if request.config.getoption("--update-goldens"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(out, encoding="utf-8")
        pytest.skip(f"golden for {fig_id} rewritten")
    assert golden.exists(), (
        f"missing golden {golden}; regenerate with pytest --update-goldens"
    )
    expected = golden.read_text(encoding="utf-8")
    assert out == expected, (
        f"{fig_id} stdout drifted from its golden; if the change is "
        f"intentional rerun with --update-goldens"
    )


def test_goldens_contain_figure_headers():
    for fig_id in GOLDEN_FIGURES:
        golden = _golden_path(fig_id)
        assert golden.exists(), f"golden for {fig_id} was never generated"
        text = golden.read_text(encoding="utf-8")
        assert f"=== {fig_id}" in text
        assert "paper:" in text


def test_figure_stdout_byte_identical_with_obs(capsys, monkeypatch):
    """Turning instrumentation on must not perturb figure output."""
    from repro import obs

    # Pre-seat the env key so monkeypatch restores it after the CLI
    # writes JMMW_OBS=1 during argument handling.
    monkeypatch.setenv(obs.OBS_ENV, "0")
    try:
        captured_out = _figure_stdout("fig12", capsys, extra=("--obs",))
    finally:
        obs.disable()
        obs.reset()
    golden = _golden_path("fig12").read_text(encoding="utf-8")
    assert captured_out == golden
