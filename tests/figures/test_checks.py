"""Figure shape-check functions, exercised on fabricated results.

The checks guard the benchmark suite; these tests guard the checks —
a paper-shaped result must pass, a counter-shaped one must fail.
"""

from repro.figures import (
    fig04_scaling,
    fig08_c2c_ratio,
    fig11_memory_use,
    fig16_sharedcache,
)
from repro.figures.common import FigureResult


def fig04_result(ec_peak_at=12):
    procs = [1, 2, 4, 6, 8, 10, 12, 14, 15]
    ec = {1: 1.0, 2: 2.3, 4: 5.0, 6: 7.2, 8: 8.6, 10: 9.4, 12: 9.9, 14: 9.6, 15: 9.3}
    jbb = {1: 1.0, 2: 1.8, 4: 3.2, 6: 4.5, 8: 5.6, 10: 6.4, 12: 6.9, 14: 7.2, 15: 7.3}
    if ec_peak_at != 12:  # deform: monotone growth, no peak
        ec = {p: float(p) for p in procs}
    rows = [("ecperf", p, ec[p], 1.0) for p in procs]
    rows += [("specjbb", p, jbb[p], 1.0) for p in procs]
    return FigureResult(
        figure_id="fig04",
        title="t",
        columns=["workload", "procs", "speedup", "rel"],
        rows=rows,
        paper_claim="",
        series={
            "ecperf": [(p, ec[p]) for p in procs],
            "specjbb": [(p, jbb[p]) for p in procs],
        },
    )


def test_fig04_checks_accept_paper_shape():
    assert all(ok for _, ok in fig04_scaling.checks(fig04_result()))


def test_fig04_checks_reject_linear_ecperf():
    checks = dict(fig04_scaling.checks(fig04_result(ec_peak_at=None)))
    assert not checks["ecperf degrades past its peak"]


def fig08_result(jbb_flat=False):
    procs = [1, 2, 4, 6, 8, 10, 12, 14]
    ec = {1: 0.02, 2: 0.28, 4: 0.44, 6: 0.51, 8: 0.54, 10: 0.57, 12: 0.59, 14: 0.60}
    jbb = {1: 0.01, 2: 0.20, 4: 0.36, 6: 0.42, 8: 0.45, 10: 0.47, 12: 0.48, 14: 0.49}
    if jbb_flat:
        jbb = {p: 0.10 for p in procs}
        jbb[1] = 0.0
    rows = [("ecperf", p, ec[p], 1000) for p in procs]
    rows += [("specjbb", p, jbb[p], 1000) for p in procs]
    return FigureResult(
        figure_id="fig08",
        title="t",
        columns=["workload", "procs", "c2c ratio", "L2 misses"],
        rows=rows,
        paper_claim="",
        series={
            "ecperf": [(p, ec[p]) for p in procs],
            "specjbb": [(p, jbb[p]) for p in procs],
        },
    )


def test_fig08_checks_accept_paper_shape():
    assert all(ok for _, ok in fig08_c2c_ratio.checks(fig08_result()))


def test_fig08_checks_reject_flat_curve():
    checks = dict(fig08_c2c_ratio.checks(fig08_result(jbb_flat=True)))
    assert not checks["specjbb: ratio @14p above 35%"]
    assert not checks["specjbb: ratio > 0 at 1p (OS effect)"]


def test_fig11_checks_reject_linear_ecperf():
    scales = list(range(1, 41))
    rows = [(s, 58 + 11.8 * min(s, 30) - 4 * max(0, s - 30), 50 + 10.0 * s) for s in scales]
    result = FigureResult(
        figure_id="fig11",
        title="t",
        columns=["scale", "specjbb MB", "ecperf MB"],
        rows=rows,
        paper_claim="",
        series={
            "specjbb": [(s, r[1]) for s, r in zip(scales, rows)],
            "ecperf": [(s, r[2]) for s, r in zip(scales, rows)],
        },
    )
    checks = dict(fig11_memory_use.checks(result))
    assert not checks["ecperf roughly flat 10..40"]


def fig16_result(jbb_likes_sharing=False):
    ec = {1: 5.2, 2: 4.6, 4: 3.7, 8: 2.4}
    jbb = {1: 3.0, 2: 3.1, 4: 3.4, 8: 3.9}
    if jbb_likes_sharing:
        jbb = {1: 3.9, 2: 3.4, 4: 3.1, 8: 3.0}
    rows = [("ecperf", k, 8 // k, v, 0.1) for k, v in ec.items()]
    rows += [("specjbb-25", k, 8 // k, v, 0.1) for k, v in jbb.items()]
    return FigureResult(
        figure_id="fig16",
        title="t",
        columns=["workload", "procs/L2", "n caches", "data MPKI", "c2c ratio"],
        rows=rows,
        paper_claim="",
        series={
            "ecperf": list(ec.items()),
            "specjbb-25": list(jbb.items()),
        },
    )


def test_fig16_checks_accept_paper_shape():
    assert all(ok for _, ok in fig16_sharedcache.checks(fig16_result()))


def test_fig16_checks_reject_uniform_sharing_win():
    checks = dict(fig16_sharedcache.checks(fig16_result(jbb_likes_sharing=True)))
    assert not checks["specjbb-25: fully shared loses to private"]
    assert not checks["opposite design conclusions"]
