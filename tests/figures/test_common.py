"""Figure scaffolding: workload construction, CPI interpolation."""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.figures.common import (
    FigureResult,
    make_workload,
    measured_cpi_fn,
    simulate_multiprocessor,
    workload_for_procs,
)

SIM = SimConfig(seed=13, refs_per_proc=20_000, warmup_fraction=0.5)


def test_make_workload():
    assert make_workload("specjbb", 5).warehouses == 5
    assert make_workload("ecperf", 5).injection_rate == 5
    with pytest.raises(ConfigError):
        make_workload("tpcc")


def test_workload_for_procs_scales_specjbb():
    assert workload_for_procs("specjbb", 6).warehouses == 6
    assert workload_for_procs("ecperf", 6).injection_rate == 6


def test_os_processor_adds_a_cache():
    plain = simulate_multiprocessor(workload_for_procs("specjbb", 2), 2, SIM)
    with_os = simulate_multiprocessor(
        workload_for_procs("specjbb", 2), 2, SIM, include_os_processor=True
    )
    assert len(with_os.bus.caches) == len(plain.bus.caches) + 1


def test_measured_cpi_fn_interpolates():
    cpi = measured_cpi_fn("specjbb", SIM, anchor_procs=(1, 4))
    assert cpi(1) > 1.0
    assert cpi(4) >= cpi(1) * 0.8
    mid = cpi(2)
    lo, hi = sorted((cpi(1), cpi(4)))
    assert lo - 1e-9 <= mid <= hi + 1e-9
    # Clamped outside the anchors.
    assert cpi(16) == cpi(4)


def test_figure_result_render():
    result = FigureResult(
        figure_id="figXX",
        title="demo",
        columns=["a"],
        rows=[(1,)],
        paper_claim="claim",
        notes="note",
    )
    text = result.render()
    assert "figXX" in text and "claim" in text and "note" in text
