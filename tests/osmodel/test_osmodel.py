"""OS model: mpstat breakdowns, psrset, kernel network time."""

import pytest

from repro.errors import AnalysisError, ConfigError
from repro.osmodel.mpstat import ModeBreakdown
from repro.osmodel.netstack import KernelNetworkModel
from repro.osmodel.scheduler import ProcessorSet


def test_mode_breakdown_must_sum_to_one():
    with pytest.raises(AnalysisError):
        ModeBreakdown(user=0.5, system=0.1, io=0.0, gc_idle=0.0, other_idle=0.0)
    md = ModeBreakdown(user=0.6, system=0.2, io=0.05, gc_idle=0.05, other_idle=0.1)
    assert md.idle == pytest.approx(0.15)
    assert md.busy == pytest.approx(0.8)


def test_mode_breakdown_normalizing_constructor():
    md = ModeBreakdown.from_components(user=6, system=2, io=0.5, gc_idle=0.5, other_idle=1)
    assert md.user == pytest.approx(0.6)
    assert sum(md.as_dict().values()) == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        ModeBreakdown.from_components(0, 0, 0, 0, 0)


def test_negative_mode_rejected():
    with pytest.raises(AnalysisError):
        ModeBreakdown(user=1.1, system=-0.1, io=0.0, gc_idle=0.0, other_idle=0.0)


def test_processor_set():
    pset = ProcessorSet(machine_procs=16, set_size=4)
    assert pset.members == [0, 1, 2, 3]
    assert len(pset.outside) == 12
    assert pset.is_member(0) and not pset.is_member(4)
    with pytest.raises(ConfigError):
        ProcessorSet(machine_procs=16, set_size=17)
    with pytest.raises(ConfigError):
        pset.is_member(16)


def test_kernel_network_growth():
    model = KernelNetworkModel()
    fractions = [model.system_fraction(p) for p in (1, 4, 8, 15)]
    assert fractions[0] == pytest.approx(0.045)
    assert all(a <= b for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] <= model.cap


def test_kernel_network_none():
    model = KernelNetworkModel.none()
    assert model.system_fraction(15) == 0.0


def test_kernel_network_validation():
    with pytest.raises(ConfigError):
        KernelNetworkModel(base_fraction=1.0)
    with pytest.raises(ConfigError):
        KernelNetworkModel(base_fraction=0.2, cap=0.1)
    with pytest.raises(ConfigError):
        KernelNetworkModel().system_fraction(0)
