#!/usr/bin/env python3
"""Trace capture and replay: the Simics-style workflow.

The paper's simulation methodology decouples workload execution from
memory-system evaluation: capture a reference trace once, then replay
it against as many cache designs as you like.  This example captures
an ECperf trace to disk, reloads it, and replays it through three L2
designs — demonstrating that results are bit-identical across the
save/load boundary and that design sweeps don't pay generation cost
twice.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.core.config import SimConfig, e6000_machine
from repro.memsys import MemoryHierarchy, load_trace, save_trace
from repro.memsys.config import CacheConfig
from repro.rng import RngFactory
from repro.units import kb, mb
from repro.workloads import EcperfWorkload

SIM = SimConfig(seed=1234, refs_per_proc=100_000, warmup_fraction=0.5)


def main() -> None:
    workload = EcperfWorkload(injection_rate=4)
    bundle = workload.generate(4, SIM, RngFactory(seed=SIM.seed))
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(bundle, Path(tmp) / "ecperf_4p")
        size_kb = path.stat().st_size / 1024
        print(f"captured {bundle.total_refs} refs -> {path.name} ({size_kb:.0f} KB)")
        reloaded = load_trace(path)
    assert reloaded.per_cpu_lists() == bundle.per_cpu_lists(), "round trip must be exact"

    print("\nreplaying one captured trace against three L2 designs:")
    print("L2 design            data MPKI   c2c ratio")
    designs = [
        ("512 KB, 2-way", CacheConfig(size=kb(512), assoc=2, block=64, name="L2")),
        ("1 MB, 4-way", CacheConfig(size=mb(1), assoc=4, block=64, name="L2")),
        ("2 MB, 8-way", CacheConfig(size=mb(2), assoc=8, block=64, name="L2")),
    ]
    from dataclasses import replace

    for label, l2 in designs:
        machine = replace(e6000_machine(4), l2=l2)
        hierarchy = MemoryHierarchy(machine)
        hierarchy.run_trace(reloaded.per_cpu, warmup_fraction=0.5)
        print(
            f"{label:18}  {hierarchy.data_mpki():10.2f}  "
            f"{hierarchy.c2c_ratio():10.2f}"
        )


if __name__ == "__main__":
    main()
