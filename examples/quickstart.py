#!/usr/bin/env python3
"""Quickstart: characterize both middleware workloads in one call each.

Reproduces the paper's headline per-workload numbers — L1/L2 miss
rates, the cache-to-cache miss fraction, the CPI breakdown — on a
4-processor E6000-style machine, then prints the three findings the
paper leads with.

Run:  python examples/quickstart.py
"""

from repro import characterize
from repro.core.config import SimConfig

SIM = SimConfig(seed=1234, refs_per_proc=120_000, warmup_fraction=0.5)


def main() -> None:
    reports = {
        name: characterize(name, n_procs=4, sim=SIM)
        for name in ("specjbb", "ecperf")
    }
    for report in reports.values():
        print(report.render())
        print()

    jbb, ec = reports["specjbb"], reports["ecperf"]
    print("Findings (cf. the paper's abstract):")
    print(
        f" 1. Moderate CPIs: {jbb.cpi.total:.2f} (SPECjbb) / "
        f"{ec.cpi.total:.2f} (ECperf) — low memory stall for commercial code."
    )
    print(
        f" 2. Sharing misses dominate: {100 * jbb.c2c_ratio:.0f}% / "
        f"{100 * ec.c2c_ratio:.0f}% of L2 misses hit another processor's cache."
    )
    print(
        f" 3. ECperf's instruction footprint ({ec.code_footprint_kb:.0f} KB) "
        f"dwarfs SPECjbb's ({jbb.code_footprint_kb:.0f} KB); SPECjbb's heap "
        f"({jbb.live_memory_mb:.0f} MB) outgrows ECperf's "
        f"({ec.live_memory_mb:.0f} MB)."
    )


if __name__ == "__main__":
    main()
