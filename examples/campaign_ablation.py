#!/usr/bin/env python3
"""Fault-tolerant campaign over the protocol/workload ablation matrix.

Declares the paper's ablation study as a run table — coherence
protocol x workload x repetitions — and executes it as a campaign on
a subprocess fleet.  The scheduler retries transient cell failures
with capped, jittered backoff, reclaims leases from wedged workers,
quarantines cells that repeatedly kill their executor, and journals
every completed cell so an interrupted campaign resumes without
recomputing anything.  The final report aggregates repetitions into
mean +/- std per table point (the Alameldeen-Wood treatment of
run-to-run variability).

The same study is available from the command line:

    jmmw campaign run ablation --executor fleet --jobs 4
    jmmw campaign status ablation
    jmmw campaign report ablation

Run:  python examples/campaign_ablation.py
"""

from repro.campaign import (
    CampaignPolicy,
    SubprocessFleetExecutor,
    run_campaign,
)
from repro.campaign.report import render
from repro.campaign.studies import get_study
from repro.harness import FaultPolicy, Telemetry

#: Transient faults are retried up to 3 times with exponential backoff
#: capped at 2 s; deterministic jitter decorrelates retry storms.  A
#: cell that kills two executors in a row is quarantined as poisoned
#: rather than allowed to grind down the respawn budget.
POLICY = CampaignPolicy(
    faults=FaultPolicy(
        max_attempts=3,
        backoff_s=0.05,
        backoff_factor=2.0,
        backoff_max_s=2.0,
        jitter=0.5,
    ),
    lease_timeout_s=10.0,
    poison_k=2,
)


def main() -> None:
    # ``quick=True`` shrinks per-cell simulation effort so the example
    # finishes in tens of seconds; drop it for paper-scale statistics.
    spec = get_study("ablation", reps=2, quick=True)
    print(f"campaign '{spec.name}': {spec.table.shape()}")

    executor = SubprocessFleetExecutor(workers=2)
    with Telemetry() as telemetry:
        result = run_campaign(
            spec, executor, policy=POLICY, telemetry=telemetry
        )
    print(render(result))
    if not result.complete:
        # Partial results are still reported — the degradation detail
        # names every missing cell and why it is missing.
        print("note: campaign degraded; rerun or --resume via the CLI")


if __name__ == "__main__":
    main()
