#!/usr/bin/env python3
"""Chip-multiprocessor study: should eight cores share an L2?

Reproduces Figure 16 — the paper's headline design-divergence result —
and walks through the reasoning: sharing an L2 converts coherence
misses into hits but shrinks per-core capacity.  ECperf (small shared
working set, heavy sharing) wants one fully shared 1 MB cache even at
1/8 the total capacity; SPECjbb-25 (large partitioned data) wants
private caches.  A designer benchmarking only SPECjbb would reject
the shared cache that actually suits middleware.

Run:  python examples/cmp_shared_cache_study.py
"""

from repro.core.config import SimConfig
from repro.figures import fig16_sharedcache

SIM = SimConfig(seed=1234, refs_per_proc=150_000, warmup_fraction=0.5)


def main() -> None:
    result = fig16_sharedcache.run(SIM)
    print(result.render())
    print()
    ec = dict(result.series["ecperf"])
    jbb = dict(result.series["specjbb-25"])
    ec_gain = (ec[1] - ec[8]) / ec[1]
    jbb_loss = (jbb[8] - jbb[1]) / jbb[1]
    print("Verdict:")
    print(
        f"  ECperf: full sharing cuts data misses {100 * ec_gain:.0f}% "
        "while using 1/8 the SRAM - share the cache."
    )
    print(
        f"  SPECjbb-25: full sharing *adds* {100 * jbb_loss:.0f}% more "
        "data misses - keep caches private."
    )
    print(
        "  Opposite answers from two 'Java middleware' benchmarks: the\n"
        "  paper's warning about letting SPECjbb stand in for real\n"
        "  middleware (Sections 5.3, 7)."
    )


if __name__ == "__main__":
    main()
