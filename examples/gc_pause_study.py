#!/usr/bin/env python3
"""GC pause study: what stop-the-world collection does to the bus.

Reproduces Figure 10's counter-intuitive result.  The authors first
hypothesized the copying collector *caused* the high cache-to-cache
transfer rates (it rips every live object out of other processors'
caches).  Counting snoop copybacks in time bins shows the opposite:
during each collection the transfer rate collapses to ~zero — one
processor walks mostly-evicted from-space (memory fetches, not
copybacks) and writes a private to-space while everyone else idles.

Run:  python examples/gc_pause_study.py
"""

from repro.core.config import SimConfig
from repro.figures import fig10_c2c_timeline

SIM = SimConfig(seed=1234, refs_per_proc=150_000, warmup_fraction=0.5)


def main() -> None:
    result = fig10_c2c_timeline.run(SIM)
    print(result.render())
    print()
    print("C2C transfer rate per bin (# = mutator, . = GC pause):")
    peak = max(rate for _, rate in result.series["c2c_rate"]) or 1.0
    for bin_id, in_gc, _, normalized in result.rows:
        bar = "#" if not in_gc else "."
        width = int(40 * normalized / peak)
        print(f"  t={bin_id:3d} {'[GC]' if in_gc else '    '} {bar * max(width, 1)}")
    gc_rates = [row[3] for row in result.rows if row[1]]
    mut_rates = [row[3] for row in result.rows if not row[1]]
    print()
    print(
        f"mean normalized rate: mutator {sum(mut_rates) / len(mut_rates):.2f}, "
        f"during GC {sum(gc_rates) / len(gc_rates):.2f} — the collector "
        "quiets the bus instead of flooding it (Section 4.5)."
    )


if __name__ == "__main__":
    main()
