#!/usr/bin/env python3
"""Cache design study: miss-rate-vs-size curves (Figures 12 and 13).

Sweeps split instruction/data caches from 64 KB to 16 MB for ECperf
and three SPECjbb scales, then plots both families of curves as text.
The two design-relevant shapes: ECperf's instruction curve stays high
through 256 KB (its middleware stack is simply bigger than SPECjbb's
whole program), and SPECjbb's data curve grows with the warehouse
count while ECperf's stays put.

Run:  python examples/cache_design_study.py
"""

from repro.core.config import SimConfig
from repro.core.report import ascii_plot
from repro.figures import fig12_icache, fig13_dcache

SIM = SimConfig(seed=1234, refs_per_proc=150_000, warmup_fraction=0.5)


def main() -> None:
    for module, label in ((fig12_icache, "instruction"), (fig13_dcache, "data")):
        result = module.run(SIM)
        print(result.render())
        print()
        print(f"{label} miss rate vs cache size (log x):")
        print(ascii_plot(result.series, width=60, height=12, logx=True))
        print()
    print(
        "Design note: a 256 KB instruction cache is comfortable for\n"
        "SPECjbb yet far too small for ECperf's servlet+EJB+JDBC stack —\n"
        "sizing middleware machines on SPECjbb alone underestimates the\n"
        "instruction side (Section 5.1)."
    )


if __name__ == "__main__":
    main()
