#!/usr/bin/env python3
"""Scaling study: speedup and where the time goes (Figures 4-6).

Builds the throughput model on simulated CPI curves and prints the
speedup sweep with the execution-mode breakdown next to it, so the
three scaling stories are visible in one table per workload:

- ECperf super-linear to 8 processors (object-cache interference
  shortens the path), peaking near 12, then sliding as kernel
  networking contention grows;
- SPECjbb leveling off around 7 as lock/JVM contention idles
  processors;
- garbage collection's single-threaded collector visible but minor.

Run:  python examples/scaling_study.py
"""

from repro.core.config import SimConfig
from repro.core.report import ascii_plot, render_table
from repro.figures.common import PAPER_PROC_SWEEP, throughput_model

SIM = SimConfig(seed=1234, refs_per_proc=120_000, warmup_fraction=0.5)


def main() -> None:
    series = {}
    for name in ("ecperf", "specjbb"):
        model = throughput_model(name, SIM)
        rows = []
        for pt in model.curve(PAPER_PROC_SWEEP):
            md = pt.modes
            rows.append(
                (
                    pt.n_procs,
                    pt.speedup,
                    pt.cpi,
                    pt.path_relative,
                    md.user,
                    md.system,
                    md.gc_idle + md.other_idle,
                )
            )
        print(f"== {name} ==")
        print(
            render_table(
                ["procs", "speedup", "CPI", "rel.path", "user", "system", "idle"],
                rows,
            )
        )
        print()
        series[name] = [(r[0], r[1]) for r in rows]
    print("speedup vs processors:")
    print(ascii_plot(series, width=60, height=14))


if __name__ == "__main__":
    main()
