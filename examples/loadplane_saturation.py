#!/usr/bin/env python3
"""Load-plane saturation study: find the knee of a closed system.

Sweeps a closed-loop population ladder through the appserver's thread
and connection pools, prints the saturation report (measured vs M/M/c
throughput, residence time, streaming percentiles, pool utilization),
and compares the measured knee against the operational prediction
N* = X_max * (Z + sum of demands).  Past the knee every added user
buys response time instead of throughput — the sizing rule the paper
applies to middleware tiers.

Run:  python examples/loadplane_saturation.py
"""

from repro.loadplane import (
    SweepConfig,
    closed_mmc_metrics,
    run_saturation,
)

SWEEP = SweepConfig(
    populations=(8, 32, 128, 512, 2048, 8192),
    threads=8,
    connections=8,
    service_s=0.02,
    think_s=1.2,
    windows=8,
    window_s=2.0,
    seed=1234,
)


def main() -> None:
    report = run_saturation(SWEEP, jobs=2)
    print(report.render(plot=True))
    print()
    bottleneck = SWEEP.bottleneck()
    print(
        f"analytic knee N* = X_max*(Z+D) = {bottleneck.knee_users:.0f} users; "
        f"measured knee at {report.knee_users} users."
    )
    # The analytic oracle at one pre-knee point, for comparison.
    n_ref = 128
    oracle = closed_mmc_metrics(
        n_users=n_ref,
        servers=SWEEP.threads,
        service_s=SWEEP.service_s,
        think_s=SWEEP.think_s,
    )
    print(
        f"closed M/M/c oracle at N={n_ref}: "
        f"X={oracle.throughput:.1f}/s, R={oracle.response_s * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
