"""Legacy setup shim.

The offline environment has setuptools but no `wheel` package, so the
PEP 517 editable-install path (`pip install -e .`) cannot build the
editable wheel.  This shim lets `pip install -e . --no-use-pep517`
(and plain `python setup.py develop`) work; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
