"""The throughput-scaling model (Figures 4, 5 and 9).

The benchmarks are throughput-oriented and officially *scale their
work with the input rate* (Section 4.6), so the model works in rates,
not fixed batches:

- the machine's *mutator rate* is
  ``R(p) = p * (1 - idle(p) - io) * (1 - sys(p)) / (PL(p) * CPI(p))``
  — processors, derated by contention idle time and kernel network
  overhead, divided by the per-operation work;
- the single-threaded collector must keep up: each operation's
  garbage costs ``d`` collector-seconds, so a throughput ``X`` forces
  a stop-the-world fraction ``g = X * d``, during which the mutators
  stop.  Self-consistency ``X = R * (1 - X d)`` gives the closed form
  ``X(p) = R(p) / (1 + R(p) d)`` — the collector is a soft serial
  bottleneck that tightens as throughput grows.

Speedup is ``X(p) / X(1)``; Figure 9's GC-adjusted speedup divides
collection time out of the runtime, which reduces to ``R(p) / R(1)``.
The same terms yield Figure 5's execution-mode breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.osmodel.mpstat import ModeBreakdown
from repro.osmodel.netstack import KernelNetworkModel
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.pathlength import PathLengthModel


@dataclass(frozen=True)
class WorkloadScalingParams:
    """Everything the throughput model needs to know about a workload."""

    name: str
    path_length: PathLengthModel
    contention: ContentionModel
    kernel: KernelNetworkModel
    io_fraction: float = 0.0
    gc_fraction_1p: float = 0.07

    def __post_init__(self) -> None:
        if not 0.0 <= self.io_fraction < 0.5:
            raise ConfigError("io_fraction must be in [0, 0.5)")
        if not 0.0 <= self.gc_fraction_1p < 0.5:
            raise ConfigError("gc_fraction_1p must be in [0, 0.5)")

    @classmethod
    def specjbb_default(cls) -> "WorkloadScalingParams":
        """SPECjbb: flat path length, no kernel time, lock contention."""
        return cls(
            name="specjbb",
            path_length=PathLengthModel.flat(),
            contention=ContentionModel.specjbb_default(),
            kernel=KernelNetworkModel.none(),
            io_fraction=0.0,
            gc_fraction_1p=0.015,
        )

    @classmethod
    def ecperf_default(cls) -> "WorkloadScalingParams":
        """ECperf: falling path length, kernel time, pool contention."""
        return cls(
            name="ecperf",
            path_length=PathLengthModel.ecperf_default(),
            contention=ContentionModel.ecperf_default(),
            kernel=KernelNetworkModel(
                base_fraction=0.045,
                contention_coeff=0.006,
                exponent=1.5,
                cap=0.40,
            ),
            io_fraction=0.02,
            gc_fraction_1p=0.012,
        )


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count's model outputs."""

    n_procs: int
    speedup: float
    speedup_no_gc: float
    cpi: float
    path_relative: float
    modes: ModeBreakdown

    @property
    def throughput_relative(self) -> float:
        """Throughput normalized to one processor (== speedup)."""
        return self.speedup


class ThroughputModel:
    """Composes CPI, path length, contention, kernel and GC terms."""

    def __init__(
        self,
        params: WorkloadScalingParams,
        cpi_fn: Callable[[int], float],
        gc_threads: int = 1,
    ) -> None:
        """``cpi_fn(p)`` supplies CPI at each processor count.

        Figure drivers pass measurements from the memory-hierarchy
        simulation; tests may pass analytic curves.  ``gc_threads``
        models the future-work what-if the paper's GC findings invite:
        a parallel collector divides the stop-the-world demand (the
        paper's JVM, HotSpot 1.3.1, is strictly single-threaded).
        """
        if gc_threads < 1:
            raise ConfigError("gc_threads must be >= 1")
        self.params = params
        self.cpi_fn = cpi_fn
        self.gc_threads = gc_threads
        self._r1 = self._mutator_rate(1)
        # Collector demand per operation, sized so the single-processor
        # run spends ``gc_fraction_1p`` of its time collecting.
        x1_guess = self._r1  # first-order: X(1) ~ R(1)
        self._gc_demand = params.gc_fraction_1p / x1_guess
        self._x1 = self._throughput(1)

    # -- core terms ----------------------------------------------------------

    def _mutator_rate(self, p: int) -> float:
        """Operation rate while mutators run, at ``p`` processors."""
        if p <= 0:
            raise ConfigError("n_procs must be positive")
        pr = self.params
        work = pr.path_length.instr_per_op(p) * self.cpi_fn(p)
        work /= 1.0 - pr.kernel.system_fraction(p)
        utilization = 1.0 - pr.contention.idle_fraction(p) - pr.io_fraction
        if utilization <= 0:
            raise ConfigError("utilization collapsed to zero; check parameters")
        return p * utilization / work

    def _throughput(self, p: int) -> float:
        """Sustained rate with the collector keeping up: R / (1 + R d)."""
        rate = self._mutator_rate(p)
        demand = self._gc_demand / min(self.gc_threads, p)
        return rate / (1.0 + rate * demand)

    def gc_wall_fraction(self, p: int) -> float:
        """Stop-the-world fraction of wall-clock time at ``p``."""
        return self._throughput(p) * self._gc_demand / min(self.gc_threads, p)

    # -- outputs --------------------------------------------------------------

    def point(self, p: int) -> ScalingPoint:
        """Model outputs at ``p`` processors."""
        pr = self.params
        x = self._throughput(p)
        g = self.gc_wall_fraction(p)
        idle = pr.contention.idle_fraction(p)
        sys_frac = pr.kernel.system_fraction(p)
        busy = 1.0 - idle - pr.io_fraction
        mutator_share = 1.0 - g
        modes = ModeBreakdown.from_components(
            user=mutator_share * busy * (1.0 - sys_frac) + g * (1.0 / p),
            system=mutator_share * busy * sys_frac,
            io=mutator_share * pr.io_fraction,
            gc_idle=g * max(0, p - min(self.gc_threads, p)) / p,
            other_idle=mutator_share * idle,
        )
        return ScalingPoint(
            n_procs=p,
            speedup=x / self._x1,
            speedup_no_gc=self._mutator_rate(p) / self._r1,
            cpi=self.cpi_fn(p),
            path_relative=pr.path_length.relative(p),
            modes=modes,
        )

    def curve(self, procs: list[int]) -> list[ScalingPoint]:
        """Model outputs across a processor sweep."""
        return [self.point(p) for p in procs]

    def peak(self, procs: list[int]) -> ScalingPoint:
        """The sweep's best-throughput point."""
        return max(self.curve(procs), key=lambda pt: pt.speedup)
