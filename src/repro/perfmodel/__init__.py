"""Throughput and scaling models.

The paper's Figures 4, 5 and 9 are wall-clock measurements on real
hardware; a trace-driven cache simulator cannot produce wall-clock
speedups by itself.  This package composes the quantities the paper
identifies as the scaling mechanisms:

- **CPI(p)** — from the memory-hierarchy simulation (Figure 6);
- **path length(p)** — instructions per operation, falling for ECperf
  as object-cache constructive interference rises (Section 4.4);
- **idle(p)** — queueing on shared software resources: the database
  connection pool, JVM-internal locks (Section 4.1);
- **system(p)** — kernel network-stack time growing with contention
  (ECperf only);
- **GC** — the single-threaded collector's serial fraction
  (Sections 4.1, 4.5).
"""

from repro.perfmodel.cluster import ClusteredThroughputModel, compare_clusterings
from repro.perfmodel.contention import ContentionModel
from repro.perfmodel.pathlength import PathLengthModel
from repro.perfmodel.throughput import ScalingPoint, ThroughputModel, WorkloadScalingParams

__all__ = [
    "ClusteredThroughputModel",
    "compare_clusterings",
    "ContentionModel",
    "PathLengthModel",
    "ScalingPoint",
    "ThroughputModel",
    "WorkloadScalingParams",
]
