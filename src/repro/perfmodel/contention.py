"""Shared-resource contention: the idle-time model.

Section 4.1: "The increase in idle time with system size suggests that
there is contention for shared resources in these benchmarks.  The
application server in ECperf shares its database connection pool
between its many threads, and the object trees in SPECjbb are
protected by locks ... However, the fact that the idle time increases
similarly for both benchmarks indicates that the contention could be
within the JVM."

The model composes three sources and combines them assuming
independent waiting (idle fractions compose multiplicatively on the
busy side):

- connection-pool waiting (ECperf; see
  :meth:`repro.appserver.connpool.ConnectionPool.wait_fraction`);
- application-lock waiting (SPECjbb's tree/company locks; see
  :func:`repro.jvm.locks.contended_wait_fraction`);
- JVM-internal serialization, common to both benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appserver.connpool import ConnectionPool
from repro.errors import ConfigError
from repro.jvm.locks import contended_wait_fraction


@dataclass(frozen=True)
class ContentionModel:
    """Idle fraction from software shared-resource contention.

    Attributes:
        jvm_lock_demand: per-processor demand on JVM-internal
            serialization (allocation paths, monitor inflation).
        app_lock_demand: per-processor demand on application locks
            (SPECjbb's company/tree locks); 0 for ECperf, whose
            serialization is the pool.
        pool_per_proc: database connections per processor (the tuned
            pool grows with the processor set), or 0 for no pool.
        pool_hold_fraction: fraction of a transaction's service time
            spent holding a connection.
    """

    jvm_lock_demand: float = 0.055
    app_lock_demand: float = 0.0
    pool_per_proc: float = 0.0
    pool_hold_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("jvm_lock_demand", "app_lock_demand", "pool_hold_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be in [0, 1)")
        if self.pool_per_proc < 0:
            raise ConfigError("pool_per_proc must be non-negative")

    #: Knee sharpness of the serialization-efficiency law.
    KNEE_EXPONENT = 2.0

    @staticmethod
    def _serialization_utilization(n_procs: int, demand: float, a: float) -> float:
        """Smooth utilization under serialized demand ``demand`` per proc.

        The classic exponential-efficiency law
        ``E(x) = (1 - exp(-x)) / x`` with ``x = (p*q)**a``, normalized
        so one processor is fully utilized.  Unlike an M/M/1 waiting
        term it does not blow up near saturation; it bends smoothly
        into the ``1/q`` ceiling the serialized resource imposes —
        which is how the measured idle curves behave (Figure 5).
        """
        import math

        def efficiency(x: float) -> float:
            if x <= 1e-12:
                return 1.0
            return (1.0 - math.exp(-x)) / x

        x_p = (n_procs * demand) ** a
        x_1 = demand**a
        return efficiency(x_p) / efficiency(x_1)

    def idle_fraction(self, n_procs: int) -> float:
        """Combined non-GC idle fraction at ``n_procs`` processors."""
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        demand = self.jvm_lock_demand + self.app_lock_demand
        busy = self._serialization_utilization(n_procs, demand, self.KNEE_EXPONENT)
        if self.pool_per_proc > 0 and self.pool_hold_fraction > 0:
            pool_size = max(2, int(round(self.pool_per_proc * n_procs)))
            busy *= 1.0 - ConnectionPool.wait_fraction(
                n_procs, pool_size, self.pool_hold_fraction
            )
        return min(0.95, max(0.0, 1.0 - busy))

    @classmethod
    def specjbb_default(cls) -> "ContentionModel":
        """SPECjbb: JVM-internal plus company/tree lock contention."""
        return cls(jvm_lock_demand=0.045, app_lock_demand=0.020)

    @classmethod
    def ecperf_default(cls) -> "ContentionModel":
        """ECperf: JVM-internal plus connection-pool waiting."""
        return cls(
            jvm_lock_demand=0.060,
            pool_per_proc=2.0,
            pool_hold_fraction=0.55,
        )
