"""Instructions per operation vs. concurrency.

Section 4.4 resolves the paper's apparent contradiction — ECperf
scales super-linearly from 1 to 8 processors even though CPI rises —
by observing that *instructions per BBop fall even faster*, and
hypothesizes constructive interference in the application server's
object cache: one thread reuses beans another thread fetched, skipping
whole persistence/JDBC code paths.

The model ties path length to the bean cache's hit rate: each cache
miss costs ``db_path_ratio`` times the base operation path (container
persistence + JDBC + marshalling + kernel round trip).  SPECjbb has no
such cache, so its path length is flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appserver.beancache import BeanCache
from repro.errors import ConfigError


@dataclass(frozen=True)
class PathLengthModel:
    """Instructions per operation as a function of processor count.

    Attributes:
        base_instr: instructions per operation when every bean lookup
            hits (the pure business-logic path).
        db_path_ratio: extra path per *miss-driven* operation, as a
            multiple of ``base_instr``.
        misses_per_op_single: bean-cache misses per operation with one
            thread (falls with concurrency per the cache's hit model).
        threads_per_proc: worker threads per processor (concurrency at
            p processors is ``p * threads_per_proc``).
        cache: the bean cache whose hit model drives the reduction;
            None means a flat path length (SPECjbb).
    """

    base_instr: float
    db_path_ratio: float = 2.4
    misses_per_op_single: float = 1.0
    threads_per_proc: int = 3
    cache: BeanCache | None = None

    def __post_init__(self) -> None:
        if self.base_instr <= 0:
            raise ConfigError("base_instr must be positive")
        if self.db_path_ratio < 0 or self.misses_per_op_single < 0:
            raise ConfigError("ratios must be non-negative")
        if self.threads_per_proc <= 0:
            raise ConfigError("threads_per_proc must be positive")

    def instr_per_op(self, n_procs: int) -> float:
        """Expected instructions per operation at ``n_procs``."""
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        if self.cache is None:
            return self.base_instr
        threads = n_procs * self.threads_per_proc
        single_miss = 1.0 - self.cache.hit_rate(self.threads_per_proc)
        now_miss = 1.0 - self.cache.hit_rate(threads)
        if single_miss <= 0:
            scale = 0.0
        else:
            scale = now_miss / single_miss
        extra = self.misses_per_op_single * scale * self.db_path_ratio
        return self.base_instr * (1.0 + extra)

    def relative(self, n_procs: int) -> float:
        """Path length normalized to the single-processor value."""
        return self.instr_per_op(n_procs) / self.instr_per_op(1)

    @classmethod
    def flat(cls, base_instr: float = 100_000.0) -> "PathLengthModel":
        """A concurrency-independent path length (SPECjbb)."""
        return cls(base_instr=base_instr, cache=None)

    @classmethod
    def ecperf_default(cls) -> "PathLengthModel":
        """The ECperf configuration used by the figure drivers."""
        return cls(
            base_instr=120_000.0,
            db_path_ratio=2.4,
            misses_per_op_single=1.0,
            threads_per_proc=3,
            cache=BeanCache(),
        )
