"""Application-server clustering (extension).

Section 2.5: "Many commercial application servers, including ours,
provide a clustering mechanism that links multiple server instances
... The scaling data presented in section 4 does not include this
feature and only represents the scaling of a single application server
instance, running in a single JVM."

This module models the obvious follow-up: run ``k`` JVM instances on
the same machine, each with its own heap, bean cache, pools and
collector.  Three effects trade against each other:

- **contention relief** — JVM-internal and pool serialization is per
  instance, so each instance sees only ``p/k`` processors' worth of
  demand;
- **GC relief** — each instance has its own (single-threaded)
  collector, so collector demand is divided by ``k``;
- **interference loss** — the bean caches no longer share: each
  instance's cache sees only its own threads, so the constructive
  interference that shortens ECperf's path length weakens.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.errors import ConfigError
from repro.perfmodel.throughput import ThroughputModel, WorkloadScalingParams


class ClusteredThroughputModel:
    """Throughput of ``k`` independent server instances on one machine.

    Each instance runs on ``p/k`` processors with per-instance
    contention, path length and GC; per-instance throughputs add.
    Kernel network time stays *machine-wide* — the instances share one
    network stack and NIC, so splitting the JVM does not split that
    contention.  Bus and memory-bandwidth sharing are not modeled, so
    clustering results are upper bounds on the benefit.
    """

    def __init__(
        self,
        params: WorkloadScalingParams,
        cpi_fn: Callable[[int], float],
        instances: int = 2,
    ) -> None:
        if instances < 1:
            raise ConfigError("instances must be >= 1")
        self.instances = instances
        self.params = params
        self._cpi_fn = cpi_fn
        self._baseline = ThroughputModel(params, cpi_fn)

    def speedup(self, n_procs: int) -> float:
        """Cluster speedup over a single instance on one processor."""
        if n_procs < self.instances:
            raise ConfigError("need at least one processor per instance")
        from repro.osmodel.netstack import KernelNetworkModel

        # Kernel contention is set by machine-wide activity: pin each
        # instance's kernel model to the full-machine fraction.
        machine_sys = self.params.kernel.system_fraction(n_procs)
        pinned_kernel = KernelNetworkModel(
            base_fraction=machine_sys,
            contention_coeff=0.0,
            exponent=1.0,
            cap=max(machine_sys, 1e-9) if machine_sys > 0 else 1.0,
        )
        instance_params = replace(self.params, kernel=pinned_kernel)
        instance_model = ThroughputModel(instance_params, self._cpi_fn)
        # Instance speedups are normalized against a 1-processor run
        # under the *pinned* kernel fraction; the paper's baseline is a
        # 1-processor single instance at the 1-processor kernel
        # fraction, so rescale by the throughput ratio of the two.
        scale = (1.0 - machine_sys) / (
            1.0 - self.params.kernel.system_fraction(1)
        )
        per_instance = n_procs // self.instances
        leftover = n_procs - per_instance * self.instances
        total = 0.0
        for i in range(self.instances):
            procs = per_instance + (1 if i < leftover else 0)
            total += instance_model.point(procs).speedup * scale
        return total


def compare_clusterings(
    params: WorkloadScalingParams,
    cpi_fn: Callable[[int], float],
    n_procs: int,
    instance_counts: list[int],
) -> dict[int, float]:
    """Speedup at ``n_procs`` for each clustering degree."""
    out = {}
    for k in instance_counts:
        if k == 1:
            out[k] = ThroughputModel(params, cpi_fn).point(n_procs).speedup
        else:
            out[k] = ClusteredThroughputModel(params, cpi_fn, instances=k).speedup(
                n_procs
            )
    return out
