"""Analysis helpers: distributions, curves, summary statistics."""

from repro.analysis.cdf import CommunicationFootprint, cumulative_share
from repro.analysis.curves import MissCurve
from repro.analysis.stats import mean_std, relative_change

__all__ = [
    "CommunicationFootprint",
    "cumulative_share",
    "MissCurve",
    "mean_std",
    "relative_change",
]
