"""Miss-rate-vs-cache-size curves (Figures 12, 13, 16)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.memsys.multisim import MissCurvePoint
from repro.units import format_size


@dataclass(frozen=True)
class MissCurve:
    """A labeled miss-rate curve over cache sizes."""

    label: str
    points: tuple[MissCurvePoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError(f"{self.label}: empty curve")
        sizes = [p.size for p in self.points]
        if sizes != sorted(sizes):
            raise AnalysisError(f"{self.label}: points must be size-ordered")

    @classmethod
    def from_points(cls, label: str, points: list[MissCurvePoint]) -> "MissCurve":
        return cls(label=label, points=tuple(sorted(points, key=lambda p: p.size)))

    def mpki_at(self, size: int) -> float:
        """MPKI at an exact simulated size."""
        for point in self.points:
            if point.size == size:
                return point.mpki
        raise AnalysisError(f"{self.label}: no point at size {size}")

    def is_monotonic_nonincreasing(self, tolerance: float = 0.05) -> bool:
        """True if the curve never rises by more than ``tolerance`` MPKI.

        Larger caches cannot systematically miss more (modulo noise);
        the property tests assert this on every generated curve.
        """
        for a, b in zip(self.points, self.points[1:]):
            if b.mpki > a.mpki + tolerance:
                return False
        return True

    def knee_size(self, threshold_mpki: float = 1.0) -> int | None:
        """Smallest simulated size with MPKI below ``threshold_mpki``.

        Figure 12's qualitative story is where each workload's curve
        crosses below "negligible": SPECjbb's instruction curve knees
        at a few hundred KB, ECperf's only near 1 MB.
        """
        for point in self.points:
            if point.mpki < threshold_mpki:
                return point.size
        return None

    def describe(self) -> str:
        cells = ", ".join(
            f"{format_size(p.size)}: {p.mpki:.2f}" for p in self.points
        )
        return f"{self.label} [misses/1000 instr] {cells}"
