"""Communication-footprint distributions (Figures 14 and 15).

Figure 14 plots the cumulative share of cache-to-cache transfers
against the *percentage* of touched cache lines (sorted hottest
first); Figure 15 plots the same against the *absolute* number of
lines on a semi-log axis.  Both are projections of one structure: the
per-line C2C counts the coherence simulator collects.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from functools import cached_property

from repro.errors import AnalysisError


def cumulative_share(counts: list[int]) -> list[float]:
    """Cumulative fraction of the total, hottest first.

    >>> cumulative_share([6, 3, 1])
    [0.6, 0.9, 1.0]
    """
    if any(c < 0 for c in counts):
        raise AnalysisError("counts must be non-negative")
    ordered = sorted(counts, reverse=True)
    total = sum(ordered)
    if total == 0:
        return [0.0] * len(ordered)
    shares = []
    running = 0
    for count in ordered:
        running += count
        shares.append(running / total)
    return shares


@dataclass(frozen=True)
class CommunicationFootprint:
    """Per-line C2C counts plus the touched-line universe."""

    c2c_by_line: dict[int, int]
    touched_lines: int

    def __post_init__(self) -> None:
        if self.touched_lines < len(self.c2c_by_line):
            raise AnalysisError(
                "touched_lines cannot be smaller than the number of "
                "communicating lines"
            )

    @cached_property
    def _sorted_counts(self) -> list[int]:
        """Per-line counts, hottest first — computed once per instance.

        (``cached_property`` stores into ``__dict__`` directly, which
        works on frozen dataclasses; the counts dict is never mutated
        after construction, so the memo can never go stale.)
        """
        return sorted(self.c2c_by_line.values(), reverse=True)

    @cached_property
    def _cumulative_shares(self) -> list[float]:
        """Cumulative transfer shares over ``_sorted_counts``.

        Every CDF query used to re-sort and re-scan the full per-line
        map; they all read this memo now.  The running sum accumulates
        *integers*, so with a nonzero total the last entry is exactly
        1.0 — no float-drift fallthrough at ``share=1.0``.
        """
        ordered = self._sorted_counts
        total = sum(ordered)
        if total == 0:
            return [0.0] * len(ordered)
        shares = []
        running = 0
        for count in ordered:
            running += count
            shares.append(running / total)
        return shares

    @property
    def total_transfers(self) -> int:
        return sum(self.c2c_by_line.values())

    @property
    def communicating_lines(self) -> int:
        return len(self.c2c_by_line)

    @property
    def communicating_fraction(self) -> float:
        """Fraction of touched lines involved in any C2C transfer.

        Figure 14: ~12% for SPECjbb, ~50% for ECperf.
        """
        if self.touched_lines == 0:
            return 0.0
        return self.communicating_lines / self.touched_lines

    def hottest_line_share(self) -> float:
        """Share of transfers from the single hottest line.

        ~20% for SPECjbb (the company lock), ~14% for ECperf.
        """
        total = self.total_transfers
        if total == 0:
            return 0.0
        return max(self.c2c_by_line.values()) / total

    def share_from_top_fraction(self, fraction: float) -> float:
        """Share of transfers from the hottest ``fraction`` of *touched* lines.

        Figure 14's headline: the top 0.1% of touched lines carry 70%
        (SPECjbb) / 56% (ECperf) of all transfers.
        """
        if not 0.0 < fraction <= 1.0:
            raise AnalysisError("fraction must be in (0, 1]")
        n_top = max(1, int(fraction * self.touched_lines))
        shares = self._cumulative_shares
        if not shares or shares[-1] == 0.0:
            return 0.0
        return shares[min(n_top, len(shares)) - 1]

    def cdf_percent_of_touched(self) -> list[tuple[float, float]]:
        """Figure 14's curve: (percent of touched lines, cumulative share)."""
        if self.touched_lines == 0:
            return []
        shares = self._cumulative_shares
        points = [
            (100.0 * (i + 1) / self.touched_lines, share)
            for i, share in enumerate(shares)
        ]
        # Lines with no transfers extend the x-axis to 100% at share 1.0.
        if points and points[-1][0] < 100.0:
            points.append((100.0, shares[-1] if shares else 0.0))
        return points

    def cdf_absolute_lines(self) -> list[tuple[int, float]]:
        """Figure 15's curve: (number of lines, cumulative share)."""
        return [(i + 1, share) for i, share in enumerate(self._cumulative_shares)]

    def lines_for_share(self, share: float) -> int:
        """How many of the hottest lines carry ``share`` of the transfers.

        The absolute communication footprint of Figure 15 — larger
        for ECperf than SPECjbb at every share level.  Binary-searches
        the cached cumulative shares; with a nonzero total the final
        share is exactly 1.0, so ``share=1.0`` resolves to the last
        contributing line instead of the all-lines fallback.
        """
        if not 0.0 < share <= 1.0:
            raise AnalysisError("share must be in (0, 1]")
        cdf = self._cumulative_shares
        index = bisect_left(cdf, share)
        if index < len(cdf):
            return index + 1
        return len(cdf)
