"""Small statistics helpers used by figures and tests."""

from __future__ import annotations

import math

from repro.errors import AnalysisError


def mean_std(samples: list[float]) -> tuple[float, float]:
    """Mean and sample standard deviation (std = 0 for n < 2)."""
    if not samples:
        raise AnalysisError("mean_std of empty sample set")
    n = len(samples)
    mu = sum(samples) / n
    if n < 2:
        return mu, 0.0
    var = sum((x - mu) ** 2 for x in samples) / (n - 1)
    return mu, math.sqrt(var)


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline.

    >>> relative_change(2.0, 2.5)
    0.25
    """
    if baseline == 0:
        raise AnalysisError("relative change from a zero baseline")
    return (value - baseline) / baseline


def geometric_mean(samples: list[float]) -> float:
    """Geometric mean of positive samples."""
    if not samples:
        raise AnalysisError("geometric mean of empty sample set")
    if any(x <= 0 for x in samples):
        raise AnalysisError("geometric mean requires positive samples")
    return math.exp(sum(math.log(x) for x in samples) / len(samples))
