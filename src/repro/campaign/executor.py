"""The pluggable execution backend a campaign schedules cells over.

The scheduler (:mod:`repro.campaign.scheduler`) is deliberately
backend-agnostic: it sees an :class:`Executor` as a set of numbered
worker *slots* that can be dispatched to, polled for events, and —
when a lease expires — reclaimed by force.  Three implementations
ship:

- :class:`SerialExecutor` — in-process, synchronous; the reference
  backend every other one must be bit-identical to;
- :class:`~repro.campaign.fleet.LocalPoolExecutor` — wraps the
  harness's owned worker-process pool
  (:class:`repro.harness.runner._Worker`); liveness comes from the
  process sentinel and dispatch timestamps, like the runner's
  watchdog;
- :class:`~repro.campaign.fleet.SubprocessFleetExecutor` — N
  *independent* worker processes, each with its own result-cache
  shard and its own locally-generated traces, sending periodic
  heartbeats.  It stands in for the SSH/multi-host backend and
  exercises every failure mode a remote host has: death, silent
  wedging (heartbeat stall), and permanent loss (respawn budget
  exhausted, capacity shrinks).

The event protocol is three messages: :class:`CellDone` (a result or
an in-task error), :class:`WorkerDead` (the slot's process is gone,
with the cell it was running, if any), and heartbeats, which executors
absorb internally into :class:`LeaseView.last_beat`.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs


@dataclass(frozen=True)
class CellDone:
    """A worker finished one cell attempt (successfully or not)."""

    wid: int
    cell_key: str
    attempt: int
    ok: bool
    value: Any = None
    error: str = ""
    wall_s: float = 0.0
    pid: int | None = None
    obs_payload: Any = None


@dataclass(frozen=True)
class WorkerDead:
    """A worker slot's process died (crash, OOM kill, SIGKILL).

    ``cell_key`` is ``None`` when the worker was idle.  The slot is
    *not* automatically respawned — the scheduler decides, through
    :meth:`Executor.ensure_capacity`, so a respawn budget can bound
    how much a flapping host costs.
    """

    wid: int
    exitcode: int | None
    cell_key: str | None
    attempt: int


@dataclass(frozen=True)
class LeaseView:
    """A scheduler-visible snapshot of one busy worker slot."""

    wid: int
    cell_key: str
    attempt: int
    started: float  # time.monotonic at dispatch
    last_beat: float | None  # last heartbeat, None if the backend has none


class Executor(ABC):
    """N worker slots a campaign dispatches cells to.

    ``heartbeats`` tells the scheduler whether :attr:`LeaseView.last_beat`
    is meaningful: with heartbeats, a silent lease is a *wedged* worker
    and is reclaimed after ``lease_timeout_s``; without them, only the
    per-cell wall-clock budget (``FaultPolicy.timeout_s``) applies.
    """

    name: str = "executor"
    heartbeats: bool = False

    @abstractmethod
    def start(self) -> None:
        """Bring up the worker slots."""

    @abstractmethod
    def stop(self) -> None:
        """Tear everything down (idempotent; used in ``finally``)."""

    @property
    @abstractmethod
    def capacity(self) -> int:
        """Live worker slots (busy + idle)."""

    @abstractmethod
    def idle(self) -> list[int]:
        """Slot ids currently free for dispatch."""

    @abstractmethod
    def leases(self) -> list[LeaseView]:
        """Snapshot of every busy slot."""

    @abstractmethod
    def dispatch(
        self, wid: int, cell_key: str, fn: Callable, args: tuple,
        kwargs: dict, attempt: int,
    ) -> bool:
        """Ship one cell attempt to a slot; False if the slot is dead.

        A False return must be side-effect free for the cell (no
        attempt charged): the slot is marked dead and the scheduler
        redispatches elsewhere.
        """

    @abstractmethod
    def poll(self, timeout: float) -> list[Any]:
        """Collect events (CellDone / WorkerDead), waiting up to ``timeout``."""

    @abstractmethod
    def reclaim(self, wid: int, reason: str) -> tuple[str | None, int]:
        """Forcibly kill a busy slot; returns ``(cell_key, attempt)``.

        Used when a lease expires: the worker cannot be trusted to
        ever answer, so the process is killed outright and no
        WorkerDead event is emitted for it (the scheduler already
        knows).
        """

    @abstractmethod
    def ensure_capacity(self) -> int:
        """Respawn dead slots within the budget; returns live capacity."""

    def describe(self) -> str:
        return self.name


class SerialExecutor(Executor):
    """In-process synchronous execution: the bit-identical reference.

    ``dispatch`` runs the cell immediately and queues the event for
    the next ``poll``.  There are no leases, no heartbeats and no way
    to die — chaos injectors that kill their executor must not be run
    on it (they would kill the campaign process itself).
    """

    name = "serial"
    heartbeats = False

    def __init__(self) -> None:
        self._events: list[Any] = []
        self._started = False

    def start(self) -> None:
        self._started = True

    def stop(self) -> None:
        self._started = False
        self._events.clear()

    @property
    def capacity(self) -> int:
        return 1 if self._started else 0

    def idle(self) -> list[int]:
        return [0] if self._started else []

    def leases(self) -> list[LeaseView]:
        return []

    def dispatch(
        self, wid: int, cell_key: str, fn: Callable, args: tuple,
        kwargs: dict, attempt: int,
    ) -> bool:
        t0 = time.perf_counter()
        try:
            value = fn(*args, **kwargs)
        except Exception as exc:
            self._events.append(
                CellDone(
                    wid=wid, cell_key=cell_key, attempt=attempt, ok=False,
                    error=repr(exc), wall_s=time.perf_counter() - t0,
                    pid=os.getpid(),
                )
            )
            return True
        self._events.append(
            CellDone(
                wid=wid, cell_key=cell_key, attempt=attempt, ok=True,
                value=value, wall_s=time.perf_counter() - t0, pid=os.getpid(),
                obs_payload=obs.drain_payload(),
            )
        )
        return True

    def poll(self, timeout: float) -> list[Any]:
        events, self._events = self._events, []
        return events

    def reclaim(self, wid: int, reason: str) -> tuple[str | None, int]:
        raise NotImplementedError(  # pragma: no cover - scheduler never calls
            "serial execution has no leases to reclaim"
        )

    def ensure_capacity(self) -> int:
        return self.capacity
