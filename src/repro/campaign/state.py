"""On-disk campaign state: journal locations and read-only loading.

The scheduler persists through :class:`repro.harness.checkpoint.
CampaignManifest` (JSONL journal + checksummed result store).  This
module adds the *read-only* side the ``jmmw campaign status|report``
subcommands need: parse a journal without opening it for writing.
That matters because :meth:`CampaignManifest.open_resume` **truncates**
a journal whose signature mismatches — a status query must never be
able to destroy state, so it goes through :func:`read_journal` instead.

Journals live under ``<cache dir>/campaigns/<study>.jsonl`` (honouring
``JMMW_CACHE_DIR``), one per named study, alongside their ``.store``
result sidecars.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign.scheduler import (
    STATUS_FAILED,
    STATUS_MISSING,
    STATUS_OK,
    STATUS_POISONED,
    CampaignResult,
    CellOutcome,
)
from repro.campaign.table import CampaignSpec
from repro.harness.cache import ResultCache, default_cache_dir

#: Read-only status for a cell the journal has no final record for.
STATUS_PENDING = "pending"


def campaign_root() -> Path:
    """Directory holding every study's journal and result store."""
    return default_cache_dir() / "campaigns"


def journal_path(study: str) -> Path:
    return campaign_root() / f"{study}.jsonl"


def read_journal(path: str | Path) -> tuple[str | None, dict[str, dict]]:
    """``(signature, {cell_key: last record})`` from a journal, read-only.

    Mirrors the manifest's own loader: blank lines skipped, a torn
    final line (writer died mid-append) ends the parse, the last record
    per key wins.  Returns ``(None, {})`` for a missing or headerless
    journal.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return None, {}
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            break
    if not records or "campaign" not in records[0]:
        return None, {}
    signature = records[0]["campaign"]
    by_key: dict[str, dict] = {}
    for record in records[1:]:
        key = record.get("task")
        if isinstance(key, str):
            by_key[key] = record
    return signature, by_key


def result_from_journal(
    spec: CampaignSpec, path: str | Path | None = None
) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from a journal, without running.

    Cells with no final record yet are ``pending``; journalled failures
    keep their recorded status (``failed`` / ``poisoned`` / ``missing``);
    ok cells are loaded back from the result store so the report's
    mean ± std tables match the live run's exactly.
    """
    path = Path(path) if path is not None else journal_path(spec.name)
    signature, by_key = read_journal(path)
    store = ResultCache(path.with_suffix(".store")) if signature else None
    outcomes = []
    for cell in spec.table.cells():
        record = by_key.get(cell.key)
        if record is None:
            outcomes.append(
                CellOutcome(
                    cell=cell, status=STATUS_PENDING,
                    error="no result journalled yet (campaign incomplete?)",
                )
            )
            continue
        attempts = int(record.get("attempts") or 0)
        if record.get("status") == "ok":
            hit, value = (False, None)
            ref = record.get("ref")
            if store is not None and isinstance(ref, str):
                hit, value = store.get(ref)
            if hit:
                outcomes.append(
                    CellOutcome(
                        cell=cell, status=STATUS_OK, value=value,
                        attempts=attempts, cached=True,
                    )
                )
            else:
                outcomes.append(
                    CellOutcome(
                        cell=cell, status=STATUS_PENDING,
                        error="journalled ok but result store entry is gone",
                        attempts=attempts,
                    )
                )
            continue
        kind = record.get("kind") or STATUS_FAILED
        status = kind if kind in (STATUS_POISONED, STATUS_MISSING) else STATUS_FAILED
        outcomes.append(
            CellOutcome(
                cell=cell, status=status,
                error=str(record.get("error") or ""), attempts=attempts,
            )
        )
    desc = "(from journal)" if signature else "(no journal found)"
    return CampaignResult(
        spec=spec, outcomes=tuple(outcomes), executor_desc=desc
    )
