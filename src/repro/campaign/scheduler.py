"""The fault-tolerant campaign scheduler.

Expands a :class:`~repro.campaign.table.CampaignSpec` into cells and
drives them over a pluggable :class:`~repro.campaign.executor.Executor`
with the resilience a real fleet needs:

- **lease-based ownership** — every dispatched cell is a lease
  (worker, start time, last heartbeat); a lease silent past
  ``lease_timeout_s`` (heartbeat executors) or running past the
  per-cell wall-clock budget is *reclaimed*: the worker is killed,
  the slot respawned within budget, the cell rescheduled;
- **bounded retry with jittered backoff** — failures retry under the
  :class:`~repro.harness.faults.FaultPolicy` attempt budget, delayed
  by its capped, deterministically-jittered exponential backoff
  (retries wait in a ready-time heap, they never block the loop);
- **poisoned-cell quarantine** — a cell that kills ``poison_k``
  consecutive workers (death or lease reclaim; a survivable in-task
  error resets the streak) is marked ``poisoned`` with its last
  diagnostics instead of taking the whole fleet down with it;
- **straggler speculation** — a lease running past
  ``straggler_factor`` x the median completed-cell wall time (at
  least ``straggler_min_s``) gets a speculative duplicate on an idle
  worker; the first result wins, and if the loser eventually returns
  *different bits*, the divergence is flagged loudly (telemetry
  ``campaign/divergent`` + the outcome) — nondeterminism must never
  pass silently;
- **graceful degradation** — when the executor's respawn budget is
  exhausted and capacity reaches zero, remaining cells are marked
  ``missing`` with the reason, and the campaign returns a partial
  result instead of hanging.

Resumability rides the PR-3 manifest machinery generalized to any run
table: completed cells are journaled as they land (fsynced), keyed by
the campaign signature, and a re-run serves them back bit-identically.
``interruptible=True`` drains in-flight cells on SIGINT/SIGTERM and
raises :class:`~repro.errors.CampaignInterrupted`.
"""

from __future__ import annotations

import heapq
import pickle
import statistics
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro import obs
from repro.campaign.executor import CellDone, Executor, WorkerDead
from repro.campaign.table import CampaignSpec, Cell
from repro.errors import CampaignInterrupted, ConfigError
from repro.harness.faults import FaultPolicy
from repro.harness.runner import TaskOutcome, _absorb_observations, _InterruptDrain
from repro.harness.faults import TaskFailure
from repro.harness.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.checkpoint import CampaignManifest

#: Cell outcome statuses.
STATUS_OK = "ok"
STATUS_FAILED = "failed"  # in-task errors exhausted the retry budget
STATUS_POISONED = "poisoned"  # killed poison_k consecutive workers
STATUS_MISSING = "missing"  # never completed: executor degraded away


@dataclass(frozen=True)
class CampaignPolicy:
    """Resilience knobs for one campaign run.

    ``faults`` supplies the retry budget, backoff shape and per-cell
    wall-clock timeout shared with the harness runner.  The campaign
    defaults retry twice with capped jittered backoff — campaigns are
    long; a transient fault must not cost a cell.
    """

    faults: FaultPolicy = field(
        default_factory=lambda: FaultPolicy(
            max_attempts=3, backoff_s=0.05, backoff_factor=2.0,
            backoff_max_s=2.0, jitter=0.5,
        )
    )
    #: Heartbeat silence (s) after which a lease is reclaimed by force
    #: (heartbeat executors only).
    lease_timeout_s: float = 10.0
    #: Consecutive worker kills that quarantine a cell.
    poison_k: int = 2
    #: Speculative re-execution of stragglers (first result wins).
    speculate: bool = True
    straggler_factor: float = 4.0
    straggler_min_s: float = 1.0

    def __post_init__(self) -> None:
        if self.lease_timeout_s <= 0:
            raise ConfigError("lease_timeout_s must be positive")
        if self.poison_k < 1:
            raise ConfigError("poison_k must be at least 1")
        if self.straggler_factor <= 1.0:
            raise ConfigError("straggler_factor must be > 1")
        if self.straggler_min_s < 0:
            raise ConfigError("straggler_min_s must be non-negative")


@dataclass(frozen=True)
class CellOutcome:
    """What finally happened to one cell of the run table."""

    cell: Cell
    status: str
    value: object = None
    error: str = ""
    attempts: int = 0
    wall_s: float = 0.0
    worker: int | None = None
    cached: bool = False  # served from the manifest (resume)
    divergent: bool = False  # a speculative duplicate returned different bits

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass(frozen=True)
class CampaignResult:
    """Every cell's outcome, in table order, plus degradation facts."""

    spec: CampaignSpec
    outcomes: tuple
    executor_desc: str

    def by_status(self, status: str) -> list[CellOutcome]:
        return [outcome for outcome in self.outcomes if outcome.status == status]

    @property
    def complete(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def degraded(self) -> bool:
        return not self.complete


def _value_digest(value: object) -> bytes:
    """Bit-identity fingerprint for speculative-result comparison."""
    import hashlib

    return hashlib.sha256(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).digest()


def run_campaign(
    spec: CampaignSpec,
    executor: Executor,
    *,
    policy: CampaignPolicy | None = None,
    telemetry: Telemetry | None = None,
    manifest: "CampaignManifest | None" = None,
    interruptible: bool = False,
) -> CampaignResult:
    """Run every cell of ``spec`` over ``executor``; never raises for a
    cell — failures, quarantines and degradation land in the result.

    Raises :class:`CampaignInterrupted` after a drained SIGINT/SIGTERM
    (``interruptible=True`` only), with completed cells already
    persisted to ``manifest``.
    """
    policy = policy if policy is not None else CampaignPolicy()
    telemetry = telemetry if telemetry is not None else Telemetry()
    faults = policy.faults
    cells = spec.table.cells()
    cells_by_key = {cell.key: cell for cell in cells}
    completed: dict[str, CellOutcome] = {}
    digests: dict[str, bytes] = {}

    telemetry.emit(
        "campaign/start", campaign=spec.name, cells=len(cells),
        executor=executor.describe(),
    )
    obs.incr("campaign/cells_total", len(cells))

    # -- resume: serve cells the manifest already holds ---------------------
    for cell in cells:
        if manifest is None:
            break
        hit, value = manifest.lookup(cell.key)
        if hit:
            telemetry.emit("campaign/resume-skip", cell=cell.key)
            obs.incr("campaign/cells_resumed")
            completed[cell.key] = CellOutcome(
                cell=cell, status=STATUS_OK, value=value, cached=True
            )
            digests[cell.key] = _value_digest(value)

    queue: deque[tuple[Cell, int]] = deque(
        (cell, 1) for cell in cells if cell.key not in completed
    )
    delayed: list[tuple[float, int, Cell, int]] = []  # (ready_t, seq, cell, attempt)
    seq = 0
    kills: dict[str, int] = {}  # consecutive worker kills per cell
    attempts: dict[str, int] = {}  # highest attempt dispatched per cell
    speculated: set[str] = set()  # cells already given a duplicate
    wall_samples: list[float] = []  # completed-cell wall times

    def record(outcome: CellOutcome) -> None:
        completed[outcome.cell.key] = outcome
        kills.pop(outcome.cell.key, None)
        counter = {
            STATUS_OK: "campaign/cells_ok",
            STATUS_FAILED: "campaign/cells_failed",
            STATUS_POISONED: "campaign/cells_poisoned",
            STATUS_MISSING: "campaign/cells_missing",
        }[outcome.status]
        obs.incr(counter)
        telemetry.incr(counter)
        if manifest is not None:
            if outcome.ok:
                task_outcome = TaskOutcome(
                    key=outcome.cell.key, value=outcome.value,
                    wall_s=outcome.wall_s, attempts=outcome.attempts,
                )
            else:
                task_outcome = TaskOutcome(
                    key=outcome.cell.key,
                    failure=TaskFailure(
                        key=outcome.cell.key, kind=outcome.status,
                        error=outcome.error, attempts=outcome.attempts,
                    ),
                    attempts=outcome.attempts,
                )
            manifest.record(outcome.cell.key, task_outcome)

    def has_live_lease(cell_key: str) -> bool:
        return any(lease.cell_key == cell_key for lease in executor.leases())

    def schedule_retry(cell: Cell, attempt: int) -> None:
        nonlocal seq
        telemetry.emit("campaign/cell-retry", cell=cell.key, attempt=attempt)
        obs.incr("campaign/retries")
        ready = time.monotonic() + faults.delay(attempt, key=cell.key)
        seq += 1
        heapq.heappush(delayed, (ready, seq, cell, attempt + 1))

    def fail_or_retry(cell: Cell, attempt: int, kind: str, error: str) -> None:
        """A non-kill failure: retry under the budget or record it."""
        if cell.key in completed or has_live_lease(cell.key):
            return  # a duplicate is still running, or the cell already won
        if faults.retryable(kind) and faults.should_retry(attempt):
            schedule_retry(cell, attempt)
            return
        record(
            CellOutcome(
                cell=cell, status=STATUS_FAILED, error=f"{kind}: {error}",
                attempts=attempt,
            )
        )

    def worker_killed(cell: Cell, attempt: int, diagnostics: str) -> None:
        """A kill-type failure (worker death / lease reclaim) for a cell."""
        if cell.key in completed or has_live_lease(cell.key):
            return
        kills[cell.key] = kills.get(cell.key, 0) + 1
        if kills[cell.key] >= policy.poison_k:
            telemetry.emit(
                "campaign/cell-poisoned", cell=cell.key,
                kills=kills[cell.key], diagnostics=diagnostics,
            )
            record(
                CellOutcome(
                    cell=cell, status=STATUS_POISONED,
                    error=(
                        f"quarantined: killed {kills[cell.key]} consecutive "
                        f"worker(s); last: {diagnostics}"
                    ),
                    attempts=attempt,
                )
            )
            return
        if faults.should_retry(attempt):
            schedule_retry(cell, attempt)
            return
        record(
            CellOutcome(
                cell=cell, status=STATUS_FAILED,
                error=f"broken-worker: {diagnostics}", attempts=attempt,
            )
        )

    def handle_done(event: CellDone) -> None:
        _absorb_observations(event.obs_payload, telemetry)
        cell = cells_by_key[event.cell_key]
        if event.cell_key in completed:
            # A speculative loser (or a late duplicate) came back after
            # the cell already completed: its only job now is to agree.
            winner = completed[event.cell_key]
            if event.ok and winner.ok:
                if _value_digest(event.value) != digests[event.cell_key]:
                    telemetry.emit(
                        "campaign/divergent", cell=event.cell_key,
                        winner_worker=winner.worker, loser_worker=event.wid,
                    )
                    obs.incr("campaign/divergent")
                    completed[event.cell_key] = replace(winner, divergent=True)
            return
        if event.ok:
            telemetry.emit(
                "campaign/cell-ok", cell=event.cell_key,
                attempt=event.attempt, wall_s=round(event.wall_s, 6),
                worker=event.wid,
            )
            wall_samples.append(event.wall_s)
            digests[event.cell_key] = _value_digest(event.value)
            record(
                CellOutcome(
                    cell=cell, status=STATUS_OK, value=event.value,
                    attempts=event.attempt, wall_s=event.wall_s,
                    worker=event.wid,
                )
            )
            return
        telemetry.emit(
            "campaign/cell-error", cell=event.cell_key,
            attempt=event.attempt, error=event.error,
        )
        kills.pop(event.cell_key, None)  # the worker survived: streak broken
        fail_or_retry(cell, event.attempt, "error", event.error)

    drain = _InterruptDrain() if interruptible else None
    executor.start()
    try:
        if drain is not None:
            drain.__enter__()
        complete_at: float | None = None
        while True:
            if len(completed) >= len(cells):
                # All cells decided.  Speculative losers may still be
                # running; wait (bounded) so divergence is *observed*,
                # not silently discarded with the worker.
                if not executor.leases():
                    break
                if complete_at is None:
                    complete_at = time.monotonic()
                elif time.monotonic() - complete_at > policy.lease_timeout_s:
                    for lease in executor.leases():
                        executor.reclaim(
                            lease.wid, "campaign complete; duplicate abandoned"
                        )
                        telemetry.emit(
                            "campaign/duplicate-abandoned",
                            cell=lease.cell_key, worker=lease.wid,
                        )
                    break
            now = time.monotonic()
            stopping = drain is not None and drain.requested
            while delayed and delayed[0][0] <= now:
                _, _, cell, attempt = heapq.heappop(delayed)
                if cell.key not in completed:
                    queue.append((cell, attempt))

            if not stopping:
                idle = executor.idle()
                while idle and queue:
                    cell, attempt = queue.popleft()
                    if cell.key in completed:
                        continue
                    wid = idle.pop(0)
                    args, kwargs = spec.cell_args(cell)
                    telemetry.emit(
                        "campaign/cell-start", cell=cell.key,
                        attempt=attempt, worker=wid,
                    )
                    attempts[cell.key] = max(attempts.get(cell.key, 0), attempt)
                    if not executor.dispatch(
                        wid, cell.key, spec.fn, args, kwargs, attempt
                    ):
                        queue.appendleft((cell, attempt))  # slot was dead
                        idle = executor.idle()
                # Straggler speculation: spend leftover idle slots on
                # duplicates of the oldest over-threshold leases.
                if policy.speculate and idle and not queue and wall_samples:
                    threshold = max(
                        policy.straggler_min_s,
                        policy.straggler_factor * statistics.median(wall_samples),
                    )
                    for lease in sorted(executor.leases(), key=lambda l: l.started):
                        if not idle:
                            break
                        if (
                            lease.cell_key in speculated
                            or now - lease.started <= threshold
                        ):
                            continue
                        cell = cells_by_key[lease.cell_key]
                        wid = idle.pop(0)
                        speculated.add(cell.key)
                        telemetry.emit(
                            "campaign/speculate", cell=cell.key,
                            straggler_worker=lease.wid, duplicate_worker=wid,
                        )
                        obs.incr("campaign/speculative")
                        args, kwargs = spec.cell_args(cell)
                        executor.dispatch(
                            wid, cell.key, spec.fn, args, kwargs, lease.attempt
                        )

            if executor.leases() or (not stopping and (queue or delayed)):
                tick = 0.05
            else:
                tick = 0.0
            for event in executor.poll(tick):
                if isinstance(event, CellDone):
                    handle_done(event)
                elif isinstance(event, WorkerDead):
                    telemetry.emit(
                        "campaign/worker-dead", worker=event.wid,
                        exitcode=event.exitcode, cell=event.cell_key,
                    )
                    obs.incr("campaign/worker_deaths")
                    if event.cell_key is not None:
                        worker_killed(
                            cells_by_key[event.cell_key], event.attempt,
                            f"worker {event.wid} died (exit code {event.exitcode})",
                        )

            # Lease audit: reclaim wedged and over-budget workers.
            now = time.monotonic()
            for lease in executor.leases():
                expired_reason = None
                kind = None
                if (
                    executor.heartbeats
                    and lease.last_beat is not None
                    and now - lease.last_beat > policy.lease_timeout_s
                ):
                    expired_reason = (
                        f"no heartbeat for {policy.lease_timeout_s}s "
                        f"(worker {lease.wid} wedged)"
                    )
                    kind = "stall"
                elif (
                    faults.timeout_s is not None
                    and now - lease.started > faults.timeout_s
                ):
                    expired_reason = (
                        f"exceeded {faults.timeout_s}s budget (worker killed)"
                    )
                    kind = "timeout"
                if expired_reason is None:
                    continue
                cell_key, attempt = executor.reclaim(lease.wid, expired_reason)
                telemetry.emit(
                    "campaign/lease-reclaimed", cell=cell_key,
                    worker=lease.wid, reason=expired_reason,
                )
                obs.incr("campaign/lease_reclaims")
                if cell_key is None:  # pragma: no cover - raced completion
                    continue
                cell = cells_by_key[cell_key]
                if kind == "timeout" and not faults.retry_timeouts:
                    if cell_key not in completed and not has_live_lease(cell_key):
                        record(
                            CellOutcome(
                                cell=cell, status=STATUS_FAILED,
                                error=f"timeout: {expired_reason}",
                                attempts=attempt,
                            )
                        )
                    continue
                worker_killed(cell, attempt, expired_reason)

            # Degradation: no workers left and none coming back.
            if executor.ensure_capacity() == 0:
                remaining = [
                    cell for cell in cells if cell.key not in completed
                ]
                for cell in remaining:
                    telemetry.emit("campaign/cell-missing", cell=cell.key)
                    record(
                        CellOutcome(
                            cell=cell, status=STATUS_MISSING,
                            error=(
                                "not run: no surviving workers (executor "
                                "respawn budget exhausted)"
                            ),
                            attempts=attempts.get(cell.key, 0),
                        )
                    )
                if remaining:
                    telemetry.emit(
                        "campaign/degraded", missing=len(remaining),
                        executor=executor.describe(),
                    )
                break

            if stopping and not executor.leases():
                break
    finally:
        if drain is not None:
            drain.__exit__(None, None, None)
        executor.stop()

    if len(completed) < len(cells):
        remaining = tuple(
            cell.key for cell in cells if cell.key not in completed
        )
        telemetry.emit(
            "campaign/interrupted", completed=len(completed),
            remaining=len(remaining),
        )
        raise CampaignInterrupted(len(completed), remaining)

    telemetry.emit(
        "campaign/end", campaign=spec.name,
        ok=sum(1 for o in completed.values() if o.ok),
        cells=len(cells),
    )
    return CampaignResult(
        spec=spec,
        outcomes=tuple(completed[cell.key] for cell in cells),
        executor_desc=executor.describe(),
    )
