"""Named studies: the run tables the CLI knows how to campaign over.

A *study* is a registered :class:`~repro.campaign.table.CampaignSpec`
factory — ``jmmw campaign run <study>`` looks the name up here.  Cell
functions are module-level (workers import them by reference) and pure
given their arguments, so every executor produces bit-identical cells.

Three studies ship:

- ``smoke`` — arithmetic only, milliseconds per cell; exists so the
  campaign machinery (scheduling, resume, chaos, CLI exit codes) can
  be exercised without simulating anything;
- ``ablation`` — the paper's protocol x workload ablation matrix
  (Section 4): MOSI vs MSI coherence over ECperf and SPECjbb, each
  point repeated with perturbed seeds per the Alameldeen–Wood
  variability methodology, reporting machine-wide data MPKI,
  cache-to-cache transfer ratio and absolute L2 misses;
- ``saturation`` — workload x population cells of the closed-loop
  load plane (:mod:`repro.loadplane`), reporting throughput, the
  operational response time and pool utilizations per point, with
  reps perturbing the event-stream seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.campaign.table import Axis, CampaignSpec, RunTable
from repro.errors import ConfigError


def smoke_cell(point: dict, rep: int, *, scale: int = 1) -> dict:
    """Deterministic arithmetic on the point — no simulation at all."""
    digest = hashlib.sha256(
        f"{sorted(point.items())}/{rep}/{scale}".encode()
    ).digest()
    base = int.from_bytes(digest[:8], "little") / 2**64
    return {"value": base * scale, "rep": float(rep)}


def ablation_cell(
    point: dict, rep: int, *, n_procs: int = 2, refs: int = 20_000
) -> dict:
    """One protocol x workload cell: simulate and report paper metrics.

    The rep index perturbs the trace seed (not the configuration), so
    repetitions sample the workload's intrinsic variability exactly the
    way ``characterize --runs N`` does.
    """
    from repro.figures.common import QUICK_SIM, simulate_multiprocessor, workload_for_procs

    sim = replace(QUICK_SIM, seed=QUICK_SIM.seed + rep, refs_per_proc=refs)
    workload = workload_for_procs(point["workload"], n_procs)
    hierarchy = simulate_multiprocessor(
        workload, n_procs, sim, protocol=point["protocol"]
    )
    return {
        "data_mpki": hierarchy.data_mpki(),
        "c2c_ratio": hierarchy.c2c_ratio(),
        "l2_misses": float(hierarchy.total_l2_misses),
    }


def loadplane_cell(
    point: dict,
    rep: int,
    *,
    threads: int = 8,
    connections: int = 8,
    service_s: float = 0.02,
    think_s: float = 1.2,
    windows: int = 6,
    window_s: float = 1.0,
) -> dict:
    """One closed-loop load-plane point: simulate and report rates.

    The rep index perturbs the event-stream seed only, so repetitions
    sample the queueing model's intrinsic variability around the same
    operating point.
    """
    from repro.loadplane import LoadPlaneConfig, simulate_loadplane

    config = LoadPlaneConfig(
        n_users=point["users"],
        threads=threads,
        connections=connections,
        service_s=service_s,
        think_s=think_s,
        workload=point["workload"],
        windows=windows,
        window_s=window_s,
        seed=1234 + rep,
    )
    result = simulate_loadplane(config)
    stable = result.stable
    return {
        "throughput": stable.throughput,
        "response_s": stable.response_time_s,
        "p95_s": stable.p95_s,
        "thread_util": stable.thread_utilization,
        "conn_util": stable.conn_utilization,
        "events": float(result.events),
    }


def _smoke_spec(reps: int, quick: bool) -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        table=RunTable(
            name="smoke",
            axes=(
                Axis("alpha", (1, 2, 3)),
                Axis("beta", ("x", "y")),
            ),
            reps=reps,
        ),
        fn=smoke_cell,
        kwargs={"scale": 10},
    )


def _ablation_spec(reps: int, quick: bool) -> CampaignSpec:
    return CampaignSpec(
        name="ablation",
        table=RunTable(
            name="ablation",
            axes=(
                Axis("protocol", ("mosi", "msi")),
                Axis("workload", ("ecperf", "specjbb")),
            ),
            reps=reps,
        ),
        fn=ablation_cell,
        kwargs={"n_procs": 2, "refs": 6_000 if quick else 20_000},
    )


def _saturation_spec(reps: int, quick: bool) -> CampaignSpec:
    return CampaignSpec(
        name="saturation",
        table=RunTable(
            name="saturation",
            axes=(
                Axis("workload", ("uniform", "ecperf")),
                Axis(
                    "users",
                    (32, 256, 1024) if quick else (100, 1_000, 10_000, 100_000),
                ),
            ),
            reps=reps,
        ),
        fn=loadplane_cell,
        kwargs={"windows": 4 if quick else 6, "window_s": 0.5 if quick else 1.0},
    )


#: study name -> factory(reps, quick) -> CampaignSpec
STUDIES = {
    "smoke": _smoke_spec,
    "ablation": _ablation_spec,
    "saturation": _saturation_spec,
}


def get_study(name: str, *, reps: int = 2, quick: bool = False) -> CampaignSpec:
    """Resolve a registered study to a concrete campaign spec."""
    factory = STUDIES.get(name)
    if factory is None:
        known = ", ".join(sorted(STUDIES))
        raise ConfigError(f"unknown study {name!r} (known: {known})")
    if reps < 1:
        raise ConfigError("reps must be at least 1")
    return factory(reps, quick)
