"""Deterministic campaign reports: mean ± std tables + degradation.

Per the Alameldeen–Wood variability discipline the paper's methodology
follows, a campaign's repetitions of one table point are summarized as
mean ± sample standard deviation per metric.  The report is rendered
*deterministically* — cell values only, no wall-clock times, no
timestamps, no worker ids — so a resumed campaign's report is
byte-identical to an uninterrupted one's, and two reports can be
diffed line by line.

Degradation is never silent: every cell that is not ``ok`` appears in
an explicit section with its status (``failed`` / ``poisoned`` /
``missing`` / ``pending``), its attempt count and the exact reason,
and divergent speculative duplicates get their own loud section.
"""

from __future__ import annotations

import statistics
from collections import Counter

from repro.campaign.scheduler import CampaignResult, CellOutcome
from repro.core.report import render_table


def point_stem(outcome: CellOutcome) -> str:
    """The cell key minus its rep suffix: one row of the results table."""
    return "/".join(f"{name}={value}" for name, value in outcome.cell.point)


def summarize(result: CampaignResult) -> list[tuple[str, str, float, float, int]]:
    """``(point, metric, mean, std, n)`` rows over the ok repetitions.

    Rows follow table order (points outer-to-inner, metric names sorted
    within a point); only mapping-valued cells contribute metrics.
    Points with zero ok reps are absent here — they show up in the
    degradation section instead.
    """
    by_point: dict[str, list] = {}
    order: list[str] = []
    for outcome in result.outcomes:
        stem = point_stem(outcome)
        if stem not in by_point:
            by_point[stem] = []
            order.append(stem)
        if outcome.ok and isinstance(outcome.value, dict):
            by_point[stem].append(outcome.value)
    rows = []
    for stem in order:
        values = by_point[stem]
        if not values:
            continue
        metrics = sorted({name for value in values for name in value})
        for metric in metrics:
            samples = [
                float(value[metric]) for value in values if metric in value
            ]
            mean = statistics.mean(samples)
            std = statistics.stdev(samples) if len(samples) > 1 else 0.0
            rows.append((stem, metric, mean, std, len(samples)))
    return rows


def render(result: CampaignResult) -> str:
    """The full campaign report (deterministic; see module docstring)."""
    counts = Counter(outcome.status for outcome in result.outcomes)
    total = len(result.outcomes)
    ok = counts.get("ok", 0)
    lines = [
        f"=== campaign {result.spec.name!r}: {result.spec.table.shape()} ===",
        f"executor: {result.executor_desc}",
    ]
    if ok == total:
        lines.append(f"status: complete ({ok}/{total} cells ok)")
    else:
        detail = ", ".join(
            f"{counts[status]} {status}"
            for status in ("failed", "poisoned", "missing", "pending")
            if counts.get(status)
        )
        lines.append(f"status: DEGRADED: {ok}/{total} cells ok ({detail})")

    rows = summarize(result)
    if rows:
        lines.append("")
        lines.append("results (mean +/- std over ok reps):")
        lines.append(
            render_table(
                ["point", "metric", "mean", "std", "n"],
                [
                    (stem, metric, f"{mean:.6g}", f"{std:.6g}", n)
                    for stem, metric, mean, std, n in rows
                ],
            )
        )

    bad = [outcome for outcome in result.outcomes if not outcome.ok]
    if bad:
        lines.append("")
        lines.append("degradation detail (cells NOT contributing above):")
        for outcome in bad:
            attempts = f" after {outcome.attempts} attempt(s)" if outcome.attempts else ""
            lines.append(
                f"  [{outcome.status}] {outcome.cell.key}{attempts}: {outcome.error}"
            )

    divergent = [outcome for outcome in result.outcomes if outcome.divergent]
    if divergent:
        lines.append("")
        lines.append(
            "DIVERGENCE: speculative duplicates returned different bits "
            "(nondeterminism!) for:"
        )
        for outcome in divergent:
            lines.append(f"  {outcome.cell.key}")
    return "\n".join(lines)
