"""Fault-tolerant run-table campaigns over a pluggable fleet executor.

The paper's methodology is a *run table* — configurations x sizes x
repetitions, reported mean ± std — and this package executes one
end-to-end, surviving the failures long campaigns actually hit:

- :mod:`repro.campaign.table` — declarative run tables
  (:class:`Axis` / :class:`RunTable` / :class:`CampaignSpec`);
- :mod:`repro.campaign.executor` — the pluggable :class:`Executor`
  backend contract plus the in-process :class:`SerialExecutor`
  reference;
- :mod:`repro.campaign.fleet` — process-backed executors:
  :class:`LocalPoolExecutor` (the harness's owned worker pool) and
  :class:`SubprocessFleetExecutor` (independent heartbeat-sending
  workers with private cache shards);
- :mod:`repro.campaign.scheduler` — lease-based scheduling with
  retries, poisoned-cell quarantine, straggler speculation and
  graceful degradation;
- :mod:`repro.campaign.report` — deterministic mean ± std reports
  with explicit degradation sections;
- :mod:`repro.campaign.state` — read-only journal loading for
  ``jmmw campaign status|report``;
- :mod:`repro.campaign.studies` — the named run tables the CLI knows.

Results are bit-identical across executors by contract: the serial
executor is the reference, and the chaos suite proves a fleet campaign
ridden with injected faults still reproduces its bits cell for cell.
"""

from repro.campaign.executor import (
    CellDone,
    Executor,
    LeaseView,
    SerialExecutor,
    WorkerDead,
)
from repro.campaign.fleet import LocalPoolExecutor, SubprocessFleetExecutor
from repro.campaign.scheduler import (
    STATUS_FAILED,
    STATUS_MISSING,
    STATUS_OK,
    STATUS_POISONED,
    CampaignPolicy,
    CampaignResult,
    CellOutcome,
    run_campaign,
)
from repro.campaign.table import Axis, CampaignSpec, Cell, RunTable

__all__ = [
    "Axis",
    "CampaignPolicy",
    "CampaignResult",
    "CampaignSpec",
    "Cell",
    "CellDone",
    "CellOutcome",
    "Executor",
    "LeaseView",
    "LocalPoolExecutor",
    "RunTable",
    "STATUS_FAILED",
    "STATUS_MISSING",
    "STATUS_OK",
    "STATUS_POISONED",
    "SerialExecutor",
    "SubprocessFleetExecutor",
    "WorkerDead",
    "run_campaign",
]
