"""Process-backed campaign executors: the local pool and the fleet.

Two :class:`~repro.campaign.executor.Executor` implementations over
owned worker processes:

- :class:`LocalPoolExecutor` wraps the harness runner's owned worker
  pool (:class:`repro.harness.runner._Worker` and its
  ``_worker_main`` loop) — the same processes, pipes and message
  format ``jmmw figures --jobs N`` uses.  Liveness is the process
  sentinel plus dispatch timestamps; there are no heartbeats, so the
  scheduler applies only the per-cell wall-clock budget to its leases.

- :class:`SubprocessFleetExecutor` runs N *independent* workers that
  stand in for remote hosts: each gets its own result-cache shard
  (``JMMW_CACHE_DIR`` pointed at a per-worker directory) and generates
  its own traces locally (no parent-published trace plane), so
  nothing but the duplex pipe is shared — exactly the isolation an
  SSH/multi-host backend would have, and therefore every failure mode
  of one: a fleet worker sends a heartbeat every ``heartbeat_s`` from
  a side thread, and a worker that stops beating while its process is
  still alive is indistinguishable from a wedged remote host.  The
  scheduler reclaims its lease by force.

Both executors respawn dead slots on demand (``ensure_capacity``) up
to a ``max_respawns`` budget; past it, capacity shrinks and the
campaign degrades gracefully instead of burning workers forever.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing import connection
from typing import Any, Callable

from repro import obs
from repro.campaign.executor import CellDone, Executor, LeaseView, WorkerDead
from repro.errors import ConfigError
from repro.harness.runner import Task, _mp_context, _Worker

#: Set inside a fleet worker to suppress its heartbeat thread — the
#: chaos hook behind :func:`repro.harness.chaos.stall_heartbeat`.  A
#: stalled worker keeps running its cell; only the "I am alive" signal
#: stops, which is what a wedged remote host looks like from outside.
_HB_STALLED = threading.Event()


def stall_heartbeats() -> None:
    """(Chaos hook) stop this fleet worker's heartbeats from now on."""
    _HB_STALLED.set()


def resume_heartbeats() -> None:
    """(Chaos hook) let this fleet worker's heartbeats flow again."""
    _HB_STALLED.clear()


def _fleet_worker_main(
    conn: connection.Connection, heartbeat_s: float
) -> None:
    """Fleet worker loop: apply init env, beat, run cells, reply.

    Modeled on :func:`repro.harness.runner._worker_main` (SIGINT
    ignored, result-pickle failures reported instead of fatal) plus a
    daemon heartbeat thread that shares the pipe under a send lock.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    obs.reset()
    _HB_STALLED.clear()  # fork inherits nothing scary, but be explicit
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_s):
            if _HB_STALLED.is_set():
                continue
            try:
                with send_lock:
                    conn.send(("hb", time.monotonic()))
            except (OSError, ValueError):  # pipe gone: parent left
                return

    threading.Thread(target=beat, name="jmmw-heartbeat", daemon=True).start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # clean shutdown
            break
        if message[0] == "init":
            # Per-worker environment (cache shard, etc.) — applied in
            # the worker so it works under both fork and spawn.
            os.environ.update(message[1])
            continue
        _, cell_key, fn, args, kwargs, obs_on = message
        if obs_on != obs.enabled():
            obs.enable() if obs_on else obs.disable()
        t0 = time.perf_counter()
        try:
            value = fn(*args, **kwargs)
        except BaseException as exc:
            with send_lock:
                conn.send(
                    ("error", cell_key, repr(exc), time.perf_counter() - t0,
                     os.getpid(), obs.drain_payload())
                )
            continue
        wall_s = time.perf_counter() - t0
        payload = obs.drain_payload()
        try:
            with send_lock:
                conn.send(("ok", cell_key, value, wall_s, os.getpid(), payload))
        except Exception as exc:
            with send_lock:
                conn.send(
                    ("error", cell_key, f"result not picklable: {exc!r}",
                     wall_s, os.getpid(), payload)
                )
    stop_beating.set()
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class _FleetSlot:
    """One fleet worker process plus its pipe and lease bookkeeping."""

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        wid: int,
        heartbeat_s: float,
        env: dict[str, str] | None,
    ) -> None:
        self.wid = wid
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_fleet_worker_main, args=(child_conn, heartbeat_s),
            daemon=True, name=f"jmmw-fleet-{wid}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        if env:
            self.conn.send(("init", dict(env)))
        self.cell_key: str | None = None
        self.attempt = 0
        self.started = 0.0
        self.last_beat: float | None = None

    def dispatch(
        self, cell_key: str, fn: Callable, args: tuple, kwargs: dict,
        attempt: int,
    ) -> None:
        self.conn.send(("run", cell_key, fn, args, dict(kwargs), obs.enabled()))
        self.cell_key = cell_key
        self.attempt = attempt
        self.started = time.monotonic()
        self.last_beat = self.started

    def handle_message(self) -> CellDone | str | None:
        """One message off the pipe: an event, ``"hb"``, or None (dead)."""
        try:
            message = self.conn.recv()
        except (EOFError, OSError):
            return None
        if message[0] == "hb":
            self.last_beat = time.monotonic()
            return "hb"
        status, cell_key, payload, wall_s, pid, obs_payload = message
        self.last_beat = time.monotonic()
        attempt = self.attempt
        self.cell_key = None
        if status == "ok":
            return CellDone(
                wid=self.wid, cell_key=cell_key, attempt=attempt, ok=True,
                value=payload, wall_s=wall_s, pid=pid, obs_payload=obs_payload,
            )
        return CellDone(
            wid=self.wid, cell_key=cell_key, attempt=attempt, ok=False,
            error=payload, wall_s=wall_s, pid=pid, obs_payload=obs_payload,
        )

    def kill(self) -> None:
        self.process.kill()
        self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _PoolSlot:
    """Adapter presenting the harness runner's ``_Worker`` as a slot."""

    def __init__(self, ctx: multiprocessing.context.BaseContext, wid: int) -> None:
        self.wid = wid
        self._worker = _Worker(ctx, wid)
        self.last_beat: float | None = None  # the pool has no heartbeats

    @property
    def process(self):
        return self._worker.process

    @property
    def conn(self):
        return self._worker.conn

    @property
    def cell_key(self) -> str | None:
        return self._worker.task.key if self._worker.task is not None else None

    @cell_key.setter
    def cell_key(self, value: str | None) -> None:
        if value is None:
            self._worker.task = None

    @property
    def attempt(self) -> int:
        return self._worker.attempt

    @property
    def started(self) -> float:
        return self._worker.started

    def dispatch(
        self, cell_key: str, fn: Callable, args: tuple, kwargs: dict,
        attempt: int,
    ) -> None:
        self._worker.dispatch(
            Task(key=cell_key, fn=fn, args=args, kwargs=dict(kwargs)), attempt
        )

    def handle_message(self) -> CellDone | str | None:
        try:
            status, payload, wall_s, pid, obs_payload = self.conn.recv()
        except (EOFError, OSError):
            return None
        cell_key, attempt = self.cell_key, self.attempt
        self._worker.task = None
        if status == "ok":
            return CellDone(
                wid=self.wid, cell_key=cell_key, attempt=attempt, ok=True,
                value=payload, wall_s=wall_s, pid=pid, obs_payload=obs_payload,
            )
        return CellDone(
            wid=self.wid, cell_key=cell_key, attempt=attempt, ok=False,
            error=payload, wall_s=wall_s, pid=pid, obs_payload=obs_payload,
        )

    def kill(self) -> None:
        self._worker.kill()

    def shutdown(self) -> None:
        self._worker.shutdown()


class _ProcessExecutor(Executor):
    """Shared machinery for slot-based executors over owned processes."""

    def __init__(self, workers: int = 2, *, max_respawns: int | None = None) -> None:
        if workers < 1:
            raise ConfigError("executor needs at least one worker")
        if max_respawns is not None and max_respawns < 0:
            raise ConfigError("max_respawns must be non-negative (or None)")
        self.workers = workers
        #: Dead slots revived before capacity starts shrinking.
        self.max_respawns = 2 * workers if max_respawns is None else max_respawns
        self.respawns = 0
        self._slots: list[Any] = []
        self._ctx = _mp_context()

    # subclass hook
    def _make_slot(self, wid: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def start(self) -> None:
        self._slots = [self._make_slot(wid) for wid in range(self.workers)]

    def stop(self) -> None:
        for slot in self._slots:
            if slot is not None:
                slot.shutdown()
        self._slots = []

    @property
    def capacity(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    def idle(self) -> list[int]:
        return [
            slot.wid for slot in self._slots
            if slot is not None and slot.cell_key is None
        ]

    def leases(self) -> list[LeaseView]:
        return [
            LeaseView(
                wid=slot.wid, cell_key=slot.cell_key, attempt=slot.attempt,
                started=slot.started, last_beat=slot.last_beat,
            )
            for slot in self._slots
            if slot is not None and slot.cell_key is not None
        ]

    def dispatch(
        self, wid: int, cell_key: str, fn: Callable, args: tuple,
        kwargs: dict, attempt: int,
    ) -> bool:
        slot = self._slots[wid]
        if slot is None:
            return False
        try:
            slot.dispatch(cell_key, fn, args, kwargs, attempt)
        except OSError:
            # Idle slot found dead at dispatch: no attempt charged.
            self._retire(slot)
            return False
        return True

    def _retire(self, slot) -> tuple[str | None, int, int | None]:
        """Drop a dead slot; returns (cell_key, attempt, exitcode)."""
        cell_key, attempt = slot.cell_key, slot.attempt
        exitcode = slot.process.exitcode
        slot.cell_key = None
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover
            pass
        slot.process.join()
        self._slots[slot.wid] = None
        return cell_key, attempt, exitcode

    def poll(self, timeout: float) -> list[Any]:
        live = [slot for slot in self._slots if slot is not None]
        if not live:
            return []
        events: list[Any] = []
        waitables: list[Any] = [slot.conn for slot in live]
        waitables += [slot.process.sentinel for slot in live]
        ready = set(connection.wait(waitables, timeout=timeout))
        for slot in live:
            if slot.conn in ready:
                while True:
                    result = slot.handle_message()
                    if result is None:
                        cell_key, attempt, exitcode = self._retire(slot)
                        events.append(
                            WorkerDead(
                                wid=slot.wid, exitcode=exitcode,
                                cell_key=cell_key, attempt=attempt,
                            )
                        )
                        break
                    if result != "hb":
                        events.append(result)
                    if self._slots[slot.wid] is None or not slot.conn.poll():
                        break
            elif slot.process.sentinel in ready:
                # Dead process; drain any result it managed to send.
                if slot.conn.poll():
                    result = slot.handle_message()
                    if result is not None and result != "hb":
                        events.append(result)
                        continue
                cell_key, attempt, exitcode = self._retire(slot)
                events.append(
                    WorkerDead(
                        wid=slot.wid, exitcode=exitcode, cell_key=cell_key,
                        attempt=attempt,
                    )
                )
        return events

    def reclaim(self, wid: int, reason: str) -> tuple[str | None, int]:
        slot = self._slots[wid]
        if slot is None:  # pragma: no cover - defensive
            return None, 0
        cell_key, attempt = slot.cell_key, slot.attempt
        slot.cell_key = None
        slot.kill()
        self._slots[wid] = None
        return cell_key, attempt

    def ensure_capacity(self) -> int:
        for wid, slot in enumerate(self._slots):
            if slot is None and self.respawns < self.max_respawns:
                self._slots[wid] = self._make_slot(wid)
                self.respawns += 1
        return self.capacity

    def describe(self) -> str:
        return f"{self.name} ({self.workers} workers)"


class LocalPoolExecutor(_ProcessExecutor):
    """The harness's owned worker pool, presented as a campaign executor."""

    name = "local"
    heartbeats = False

    def _make_slot(self, wid: int) -> _PoolSlot:
        return _PoolSlot(self._ctx, wid)


class SubprocessFleetExecutor(_ProcessExecutor):
    """N independent workers with private cache shards and heartbeats.

    The stand-in for a multi-host fleet: per-worker state isolation
    (``shard_root/worker<wid>`` becomes the worker's ``JMMW_CACHE_DIR``;
    traces are generated locally, never attached from a parent plane)
    and heartbeat-based liveness, so a wedged worker is detected and
    its lease reclaimed even while its process stays alive.
    """

    name = "fleet"
    heartbeats = True

    def __init__(
        self,
        workers: int = 2,
        *,
        heartbeat_s: float = 0.2,
        max_respawns: int | None = None,
        shard_root: str | os.PathLike | None = None,
    ) -> None:
        super().__init__(workers, max_respawns=max_respawns)
        if heartbeat_s <= 0:
            raise ConfigError("heartbeat_s must be positive")
        self.heartbeat_s = heartbeat_s
        self._own_shard_root = shard_root is None
        if shard_root is None:
            import tempfile

            shard_root = tempfile.mkdtemp(prefix="jmmw-fleet-")
        self.shard_root = os.fspath(shard_root)

    def _make_slot(self, wid: int) -> _FleetSlot:
        shard = os.path.join(self.shard_root, f"worker{wid}")
        os.makedirs(shard, exist_ok=True)
        return _FleetSlot(
            self._ctx, wid, self.heartbeat_s, env={"JMMW_CACHE_DIR": shard}
        )

    def stop(self) -> None:
        super().stop()
        if self._own_shard_root:
            import shutil

            shutil.rmtree(self.shard_root, ignore_errors=True)
