"""Declarative run tables: named axes x values x repetitions.

The paper's methodology is a run table — configurations x sizes x
repetitions, reported mean ± std per the Alameldeen–Wood variability
discipline — and a *campaign* executes one.  :class:`RunTable` is the
declaration (ordered axes, each a named tuple of values, plus a
repetition count) and :meth:`RunTable.cells` is its deterministic
expansion: the cartesian product of the axes in declaration order,
each point repeated ``reps`` times, every cell carrying a stable
human-readable key (``protocol=mosi/workload=ecperf/rep0``).

Cell order is part of the contract: schedulers may complete cells in
any order, but results are always reported in table order, so two
campaigns over the same table are comparable line by line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ConfigError


@dataclass(frozen=True)
class Axis:
    """One named dimension of a run table, e.g. ``protocol=(mosi, msi)``."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("axis name must be non-empty")
        if "=" in self.name or "/" in self.name:
            raise ConfigError(f"axis name {self.name!r} may not contain '=' or '/'")
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigError(f"axis {self.name!r} has duplicate values")


@dataclass(frozen=True)
class Cell:
    """One unit of campaign work: a point in the table plus a rep index.

    ``key`` is unique within the table and stable across runs — it
    names the cell in the manifest journal, telemetry and the report.
    """

    key: str
    point: tuple  # ((axis_name, value), ...) in axis order
    rep: int

    @property
    def point_dict(self) -> dict[str, Any]:
        return dict(self.point)


@dataclass(frozen=True)
class RunTable:
    """Axes x values x reps, expanded deterministically into cells."""

    name: str
    axes: tuple
    reps: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("run table name must be non-empty")
        if not self.axes:
            raise ConfigError("run table needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate axis names in run table: {names}")
        if self.reps < 1:
            raise ConfigError("reps must be at least 1")

    @property
    def n_cells(self) -> int:
        n = self.reps
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def shape(self) -> str:
        """Human description, e.g. ``3x2 points x 2 reps = 12 cells``."""
        dims = "x".join(str(len(axis.values)) for axis in self.axes)
        return f"{dims} points x {self.reps} reps = {self.n_cells} cells"

    def cells(self) -> list[Cell]:
        """Every cell, in table order (axes outer-to-inner, reps innermost)."""
        out = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            point = tuple(zip((axis.name for axis in self.axes), combo))
            stem = "/".join(f"{name}={value}" for name, value in point)
            for rep in range(self.reps):
                out.append(Cell(key=f"{stem}/rep{rep}", point=point, rep=rep))
        return out

    def signature_fields(self) -> dict[str, Any]:
        """JSON-able description for the campaign signature."""
        return {
            "name": self.name,
            "axes": [[axis.name, list(axis.values)] for axis in self.axes],
            "reps": self.reps,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A run table bound to the picklable function that runs one cell.

    ``fn(point, rep, **kwargs)`` must be a module-level callable
    (workers import it by reference) returning a ``dict[str, float]``
    of named metrics; ``kwargs`` carries any fixed configuration (a
    SimConfig, a scratch directory) and participates in the campaign
    signature, so a resumed campaign can never be served results from
    a differently-configured one.
    """

    name: str
    table: RunTable
    fn: Callable[..., Mapping[str, float]]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def cell_args(self, cell: Cell) -> tuple[tuple, dict]:
        return (cell.point_dict, cell.rep), dict(self.kwargs)

    def signature(self) -> str:
        """Campaign identity: table + cell function + config + code version.

        Content-keyed (:func:`repro.harness.cache.content_key`), so the
        package code version is folded in automatically, along with the
        executor-visible environment toggles (fastpath, coherence
        kernel, invariant checking) that could change a cell's bits.
        The executor *kind* and worker count are deliberately excluded:
        results are bit-identical across executors by contract, so a
        campaign interrupted on a fleet may resume on a local pool.
        """
        from repro.harness.cache import content_key
        from repro.memsys.fastpath import fastpath_enabled
        from repro.memsys.fastpath_coherence import kernel_available
        from repro.memsys.invariants import checking_enabled

        fastpath = fastpath_enabled()
        return content_key(
            kind="campaign",
            campaign=self.name,
            table=self.table.signature_fields(),
            fn=f"{self.fn.__module__}.{self.fn.__qualname__}",
            fn_kwargs=dict(self.kwargs),
            fastpath=fastpath,
            coherent=fastpath and kernel_available(),
            checked=checking_enabled(),
        )
