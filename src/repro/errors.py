"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types distinguish
configuration mistakes (caller bugs) from simulation-state violations
(library bugs or corrupted inputs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised during construction of config objects and simulators, never
    mid-simulation: every config is validated eagerly so that a bad
    parameter fails before any cycles are spent.
    """


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state.

    Seeing this exception indicates a bug in the library (e.g. a
    coherence invariant violation), not a user mistake.
    """


class WorkloadError(ReproError):
    """A workload was asked to do something outside its model.

    Examples: requesting more processors than the workload has threads
    for, or a scale factor outside the supported range.
    """


class AnalysisError(ReproError):
    """An analysis routine received data it cannot interpret."""


class HarnessError(ReproError):
    """The experiment harness could not execute a batch of tasks.

    Raised for harness-level misuse (duplicate task keys, invalid
    fault policies) — never for an individual task raising, which the
    harness captures as a :class:`repro.harness.TaskFailure` instead.
    """
