"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-types distinguish
configuration mistakes (caller bugs) from simulation-state violations
(library bugs or corrupted inputs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent.

    Raised during construction of config objects and simulators, never
    mid-simulation: every config is validated eagerly so that a bad
    parameter fails before any cycles are spent.
    """


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state.

    Seeing this exception indicates a bug in the library (e.g. a
    coherence invariant violation), not a user mistake.
    """


class InvariantViolation(SimulationError):
    """A runtime model invariant failed while the simulation ran.

    Raised by :class:`repro.memsys.invariants.InvariantChecker` when a
    sampled check finds illegal coherence state (two MODIFIED copies,
    a stale ``holders`` mirror), an L1/L2 inclusion hole, or counters
    that stopped conserving (``hits + misses != refs``).  Carries a
    diagnostic ``dump`` — the per-cache state of the offending block
    plus a ring buffer of the most recent accesses — so the corruption
    is debuggable post-mortem instead of surfacing thousands of
    references later as a silently wrong curve.
    """

    def __init__(self, message: str, dump: str = "") -> None:
        super().__init__(message if not dump else f"{message}\n{dump}")
        self.message = message
        self.dump = dump


class WorkloadError(ReproError):
    """A workload was asked to do something outside its model.

    Examples: requesting more processors than the workload has threads
    for, or a scale factor outside the supported range.
    """


class AnalysisError(ReproError):
    """An analysis routine received data it cannot interpret."""


class TraceFileError(AnalysisError):
    """A persisted trace file failed validation on load.

    Raised by :func:`repro.memsys.tracefile.load_trace` for anything
    short of a well-formed archive: a truncated or non-zip file, a
    missing per-CPU array, a wrong dtype or shape, or a header that
    does not describe the arrays it shipped with.  Subclasses
    :class:`AnalysisError` so existing callers that catch the broad
    type keep working; new callers can catch the precise one.
    """


class HarnessError(ReproError):
    """The experiment harness could not execute a batch of tasks.

    Raised for harness-level misuse (duplicate task keys, invalid
    fault policies) — never for an individual task raising, which the
    harness captures as a :class:`repro.harness.TaskFailure` instead.
    """


class TracePlaneError(HarnessError):
    """The shared-memory trace plane refused an unsafe operation.

    Raised when attaching a :class:`repro.harness.traceplane.TraceRef`
    that no longer matches reality: the segment was unlinked (campaign
    ended), the spill file is truncated, or the ref belongs to a
    different plane *generation* than the segment it points at.  The
    contract is fail-loud: a stale or damaged ref must never resolve
    to silently wrong trace data.
    """


class CampaignInterrupted(ReproError):
    """A campaign stopped early on SIGINT/SIGTERM after a clean drain.

    Raised by :func:`repro.harness.run_tasks` (``interruptible=True``)
    once in-flight tasks have finished and their results are persisted
    to the campaign manifest.  Completed work is not lost: re-running
    the same campaign with ``--resume`` skips it bit-identically.
    """

    def __init__(self, completed: int, remaining: tuple[str, ...]) -> None:
        super().__init__(
            f"campaign interrupted: {completed} task(s) completed, "
            f"{len(remaining)} remaining"
        )
        self.completed = completed
        self.remaining = remaining
