"""Size and time unit helpers.

The paper quotes cache sizes in KB/MB, latencies in cycles and
nanoseconds (248 MHz UltraSPARC II), and throughput in operations per
minute.  Centralizing conversions keeps magic numbers out of the
simulator and makes configs self-describing.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Clock frequency of the Sun E6000's UltraSPARC II processors.
E6000_CLOCK_HZ = 248_000_000


def kb(n: float) -> int:
    """Return ``n`` kilobytes in bytes."""
    return int(n * KB)


def mb(n: float) -> int:
    """Return ``n`` megabytes in bytes."""
    return int(n * MB)


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Return log2 of a positive power of two, or raise ValueError."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def cycles_to_seconds(cycles: float, clock_hz: float = E6000_CLOCK_HZ) -> float:
    """Convert a cycle count to seconds at the given clock."""
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = E6000_CLOCK_HZ) -> float:
    """Convert seconds to cycles at the given clock."""
    return seconds * clock_hz


def ns_to_cycles(ns: float, clock_hz: float = E6000_CLOCK_HZ) -> float:
    """Convert nanoseconds to (fractional) cycles at the given clock."""
    return ns * 1e-9 * clock_hz


def format_size(nbytes: int) -> str:
    """Render a byte count the way the paper labels cache sizes.

    >>> format_size(65536)
    '64 KB'
    >>> format_size(1048576)
    '1 MB'
    """
    if nbytes >= MB and nbytes % MB == 0:
        return f"{nbytes // MB} MB"
    if nbytes >= KB and nbytes % KB == 0:
        return f"{nbytes // KB} KB"
    return f"{nbytes} B"
