"""The ``jmmw bench`` suite: a performance trajectory for the pipeline.

Times a declared set of representative stages — the vectorized replay
kernels, the scalar reference replays, figure 12/13/16 end-to-end, and
the harness with a cold and a warm result cache — over N repetitions,
reports median and interquartile range, and writes a machine-readable
``BENCH_<timestamp>.json`` snapshot at the repo root.  Each run
compares itself against the most recent prior snapshot and **fails**
(exit code 3 from the CLI) when any stage's median regresses past a
configurable threshold, so a PR that slows the pipeline down breaks
loudly instead of silently accumulating.

Stage setup (trace generation, cache construction) happens outside the
timed region; only the operation named by the stage is measured.
Medians are compared rather than means so one descheduled repetition
cannot fake a regression, and stages faster than
:data:`MIN_COMPARABLE_S` are never compared at all — at that scale the
timer measures the machine, not the code.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import obs
from repro.core.config import SimConfig
from repro.core.report import render_table
from repro.errors import ConfigError

#: Snapshot filename prefix; the comparison baseline is the latest
#: ``BENCH_*.json`` (filename sort = chronological, timestamps are UTC).
SNAPSHOT_PREFIX = "BENCH_"

#: Stage medians below this are timer noise, never compared.
MIN_COMPARABLE_S = 0.001

#: Default regression threshold: fail when median > 1.5x the baseline.
DEFAULT_THRESHOLD = 1.5

#: Simulation effort for the figure stages (smaller than the figure
#: drivers' QUICK_SIM: a bench rep must cost seconds, not minutes).
BENCH_SIM = SimConfig(seed=1234, refs_per_proc=30_000, warmup_fraction=0.5)
QUICK_BENCH_SIM = SimConfig(seed=1234, refs_per_proc=8_000, warmup_fraction=0.5)

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StageResult:
    """Timing summary of one stage over all repetitions."""

    name: str
    reps: list[float]

    @property
    def median_s(self) -> float:
        return statistics.median(self.reps)

    @property
    def iqr_s(self) -> float:
        if len(self.reps) < 2:
            return 0.0
        qs = statistics.quantiles(self.reps, n=4, method="inclusive")
        return qs[2] - qs[0]


@dataclass(frozen=True)
class Regression:
    """One stage that got slower than the baseline allows."""

    stage: str
    baseline_s: float
    current_s: float
    threshold: float

    @property
    def ratio(self) -> float:
        return self.current_s / self.baseline_s if self.baseline_s else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.stage}: {self.current_s:.4f}s vs baseline "
            f"{self.baseline_s:.4f}s ({self.ratio:.2f}x > {self.threshold:.2f}x)"
        )


# -- the declared suite -----------------------------------------------------


def _bench_trace(sim: SimConfig):
    """One seeded single-CPU SPECjbb trace, shared by kernel stages."""
    from repro.figures.common import make_workload
    from repro.rng import RngFactory

    workload = make_workload("specjbb", scale=8)
    bundle = workload.generate(1, sim, RngFactory(seed=sim.seed))
    return bundle.per_cpu[0]


def _stage_lru_kernel(sim: SimConfig) -> Callable[[], None]:
    from repro.memsys.config import CacheConfig
    from repro.memsys.fastpath import block_stream, lru_miss_mask

    import numpy as np

    blocks = np.asarray(
        block_stream(_bench_trace(sim), "data"), dtype=np.uint64
    )
    config = CacheConfig(size=256 * 1024, assoc=4, block=64)

    def run() -> None:
        lru_miss_mask(blocks, config.set_mask, config.assoc)

    return run


def _stage_stackdist_kernel(sim: SimConfig) -> Callable[[], None]:
    from repro.memsys.fastpath import block_stream, stack_distance_histogram

    blocks = block_stream(_bench_trace(sim), "data")

    def run() -> None:
        stack_distance_histogram(blocks)

    return run


def _stage_scalar_sweep(sim: SimConfig) -> Callable[[], None]:
    from repro.memsys.multisim import simulate_miss_curve

    trace = _bench_trace(sim).tolist()
    sizes = [64 * 1024, 256 * 1024, 1024 * 1024]

    def run() -> None:
        simulate_miss_curve(
            trace, sizes, kind="data", warmup_fraction=0.5, fastpath=False
        )

    return run


def _stage_scalar_hierarchy(sim: SimConfig) -> Callable[[], None]:
    from repro.figures.common import workload_for_procs
    from repro.memsys.config import e6000_machine
    from repro.memsys.hierarchy import MemoryHierarchy
    from repro.rng import RngFactory

    n_procs = 4
    workload = workload_for_procs("specjbb", n_procs)
    bundle = workload.generate(n_procs, sim, RngFactory(seed=sim.seed))
    traces = bundle.per_cpu_lists()
    machine = e6000_machine(n_procs)

    def run() -> None:
        hierarchy = MemoryHierarchy(machine)
        hierarchy.run_trace(
            traces,
            quantum=sim.interleave_quantum,
            warmup_fraction=0.5,
            fastpath=False,
        )

    return run


def _stage_coherent_replay(sim: SimConfig) -> Callable[[], None]:
    """Same replay as ``scalar/hierarchy_4p`` through the C kernel."""
    from repro.figures.common import workload_for_procs
    from repro.memsys.config import e6000_machine
    from repro.memsys.hierarchy import MemoryHierarchy
    from repro.rng import RngFactory

    n_procs = 4
    workload = workload_for_procs("specjbb", n_procs)
    bundle = workload.generate(n_procs, sim, RngFactory(seed=sim.seed))
    traces = bundle.per_cpu_lists()
    machine = e6000_machine(n_procs)

    def run() -> None:
        hierarchy = MemoryHierarchy(machine)
        hierarchy.run_trace(
            traces,
            quantum=sim.interleave_quantum,
            warmup_fraction=0.5,
            fastpath=True,
        )

    return run


def _stage_figure(
    module_name: str, sim: SimConfig, fastpath: bool | None = None
) -> Callable[[], None]:
    from repro.figures.common import run_figure
    from repro.memsys.fastpath import set_fastpath

    def run() -> None:
        if fastpath is None:
            run_figure(module_name, sim)
            return
        set_fastpath(fastpath)
        try:
            run_figure(module_name, sim)
        finally:
            set_fastpath(None)

    return run


def _bench_campaign_point(size: int, seed: int) -> float:
    """Tiny deterministic harness payload (module-level: picklable)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    values = rng.standard_normal(size)
    return float((values * values).sum())


def _stage_harness(sim: SimConfig, warm: bool) -> Callable[[], None]:
    import atexit
    import shutil
    import tempfile

    from repro.harness import ResultCache, Task, content_key, run_tasks

    size = max(1000, sim.refs_per_proc // 4)
    tasks = [
        Task(
            key=f"bench-point-{i}",
            fn=_bench_campaign_point,
            args=(size, 1234 + i),
            cache_key=content_key(stage="bench", size=size, seed=1234 + i),
        )
        for i in range(8)
    ]

    if warm:
        # Prime once here (untimed); reps then measure pure cache hits.
        root = Path(tempfile.mkdtemp(prefix="jmmw-bench-cache-"))
        atexit.register(shutil.rmtree, root, ignore_errors=True)
        cache = ResultCache(root)
        run_tasks(tasks, jobs=1, cache=cache)

        def run() -> None:
            run_tasks(tasks, jobs=1, cache=cache)

        return run

    def run() -> None:
        # Fresh store per rep: misses, compute, and write-back are the
        # cold-cache cost being tracked.
        root = Path(tempfile.mkdtemp(prefix="jmmw-bench-cache-"))
        try:
            run_tasks(tasks, jobs=1, cache=ResultCache(root))
        finally:
            shutil.rmtree(root, ignore_errors=True)

    return run


def _stage_sweep(sim: SimConfig, plane_on: bool) -> Callable[[], None]:
    """A sharded miss-curve sweep, with and without the trace plane.

    One task per cache size, two workers.  The cold variant makes each
    shard regenerate the trace; the plane variant generates it once and
    publishes it as shared memory (publish happens inside the timed
    region — the generate-once cost is part of what the plane buys).
    The pair quantifies the generate-once/replay-many win.
    """
    from repro.figures.fig12_icache import CACHE_SIZES
    from repro.harness.runner import run_tasks
    from repro.harness.tasks import build_miss_curve_sweep_tasks
    from repro.harness.traceplane import TracePlane, TraceSpec

    spec = TraceSpec(workload="specjbb", scale=8, n_procs=1, sim=sim)

    def run() -> None:
        plane = TracePlane() if plane_on else None
        try:
            tasks = build_miss_curve_sweep_tasks(
                spec, CACHE_SIZES, "instr", plane=plane
            )
            run_tasks(tasks, jobs=2, plane=plane)
        finally:
            if plane is not None:
                plane.close()

    return run


def _stage_stream_replay(sim: SimConfig) -> Callable[[], None]:
    """Pipelined generate+replay through the chunk ring.

    A fig12-shaped sweep (several single-CPU specs, a handful of
    cache sizes) replayed through
    :func:`repro.harness.chunkring.miss_curve_sweep_stream`: one
    producer per spec generates chunks into ring slots while the
    consumer replays with carried state.  Timing this against the
    sequential stages above is what the ``benchmarks/`` pipelining
    gate automates; here it guards the streaming plumbing itself
    against overhead creep.
    """
    from repro.figures.fig12_icache import CACHE_SIZES
    from repro.harness.chunkring import miss_curve_sweep_stream
    from repro.harness.traceplane import TraceSpec

    specs = [
        TraceSpec(workload="specjbb", scale=8, n_procs=1, sim=sim),
        TraceSpec(workload="ecperf", scale=4, n_procs=1, sim=sim),
    ]
    chunk = max(1, sim.refs_per_proc // 8)

    def run() -> None:
        miss_curve_sweep_stream(
            specs, CACHE_SIZES[:4], "instr",
            warmup_fraction=sim.warmup_fraction, chunk_refs=chunk,
        )

    return run


def _stage_campaign_scheduler(sim: SimConfig) -> Callable[[], None]:
    """Scheduler overhead: a serial campaign over trivial cells.

    Times the campaign machinery itself — table expansion, dispatch,
    event handling, outcome bookkeeping — with near-zero cell cost, so
    a scheduling-loop regression (per-cell overhead creeping up) shows
    here long before it would be visible under real simulation cells.
    """
    from repro.campaign import (
        Axis,
        CampaignPolicy,
        CampaignSpec,
        RunTable,
        SerialExecutor,
        run_campaign,
    )
    from repro.campaign.studies import smoke_cell
    from repro.harness import FaultPolicy

    spec = CampaignSpec(
        name="bench",
        table=RunTable(
            name="bench",
            axes=(Axis("a", tuple(range(24))), Axis("b", tuple(range(4)))),
            reps=2,
        ),
        fn=smoke_cell,
    )
    policy = CampaignPolicy(
        faults=FaultPolicy(max_attempts=2, backoff_s=0.0), speculate=False
    )

    def run() -> None:
        run_campaign(spec, SerialExecutor(), policy=policy)

    return run


def _stage_loadplane(sim: SimConfig) -> Callable[[], None]:
    """One saturated closed-loop load-plane run.

    A population past the knee (2000 users on 8 threads at 20 ms)
    exercises every hot path of the Gillespie engine — rate ladder,
    swap-remove station pools, FIFO handoff, window accounting and the
    operational-law audit — at the event rate the saturation sweeps
    sustain.  The horizon scales with the bench effort so a quick rep
    still costs well above timer noise.
    """
    from repro.loadplane import LoadPlaneConfig, simulate_loadplane

    config = LoadPlaneConfig(
        n_users=2000,
        threads=8,
        connections=8,
        service_s=0.02,
        think_s=1.2,
        windows=8 if sim.refs_per_proc >= 30_000 else 4,
        window_s=1.0,
        seed=sim.seed,
    )

    def run() -> None:
        simulate_loadplane(config)

    return run


#: The declared suite: (stage name, factory(sim) -> timed callable).
SUITE: list[tuple[str, Callable[[SimConfig], Callable[[], None]]]] = [
    ("fastpath/lru_miss_mask", _stage_lru_kernel),
    ("fastpath/stack_distances", _stage_stackdist_kernel),
    ("scalar/miss_curve", _stage_scalar_sweep),
    ("scalar/hierarchy_4p", _stage_scalar_hierarchy),
    ("memsys/coherent_replay", _stage_coherent_replay),
    ("figures/fig12", lambda sim: _stage_figure("fig12_icache", sim)),
    ("figures/fig13", lambda sim: _stage_figure("fig13_dcache", sim)),
    (
        "figures/fig16",
        lambda sim: _stage_figure("fig16_sharedcache", sim, fastpath=False),
    ),
    (
        "figures/fig16_fast",
        lambda sim: _stage_figure("fig16_sharedcache", sim, fastpath=True),
    ),
    ("harness/cold_cache", lambda sim: _stage_harness(sim, warm=False)),
    ("harness/warm_cache", lambda sim: _stage_harness(sim, warm=True)),
    ("harness/sweep_cold", lambda sim: _stage_sweep(sim, plane_on=False)),
    ("harness/sweep_plane", lambda sim: _stage_sweep(sim, plane_on=True)),
    ("memsys/stream_replay", _stage_stream_replay),
    ("campaign/scheduler", _stage_campaign_scheduler),
    ("loadplane/closed_loop", _stage_loadplane),
]


# -- running ----------------------------------------------------------------


def run_suite(
    reps: int = 5,
    quick: bool = False,
    stages: list[str] | None = None,
) -> list[StageResult]:
    """Time every suite stage ``reps`` times; setup is untimed."""
    if reps <= 0:
        raise ConfigError("reps must be positive")
    sim = QUICK_BENCH_SIM if quick else BENCH_SIM
    if quick:
        reps = min(reps, 3)
    selected = SUITE
    if stages:
        known = {name for name, _ in SUITE}
        unknown = sorted(set(stages) - known)
        if unknown:
            raise ConfigError(f"unknown stages {unknown}; known: {sorted(known)}")
        selected = [(name, fac) for name, fac in SUITE if name in set(stages)]
    results = []
    for name, factory in selected:
        with obs.span(f"bench/setup/{name}"):
            run = factory(sim)
        run()  # one untimed warmup rep: imports, allocator, branch caches
        timings = []
        for _ in range(reps):
            with obs.span(f"bench/run/{name}"):
                t0 = time.perf_counter()
                run()
                timings.append(time.perf_counter() - t0)
        results.append(StageResult(name=name, reps=timings))
    return results


# -- snapshots --------------------------------------------------------------


def snapshot_payload(
    results: list[StageResult], reps: int, quick: bool
) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "reps": reps,
        "stages": {
            r.name: {
                "median_s": round(r.median_s, 6),
                "iqr_s": round(r.iqr_s, 6),
                "reps_s": [round(t, 6) for t in r.reps],
            }
            for r in results
        },
    }


def previous_snapshot(out_dir: str | Path) -> Path | None:
    """Latest existing ``BENCH_*.json`` under ``out_dir``, if any."""
    candidates = sorted(Path(out_dir).glob(f"{SNAPSHOT_PREFIX}*.json"))
    return candidates[-1] if candidates else None


def write_snapshot(payload: dict, out_dir: str | Path) -> Path:
    """Write ``BENCH_<timestamp>.json``; never overwrites an old one."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = out_dir / f"{SNAPSHOT_PREFIX}{stamp}.json"
    suffix = 0
    while path.exists():  # same-second rerun
        suffix += 1
        # "_" sorts after "." so the suffixed name stays the newest
        # snapshot under previous_snapshot()'s filename ordering.
        path = out_dir / f"{SNAPSHOT_PREFIX}{stamp}_{suffix}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def compare_snapshots(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[Regression]:
    """Stages whose median regressed past ``threshold`` x the baseline.

    Only stages present in both snapshots with medians above
    :data:`MIN_COMPARABLE_S` participate; quick and full snapshots are
    never compared against each other (different workload sizes).
    """
    if threshold <= 1.0:
        raise ConfigError("threshold must be > 1.0")
    if current.get("quick") != baseline.get("quick"):
        return []
    regressions = []
    base_stages = baseline.get("stages", {})
    for name, stage in current.get("stages", {}).items():
        base = base_stages.get(name)
        if base is None:
            continue
        base_median = base.get("median_s", 0.0)
        cur_median = stage.get("median_s", 0.0)
        if base_median < MIN_COMPARABLE_S or cur_median < MIN_COMPARABLE_S:
            continue
        if cur_median > threshold * base_median:
            regressions.append(
                Regression(
                    stage=name, baseline_s=base_median,
                    current_s=cur_median, threshold=threshold,
                )
            )
    return regressions


def render_report(
    results: list[StageResult], baseline: dict | None
) -> str:
    """Human summary table: stage, median, IQR, baseline ratio."""
    base_stages = (baseline or {}).get("stages", {})
    rows = []
    for r in results:
        base = base_stages.get(r.name, {}).get("median_s")
        if base and base >= MIN_COMPARABLE_S and r.median_s >= MIN_COMPARABLE_S:
            vs = f"{r.median_s / base:.2f}x"
        else:
            vs = "-"
        rows.append(
            (r.name, f"{r.median_s:.4f}", f"{r.iqr_s:.4f}", vs)
        )
    return render_table(["stage", "median s", "iqr s", "vs baseline"], rows)


def run_bench(
    out_dir: str | Path = ".",
    reps: int = 5,
    quick: bool = False,
    threshold: float = DEFAULT_THRESHOLD,
    stages: list[str] | None = None,
    compare: bool = True,
) -> tuple[Path, list[Regression], str]:
    """Full bench flow: time, snapshot, compare; returns the report.

    The returned regressions list is empty when the run is clean
    (including when there is no comparable baseline yet).
    """
    baseline_path = previous_snapshot(out_dir) if compare else None
    baseline = None
    if baseline_path is not None:
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            baseline = None  # corrupt baseline: record fresh, compare next time
    results = run_suite(reps=reps, quick=quick, stages=stages)
    payload = snapshot_payload(results, reps=reps, quick=quick)
    path = write_snapshot(payload, out_dir)
    regressions = (
        compare_snapshots(payload, baseline, threshold) if baseline else []
    )
    report_lines = [render_report(results, baseline), f"snapshot: {path}"]
    if baseline_path is not None and baseline is not None:
        report_lines.append(f"baseline: {baseline_path}")
    for regression in regressions:
        report_lines.append(f"REGRESSION {regression}")
    return path, regressions, "\n".join(report_lines)
