"""Pipeline observability: spans, counters, benchmarks, validation.

Four layers, all opt-in and all near-zero cost when off:

- :mod:`repro.obs.spans` — nestable timed spans over the pipeline
  (trace-gen -> replay -> analysis -> figure render), exported as
  JSONL plus a human summary;
- :mod:`repro.obs.counters` — a process-wide registry the memsys /
  jvm / harness components publish aggregate counts into (bus
  transactions, snoop copybacks, c2c transfers, GC pauses, fastpath
  kernel invocations);
- :mod:`repro.obs.bench` — the ``jmmw bench`` suite: times
  representative stages over N repetitions, writes ``BENCH_*.json``
  snapshots, and fails on regression against the previous snapshot;
- :mod:`repro.obs.diffcheck` — differential validation: replays the
  same seeded traces through independent brute-force oracles
  (per-set LRU, naive MOSI machine, stack-distance recount) and
  diffs full counter vectors, reporting first-divergence context.

Enablement of the instrumentation layer: ``jmmw ... --obs [PATH]``,
or set ``JMMW_OBS=1`` in the environment (worker processes inherit
it); ``JMMW_OBS_FILE`` names a JSONL export path.  The module-level
singletons :data:`SPANS` and :data:`COUNTERS` are what instrumented
components talk to::

    from repro import obs

    with obs.span("memsys/replay", refs=n):
        ...
    obs.incr("memsys/bus/c2c_transfers", delta)

While disabled both calls bottom out in class-level no-op methods
(the instance-attribute-shadowing trick of
:mod:`repro.memsys.invariants`), so the simulator's hot paths pay one
cheap call per *coarse* event and nothing per reference.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.obs.counters import CounterRegistry
from repro.obs.spans import SpanTracker

#: Environment switch: any of 1/true/yes/on enables observability.
OBS_ENV = "JMMW_OBS"

#: Optional JSONL export path picked up at end of a CLI run.
OBS_FILE_ENV = "JMMW_OBS_FILE"

#: Process-wide singletons every instrumented component publishes to.
SPANS = SpanTracker()
COUNTERS = CounterRegistry()


def env_enabled() -> bool:
    """Whether ``JMMW_OBS`` asks for observability."""
    return os.environ.get(OBS_ENV, "").strip().lower() in ("1", "true", "yes", "on")


def enabled() -> bool:
    """Whether the process-wide instrumentation is currently recording."""
    return COUNTERS.enabled


def enable() -> None:
    """Turn on the process-wide span tracker and counter registry."""
    SPANS.enable()
    COUNTERS.enable()


def disable() -> None:
    """Turn instrumentation off and restore the no-op fast path."""
    SPANS.disable()
    COUNTERS.disable()


def reset() -> None:
    """Drop all recorded observations (enablement is unchanged)."""
    SPANS.clear()
    COUNTERS.clear()


def span(name: str, **attrs: Any):
    """Open a timed span; a shared no-op while observability is off."""
    return SPANS.span(name, **attrs)


def incr(name: str, n: int | float = 1) -> None:
    """Bump a registry counter; a no-op while observability is off."""
    COUNTERS.incr(name, n)


# -- worker <-> parent transport (see repro.harness.runner) ----------------


def drain_payload() -> tuple[dict, list[dict]] | None:
    """Pull everything recorded since the last drain, for the pipe.

    Returns ``(counters, spans)`` — both plain picklable containers —
    or ``None`` when there is nothing to ship (including the common
    case of observability being disabled), so the disabled path adds
    nothing to the result message.
    """
    if not COUNTERS.enabled and not SPANS.enabled:
        return None
    counters = COUNTERS.drain()
    spans = SPANS.drain()
    if not counters and not spans:
        return None
    return counters, spans


def ingest(payload: tuple[dict, list[dict]] | None) -> None:
    """Merge a drained payload into this process's singletons."""
    if not payload:
        return
    counters, spans = payload
    COUNTERS.merge(counters)
    SPANS.ingest(spans)


# -- end-of-run reporting ---------------------------------------------------


def render_summary() -> str:
    """Human summary: span aggregates plus the counter table."""
    return "\n".join(
        ["-- spans --", SPANS.render_summary(),
         "-- counters --", COUNTERS.render_summary()]
    )


def export_jsonl(path: str | Path) -> int:
    """Write spans then counters to ``path`` (JSONL); returns records."""
    return SPANS.write_jsonl(path) + COUNTERS.write_jsonl(path)


def _init_from_env() -> None:
    if env_enabled():
        enable()


_init_from_env()
