"""Process-wide counter registry the simulator components publish into.

The memory system, JVM model and harness all keep their own precise
per-run statistics; what was missing is one place where a whole
campaign's totals accumulate — bus transactions, snoop copybacks,
cache-to-cache transfers, GC pauses, vectorized-kernel invocations —
regardless of which component, figure or worker produced them.
:class:`CounterRegistry` is that place.

Names are hierarchical (``memsys/bus/reads``, ``jvm/gc/pause_s``) so
summaries group naturally; values may be ints or floats (pause
seconds, bytes).  Like :mod:`repro.obs.spans`, the registry costs one
no-op method call while disabled: :meth:`CounterRegistry.incr` is a
class-level no-op that :meth:`enable` shadows with the live
implementation through an instance attribute.

Worker processes :meth:`drain` their counts after each task; the
parent merges them back with :meth:`merge` (see
:mod:`repro.harness.runner`), so parallel campaigns report the same
totals as serial ones.
"""

from __future__ import annotations

import json
from pathlib import Path


class CounterRegistry:
    """Hierarchical named counters; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self._counts: dict[str, int | float] = {}

    # Class-level no-op; ``enable`` shadows it per instance.
    def incr(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled)."""

    def _incr_live(self, name: str, n: int | float = 1) -> None:
        counts = self._counts
        counts[name] = counts.get(name, 0) + n

    def enable(self) -> None:
        """Start counting: shadow :meth:`incr` with the live version."""
        self.enabled = True
        self.incr = self._incr_live  # type: ignore[method-assign]

    def disable(self) -> None:
        """Stop counting and restore the class-level no-op."""
        self.enabled = False
        self.__dict__.pop("incr", None)

    # -- collection --------------------------------------------------------

    def snapshot(self) -> dict[str, int | float]:
        """Copy of the current counts."""
        return dict(self._counts)

    def drain(self) -> dict[str, int | float]:
        """Return and clear the current counts."""
        counts, self._counts = self._counts, {}
        return counts

    def merge(self, counts: dict[str, int | float]) -> None:
        """Add counts drained elsewhere (e.g. a worker process)."""
        own = self._counts
        for name, value in counts.items():
            own[name] = own.get(name, 0) + value

    def clear(self) -> None:
        self._counts = {}

    def get(self, name: str) -> int | float:
        return self._counts.get(name, 0)

    # -- reporting ---------------------------------------------------------

    def summary_rows(self) -> list[tuple[str, int | float]]:
        return sorted(self._counts.items())

    def render_summary(self) -> str:
        """Counter table sorted by hierarchical name."""
        from repro.core.report import render_table

        rows = self.summary_rows()
        if not rows:
            return "obs: no counters recorded"
        return render_table(["counter", "value"], rows)

    def write_jsonl(self, path: str | Path) -> int:
        """Append one record per counter to a JSONL file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = self.summary_rows()
        with path.open("a", encoding="utf-8") as fh:
            for name, value in rows:
                fh.write(
                    json.dumps({"type": "counter", "name": name, "value": value})
                    + "\n"
                )
        return len(rows)
