"""Nestable timed spans: where does a pipeline run spend its time?

A span is one timed region of the pipeline — trace generation, a
replay, a miss-curve sweep, a figure render — recorded with its
nesting depth and parent, so a run's structure reads directly out of
the span log::

    with SPANS.span("figure/run", module="fig12_icache"):
        with SPANS.span("workload/trace-gen", refs=500_000):
            ...
        with SPANS.span("memsys/replay", refs=500_000):
            ...

Overhead when disabled is one attribute lookup plus returning a shared
no-op context manager: :meth:`SpanTracker.span` is a class-level no-op
method, and :meth:`SpanTracker.enable` shadows it with the live
implementation through an *instance* attribute — the same trick
:mod:`repro.memsys.invariants` uses to keep the unchecked hot path
untouched.  Nothing in the disabled path allocates or takes a clock
reading.

Finished spans are plain dicts (JSONL-ready and picklable), so worker
processes can :meth:`drain` their spans after each task and ship them
to the parent over the result pipe (see
:mod:`repro.harness.runner`).
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from pathlib import Path
from typing import Any


class _NullSpan:
    """Shared no-op context manager returned while tracking is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """One open span; closing it appends the finished record."""

    __slots__ = ("_tracker", "_name", "_attrs", "_t0", "_depth", "_parent")

    def __init__(self, tracker: "SpanTracker", name: str, attrs: dict) -> None:
        self._tracker = tracker
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracker._stack
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        t1 = time.perf_counter()
        tracker = self._tracker
        tracker._stack.pop()
        record: dict[str, Any] = {
            "span": self._name,
            "t": round(self._t0 - tracker._origin, 6),
            "duration_s": round(t1 - self._t0, 6),
            "depth": self._depth,
        }
        if self._parent is not None:
            record["parent"] = self._parent
        if self._attrs:
            record.update(self._attrs)
        tracker.finished.append(record)
        return False


class SpanTracker:
    """Collects nested timed spans; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.finished: list[dict] = []
        self._stack: list[str] = []
        self._origin = time.perf_counter()

    # Class-level no-op; ``enable`` shadows it per instance.
    def span(self, name: str, **attrs: Any) -> Any:
        """Open a timed span (no-op context manager while disabled)."""
        return _NULL_SPAN

    def _span_live(self, name: str, **attrs: Any) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    def enable(self) -> None:
        """Start recording: shadow :meth:`span` with the live version."""
        self.enabled = True
        self.span = self._span_live  # type: ignore[method-assign]

    def disable(self) -> None:
        """Stop recording and restore the class-level no-op."""
        self.enabled = False
        self.__dict__.pop("span", None)

    # -- collection --------------------------------------------------------

    def drain(self) -> list[dict]:
        """Return and clear the finished spans (open spans stay open)."""
        records, self.finished = self.finished, []
        return records

    def ingest(self, records: list[dict]) -> None:
        """Merge span records drained elsewhere (e.g. a worker process)."""
        self.finished.extend(records)

    def clear(self) -> None:
        self.finished = []
        self._stack = []
        self._origin = time.perf_counter()

    # -- reporting ---------------------------------------------------------

    def summary_rows(self) -> list[tuple[str, int, float, float, float]]:
        """``(name, count, total_s, mean_s, max_s)`` per span name."""
        grouped: dict[str, list[float]] = defaultdict(list)
        for record in self.finished:
            grouped[record["span"]].append(record["duration_s"])
        rows = []
        for name in sorted(grouped):
            durations = grouped[name]
            total = sum(durations)
            rows.append(
                (name, len(durations), round(total, 6),
                 round(total / len(durations), 6), round(max(durations), 6))
            )
        return rows

    def render_summary(self) -> str:
        """Per-span-name aggregate table."""
        from repro.core.report import render_table

        rows = self.summary_rows()
        if not rows:
            return "obs: no spans recorded"
        return render_table(
            ["span", "count", "total s", "mean s", "max s"], rows
        )

    def write_jsonl(self, path: str | Path) -> int:
        """Append finished spans to a JSONL file; returns records written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            for record in self.finished:
                fh.write(json.dumps({"type": "span", **record}, default=str) + "\n")
        return len(self.finished)
