"""Differential validation against independent reference oracles.

The simulators in :mod:`repro.memsys` are optimized: dict-ordered LRU
sets, a bus-side ``holders`` mirror instead of snooping every cache,
vectorized replay kernels.  Every optimization is a place where the
model can drift from its own specification without ever crashing.
This module replays the *same* seeded traces through deliberately
naive re-implementations — written from the protocol specification,
sharing no mechanism with the production code — and diffs **full
counter vectors**, not just miss totals:

- :class:`OracleLRUCache` — brute-force per-set LRU (a list per set,
  MRU at the tail), diffed per-access against both
  :class:`repro.memsys.cache.SetAssociativeCache` and the vectorized
  :func:`repro.memsys.fastpath.lru_miss_mask`;
- :class:`OracleCoherentMachine` — a naive MOSI/MESI/MSI multi-CPU
  hierarchy that snoops by scanning every cache (no holders mirror),
  run in lockstep with :class:`repro.memsys.hierarchy.MemoryHierarchy`
  and diffed on every per-CPU :class:`ProcessorStats` field, every
  per-L2 side counter, the bus totals and the per-line C2C footprint;
- :func:`oracle_stack_histogram` — an O(n·m) move-to-front stack
  distance recount diffed against
  :class:`repro.memsys.stackdist.StackDistanceProfiler` (both paths),
  and against the chunk-merged streaming histogram
  (:func:`diff_stackdist_stream`);
- :func:`diff_miss_curve_stream` — the chunked carried-state sweep
  (:func:`repro.memsys.stream.simulate_miss_curve_stream`, both
  replay paths) diffed point-for-point against the materialized
  sweep;
- :class:`OracleStoreBuffer` — a store buffer that rescans its whole
  issue history on every store (no deque, no lazy popping), diffed
  per-issue against :class:`repro.memsys.storebuffer.StoreBuffer`;
- :class:`OracleTlb` — a list-based fully-associative LRU TLB, diffed
  per-access against :class:`repro.memsys.tlb.Tlb`.

A divergence is reported with *first-divergence context*: the
reference index, CPU, kind and address where the models first
disagree, plus a ring of the most recent accesses — corruption is
debuggable at the reference that exposed it.

:data:`FIGURE_DIFF_CONFIGS` maps each of the paper's 13 figures to the
machine configuration it exercises (private L2s, shared L2s, the OS
processor, GC copy streams, miss-curve sweeps, stack-distance
profiles), so ``jmmw diffcheck`` validates every configuration the
reproduction publishes numbers for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.memsys.block import IFETCH, INSTRUCTIONS_PER_IFETCH, LOAD, STORE
from repro.memsys.config import CacheConfig, MachineConfig, e6000_machine
from repro.memsys.hierarchy import MemoryHierarchy

_KIND_NAMES = {IFETCH: "ifetch", LOAD: "load", STORE: "store"}


# -- reports ----------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """Where and how a model first disagreed with its oracle."""

    index: int            # reference index (or vector position)
    detail: str           # what disagreed
    context: str = ""     # recent-access ring / surrounding state

    def __str__(self) -> str:
        text = f"divergence at #{self.index}: {self.detail}"
        if self.context:
            text += "\n" + self.context
        return text


@dataclass(frozen=True)
class DiffReport:
    """Outcome of one differential check."""

    name: str
    n_refs: int
    checks: int                       # counter-vector comparisons performed
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        if self.ok:
            return f"[ok]   {self.name}: {self.n_refs} refs, {self.checks} vector checks"
        return f"[FAIL] {self.name}: {self.divergence}"


# -- oracle 1: brute-force per-set LRU --------------------------------------


class OracleLRUCache:
    """Set-associative true-LRU cache, the obvious way.

    One Python list per set, most-recently-used block at the tail;
    hits splice the block to the tail, misses append and evict the
    head when the set is full.  No dict-ordering tricks, no shared
    code with :class:`repro.memsys.cache.SetAssociativeCache`.
    """

    def __init__(self, n_sets: int, assoc: int) -> None:
        if n_sets <= 0 or assoc <= 0:
            raise ConfigError("n_sets and assoc must be positive")
        self.n_sets = n_sets
        self.assoc = assoc
        self._sets: list[list[int]] = [[] for _ in range(n_sets)]
        self.accesses = 0
        self.misses = 0
        self.evictions = 0

    def access(self, block: int) -> bool:
        """Touch ``block``; returns True on hit."""
        lru = self._sets[block % self.n_sets]
        self.accesses += 1
        if block in lru:
            lru.remove(block)
            lru.append(block)
            return True
        self.misses += 1
        if len(lru) >= self.assoc:
            lru.pop(0)
            self.evictions += 1
        lru.append(block)
        return False


def reference_miss_flags(blocks, n_sets: int, assoc: int) -> list[bool]:
    """Per-access miss flags from the brute-force oracle."""
    cache = OracleLRUCache(n_sets, assoc)
    if isinstance(blocks, np.ndarray):
        blocks = blocks.tolist()
    return [not cache.access(int(b)) for b in blocks]


def diff_lru(blocks, config: CacheConfig, name: str = "lru") -> DiffReport:
    """Diff fastpath kernel and scalar cache against the LRU oracle.

    Compares the three models' per-access hit/miss decisions
    elementwise and reports the first index where any pair disagrees.
    """
    from repro.memsys.cache import SetAssociativeCache
    from repro.memsys.fastpath import lru_miss_mask

    blocks_list = blocks.tolist() if isinstance(blocks, np.ndarray) else list(blocks)
    oracle = reference_miss_flags(blocks_list, config.n_sets, config.assoc)
    scalar_cache = SetAssociativeCache(config)
    scalar = [not scalar_cache.access(int(b), write=False) for b in blocks_list]
    fast = lru_miss_mask(
        np.asarray(blocks_list, dtype=np.uint64), config.set_mask, config.assoc
    ).tolist()
    for i, (o, s, f) in enumerate(zip(oracle, scalar, fast)):
        if o != s or o != f:
            lo = max(0, i - 8)
            ring = ", ".join(
                f"#{j}:{b:#x}" for j, b in enumerate(blocks_list[lo : i + 1], start=lo)
            )
            return DiffReport(
                name=name,
                n_refs=len(blocks_list),
                checks=1,
                divergence=Divergence(
                    index=i,
                    detail=(
                        f"block {blocks_list[i]:#x} set "
                        f"{blocks_list[i] % config.n_sets}: oracle "
                        f"{'miss' if o else 'hit'}, scalar "
                        f"{'miss' if s else 'hit'}, fastpath "
                        f"{'miss' if f else 'hit'}"
                    ),
                    context=f"recent blocks: {ring}",
                ),
            )
    return DiffReport(name=name, n_refs=len(blocks_list), checks=1)


def diff_miss_curve(
    trace,
    sizes: list[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.2,
    name: str = "miss-curve",
) -> DiffReport:
    """Diff the full miss-curve sweep against an oracle recount.

    Runs :func:`repro.memsys.multisim.simulate_miss_curve` through
    *both* replay paths (vectorized and scalar
    :class:`MultiConfigSimulator`), recounts every point with
    :class:`OracleLRUCache`, and compares the complete
    ``(accesses, misses, mpki)`` vector of every point.
    """
    from repro.memsys.fastpath import classify_trace
    from repro.memsys.multisim import simulate_miss_curve

    fast = simulate_miss_curve(
        trace, sizes, kind=kind, assoc=assoc, block=block,
        warmup_fraction=warmup_fraction, fastpath=True,
    )
    scalar = simulate_miss_curve(
        trace, sizes, kind=kind, assoc=assoc, block=block,
        warmup_fraction=warmup_fraction, fastpath=False,
    )
    # Oracle recount: same warmup-split accounting, brute-force caches.
    classified = classify_trace(trace, kind)
    split = int(len(trace) * warmup_fraction)
    split_class = classified.class_count_before(split)
    instr = classified.instructions - classified.instructions_before(split)
    addrs = classified.addrs.tolist()
    configs = [CacheConfig(size=s, assoc=assoc, block=block) for s in sizes]
    oracle_points = []
    for cfg in configs:
        cache = OracleLRUCache(cfg.n_sets, cfg.assoc)
        bits = cfg.block_bits
        warm_misses = 0
        for i, addr in enumerate(addrs):
            if i == split_class:
                warm_misses = cache.misses
            cache.access(addr >> bits)
        if split_class >= len(addrs):
            warm_misses = cache.misses
        misses = cache.misses - warm_misses
        accesses = cache.accesses - split_class
        mpki = 1000.0 * misses / instr if instr else 0.0
        oracle_points.append((cfg.size, accesses, misses, mpki))
    n_refs = len(trace)
    for i, (f, s, o) in enumerate(zip(fast, scalar, oracle_points)):
        fv = (f.size, f.accesses, f.misses, f.mpki)
        sv = (s.size, s.accesses, s.misses, s.mpki)
        if fv != sv or fv != o:
            return DiffReport(
                name=name, n_refs=n_refs, checks=len(sizes),
                divergence=Divergence(
                    index=i,
                    detail=(
                        f"size {sizes[i]}: fastpath {fv}, scalar {sv}, "
                        f"oracle {o} (vectors are size/accesses/misses/mpki)"
                    ),
                ),
            )
    return DiffReport(name=name, n_refs=n_refs, checks=len(sizes))


def diff_miss_curve_stream(
    trace,
    sizes: list[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.2,
    chunk_refs: int | None = None,
    name: str = "miss-curve-stream",
) -> DiffReport:
    """Diff streamed miss-curve replay against the materialized sweep.

    Chunks the trace (several boundaries, including ones that land
    inside the warmup window) and runs
    :func:`repro.memsys.stream.simulate_miss_curve_stream` through
    *both* replay paths, comparing every point's complete
    ``(size, accesses, misses, mpki)`` vector against the
    materialized :func:`repro.memsys.multisim.simulate_miss_curve` —
    itself validated against the brute-force oracle by
    :func:`diff_miss_curve`.
    """
    from repro.memsys.multisim import simulate_miss_curve
    from repro.memsys.stream import simulate_miss_curve_stream

    arr = np.asarray(
        trace.tolist() if isinstance(trace, np.ndarray) else list(trace),
        dtype=np.uint64,
    )
    chunk = chunk_refs if chunk_refs is not None else max(1, int(arr.size) // 7)
    baseline = simulate_miss_curve(
        arr, sizes, kind=kind, assoc=assoc, block=block,
        warmup_fraction=warmup_fraction, fastpath=True,
    )
    base_vectors = [(p.size, p.accesses, p.misses, p.mpki) for p in baseline]
    for fastpath in (True, False):
        chunks = (
            arr[start : start + chunk] for start in range(0, int(arr.size), chunk)
        )
        streamed = simulate_miss_curve_stream(
            chunks, int(arr.size), sizes, kind=kind, assoc=assoc,
            block=block, warmup_fraction=warmup_fraction, fastpath=fastpath,
        )
        for i, point in enumerate(streamed):
            got = (point.size, point.accesses, point.misses, point.mpki)
            want = base_vectors[i]
            if got != want:
                path = "fastpath" if fastpath else "scalar"
                return DiffReport(
                    name=name, n_refs=int(arr.size), checks=2 * len(sizes),
                    divergence=Divergence(
                        index=i,
                        detail=(
                            f"size {sizes[i]}: streamed {path} {got}, "
                            f"materialized {want} (chunk={chunk}; vectors "
                            f"are size/accesses/misses/mpki)"
                        ),
                    ),
                )
    return DiffReport(name=name, n_refs=int(arr.size), checks=2 * len(sizes))


# -- oracle 2: stack-distance recount ---------------------------------------


def oracle_stack_histogram(blocks) -> dict[int, int]:
    """O(n·m) move-to-front LRU stack distance histogram.

    The textbook definition, executed literally: the distance of an
    access is its block's position in the LRU stack (-1 on first
    touch), and the block then moves to the top.
    """
    if isinstance(blocks, np.ndarray):
        blocks = blocks.tolist()
    stack: list[int] = []
    hist: dict[int, int] = {}
    for block in blocks:
        try:
            depth = stack.index(block)
        except ValueError:
            depth = -1
        else:
            del stack[depth]
        stack.insert(0, block)
        hist[depth] = hist.get(depth, 0) + 1
    return hist


def diff_stackdist_stream(
    blocks, chunk_refs: int | None = None, name: str = "stackdist-stream"
) -> DiffReport:
    """Diff the chunk-merged histogram against the O(n·m) recount.

    Feeds the blocks to a *streaming*
    :class:`repro.memsys.stackdist.StackDistanceProfiler` in several
    chunks (so carried-stack merging across boundaries is exercised),
    then compares the merged histogram against both the literal
    move-to-front recount and the one-shot offline pass.
    """
    from repro.memsys.stackdist import StackDistanceProfiler

    blocks_list = blocks.tolist() if isinstance(blocks, np.ndarray) else list(blocks)
    chunk = chunk_refs if chunk_refs is not None else max(1, len(blocks_list) // 7)
    streaming = StackDistanceProfiler(streaming=True)
    for start in range(0, len(blocks_list), chunk):
        streaming.feed(blocks_list[start : start + chunk])
    merged = streaming.histogram()
    oracle = oracle_stack_histogram(blocks_list)
    one_shot = StackDistanceProfiler()
    one_shot.feed(blocks_list)
    offline = one_shot.histogram()
    for label, other in (("oracle recount", oracle), ("one-shot pass", offline)):
        if merged != other:
            diffs = sorted(
                d for d in set(merged) | set(other)
                if merged.get(d, 0) != other.get(d, 0)
            )
            first = diffs[0]
            return DiffReport(
                name=name, n_refs=len(blocks_list), checks=2,
                divergence=Divergence(
                    index=first,
                    detail=(
                        f"chunk-merged histogram[{first}] = "
                        f"{merged.get(first, 0)}, {label} = "
                        f"{other.get(first, 0)} ({len(diffs)} buckets differ, "
                        f"chunk={chunk})"
                    ),
                ),
            )
    return DiffReport(name=name, n_refs=len(blocks_list), checks=2)


def diff_stackdist(blocks, name: str = "stackdist") -> DiffReport:
    """Diff profiler histograms (both paths) against the recount."""
    from repro.memsys.stackdist import StackDistanceProfiler

    blocks_list = blocks.tolist() if isinstance(blocks, np.ndarray) else list(blocks)
    oracle = oracle_stack_histogram(blocks_list)
    for fastpath in (True, False):
        profiler = StackDistanceProfiler()
        profiler.feed(blocks_list)
        hist = profiler.histogram(fastpath=fastpath)
        if hist != oracle:
            diffs = sorted(
                d for d in set(hist) | set(oracle)
                if hist.get(d, 0) != oracle.get(d, 0)
            )
            first = diffs[0]
            path = "fastpath" if fastpath else "scalar"
            return DiffReport(
                name=name, n_refs=len(blocks_list), checks=2,
                divergence=Divergence(
                    index=first,
                    detail=(
                        f"{path} histogram[{first}] = {hist.get(first, 0)}, "
                        f"oracle recount = {oracle.get(first, 0)} "
                        f"({len(diffs)} buckets differ)"
                    ),
                ),
            )
    return DiffReport(name=name, n_refs=len(blocks_list), checks=2)


# -- oracle 3: naive MOSI machine -------------------------------------------


@dataclass
class _OracleSet:
    """One L2 set: LRU order list plus per-block coherence state."""

    order: list[int] = field(default_factory=list)
    state: dict[int, str] = field(default_factory=dict)


class _OracleL2:
    """One L2 cache array: explicit per-set lists, states as strings."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._sets = [_OracleSet() for _ in range(self.n_sets)]

    def _set(self, block: int) -> _OracleSet:
        return self._sets[block % self.n_sets]

    def probe(self, block: int) -> str | None:
        return self._set(block).state.get(block)

    def touch(self, block: int) -> None:
        s = self._set(block)
        s.order.remove(block)
        s.order.append(block)

    def set_state(self, block: int, state: str) -> None:
        s = self._set(block)
        s.state[block] = state
        s.order.remove(block)
        s.order.append(block)

    def insert(self, block: int, state: str) -> tuple[int, str] | None:
        """Insert MRU; returns the evicted (block, state) if any."""
        s = self._set(block)
        victim = None
        if block in s.state:
            s.order.remove(block)
        elif len(s.order) >= self.assoc:
            vblock = s.order.pop(0)
            victim = (vblock, s.state.pop(vblock))
        s.order.append(block)
        s.state[block] = state
        return victim

    def remove(self, block: int) -> str | None:
        s = self._set(block)
        if block not in s.state:
            return None
        s.order.remove(block)
        return s.state.pop(block)

    def resident(self) -> list[int]:
        return [b for s in self._sets for b in s.order]


class _OracleL1:
    """Split L1: plain per-set LRU lists (write-through, no states)."""

    def __init__(self, config: CacheConfig) -> None:
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]

    def access(self, block: int) -> bool:
        lru = self._sets[block % self.n_sets]
        if block in lru:
            lru.remove(block)
            lru.append(block)
            return True
        if len(lru) >= self.assoc:
            lru.pop(0)
        lru.append(block)
        return False

    def present(self, block: int) -> bool:
        return block in self._sets[block % self.n_sets]

    def touch(self, block: int) -> None:
        lru = self._sets[block % self.n_sets]
        lru.remove(block)
        lru.append(block)

    def remove(self, block: int) -> None:
        lru = self._sets[block % self.n_sets]
        if block in lru:
            lru.remove(block)


class OracleCoherentMachine:
    """A naive re-implementation of the full coherent hierarchy.

    Semantics follow the protocol specification (write-through
    no-allocate L1 data caches, inclusive L2s, MOSI/MESI/MSI snooping
    with dirty-copy supply) — but every mechanism is the obvious one:
    snoops *scan every cache* instead of consulting a holders mirror,
    LRU is an explicit list, and counters are plain dicts keyed by the
    same field names as :class:`repro.memsys.hierarchy.ProcessorStats`
    so vectors diff field-for-field.
    """

    PROC_FIELDS = (
        "instructions", "ifetches", "loads", "stores",
        "l1i_accesses", "l1i_misses", "l1d_accesses", "l1d_misses",
        "l2_hits", "l2_misses", "l2_data_misses", "l2_instr_misses",
        "l2_load_hits", "l2_load_misses",
        "c2c_fills", "c2c_load_fills", "mem_fills", "mem_load_fills",
        "upgrades",
    )
    SIDE_FIELDS = (
        "accesses", "misses", "c2c_fills", "mem_fills", "upgrades",
        "writebacks", "invalidations_received",
    )
    BUS_FIELDS = (
        "bus_reads", "bus_read_exclusives", "upgrades", "silent_upgrades",
        "c2c_transfers", "memory_fetches", "writebacks", "invalidations",
    )

    def __init__(
        self,
        machine: MachineConfig,
        protocol: str = "mosi",
        include_l1: bool = True,
        track_lines: bool = True,
    ) -> None:
        if protocol not in ("mosi", "msi", "mesi"):
            raise ConfigError(f"unknown protocol {protocol!r}")
        self.machine = machine
        self.protocol = protocol
        self.include_l1 = include_l1
        self.track_lines = track_lines
        n = machine.n_procs
        self._l2_of_cpu = [cpu // machine.procs_per_l2 for cpu in range(n)]
        self._l1i = [_OracleL1(machine.l1i) for _ in range(n)]
        self._l1d = [_OracleL1(machine.l1d) for _ in range(n)]
        self.l2s = [_OracleL2(machine.l2) for _ in range(machine.n_l2_caches)]
        self._l1i_bits = machine.l1i.block_bits
        self._l1d_bits = machine.l1d.block_bits
        self._l2_bits = machine.l2.block_bits
        self._cluster_cpus = [
            [cpu for cpu in range(n) if self._l2_of_cpu[cpu] == cid]
            for cid in range(machine.n_l2_caches)
        ]
        self.proc_stats = [dict.fromkeys(self.PROC_FIELDS, 0) for _ in range(n)]
        self.side_stats = [dict.fromkeys(self.SIDE_FIELDS, 0) for _ in self.l2s]
        self.bus_stats = dict.fromkeys(self.BUS_FIELDS, 0)
        self.c2c_by_line: dict[int, int] = {}

    # -- per-reference path ----------------------------------------------

    def access(self, cpu: int, ref: int) -> str:
        kind = ref & 0x3
        addr = ref >> 2
        stats = self.proc_stats[cpu]
        if kind == IFETCH:
            stats["ifetches"] += 1
            stats["instructions"] += INSTRUCTIONS_PER_IFETCH
            if self.include_l1:
                stats["l1i_accesses"] += 1
                if self._l1i[cpu].access(addr >> self._l1i_bits):
                    return "l1"
                stats["l1i_misses"] += 1
            return self._l2_access(cpu, addr, write=False, instr=True)
        if kind == STORE:
            # Write-through no-write-allocate L1D: update LRU position
            # of a present copy, then always go to the L2/bus.
            stats["stores"] += 1
            if self.include_l1:
                l1d = self._l1d[cpu]
                block = addr >> self._l1d_bits
                if l1d.present(block):
                    l1d.touch(block)
            return self._l2_access(cpu, addr, write=True)
        stats["loads"] += 1
        if self.include_l1:
            stats["l1d_accesses"] += 1
            if self._l1d[cpu].access(addr >> self._l1d_bits):
                return "l1"
            stats["l1d_misses"] += 1
        return self._l2_access(cpu, addr, write=False)

    def _l2_access(self, cpu: int, addr: int, write: bool, instr: bool = False) -> str:
        stats = self.proc_stats[cpu]
        cid = self._l2_of_cpu[cpu]
        block = addr >> self._l2_bits
        source = self._bus_write(cid, block) if write else self._bus_read(cid, block)
        load = not write and not instr
        if source == "hit":
            stats["l2_hits"] += 1
            if load:
                stats["l2_load_hits"] += 1
        elif source == "upgrade":
            stats["upgrades"] += 1
        elif source == "c2c":
            stats["l2_misses"] += 1
            stats["c2c_fills"] += 1
            if load:
                stats["c2c_load_fills"] += 1
        elif source == "mem":
            stats["l2_misses"] += 1
            stats["mem_fills"] += 1
            if load:
                stats["mem_load_fills"] += 1
        if source in ("c2c", "mem"):
            if instr:
                stats["l2_instr_misses"] += 1
            else:
                stats["l2_data_misses"] += 1
                if load:
                    stats["l2_load_misses"] += 1
        return source

    # -- naive snooping bus ----------------------------------------------

    def _bus_read(self, cid: int, block: int) -> str:
        l2 = self.l2s[cid]
        side = self.side_stats[cid]
        side["accesses"] += 1
        state = l2.probe(block)
        if state is not None:
            l2.touch(block)
            return "hit"
        side["misses"] += 1
        self.bus_stats["bus_reads"] += 1
        source = self._supply(cid, block, exclusive=False)
        side["c2c_fills" if source == "c2c" else "mem_fills"] += 1
        state = "S"
        if self.protocol == "mesi" and not self._holders_of(block):
            state = "E"
        self._install(cid, block, state)
        return source

    def _bus_write(self, cid: int, block: int) -> str:
        l2 = self.l2s[cid]
        side = self.side_stats[cid]
        side["accesses"] += 1
        state = l2.probe(block)
        if state == "M":
            l2.touch(block)
            return "hit"
        if state == "E":
            self.bus_stats["silent_upgrades"] += 1
            l2.set_state(block, "M")
            return "hit"
        if state is not None:
            self.bus_stats["upgrades"] += 1
            side["upgrades"] += 1
            self._invalidate_others(cid, block)
            l2.set_state(block, "M")
            return "upgrade"
        side["misses"] += 1
        self.bus_stats["bus_read_exclusives"] += 1
        source = self._supply(cid, block, exclusive=True)
        side["c2c_fills" if source == "c2c" else "mem_fills"] += 1
        self._invalidate_others(cid, block)
        self._install(cid, block, "M")
        return source

    def _holders_of(self, block: int) -> list[int]:
        """Snoop by scanning every cache — no mirror to go stale."""
        return [
            cid for cid, l2 in enumerate(self.l2s) if l2.probe(block) is not None
        ]

    def _supply(self, requester: int, block: int, exclusive: bool) -> str:
        for cid in self._holders_of(block):
            l2 = self.l2s[cid]
            state = l2.probe(block)
            if state == "E" and not exclusive:
                # Clean sole copy: degrade to SHARED, memory supplies.
                l2.set_state(block, "S")
                continue
            if state in ("M", "O"):
                self.bus_stats["c2c_transfers"] += 1
                if self.track_lines:
                    self.c2c_by_line[block] = self.c2c_by_line.get(block, 0) + 1
                if not exclusive:
                    if self.protocol == "mosi":
                        l2.set_state(block, "O")
                    else:
                        # MSI (and MESI): memory takes ownership; the
                        # copyback doubles as a writeback, credited to
                        # the supplying holder.
                        l2.set_state(block, "S")
                        self.bus_stats["writebacks"] += 1
                        self.side_stats[cid]["writebacks"] += 1
                return "c2c"
        self.bus_stats["memory_fetches"] += 1
        return "mem"

    def _invalidate_others(self, requester: int, block: int) -> None:
        for cid in self._holders_of(block):
            if cid == requester:
                continue
            self.l2s[cid].remove(block)
            self.side_stats[cid]["invalidations_received"] += 1
            self.bus_stats["invalidations"] += 1
            self._shoot_down_l1(cid, block)

    def _install(self, cid: int, block: int, state: str) -> None:
        victim = self.l2s[cid].insert(block, state)
        if victim is None:
            return
        vblock, vstate = victim
        if vstate in ("M", "O"):
            self.bus_stats["writebacks"] += 1
            self.side_stats[cid]["writebacks"] += 1
        self._shoot_down_l1(cid, vblock)

    def _shoot_down_l1(self, cid: int, block: int) -> None:
        if not self.include_l1:
            return
        base = block << self._l2_bits
        for cpu in self._cluster_cpus[cid]:
            for sub in range(1 << (self._l2_bits - self._l1i_bits)):
                self._l1i[cpu].remove((base >> self._l1i_bits) + sub)
            for sub in range(1 << (self._l2_bits - self._l1d_bits)):
                self._l1d[cpu].remove((base >> self._l1d_bits) + sub)

    def reset_stats(self) -> None:
        """Zero all counters, keeping cache contents warm."""
        self.proc_stats = [
            dict.fromkeys(self.PROC_FIELDS, 0) for _ in self.proc_stats
        ]
        self.side_stats = [dict.fromkeys(self.SIDE_FIELDS, 0) for _ in self.l2s]
        self.bus_stats = dict.fromkeys(self.BUS_FIELDS, 0)
        self.c2c_by_line = {}


def compare_counter_vectors(
    hierarchy: MemoryHierarchy, oracle: OracleCoherentMachine
) -> str | None:
    """First mismatching counter between a hierarchy and its oracle.

    Compares every per-CPU :class:`ProcessorStats` field, every per-L2
    side counter, the bus totals, and (when tracked) the per-line C2C
    footprint.  Returns a description of the first mismatch, or None.
    """
    for cpu, (real, ref) in enumerate(zip(hierarchy.proc_stats, oracle.proc_stats)):
        for name in OracleCoherentMachine.PROC_FIELDS:
            got = getattr(real, name)
            want = ref[name]
            if got != want:
                return f"cpu {cpu} {name}: model {got} != oracle {want}"
    for cid, (real_side, ref_side) in enumerate(
        zip(hierarchy.bus.cache_stats, oracle.side_stats)
    ):
        for name in OracleCoherentMachine.SIDE_FIELDS:
            got = getattr(real_side, name)
            want = ref_side[name]
            if got != want:
                return f"L2[{cid}] {name}: model {got} != oracle {want}"
    bus = hierarchy.bus.stats
    for name in OracleCoherentMachine.BUS_FIELDS:
        got = getattr(bus, name)
        want = oracle.bus_stats[name]
        if got != want:
            return f"bus {name}: model {got} != oracle {want}"
    if oracle.track_lines:
        if dict(bus.c2c_by_line) != oracle.c2c_by_line:
            lines = set(bus.c2c_by_line) | set(oracle.c2c_by_line)
            bad = sorted(
                line for line in lines
                if bus.c2c_by_line.get(line, 0) != oracle.c2c_by_line.get(line, 0)
            )[0]
            return (
                f"c2c_by_line[{bad:#x}]: model "
                f"{bus.c2c_by_line.get(bad, 0)} != oracle "
                f"{oracle.c2c_by_line.get(bad, 0)}"
            )
    # Conservation identities: bus-wide totals must equal the per-cache
    # sums.  The oracle shares the protocol spec with the model, so a
    # bug in the *accounting* (like MSI copyback writebacks credited
    # bus-wide but never per-cache) can agree field-for-field above and
    # still violate these.
    sides = hierarchy.bus.cache_stats
    identities = (
        ("writebacks", bus.writebacks, sum(s.writebacks for s in sides)),
        ("upgrades", bus.upgrades, sum(s.upgrades for s in sides)),
        ("invalidations", bus.invalidations,
         sum(s.invalidations_received for s in sides)),
        ("c2c_transfers", bus.c2c_transfers, sum(s.c2c_fills for s in sides)),
        ("total_misses", bus.total_misses, sum(s.misses for s in sides)),
        ("c2c+mem fills", bus.total_misses,
         bus.c2c_transfers + bus.memory_fetches),
    )
    for label, bus_total, side_total in identities:
        if bus_total != side_total:
            return (
                f"conservation: bus {label} {bus_total} != "
                f"per-cache sum {side_total}"
            )
    return None


def diff_hierarchy_replay(
    traces: list,
    machine: MachineConfig | None = None,
    protocol: str = "mosi",
    quantum: int = 64,
    warmup_fraction: float = 0.0,
    check_every: int = 4096,
    name: str = "hierarchy",
) -> DiffReport:
    """Replay traces through model and oracle in lockstep and diff them.

    Interleaves per-CPU traces exactly like
    :meth:`MemoryHierarchy.run_trace` (round-robin quanta, optional
    warmup discard), compares the two models' fill-source answer for
    *every reference*, and diffs the full counter vectors every
    ``check_every`` references and at the end.
    """
    if machine is None:
        machine = e6000_machine(len(traces))
    if len(traces) != machine.n_procs:
        raise ConfigError(
            f"expected {machine.n_procs} traces, got {len(traces)}"
        )
    hierarchy = MemoryHierarchy(machine, protocol=protocol)
    oracle = OracleCoherentMachine(machine, protocol=protocol)
    traces = [t.tolist() if isinstance(t, np.ndarray) else list(t) for t in traces]
    total_refs = sum(len(t) for t in traces)
    ring: deque[tuple[int, int, str, int, str]] = deque(maxlen=24)
    seen = 0
    checks = 0

    def ring_text() -> str:
        lines = ["recent accesses (index cpu kind addr -> model/oracle):"]
        for i, cpu, kind_name, addr, outcome in ring:
            lines.append(f"  #{i} cpu{cpu} {kind_name} addr={addr:#x} -> {outcome}")
        return "\n".join(lines)

    def replay_window(windows: list[list[int]]) -> Divergence | None:
        nonlocal seen, checks
        positions = [0] * len(windows)
        live = [cpu for cpu, t in enumerate(windows) if t]
        while live:
            next_live = []
            for cpu in live:
                trace = windows[cpu]
                pos = positions[cpu]
                end = min(pos + quantum, len(trace))
                for i in range(pos, end):
                    ref = trace[i]
                    got = hierarchy.access(cpu, ref)
                    want = oracle.access(cpu, ref)
                    kind_name = _KIND_NAMES.get(ref & 0x3, "?")
                    ring.append((seen, cpu, kind_name, ref >> 2, f"{got}/{want}"))
                    seen += 1
                    if got != want:
                        return Divergence(
                            index=seen - 1,
                            detail=(
                                f"cpu {cpu} {kind_name} addr={ref >> 2:#x}: "
                                f"model filled from {got!r}, oracle says "
                                f"{want!r}"
                            ),
                            context=ring_text(),
                        )
                    if seen % check_every == 0:
                        checks += 1
                        mismatch = compare_counter_vectors(hierarchy, oracle)
                        if mismatch:
                            return Divergence(
                                index=seen - 1, detail=mismatch, context=ring_text()
                            )
                positions[cpu] = end
                if end < len(trace):
                    next_live.append(cpu)
            live = next_live
        return None

    if warmup_fraction > 0.0:
        warm = [t[: int(len(t) * warmup_fraction)] for t in traces]
        rest = [t[int(len(t) * warmup_fraction) :] for t in traces]
        divergence = replay_window(warm)
        if divergence is not None:
            return DiffReport(name, total_refs, checks, divergence)
        hierarchy.reset_stats()
        oracle.reset_stats()
        divergence = replay_window(rest)
    else:
        divergence = replay_window(traces)
    if divergence is None:
        checks += 1
        mismatch = compare_counter_vectors(hierarchy, oracle)
        if mismatch:
            divergence = Divergence(index=seen, detail=mismatch, context=ring_text())
    if divergence is None:
        # Third model: the same traces through run_trace, which routes
        # to the compiled coherence kernel when the fast path is
        # enabled (and the scalar loop when it is not), so diffcheck
        # validates whichever replay path the figures would use.
        batched = MemoryHierarchy(machine, protocol=protocol)
        batched.run_trace(
            traces, quantum=quantum, warmup_fraction=warmup_fraction
        )
        checks += 1
        mismatch = compare_counter_vectors(batched, oracle)
        if mismatch:
            divergence = Divergence(
                index=seen, detail=f"batched replay: {mismatch}"
            )
    return DiffReport(name, total_refs, checks, divergence)


# -- oracle 4: store-buffer history rescan -----------------------------------


class OracleStoreBuffer:
    """Store buffer semantics executed from the specification, slowly.

    Keeps the *entire* drain history as a plain list and rescans it on
    every issue: the buffer is full when ``depth`` drains are still
    pending, and a full buffer stalls the store until the oldest
    pending drain completes.  Drains are serialized — each starts when
    the previous one finishes.  An entry leaves the buffer the moment
    the buffer has *advanced* past its completion — a stalled store
    enters at ``now + stall``, so everything completed by then is gone
    for good, even for a later issue at an earlier ``now`` (the
    ``_drained_until`` clock).  No deque, no lazy popping, no shared
    code with :class:`repro.memsys.storebuffer.StoreBuffer`.

    Issue times must be nondecreasing (stores come from a program
    order), matching the production model's use.
    """

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ConfigError("depth must be positive")
        self.depth = depth
        self.stores = 0
        self.stall_cycles = 0
        self.stalled_stores = 0
        self._done_times: list[int] = []
        self._drained_until = 0

    def issue(self, now: int, drain_latency: int) -> int:
        if drain_latency <= 0:
            raise ConfigError("drain_latency must be positive")
        self.stores += 1
        self._drained_until = max(self._drained_until, now)
        pending = [d for d in self._done_times if d > self._drained_until]
        stall = 0
        if len(pending) >= self.depth:
            stall = min(pending) - now
            self.stall_cycles += stall
            self.stalled_stores += 1
            self._drained_until = now + stall
        start = now + stall
        if self._done_times:
            start = max(start, self._done_times[-1])
        self._done_times.append(start + drain_latency)
        return stall


def diff_store_buffer(
    events: list[tuple[int, int]], depth: int, name: str = "storebuffer"
) -> DiffReport:
    """Replay ``(now, drain_latency)`` issues through model and oracle.

    Issue times must be nondecreasing.  Compares the returned stall of
    every issue as it happens, then the final counter vector
    (``stores``, ``stall_cycles``, ``stalled_stores``).
    """
    from repro.memsys.storebuffer import StoreBuffer

    model = StoreBuffer(depth=depth)
    oracle = OracleStoreBuffer(depth=depth)
    ring: deque[str] = deque(maxlen=12)
    for i, (now, latency) in enumerate(events):
        got = model.issue(now, latency)
        want = oracle.issue(now, latency)
        ring.append(f"  #{i} now={now} latency={latency} -> {got}/{want}")
        if got != want:
            return DiffReport(
                name=name, n_refs=len(events), checks=i + 1,
                divergence=Divergence(
                    index=i,
                    detail=(
                        f"issue(now={now}, drain_latency={latency}): model "
                        f"stalled {got} cycles, oracle says {want}"
                    ),
                    context="recent issues (model/oracle stall):\n"
                    + "\n".join(ring),
                ),
            )
    for field_name in ("stores", "stall_cycles", "stalled_stores"):
        got = getattr(model, field_name)
        want = getattr(oracle, field_name)
        if got != want:
            return DiffReport(
                name=name, n_refs=len(events), checks=len(events) + 1,
                divergence=Divergence(
                    index=len(events),
                    detail=f"{field_name}: model {got} != oracle {want}",
                ),
            )
    return DiffReport(name=name, n_refs=len(events), checks=len(events) + 1)


# -- oracle 5: list-based TLB ------------------------------------------------


class OracleTlb:
    """Fully-associative LRU TLB, the obvious way.

    One Python list of resident pages, MRU at the tail; pages come
    from integer division by the page size.  No dict-ordering tricks,
    no shared code with :class:`repro.memsys.tlb.Tlb`.
    """

    def __init__(self, entries: int, page_size: int) -> None:
        if entries <= 0:
            raise ConfigError("entries must be positive")
        if page_size <= 0:
            raise ConfigError("page_size must be positive")
        self.entries = entries
        self.page_size = page_size
        self.accesses = 0
        self.misses = 0
        self._lru: list[int] = []

    def access(self, addr: int) -> bool:
        page = addr // self.page_size
        self.accesses += 1
        if page in self._lru:
            self._lru.remove(page)
            self._lru.append(page)
            return True
        self.misses += 1
        if len(self._lru) >= self.entries:
            self._lru.pop(0)
        self._lru.append(page)
        return False


def diff_tlb(
    addrs, entries: int, page_size: int, name: str = "tlb"
) -> DiffReport:
    """Replay byte addresses through model TLB and oracle in lockstep.

    Compares every access's hit/miss decision as it happens, then the
    final ``accesses``/``misses`` counters.  ``page_size`` must be a
    power of two (the production model shifts; the oracle divides).
    """
    from repro.memsys.tlb import Tlb

    addrs = addrs.tolist() if isinstance(addrs, np.ndarray) else list(addrs)
    model = Tlb(entries=entries, page_size=page_size)
    oracle = OracleTlb(entries=entries, page_size=page_size)
    ring: deque[str] = deque(maxlen=12)
    for i, addr in enumerate(addrs):
        got = model.access(int(addr))
        want = oracle.access(int(addr))
        outcome = f"{'hit' if got else 'miss'}/{'hit' if want else 'miss'}"
        ring.append(f"  #{i} addr={int(addr):#x} page={int(addr) // page_size:#x} -> {outcome}")
        if got != want:
            return DiffReport(
                name=name, n_refs=len(addrs), checks=i + 1,
                divergence=Divergence(
                    index=i,
                    detail=(
                        f"addr {int(addr):#x} (page {int(addr) // page_size:#x}): "
                        f"model {'hit' if got else 'miss'}, oracle "
                        f"{'hit' if want else 'miss'}"
                    ),
                    context="recent accesses (model/oracle):\n" + "\n".join(ring),
                ),
            )
    for field_name in ("accesses", "misses"):
        got = getattr(model, field_name)
        want = getattr(oracle, field_name)
        if got != want:
            return DiffReport(
                name=name, n_refs=len(addrs), checks=len(addrs) + 1,
                divergence=Divergence(
                    index=len(addrs),
                    detail=f"{field_name}: model {got} != oracle {want}",
                ),
            )
    return DiffReport(name=name, n_refs=len(addrs), checks=len(addrs) + 1)


# -- figure-configuration coverage ------------------------------------------


@dataclass(frozen=True)
class FigureDiffConfig:
    """The machine/workload configuration one figure exercises."""

    fig_id: str
    mode: str                    # "hierarchy" | "miss_curve" | "stackdist"
                                 # | "miss_curve_stream" | "stackdist_stream"
    workload: str = "specjbb"
    scale: int | None = None
    n_procs: int = 4
    procs_per_l2: int = 1
    protocol: str = "mosi"
    include_os: bool = False
    with_gc_stream: bool = False
    kind: str = "data"           # miss_curve reference class


#: Reduced-effort simulation the figure diffchecks replay (the oracles
#: are deliberately naive, so traces stay small).
DIFF_SIM = SimConfig(seed=1234, refs_per_proc=4_000, warmup_fraction=0.5)

#: Miss-curve sweep sizes small enough that tiny traces still evict.
DIFF_SWEEP_SIZES = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]

#: One entry per paper figure: every machine configuration the
#: reproduction publishes numbers for gets differential coverage.
FIGURE_DIFF_CONFIGS: list[FigureDiffConfig] = [
    FigureDiffConfig("fig04", "hierarchy", "specjbb", None, n_procs=4),
    FigureDiffConfig("fig05", "hierarchy", "ecperf", None, n_procs=4),
    FigureDiffConfig("fig06", "hierarchy", "specjbb", None, n_procs=6),
    FigureDiffConfig("fig07", "hierarchy", "ecperf", None, n_procs=6),
    FigureDiffConfig("fig08", "hierarchy", "specjbb", None, n_procs=4, include_os=True),
    FigureDiffConfig("fig09", "hierarchy", "specjbb", None, n_procs=4),
    FigureDiffConfig("fig10", "hierarchy", "specjbb", None, n_procs=4,
                     with_gc_stream=True),
    FigureDiffConfig("fig11", "stackdist", "specjbb", 8, n_procs=1),
    FigureDiffConfig("fig11", "stackdist_stream", "specjbb", 8, n_procs=1),
    FigureDiffConfig("fig12", "miss_curve", "ecperf", 8, n_procs=1, kind="instr"),
    FigureDiffConfig("fig12", "miss_curve_stream", "ecperf", 8, n_procs=1,
                     kind="instr"),
    FigureDiffConfig("fig13", "miss_curve", "specjbb", 1, n_procs=1, kind="data"),
    FigureDiffConfig("fig13", "miss_curve_stream", "specjbb", 1, n_procs=1,
                     kind="data"),
    FigureDiffConfig("fig14", "hierarchy", "specjbb", None, n_procs=4),
    FigureDiffConfig("fig15", "hierarchy", "ecperf", None, n_procs=4),
    FigureDiffConfig("fig16", "hierarchy", "ecperf", None, n_procs=4,
                     procs_per_l2=2),
]


def _figure_traces(config: FigureDiffConfig, sim: SimConfig) -> list:
    """Seeded per-CPU traces matching a figure's workload setup."""
    from repro.figures.common import make_workload, workload_for_procs
    from repro.jvm.gc import GenerationalCollector
    from repro.rng import RngFactory
    from repro.workloads import layout
    from repro.workloads.base import os_background_trace

    if config.scale is not None:
        workload = make_workload(config.workload, scale=config.scale)
    else:
        workload = workload_for_procs(config.workload, config.n_procs)
    rng_factory = RngFactory(seed=sim.seed)
    bundle = workload.generate(config.n_procs, sim, rng_factory)
    traces = [t.tolist() for t in bundle.per_cpu]
    if config.with_gc_stream:
        # Figure 10 replays the collector's private copy traffic.
        traces[0] = traces[0] + GenerationalCollector.copy_ref_stream(
            from_base=0x6000_0000, to_base=0x6800_0000, nbytes=64 * 1024
        )
    if config.include_os:
        os_rng = rng_factory.stream("os-background")
        shared = [layout.NET_BUFFER_POOL + i * 256 for i in range(16)]
        shared += [layout.RUNQUEUE_BASE + cpu * 64 for cpu in range(config.n_procs)]
        traces.append(
            os_background_trace(
                os_rng, max(1, sim.refs_per_proc // 10), shared
            )
        )
    return traces


def run_figure_diffcheck(
    config: FigureDiffConfig, sim: SimConfig | None = None
) -> DiffReport:
    """Run the differential check for one figure configuration."""
    from repro.memsys.fastpath import block_stream

    sim = sim if sim is not None else DIFF_SIM
    name = f"{config.fig_id}/{config.mode}"
    if config.mode == "hierarchy":
        traces = _figure_traces(config, sim)
        machine = e6000_machine(len(traces))
        if config.procs_per_l2 > 1 and len(traces) % config.procs_per_l2 == 0:
            machine = machine.with_shared_l2(config.procs_per_l2)
        return diff_hierarchy_replay(
            traces,
            machine=machine,
            protocol=config.protocol,
            quantum=sim.interleave_quantum,
            warmup_fraction=sim.warmup_fraction,
            name=name,
        )
    traces = _figure_traces(config, sim)
    merged = [ref for trace in traces for ref in trace]
    if config.mode == "miss_curve":
        return diff_miss_curve(
            merged, DIFF_SWEEP_SIZES, kind=config.kind,
            warmup_fraction=sim.warmup_fraction, name=name,
        )
    if config.mode == "miss_curve_stream":
        return diff_miss_curve_stream(
            merged, DIFF_SWEEP_SIZES, kind=config.kind,
            warmup_fraction=sim.warmup_fraction, name=name,
        )
    if config.mode == "stackdist":
        blocks = block_stream(merged, config.kind).tolist()
        return diff_stackdist(blocks, name=name)
    if config.mode == "stackdist_stream":
        blocks = block_stream(merged, config.kind).tolist()
        return diff_stackdist_stream(blocks, name=name)
    raise ConfigError(f"unknown diff mode {config.mode!r}")


def run_all_figure_diffchecks(
    fig_ids: list[str] | None = None, sim: SimConfig | None = None
) -> list[DiffReport]:
    """Differentially validate every (or the named) figure configs."""
    wanted = None if not fig_ids else set(fig_ids)
    configs = [
        c for c in FIGURE_DIFF_CONFIGS if wanted is None or c.fig_id in wanted
    ]
    if wanted is not None:
        known = {c.fig_id for c in FIGURE_DIFF_CONFIGS}
        unknown = sorted(wanted - known)
        if unknown:
            raise ConfigError(
                f"unknown figure ids {unknown}; known: {sorted(known)}"
            )
    return [run_figure_diffcheck(config, sim) for config in configs]
