"""Deterministic, named random-number streams.

Simulation components each draw from their own named stream so that
adding randomness to one component does not perturb another — the same
discipline full-system simulators use to keep runs comparable.  The
Alameldeen–Wood variability methodology (HPCA 2003) is implemented on
top of this: an experiment is repeated with ``run_index`` varied, which
perturbs every stream in a controlled way.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str, run_index: int) -> int:
    """Hash (root_seed, name, run_index) into a 64-bit stream seed."""
    digest = hashlib.sha256(f"{root_seed}/{name}/{run_index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Produces independent named RNG streams from one root seed.

    >>> factory = RngFactory(seed=42)
    >>> a = factory.stream("alloc")
    >>> b = factory.stream("alloc")
    >>> float(a.random()) == float(b.random())   # same name -> same stream
    True
    """

    def __init__(self, seed: int = 0, run_index: int = 0) -> None:
        self.seed = int(seed)
        self.run_index = int(run_index)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream."""
        return np.random.default_rng(_derive_seed(self.seed, name, self.run_index))

    def perturbed(self, run_index: int) -> "RngFactory":
        """Return a factory for another run of the same experiment."""
        return RngFactory(seed=self.seed, run_index=run_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed}, run_index={self.run_index})"
