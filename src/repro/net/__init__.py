"""Network substrate: the 100-Mbit Ethernet connecting ECperf's tiers."""

from repro.net.ethernet import EthernetLink
from repro.net.messages import MessageType, message_bytes

__all__ = ["EthernetLink", "MessageType", "message_bytes"]
