"""Tier-to-tier message catalogue for ECperf.

Sizes are modeling estimates for the benchmark's message classes:
driver requests/responses are small HTTP exchanges, database traffic
is JDBC rows, and supplier communication exchanges XML purchase-order
documents (Section 2.2: the beans "exchange XML documents with the
Supplier Emulator").
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ConfigError


class MessageType(Enum):
    """Messages crossing the application server's network interfaces."""

    DRIVER_REQUEST = "driver_request"
    DRIVER_RESPONSE = "driver_response"
    DB_QUERY = "db_query"
    DB_RESULT = "db_result"
    SUPPLIER_PO_XML = "supplier_po_xml"
    SUPPLIER_ACK = "supplier_ack"


_SIZES: dict[MessageType, int] = {
    MessageType.DRIVER_REQUEST: 512,
    MessageType.DRIVER_RESPONSE: 2048,
    MessageType.DB_QUERY: 384,
    MessageType.DB_RESULT: 1536,
    MessageType.SUPPLIER_PO_XML: 6144,
    MessageType.SUPPLIER_ACK: 512,
}


def message_bytes(message: MessageType) -> int:
    """Payload size in bytes for a message class."""
    try:
        return _SIZES[message]
    except KeyError:  # pragma: no cover - enum is closed
        raise ConfigError(f"unknown message type {message!r}") from None
