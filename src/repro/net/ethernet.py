"""100-Mbit Ethernet link model.

The paper's testbed connects the ECperf tiers (driver, application
server, database, supplier emulator) with 100-Mbit Ethernet.  For the
memory-system study the link matters in two ways: transfer time
contributes to transaction latency (I/O wait in Figure 5), and every
message costs the application server kernel time (the network-stack
model).  A simple latency + serialization model captures both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EthernetLink:
    """Point-to-point link with fixed latency and bandwidth."""

    bandwidth_bps: float = 100e6
    latency_s: float = 150e-6
    per_message_overhead_bytes: int = 78  # Ethernet + IP + TCP framing

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0 or self.latency_s < 0:
            raise ConfigError("bandwidth must be positive, latency non-negative")
        if self.per_message_overhead_bytes < 0:
            raise ConfigError("per_message_overhead_bytes must be non-negative")

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to deliver one message of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ConfigError("payload must be non-negative")
        wire_bytes = payload_bytes + self.per_message_overhead_bytes
        return self.latency_s + (wire_bytes * 8) / self.bandwidth_bps

    def utilization(self, bytes_per_second: float) -> float:
        """Offered load as a fraction of link capacity."""
        if bytes_per_second < 0:
            raise ConfigError("bytes_per_second must be non-negative")
        return (bytes_per_second * 8) / self.bandwidth_bps
