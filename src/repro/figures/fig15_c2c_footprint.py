"""Figure 15: distribution of C2C transfers vs. absolute line count.

Paper (semi-log x): even though SPECjbb touches more total data,
ECperf's *communication* footprint is larger in absolute terms — it
takes more cache lines to cover any given share of ECperf's transfers.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import FIGURE_SIM, FigureResult
from repro.figures.fig14_c2c_cdf import footprints


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 15."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series = {}
    for name, fp in footprints(sim).items():
        rows.append(
            (
                name,
                fp.lines_for_share(0.5),
                fp.lines_for_share(0.7),
                fp.lines_for_share(0.9),
                fp.communicating_lines,
            )
        )
        series[name] = fp.cdf_absolute_lines()[:4000]
    return FigureResult(
        figure_id="fig15",
        title="Distribution of C2C transfers vs absolute lines (8p, semi-log)",
        columns=[
            "workload",
            "lines for 50%",
            "lines for 70%",
            "lines for 90%",
            "communicating lines",
        ],
        rows=rows,
        paper_claim=(
            "ECperf's communication footprint is larger than SPECjbb's on an "
            "absolute, not just percentage, basis"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    by_name = {row[0]: row for row in result.rows}
    jbb, ec = by_name["specjbb"], by_name["ecperf"]
    return [
        ("ecperf needs more lines for 50% of transfers", ec[1] > jbb[1]),
        ("ecperf needs more lines for 90% of transfers", ec[3] > jbb[3]),
        ("ecperf has more communicating lines overall", ec[4] > jbb[4]),
    ]
