"""Figure 14: distribution of cache-to-cache transfers (percent of lines).

Paper: for SPECjbb, all transfers come from ~12% of the cache lines
touched in the measurement window, over 70% from the most active
0.1%, and the single hottest line carries ~20%.  ECperf's
communication is much flatter: the top 0.1% of lines carry only 56%,
the hottest line 14%, and transfers spread over about half of the
touched lines.
"""

from __future__ import annotations

from repro.analysis.cdf import CommunicationFootprint
from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    simulate_multiprocessor,
    workload_for_procs,
)

N_PROCS = 8


def footprints(sim: SimConfig) -> dict[str, CommunicationFootprint]:
    """Communication footprints from 8-processor simulations."""
    out = {}
    for name in ("ecperf", "specjbb"):
        workload = workload_for_procs(name, N_PROCS)
        hierarchy = simulate_multiprocessor(workload, N_PROCS, sim)
        stats = hierarchy.bus.stats
        out[name] = CommunicationFootprint(
            c2c_by_line=dict(stats.c2c_by_line),
            touched_lines=len(stats.touched_lines),
        )
    return out


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 14."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series = {}
    for name, fp in footprints(sim).items():
        rows.append(
            (
                name,
                fp.hottest_line_share(),
                fp.share_from_top_fraction(0.001),
                fp.communicating_fraction,
                fp.total_transfers,
            )
        )
        series[name] = fp.cdf_percent_of_touched()[:2000]
    return FigureResult(
        figure_id="fig14",
        title="Distribution of C2C transfers vs % of touched lines (8p)",
        columns=[
            "workload",
            "hottest line share",
            "top 0.1% share",
            "communicating frac",
            "transfers",
        ],
        rows=rows,
        paper_claim=(
            "SPECjbb: hottest line ~20%, top 0.1% ~70%, all C2C from ~12% of "
            "lines; ECperf: hottest 14%, top 0.1% 56%, spread over ~half"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    by_name = {row[0]: row for row in result.rows}
    jbb, ec = by_name["specjbb"], by_name["ecperf"]
    return [
        ("specjbb hottest line carries 10-35%", 0.10 <= jbb[1] <= 0.35),
        ("ecperf hottest line cooler than specjbb's", ec[1] < jbb[1]),
        # NOTE: "top 0.1% of touched lines" is scale-dependent — the
        # paper's window touches ~50x more lines than our traces, so
        # the same 0.1% covers far more hot lines there.  The shape
        # statement preserved here: a tiny hot core dominates SPECjbb.
        ("specjbb top 0.1% of lines dominates (>25%)", jbb[2] > 0.25),
        ("ecperf flatter than specjbb at top 0.1%", ec[2] < jbb[2]),
        ("ecperf spreads over a larger fraction of lines",
         ec[3] > 1.5 * jbb[3]),
    ]
