"""Figure 10: cache-to-cache transfers per second over time.

Paper: counting snoop copybacks in 100 ms bins over a SPECjbb run
shows the transfer rate collapsing to almost zero during the three
garbage collections in the measurement window — contrary to the
authors' hypothesis that the copying collector *causes* the
transfers.  The collector's traffic (reading mostly-evicted from-space
and writing a private to-space) produces memory fetches, not
copybacks, and all other processors are idle.
"""

from __future__ import annotations

from repro.core.config import SimConfig, e6000_machine
from repro.figures.common import FIGURE_SIM, FigureResult
from repro.jvm.gc import GenerationalCollector
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory
from repro.workloads.specjbb import SpecJbbWorkload

#: Timeline structure: bins of "100 ms"; three collections in the window.
N_BINS = 36
GC_BINS = {9, 10, 21, 22, 33, 34}
N_PROCS = 8


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 10 (normalized C2C rate per time bin)."""
    sim = sim if sim is not None else FIGURE_SIM
    workload = SpecJbbWorkload(warehouses=N_PROCS)
    rng_factory = RngFactory(seed=sim.seed)
    bundle = workload.generate(N_PROCS, sim, rng_factory)
    hierarchy = MemoryHierarchy(e6000_machine(N_PROCS))

    # Warm up on the first half of every trace.
    warm = [t[: len(t) // 2] for t in bundle.per_cpu]
    rest = [t[len(t) // 2 :] for t in bundle.per_cpu]
    hierarchy.run_trace(warm, quantum=sim.interleave_quantum)
    hierarchy.reset_stats()

    # Split the measurement half into mutator bins.
    mutator_bins = max(1, N_BINS - len(GC_BINS))
    bin_len = min(len(t) for t in rest) // mutator_bins
    collector_rng = rng_factory.stream("gc-copy")
    gc_refs_per_bin = bin_len  # the collector is memory-bound too

    rates = []
    mutator_index = 0
    for bin_id in range(N_BINS):
        before = hierarchy.bus.stats.c2c_transfers
        if bin_id in GC_BINS:
            # Stop-the-world: only processor 0 runs, copying survivors.
            refs = _collector_bin_refs(workload, collector_rng, gc_refs_per_bin)
            traces = [refs] + [[] for _ in range(N_PROCS - 1)]
        else:
            lo = mutator_index * bin_len
            hi = lo + bin_len
            traces = [t[lo:hi] for t in rest]
            mutator_index += 1
        hierarchy.run_trace(traces, quantum=sim.interleave_quantum)
        rates.append(hierarchy.bus.stats.c2c_transfers - before)

    peak = max(rates) or 1
    rows = [
        (bin_id, bin_id in GC_BINS, count, count / peak)
        for bin_id, count in enumerate(rates)
    ]
    return FigureResult(
        figure_id="fig10",
        title="C2C transfers per time bin (normalized), SPECjbb 8p",
        columns=["bin", "in GC", "c2c count", "normalized"],
        rows=rows,
        paper_claim=(
            "the C2C rate drops to almost zero during the three garbage "
            "collections in the window"
        ),
        series={"c2c_rate": [(b, c / peak) for b, c in enumerate(rates)]},
    )


def _collector_bin_refs(workload, rng, n_refs: int) -> list[int]:
    """Collector traffic for one GC bin.

    The collector walks from-space — addresses spread across every
    thread's allocation slice, long since evicted from the caches —
    and writes survivors into a fresh to-space in the old generation.
    Both streams are private to the collecting processor.
    """
    layout = workload.heap.layout
    from_lo = layout.new_gen_base
    from_span = layout.new_gen_size
    to_base = layout.old_gen_base + layout.old_gen_size // 2
    refs = GenerationalCollector.copy_ref_stream(
        from_base=from_lo + int(rng.integers(0, from_span // 2)) // 64 * 64,
        to_base=to_base,
        nbytes=(n_refs // 2) * 64,
    )
    return refs[:n_refs]


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    gc_rates = [row[3] for row in result.rows if row[1]]
    mutator_rates = [row[3] for row in result.rows if not row[1]]
    avg_gc = sum(gc_rates) / len(gc_rates)
    avg_mut = sum(mutator_rates) / len(mutator_rates)
    return [
        ("GC bins' C2C rate under 20% of peak", max(gc_rates) < 0.2),
        ("GC-bin average far below mutator average", avg_gc < 0.25 * avg_mut),
    ]
