"""The paper's headline claims (abstract + Section 7), checked directly.

Not a numbered figure: the abstract makes five quantified claims that
span several figures.  This driver measures each one from the same
simulation pipeline so the whole story can be verified in one run:

1. memory footprints and primary working sets are small;
2. a large fraction of the working sets is shared between processors
   (sharing misses exceed 60% of L2 misses on larger systems);
3. ECperf has a larger instruction footprint, with much higher miss
   rates for intermediate instruction caches;
4. SPECjbb's data set grows linearly with the benchmark size while
   ECperf's stays roughly constant;
5. the difference can flip memory-system design decisions (the 1 MB
   shared-cache CMP result).
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    make_workload,
    simulate_multiprocessor,
    workload_for_procs,
)
from repro.memsys.fastpath import block_stream
from repro.memsys.stackdist import StackDistanceProfiler
from repro.rng import RngFactory
from repro.units import mb


def run(sim: SimConfig | None = None) -> FigureResult:
    """Measure the five abstract claims."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []

    # Claim 1: primary working sets are small (90% of warm reuse, bytes).
    for name in ("specjbb", "ecperf"):
        workload = make_workload(name, scale=4)
        bundle = workload.generate(1, sim.with_refs(60_000), RngFactory(sim.seed))
        profiler = StackDistanceProfiler()
        profiler.feed(block_stream(bundle.per_cpu[0], kind="data"))
        rows.append(
            ("working_set_90pct_kb", name, profiler.working_set_size(0.9) * 64 / 1024)
        )

    # Claim 2: sharing misses at 14 processors.
    for name in ("specjbb", "ecperf"):
        hierarchy = simulate_multiprocessor(workload_for_procs(name, 14), 14, sim)
        rows.append(("c2c_miss_fraction_14p", name, hierarchy.c2c_ratio()))

    # Claim 3: instruction footprints.
    for name in ("specjbb", "ecperf"):
        rows.append(
            ("instr_footprint_kb", name, make_workload(name).code.total_code_bytes / 1024)
        )

    # Claim 4: data-set growth with the scale factor.
    for name in ("specjbb", "ecperf"):
        workload = make_workload(name)
        growth = workload.live_memory_mb(25) / workload.live_memory_mb(5)
        rows.append(("live_memory_growth_5_to_25", name, growth))

    # Claim 5: the shared-cache design flip (private vs fully shared).
    for label, name, scale in (("ecperf", "ecperf", 8), ("specjbb-25", "specjbb", 25)):
        private = simulate_multiprocessor(
            make_workload(name, scale), 8, sim, procs_per_l2=1
        ).data_mpki()
        shared = simulate_multiprocessor(
            make_workload(name, scale), 8, sim, procs_per_l2=8
        ).data_mpki()
        rows.append(("shared_over_private_mpki", label, shared / private))

    return FigureResult(
        figure_id="claims",
        title="Headline claims (abstract / Section 7)",
        columns=["claim metric", "workload", "value"],
        rows=rows,
        paper_claim=(
            "small working sets; >60% sharing misses at scale; ECperf's "
            "larger instruction footprint; SPECjbb's linear data growth; "
            "opposite shared-cache conclusions"
        ),
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    values = {(row[0], row[1]): row[2] for row in result.rows}
    return [
        (
            "working sets far below the 1 MB L2",
            values[("working_set_90pct_kb", "specjbb")] < 1024
            and values[("working_set_90pct_kb", "ecperf")] < 1024,
        ),
        (
            "sharing misses dominate at 14p (>40%)",
            values[("c2c_miss_fraction_14p", "specjbb")] > 0.40
            and values[("c2c_miss_fraction_14p", "ecperf")] > 0.40,
        ),
        (
            "ECperf instruction footprint >2x SPECjbb's",
            values[("instr_footprint_kb", "ecperf")]
            > 2 * values[("instr_footprint_kb", "specjbb")],
        ),
        (
            "SPECjbb data grows ~linearly, ECperf stays flat",
            values[("live_memory_growth_5_to_25", "specjbb")] > 2.5
            and values[("live_memory_growth_5_to_25", "ecperf")] < 1.3,
        ),
        (
            "shared 1 MB helps ECperf, hurts SPECjbb-25",
            values[("shared_over_private_mpki", "ecperf")] < 0.8
            and values[("shared_over_private_mpki", "specjbb-25")] > 1.1,
        ),
    ]
