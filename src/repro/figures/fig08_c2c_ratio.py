"""Figure 8: cache-to-cache transfer ratio vs. processor count.

Paper: the fraction of L2 misses that hit in another processor's
cache starts around 25% for two processors and rises past 60% by
fourteen; even "1-processor" runs show copybacks, because the OS
keeps running on processors outside the processor set.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    simulate_multiprocessor,
    workload_for_procs,
)

C2C_SWEEP = [1, 2, 4, 6, 8, 10, 12, 14]


def run(sim: SimConfig | None = None, sweep: list[int] | None = None) -> FigureResult:
    """Reproduce Figure 8."""
    sim = sim if sim is not None else FIGURE_SIM
    sweep = sweep if sweep is not None else C2C_SWEEP
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        points = []
        for p in sweep:
            workload = workload_for_procs(name, p)
            # The OS runs on processors outside the set (psrset), which
            # is what makes the 1-processor ratio non-zero.
            hierarchy = simulate_multiprocessor(
                workload, p, sim, include_os_processor=True
            )
            ratio = hierarchy.c2c_ratio()
            rows.append((name, p, ratio, hierarchy.total_l2_misses))
            points.append((p, ratio))
        series[name] = points
    return FigureResult(
        figure_id="fig08",
        title="Cache-to-cache transfer ratio vs processors",
        columns=["workload", "procs", "c2c ratio", "L2 misses"],
        rows=rows,
        paper_claim=(
            "~25% at 2p rising past 60% by 14p; non-zero at 1p because the "
            "OS runs outside the processor set"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    out = []
    for name in ("ecperf", "specjbb"):
        ratios = dict((p, r) for p, r in result.series[name])
        out.append((f"{name}: ratio > 0 at 1p (OS effect)", ratios[1] > 0.0))
        out.append((f"{name}: ratio 2p in 10-50% band", 0.10 <= ratios[2] <= 0.50))
        out.append((f"{name}: ratio rises monotonically 2->14p",
                    all(ratios[a] <= ratios[b] + 0.03
                        for a, b in zip([2, 4, 6, 8, 10, 12], [4, 6, 8, 10, 12, 14]))))
        out.append((f"{name}: ratio @14p above 35%", ratios[14] > 0.35))
    return out
