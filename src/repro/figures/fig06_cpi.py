"""Figure 6: CPI breakdown vs. processor count.

Paper: overall CPI ranges 1.8-2.4 (SPECjbb) and 2.0-2.8 (ECperf),
rising ~33%/~40% from 1 to 15 processors; data stall time is the main
contributor, growing from 12%/15% of execution to 25%/35%.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.cpu import InOrderCpuModel
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    simulate_multiprocessor,
    workload_for_procs,
)

#: Processor counts actually simulated (the paper's axis, thinned for cost).
CPI_SWEEP = [1, 2, 4, 8, 12, 15]


def run(sim: SimConfig | None = None, sweep: list[int] | None = None) -> FigureResult:
    """Reproduce Figure 6."""
    sim = sim if sim is not None else FIGURE_SIM
    sweep = sweep if sweep is not None else CPI_SWEEP
    model = InOrderCpuModel()
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        points = []
        for p in sweep:
            workload = workload_for_procs(name, p)
            hierarchy = simulate_multiprocessor(workload, p, sim)
            cpi = model.cpi_for_machine(hierarchy)
            rows.append(
                (
                    name,
                    p,
                    cpi.total,
                    cpi.instruction_stall,
                    cpi.data_stall.total,
                    cpi.other,
                    cpi.data_stall_fraction,
                )
            )
            points.append((p, cpi.total))
        series[name] = points
    return FigureResult(
        figure_id="fig06",
        title="CPI breakdown vs processors",
        columns=[
            "workload",
            "procs",
            "CPI",
            "instr stall",
            "data stall",
            "other",
            "data frac",
        ],
        rows=rows,
        paper_claim=(
            "CPI 1.8-2.4 (jbb) / 2.0-2.8 (ecperf); +33%/+40% from 1 to 15p; "
            "data stall 12->25% / 15->35% of execution"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""

    def cpi(name, p):
        for row in result.rows:
            if row[0] == name and row[1] == p:
                return row
        raise KeyError((name, p))

    jbb1, jbb15 = cpi("specjbb", 1), cpi("specjbb", 15)
    ec1, ec15 = cpi("ecperf", 1), cpi("ecperf", 15)
    return [
        ("specjbb CPI in a moderate band", 1.6 <= jbb1[2] <= 2.2 and 1.9 <= jbb15[2] <= 2.8),
        ("ecperf CPI in a moderate band", 1.9 <= ec1[2] <= 2.7 and 2.3 <= ec15[2] <= 3.2),
        ("ecperf CPI above specjbb", ec1[2] > jbb1[2] and ec15[2] > jbb15[2]),
        ("CPI grows with processors (>10%)", jbb15[2] > 1.10 * jbb1[2] and ec15[2] > 1.10 * ec1[2]),
        ("data stall fraction grows", jbb15[6] > jbb1[6] and ec15[6] > ec1[6]),
        ("data stall is main growth term", (jbb15[4] - jbb1[4]) > (jbb15[3] - jbb1[3])),
    ]
