"""Figure 16: data miss rate with shared L2 caches (the CMP study).

Paper: eight processors, four memory hierarchies — private 1 MB L2s,
then 2, 4 and 8 processors per shared 1 MB L2 (total capacity shrinks
as sharing grows).  For ECperf, eliminating coherence misses more than
pays for the lost capacity: the single fully-shared 1 MB cache has the
*lowest* miss rate, with one eighth the total capacity.  SPECjbb-25's
much larger data set goes the other way: sharing raises its miss rate.
This is the paper's headline design-divergence result.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    figure_trace,
    make_workload,
    simulate_multiprocessor,
)

N_PROCS = 8
SHARING = [1, 2, 4, 8]

CONFIGS = [
    ("ecperf", "ecperf", 8),
    ("specjbb-25", "specjbb", 25),
]


def trace_specs(sim: SimConfig):
    """The traces this figure replays: one 8-CPU bundle per workload.

    All four cache-sharing levels replay the *same* trace — the
    generate-once/replay-many case the trace plane exists for.
    """
    from repro.harness.traceplane import TraceSpec

    return [
        TraceSpec(workload=name, scale=scale, n_procs=N_PROCS, sim=sim)
        for _label, name, scale in CONFIGS
    ]


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 16."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series = {}
    for label, name, scale in CONFIGS:
        points = []
        workload = make_workload(name, scale=scale)
        bundle = figure_trace(name, scale, N_PROCS, sim)
        for procs_per_l2 in SHARING:
            hierarchy = simulate_multiprocessor(
                workload, N_PROCS, sim, procs_per_l2=procs_per_l2, bundle=bundle
            )
            mpki = hierarchy.data_mpki()
            rows.append(
                (
                    label,
                    procs_per_l2,
                    N_PROCS // procs_per_l2,
                    mpki,
                    hierarchy.c2c_ratio(),
                )
            )
            points.append((procs_per_l2, mpki))
        series[label] = points
    return FigureResult(
        figure_id="fig16",
        title="Data miss rate on shared 1 MB L2 caches (8 processors)",
        columns=["workload", "procs/L2", "n caches", "data MPKI", "c2c ratio"],
        rows=rows,
        paper_claim=(
            "ECperf improves monotonically with sharing (fully shared 1 MB "
            "is best at 1/8 capacity); SPECjbb-25 degrades with sharing"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    ec = dict((ppl, m) for ppl, m in result.series["ecperf"])
    jbb = dict((ppl, m) for ppl, m in result.series["specjbb-25"])
    return [
        ("ecperf: fully shared beats private", ec[8] < ec[1]),
        ("ecperf: sharing trend is downward", ec[8] <= ec[2] + 0.1),
        ("specjbb-25: fully shared loses to private", jbb[8] > jbb[1]),
        ("opposite design conclusions", (ec[8] < ec[1]) and (jbb[8] > jbb[1])),
    ]
