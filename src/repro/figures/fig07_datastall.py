"""Figure 7: data-stall time decomposition vs. processor count.

Paper: roughly 60% of data stall time is L2 misses (cache-to-cache +
memory), with cache-to-cache transfers reaching ~50% of total data
stall on larger systems; store-buffer stalls are only 1-2% of
execution time and read-after-write hazards ~1%.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.cpu import InOrderCpuModel
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    simulate_multiprocessor,
    workload_for_procs,
)

DATASTALL_SWEEP = [1, 2, 4, 8, 12, 15]


def run(sim: SimConfig | None = None, sweep: list[int] | None = None) -> FigureResult:
    """Reproduce Figure 7."""
    sim = sim if sim is not None else FIGURE_SIM
    sweep = sweep if sweep is not None else DATASTALL_SWEEP
    model = InOrderCpuModel()
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        c2c_points = []
        for p in sweep:
            workload = workload_for_procs(name, p)
            hierarchy = simulate_multiprocessor(workload, p, sim)
            cpi = model.cpi_for_machine(hierarchy)
            fr = cpi.data_stall.fractions()
            rows.append(
                (
                    name,
                    p,
                    fr["store_buffer"],
                    fr["raw_hazard"],
                    fr["l2_hit"],
                    fr["cache_to_cache"],
                    fr["memory"],
                    cpi.data_stall.store_buffer / cpi.total,
                )
            )
            c2c_points.append((p, fr["cache_to_cache"]))
        series[f"{name}.c2c_share"] = c2c_points
    return FigureResult(
        figure_id="fig07",
        title="Data stall decomposition vs processors",
        columns=[
            "workload",
            "procs",
            "store buf",
            "RAW",
            "L2 hit",
            "C2C",
            "memory",
            "sb/exec",
        ],
        rows=rows,
        paper_claim=(
            "~60% of data stall from L2 misses; C2C ~50% of data stall on "
            "large systems; store buffer 1-2% of execution; RAW ~1%"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""

    def row(name, p):
        for r in result.rows:
            if r[0] == name and r[1] == p:
                return r
        raise KeyError((name, p))

    out = []
    for name in ("ecperf", "specjbb"):
        r15 = row(name, 15)
        r1 = row(name, 1)
        l2_miss_share = r15[5] + r15[6]
        out.append((f"{name}: L2 misses dominate data stall @15p", l2_miss_share > 0.5))
        out.append((f"{name}: C2C large at 15p (>30%)", r15[5] > 0.30))
        out.append((f"{name}: C2C grows 1p->15p", r15[5] > r1[5]))
        out.append((f"{name}: store buffer <6% of execution", r15[7] < 0.06))
        out.append((f"{name}: RAW small (<5% of stall)", r15[3] < 0.05))
    return out
