"""One driver per paper figure.

Each module exposes ``run(sim=None) -> FigureResult``; the
``benchmarks/`` tree wraps these under pytest-benchmark and prints the
paper-vs-measured rows recorded in EXPERIMENTS.md.
"""

from repro.figures.common import FigureResult

__all__ = ["FigureResult"]
