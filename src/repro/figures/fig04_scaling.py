"""Figure 4: throughput speedup vs. processor count on the E6000.

Paper: ECperf scales super-linearly from 1 to 8 processors, peaks at
a speedup of roughly 10 on 12 processors, then degrades; SPECjbb
scales more gradually and levels off around 7 by 10 processors.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    PAPER_PROC_SWEEP,
    FigureResult,
    throughput_model,
)


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 4."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        model = throughput_model(name, sim)
        points = model.curve(PAPER_PROC_SWEEP)
        series[name] = [(pt.n_procs, pt.speedup) for pt in points]
        for pt in points:
            rows.append((name, pt.n_procs, pt.speedup, pt.path_relative))
    return FigureResult(
        figure_id="fig04",
        title="Throughput scaling on a Sun E6000",
        columns=["workload", "procs", "speedup", "rel. path length"],
        rows=rows,
        paper_claim=(
            "ECperf super-linear 1->8, peak ~10 @12p, degrades after; "
            "SPECjbb gradual, levels ~7 by 10p"
        ),
        notes=(
            "speedups combine simulated CPI(p) with the path-length, "
            "contention, kernel and GC models (DESIGN.md section 5.4)"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    ec = dict((p, s) for p, s in result.series["ecperf"])
    jbb = dict((p, s) for p, s in result.series["specjbb"])
    peak_p = max(ec, key=ec.get)
    return [
        ("ecperf super-linear at 8p (S > 8)", ec[8] > 8.0),
        ("ecperf peak near 12p", peak_p in (10, 12, 14)),
        ("ecperf degrades past its peak", ec[15] < max(ec.values())),
        ("specjbb levels off near 7", 6.0 <= max(jbb.values()) <= 8.5),
        ("specjbb below ecperf at every p>1", all(jbb[p] <= ec[p] for p in ec if p > 1)),
    ]
