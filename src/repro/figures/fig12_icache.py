"""Figure 12: instruction-cache miss rate vs. cache size.

Paper: 4-way set-associative split caches with 64-byte blocks, sizes
64 KB to 16 MB, uniprocessor.  ECperf's much larger instruction
working set gives it a far higher miss rate at intermediate sizes
(e.g. 256 KB); both workloads fall well below one miss per 1000
instructions at 1 MB and beyond.
"""

from __future__ import annotations

from repro.analysis.curves import MissCurve
from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    FigureResult,
    figure_trace,
    figure_trace_chunks,
)
from repro.memsys.multisim import simulate_miss_curve
from repro.memsys.stream import simulate_miss_curve_stream, stream_enabled
from repro.units import kb, mb

#: The paper's x axis (Figures 12/13).
CACHE_SIZES = [kb(64), kb(128), kb(256), kb(512), mb(1), mb(2), mb(4), mb(8), mb(16)]

#: Workload configurations plotted in the paper.
CONFIGS = [
    ("ecperf", "ecperf", 8),
    ("specjbb-25", "specjbb", 25),
    ("specjbb-10", "specjbb", 10),
    ("specjbb-1", "specjbb", 1),
]


def _sweep_sim(sim: SimConfig, scale: int) -> SimConfig:
    """The per-configuration SimConfig for one sweep trace.

    Larger scale factors need longer traces: the pre-warm sweep must
    fit inside the warmup window and the measurement window must visit
    every warehouse enough to reach steady state.
    """
    return sim.with_refs(max(sim.refs_per_proc, scale * 24_000))


def trace_specs(sim: SimConfig):
    """The traces this figure replays (shared with Figure 13).

    Published once per campaign by the trace plane; every
    (instruction *and* data) sweep over a configuration replays the
    same single-CPU trace.
    """
    from repro.harness.traceplane import TraceSpec

    return [
        TraceSpec(workload=name, scale=scale, n_procs=1, sim=_sweep_sim(sim, scale))
        for _label, name, scale in CONFIGS
    ]


def curves(
    sim: SimConfig, kind: str, fastpath: bool | None = None
) -> dict[str, MissCurve]:
    """Miss curves for every configuration, one trace each.

    ``fastpath`` is forwarded to
    :func:`repro.memsys.multisim.simulate_miss_curve`; both replay
    paths produce bit-identical curves.  When streaming is on
    (:func:`repro.memsys.stream.stream_enabled`, the default) each
    trace is replayed chunk-by-chunk with carried state instead of
    materializing — the curves are bit-identical either way.
    """
    out = {}
    for label, name, scale in CONFIGS:
        config = _sweep_sim(sim, scale)
        if stream_enabled():
            stream = figure_trace_chunks(name, scale, 1, config)
            points = simulate_miss_curve_stream(
                stream.chunks_merged(),
                stream.total_refs,
                CACHE_SIZES,
                kind=kind,
                assoc=4,
                block=64,
                warmup_fraction=config.warmup_fraction,
                fastpath=fastpath,
            )
        else:
            bundle = figure_trace(name, scale, 1, config)
            points = simulate_miss_curve(
                bundle.merged(),
                CACHE_SIZES,
                kind=kind,
                assoc=4,
                block=64,
                warmup_fraction=config.warmup_fraction,
                fastpath=fastpath,
            )
        out[label] = MissCurve.from_points(label, points)
    return out


def run(sim: SimConfig | None = None, fastpath: bool | None = None) -> FigureResult:
    """Reproduce Figure 12 (instruction side)."""
    sim = sim if sim is not None else FIGURE_SIM
    by_label = curves(sim, kind="instr", fastpath=fastpath)
    rows = []
    series = {}
    for label, curve in by_label.items():
        for point in curve.points:
            rows.append((label, point.size // 1024, point.mpki))
        series[label] = [(p.size, p.mpki) for p in curve.points]
    return FigureResult(
        figure_id="fig12",
        title="Instruction cache miss rate vs size (uniprocessor, 4-way, 64 B)",
        columns=["workload", "size KB", "misses/1000 instr"],
        rows=rows,
        paper_claim=(
            "ECperf much higher at intermediate sizes (256 KB); both below "
            "~1 MPKI at >= 1 MB"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""

    def mpki(label, size_kb):
        for row in result.rows:
            if row[0] == label and row[1] == size_kb:
                return row[2]
        raise KeyError((label, size_kb))

    return [
        ("ecperf >> specjbb at 256 KB",
         mpki("ecperf", 256) > 3 * mpki("specjbb-25", 256)),
        ("ecperf modest at 64 KB vs its 256 KB gap",
         mpki("ecperf", 64) > mpki("ecperf", 256)),
        ("both small at 4 MB (< 1.5 MPKI)",
         mpki("ecperf", 4096) < 1.5 and mpki("specjbb-25", 4096) < 1.5),
        ("specjbb instruction footprint insensitive to warehouses",
         abs(mpki("specjbb-25", 256) - mpki("specjbb-1", 256)) < 1.0),
    ]
