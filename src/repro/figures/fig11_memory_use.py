"""Figure 11: live memory vs. scale factor.

Paper: SPECjbb's heap after collection grows linearly with the
warehouse count up to ~30 (the emulated database lives in the heap),
then *decreases* as the generational collector starts compacting the
older generations — at a steep throughput cost.  ECperf's memory use
rises only until an Orders Injection Rate of ~6 and stays roughly
constant through 40: the growing database lives on another machine.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import FigureResult, make_workload

SCALES = list(range(1, 41))


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 11 (analytic heap model; no trace simulation)."""
    del sim  # the live-memory curves are model outputs, not trace stats
    rows = []
    series: dict[str, list[tuple[float, float]]] = {"specjbb": [], "ecperf": []}
    jbb = make_workload("specjbb", scale=1)
    ecperf = make_workload("ecperf", scale=1)
    for scale in SCALES:
        jbb_mb = jbb.live_memory_mb(scale)
        ec_mb = ecperf.live_memory_mb(scale)
        rows.append((scale, jbb_mb, ec_mb))
        series["specjbb"].append((scale, jbb_mb))
        series["ecperf"].append((scale, ec_mb))
    return FigureResult(
        figure_id="fig11",
        title="Live memory (MB) vs scale factor",
        columns=["scale", "specjbb MB", "ecperf MB"],
        rows=rows,
        paper_claim=(
            "SPECjbb linear to ~30 warehouses (~500 MB) then decreases "
            "(old-gen compaction); ECperf rises to IR~6 then flat through 40"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    jbb = dict((s, v) for s, v in result.series["specjbb"])
    ec = dict((s, v) for s, v in result.series["ecperf"])
    # Linearity of SPECjbb's growth over 5..30.
    slope_lo = (jbb[15] - jbb[5]) / 10
    slope_hi = (jbb[30] - jbb[20]) / 10
    return [
        ("specjbb grows linearly to 30 wh", abs(slope_hi - slope_lo) < 0.2 * slope_lo),
        ("specjbb reaches several hundred MB at 30 wh", 350 <= jbb[30] <= 700),
        ("specjbb decreases past 30 wh", jbb[35] < jbb[30] and jbb[40] <= jbb[35]),
        ("ecperf knees by IR ~6", (ec[6] - ec[1]) > 10 * (ec[12] - ec[7])),
        ("ecperf roughly flat 10..40", (ec[40] - ec[10]) < 0.1 * ec[10]),
        ("specjbb far exceeds ecperf at scale 25", jbb[25] > 2.5 * ec[25]),
    ]
