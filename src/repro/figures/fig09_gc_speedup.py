"""Figure 9: effect of garbage collection on throughput scaling.

Paper: subtracting collection time from the runtime gives a speedup
curve only slightly above the measured one — statistically
significant for ECperf up to 6 processors, insignificant elsewhere —
so GC accounts for only a fraction of the scaling loss.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    PAPER_PROC_SWEEP,
    FigureResult,
    throughput_model,
)


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 9."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        model = throughput_model(name, sim)
        measured = []
        nogc = []
        for pt in model.curve(PAPER_PROC_SWEEP):
            gain = (pt.speedup_no_gc - pt.speedup) / pt.speedup
            rows.append((name, pt.n_procs, pt.speedup, pt.speedup_no_gc, gain))
            measured.append((pt.n_procs, pt.speedup))
            nogc.append((pt.n_procs, pt.speedup_no_gc))
        series[name] = measured
        series[f"{name}.no_gc"] = nogc
    return FigureResult(
        figure_id="fig09",
        title="Effect of garbage collection on throughput scaling",
        columns=["workload", "procs", "speedup", "speedup w/o GC", "GC gain"],
        rows=rows,
        paper_claim=(
            "GC-adjusted speedup only slightly higher; the difference does "
            "not explain the scaling loss"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    out = []
    for name in ("ecperf", "specjbb"):
        measured = dict(result.series[name])
        nogc = dict(result.series[f"{name}.no_gc"])
        out.append((f"{name}: no-GC speedup >= measured everywhere",
                    all(nogc[p] >= measured[p] - 1e-9 for p in measured)))
        out.append((f"{name}: GC explains a minority of the loss at 15p",
                    (nogc[15] - measured[15]) < (15 - measured[15]) * 0.5))
    return out
