"""Figure 5: execution-mode breakdown vs. processor count.

Paper: ECperf's system time grows from under 5% (1 processor) to
nearly 30% (15); SPECjbb spends essentially none.  Both incur
significant idle time on larger systems (~25% at 15 processors), of
which garbage collection explains only a fraction.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import (
    FIGURE_SIM,
    PAPER_PROC_SWEEP,
    FigureResult,
    throughput_model,
)


def run(sim: SimConfig | None = None) -> FigureResult:
    """Reproduce Figure 5."""
    sim = sim if sim is not None else FIGURE_SIM
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for name in ("ecperf", "specjbb"):
        model = throughput_model(name, sim)
        sys_points = []
        for pt in model.curve(PAPER_PROC_SWEEP):
            md = pt.modes
            rows.append(
                (
                    name,
                    pt.n_procs,
                    md.user,
                    md.system,
                    md.io,
                    md.gc_idle,
                    md.other_idle,
                )
            )
            sys_points.append((pt.n_procs, md.system))
        series[f"{name}.system"] = sys_points
    return FigureResult(
        figure_id="fig05",
        title="Execution mode breakdown vs processors",
        columns=["workload", "procs", "user", "system", "io", "gc idle", "other idle"],
        rows=rows,
        paper_claim=(
            "ECperf system time <5% @1p -> ~30% @15p; SPECjbb ~none; "
            "idle ~25% @15p for both, mostly NOT garbage collection"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""
    by_key = {
        (row[0], row[1]): row for row in result.rows
    }
    ec1 = by_key[("ecperf", 1)]
    ec15 = by_key[("ecperf", 15)]
    jbb15 = by_key[("specjbb", 15)]
    return [
        ("ecperf system small at 1p (<6%)", ec1[3] < 0.06),
        ("ecperf system large at 15p (>15%)", ec15[3] > 0.15),
        ("specjbb system ~zero", jbb15[3] < 0.01),
        ("both workloads idle >15% at 15p", ec15[5] + ec15[6] > 0.15 and jbb15[5] + jbb15[6] > 0.15),
        ("GC idle is a minority of idle", ec15[5] < ec15[6] + ec15[5]),
    ]
