"""Figure 13: data-cache miss rate vs. cache size.

Paper: SPECjbb's data miss rate grows with the warehouse count (its
live data is linear in warehouses), rising by as much as ~30% from 1
to 25 warehouses at large caches; ECperf's data set is small, with a
miss rate at or below the smallest SPECjbb configuration; all
configurations drop under ~2 misses/1000 instructions at 1 MB.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.figures.common import FIGURE_SIM, FigureResult

# trace_specs is re-exported so the trace plane publishes the same
# shared traces for fig13 as for fig12 (same single-CPU streams, data
# side instead of instruction side — one generation serves both).
from repro.figures.fig12_icache import curves, trace_specs  # noqa: F401


def run(sim: SimConfig | None = None, fastpath: bool | None = None) -> FigureResult:
    """Reproduce Figure 13 (data side)."""
    sim = sim if sim is not None else FIGURE_SIM
    by_label = curves(sim, kind="data", fastpath=fastpath)
    rows = []
    series = {}
    for label, curve in by_label.items():
        for point in curve.points:
            rows.append((label, point.size // 1024, point.mpki))
        series[label] = [(p.size, p.mpki) for p in curve.points]
    return FigureResult(
        figure_id="fig13",
        title="Data cache miss rate vs size (uniprocessor, 4-way, 64 B)",
        columns=["workload", "size KB", "misses/1000 instr"],
        rows=rows,
        paper_claim=(
            "SPECjbb-25 > SPECjbb-10 > SPECjbb-1 ~ ECperf; < 2 MPKI at 1 MB; "
            "jbb grows with warehouses at large caches"
        ),
        series=series,
    )


def checks(result: FigureResult) -> list[tuple[str, bool]]:
    """Shape assertions against the paper's claims."""

    def mpki(label, size_kb):
        for row in result.rows:
            if row[0] == label and row[1] == size_kb:
                return row[2]
        raise KeyError((label, size_kb))

    return [
        ("specjbb miss rate grows with warehouses @1MB",
         mpki("specjbb-25", 1024) > mpki("specjbb-10", 1024) >= mpki("specjbb-1", 1024) * 0.95),
        ("ecperf at or below specjbb-1 @1MB",
         mpki("ecperf", 1024) <= mpki("specjbb-1", 1024) * 1.3),
        ("all moderate at 1 MB (< 5 MPKI)",
         all(mpki(lbl, 1024) < 5.0
             for lbl in ("ecperf", "specjbb-1", "specjbb-10", "specjbb-25"))),
        ("L1-range miss rates 10-60 MPKI @64KB",
         10.0 <= mpki("specjbb-25", 64) <= 60.0),
    ]
