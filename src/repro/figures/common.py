"""Shared scaffolding for the figure drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs as _obs
from repro.core.config import SimConfig, e6000_machine
from repro.core.report import render_table
from repro.errors import ConfigError
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rng import RngFactory
from repro.workloads.base import TraceBundle, os_background_trace
from repro.workloads.ecperf import EcperfWorkload
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads import layout

#: Processor counts the paper sweeps in Figures 4-9.
PAPER_PROC_SWEEP = [1, 2, 4, 6, 8, 10, 12, 14, 15]

#: Default simulation effort for figure reproduction (per processor).
FIGURE_SIM = SimConfig(seed=1234, refs_per_proc=250_000, warmup_fraction=0.5)

#: Reduced effort for smoke tests.
QUICK_SIM = SimConfig(seed=1234, refs_per_proc=60_000, warmup_fraction=0.5)


@dataclass
class FigureResult:
    """A reproduced figure: labeled rows plus the paper's claim."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    paper_claim: str
    notes: str = ""
    series: dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [
            f"=== {self.figure_id}: {self.title} ===",
            f"paper: {self.paper_claim}",
            render_table(self.columns, self.rows),
        ]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


def run_figure(
    module_name: str, sim: SimConfig, plane_refs: dict | None = None
) -> FigureResult:
    """Run one figure driver by module name (``"fig04_scaling"``).

    Module-level and argument-closed, so it pickles cleanly: this is
    the function the harness ships to worker processes when ``jmmw
    figures --jobs N`` fans figures out in parallel.

    ``plane_refs`` (spec key -> :class:`~repro.harness.traceplane.TraceRef`)
    are installed for the duration of the run: figure code that fetches
    traces through :func:`figure_trace` attaches to the published
    shared-memory segments instead of regenerating.  Results are
    bit-identical with or without refs.
    """
    import importlib

    from repro.harness import traceplane

    module = importlib.import_module(f"repro.figures.{module_name}")
    with _obs.span("figure/run", module=module_name, refs=sim.refs_per_proc):
        with traceplane.use_refs(plane_refs):
            return module.run(sim)


def figure_checks(module_name: str, result: FigureResult) -> list[tuple[str, bool]]:
    """Evaluate a figure module's shape checks against ``result``.

    Runs in the parent process (checks are cheap); cached figure
    results are re-checked on every invocation so a stale cache can
    never hide a failing claim.
    """
    import importlib

    module = importlib.import_module(f"repro.figures.{module_name}")
    return module.checks(result)


def make_workload(name: str, scale: int | None = None):
    """Instantiate a workload by name at an optional scale factor."""
    if name == "specjbb":
        return SpecJbbWorkload(warehouses=scale if scale is not None else 8)
    if name == "ecperf":
        return EcperfWorkload(injection_rate=scale if scale is not None else 8)
    raise ConfigError(f"unknown workload {name!r}")


def workload_for_procs(name: str, n_procs: int):
    """The configuration an official run would use at ``n_procs``.

    SPECjbb's optimal warehouse count tracks the processor count (one
    thread per warehouse); ECperf's injection rate is tuned to keep
    the middle tier saturated but its footprint barely moves.
    """
    if name == "specjbb":
        return SpecJbbWorkload(warehouses=max(1, n_procs))
    if name == "ecperf":
        return EcperfWorkload(injection_rate=max(1, n_procs))
    raise ConfigError(f"unknown workload {name!r}")


def figure_trace(name: str, scale: int | None, n_procs: int, sim: SimConfig):
    """One workload trace, from the trace plane when one is attached.

    The shared-memory fast path for sweep figures: when the running
    task carries a :class:`~repro.harness.traceplane.TraceRef` for
    this exact (workload, scale, n_procs, sim) spec — published by the
    campaign's :class:`~repro.harness.traceplane.TracePlane` — the
    bundle is a zero-copy view of the shared segment.  Otherwise it is
    generated locally, from the same stateless RNG streams, producing
    a bit-identical bundle.
    """
    from repro.harness.traceplane import TraceSpec, resolve

    spec = TraceSpec(workload=name, scale=scale, n_procs=n_procs, sim=sim)
    bundle = resolve(spec)
    if bundle is not None:
        return bundle
    return spec.generate()


def figure_trace_chunks(
    name: str,
    scale: int | None,
    n_procs: int,
    sim: SimConfig,
    chunk_refs: int | None = None,
):
    """One workload trace as a chunked :class:`TraceStream`.

    The streaming counterpart of :func:`figure_trace`: plane-resolved
    bundles are sliced into chunk views (zero-copy over the shared
    segment); otherwise chunks are generated lazily from the same
    stateless RNG streams.  Either way the concatenated chunks are
    bit-identical to the materialized bundle.
    """
    from repro.harness.traceplane import TraceSpec, resolve
    from repro.memsys.stream import TraceStream
    from repro.rng import RngFactory

    spec = TraceSpec(workload=name, scale=scale, n_procs=n_procs, sim=sim)
    bundle = resolve(spec)
    if bundle is not None:
        return TraceStream.from_bundle(bundle, chunk_refs=chunk_refs)
    workload = make_workload(name, scale=scale)
    return TraceStream.from_workload(
        workload, n_procs, sim, RngFactory(seed=sim.seed), chunk_refs=chunk_refs
    )


def simulate_multiprocessor(
    workload,
    n_procs: int,
    sim: SimConfig,
    include_os_processor: bool = False,
    procs_per_l2: int = 1,
    protocol: str = "mosi",
    bundle: TraceBundle | None = None,
) -> MemoryHierarchy:
    """Generate traces and run them through an E6000-style machine.

    With ``include_os_processor`` an extra processor outside the
    processor set runs a light OS stream touching some shared kernel
    lines — the reason the paper sees snoop copybacks even on
    "1-processor" runs (Section 4.3).

    ``bundle`` short-circuits trace generation with an
    already-materialized bundle for exactly this (workload, n_procs,
    sim) — the generate-once path Figure 16 uses to replay one trace
    against several cache-sharing levels.  The caller guarantees the
    bundle is what ``workload.generate(n_procs, sim, ...)`` would have
    produced; generation is deterministic, so a plane-published bundle
    satisfies this by construction.
    """
    rng_factory = RngFactory(seed=sim.seed)
    if bundle is None:
        with _obs.span(
            "workload/trace-gen", workload=type(workload).__name__, procs=n_procs
        ):
            bundle = workload.generate(n_procs, sim, rng_factory)
    traces = list(bundle.per_cpu)
    total_procs = n_procs
    if include_os_processor:
        total_procs += 1
        os_rng = rng_factory.stream("os-background")
        shared = [layout.NET_BUFFER_POOL + i * 256 for i in range(16)]
        shared += [layout.RUNQUEUE_BASE + cpu * 64 for cpu in range(n_procs)]
        traces.append(
            os_background_trace(os_rng, max(1, sim.refs_per_proc // 10), shared)
        )
    machine = e6000_machine(total_procs).with_shared_l2(procs_per_l2)
    if total_procs % procs_per_l2 != 0:
        machine = e6000_machine(total_procs)  # fall back to private L2s
    hierarchy = MemoryHierarchy(machine, protocol=protocol)
    hierarchy.run_trace(traces, quantum=sim.interleave_quantum, warmup_fraction=0.5)
    return hierarchy


#: Memo for measured CPI anchor sets, keyed by (workload, refs, seed).
_CPI_ANCHOR_CACHE: dict[tuple, dict[int, float]] = {}


def throughput_model(workload_name: str, sim: SimConfig):
    """A ThroughputModel fed by measured CPI curves (Figures 4, 5, 9)."""
    from repro.perfmodel import ThroughputModel, WorkloadScalingParams

    params = (
        WorkloadScalingParams.specjbb_default()
        if workload_name == "specjbb"
        else WorkloadScalingParams.ecperf_default()
    )
    return ThroughputModel(params, measured_cpi_fn(workload_name, sim))


def measured_cpi_fn(
    workload_name: str,
    sim: SimConfig,
    anchor_procs: Sequence[int] = (1, 2, 4, 8, 14),
) -> Callable[[int], float]:
    """CPI(p) from memory-hierarchy simulations, interpolated.

    Simulates the workload at the anchor processor counts and returns
    a piecewise-linear interpolant — the measured input the throughput
    model composes for Figures 4, 5 and 9.
    """
    from repro.cpu import InOrderCpuModel

    key = (workload_name, sim.refs_per_proc, sim.seed, tuple(anchor_procs))
    if key in _CPI_ANCHOR_CACHE:
        anchors = _CPI_ANCHOR_CACHE[key]
    else:
        model = InOrderCpuModel()
        anchors = {}
        for p in anchor_procs:
            workload = workload_for_procs(workload_name, p)
            hierarchy = simulate_multiprocessor(workload, p, sim)
            anchors[p] = model.cpi_for_machine(hierarchy).total
        _CPI_ANCHOR_CACHE[key] = anchors

    xs = sorted(anchors)

    def cpi(p: int) -> float:
        if p <= xs[0]:
            return anchors[xs[0]]
        if p >= xs[-1]:
            return anchors[xs[-1]]
        for lo, hi in zip(xs, xs[1:]):
            if lo <= p <= hi:
                t = (p - lo) / (hi - lo)
                return anchors[lo] * (1 - t) + anchors[hi] * t
        raise ConfigError(f"unreachable: p={p}")  # pragma: no cover

    return cpi
