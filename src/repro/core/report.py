"""Text rendering: tables and ASCII plots for figure reproductions."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AnalysisError


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table.

    Floats are shown with 3 significant digits; everything else via
    ``str``.
    """
    if not columns:
        raise AnalysisError("table needs at least one column")

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(columns):
            raise AnalysisError(
                f"row width {len(row)} does not match {len(columns)} columns"
            )
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, rule, *body])


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Rough multi-series scatter plot in text.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Good enough to eyeball the curve shapes the
    paper's figures carry.
    """
    markers = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise AnalysisError("nothing to plot")
    xs = [math.log10(x) if logx else x for x, _ in points if not logx or x > 0]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            if logx:
                if x <= 0:
                    continue
                x = math.log10(x)
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    axis = f"x: [{10**x_lo:.3g}, {10**x_hi:.3g}] (log)" if logx else (
        f"x: [{x_lo:.3g}, {x_hi:.3g}]"
    )
    return "\n".join(lines + [f"{axis}  y: [{y_lo:.3g}, {y_hi:.3g}]", legend])
