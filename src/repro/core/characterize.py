"""High-level characterization API.

One call reproduces the paper's core per-workload measurements —
miss rates, cache-to-cache behavior, CPI breakdown — for a given
machine size, without the caller touching the simulator plumbing.
Used by the CLI and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimConfig
from repro.core.metrics import CpiBreakdown
from repro.core.report import render_table
from repro.cpu import InOrderCpuModel


@dataclass(frozen=True)
class CharacterizationReport:
    """The headline numbers for one workload at one machine size."""

    workload: str
    n_procs: int
    l1i_mpki: float
    l1d_mpki: float
    l2_data_mpki: float
    c2c_ratio: float
    hottest_line_share: float
    cpi: CpiBreakdown
    code_footprint_kb: float
    live_memory_mb: float

    def render(self) -> str:
        rows = [
            ("L1I misses / 1000 instr", self.l1i_mpki),
            ("L1D misses / 1000 instr", self.l1d_mpki),
            ("L2 data misses / 1000 instr", self.l2_data_mpki),
            ("cache-to-cache miss fraction", self.c2c_ratio),
            ("hottest line's share of C2C", self.hottest_line_share),
            ("CPI (total)", self.cpi.total),
            ("  instruction stall", self.cpi.instruction_stall),
            ("  data stall", self.cpi.data_stall.total),
            ("  other", self.cpi.other),
            ("hot code footprint (KB)", self.code_footprint_kb),
            ("live heap (MB)", self.live_memory_mb),
        ]
        header = f"{self.workload} on {self.n_procs} processors (E6000-style)"
        return header + "\n" + render_table(["metric", "value"], rows)


def characterize(
    workload_name: str, n_procs: int = 8, sim: SimConfig | None = None
) -> CharacterizationReport:
    """Measure one workload on an ``n_procs`` E6000-style machine."""
    from repro.figures.common import (
        FIGURE_SIM,
        simulate_multiprocessor,
        workload_for_procs,
    )

    sim = sim if sim is not None else FIGURE_SIM
    workload = workload_for_procs(workload_name, n_procs)
    hierarchy = simulate_multiprocessor(workload, n_procs, sim)
    stats = hierarchy.proc_stats
    instructions = hierarchy.total_instructions
    cpi = InOrderCpuModel().cpi_for_machine(hierarchy)
    c2c_by_line = hierarchy.bus.stats.c2c_by_line
    total_c2c = sum(c2c_by_line.values())
    hottest = max(c2c_by_line.values()) / total_c2c if total_c2c else 0.0
    return CharacterizationReport(
        workload=workload_name,
        n_procs=n_procs,
        l1i_mpki=1000.0 * sum(s.l1i_misses for s in stats) / instructions,
        l1d_mpki=1000.0 * sum(s.l1d_misses for s in stats) / instructions,
        l2_data_mpki=hierarchy.data_mpki(),
        c2c_ratio=hierarchy.c2c_ratio(),
        hottest_line_share=hottest,
        cpi=cpi,
        code_footprint_kb=workload.code.total_code_bytes / 1024,
        live_memory_mb=workload.live_memory_mb(max(1, n_procs)),
    )


def quick_characterization(workload_name: str, n_procs: int = 4, **kwargs) -> str:
    """Rendered characterization at reduced simulation effort."""
    sim = SimConfig(seed=1234, refs_per_proc=80_000, warmup_fraction=0.5)
    if "warehouses" in kwargs:
        n_procs = min(n_procs, kwargs["warehouses"])
    return characterize(workload_name, n_procs=n_procs, sim=sim).render()
