"""Parameter-sweep helper.

Design studies ask "how does metric M move as knob K varies?"; this
helper runs the measurement at each knob value and returns a labeled
curve with convenience accessors, so benches and examples don't
hand-roll the same loop and table.

Sweep points are independent measurements, so they parallelize: pass
``jobs > 1`` and the points are evaluated through
:mod:`repro.harness` (the measure function must be picklable; the
harness falls back to serial if not).  Point order — and therefore the
result — is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.report import render_table
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.faults import FaultPolicy
    from repro.harness.telemetry import Telemetry


@dataclass(frozen=True)
class SweepResult:
    """One swept metric: (knob value, metric value) pairs."""

    knob: str
    metric: str
    points: tuple[tuple[object, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError(f"sweep over {self.knob} produced no points")
        # O(1) lookups for at(); first occurrence wins on duplicate knob
        # values, matching the old linear scan.  Unhashable knob values
        # (rare) simply stay out of the index and fall back to the scan.
        index: dict[object, float] = {}
        for knob_value, metric_value in self.points:
            try:
                index.setdefault(knob_value, metric_value)
            except TypeError:
                continue
        object.__setattr__(self, "_index", index)

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def at(self, knob_value: object) -> float:
        """Metric at ``knob_value`` (indexed; O(1) for hashable knobs)."""
        try:
            value = self._index.get(knob_value)  # type: ignore[attr-defined]
        except TypeError:
            value = None
        if value is None:
            for k, v in self.points:
                if k == knob_value:
                    return v
            raise AnalysisError(f"no sweep point at {self.knob}={knob_value!r}")
        return value

    def argbest(self, maximize: bool = False) -> object:
        """Knob value with the smallest (or largest) metric.

        Ties are broken deterministically toward the *earliest* swept
        value: if several points share the best metric, the first one
        in sweep order wins.
        """
        chooser = max if maximize else min
        return chooser(self.points, key=lambda kv: kv[1])[0]

    def is_monotonic(self, increasing: bool, tolerance: float = 0.0) -> bool:
        values = self.values()
        if increasing:
            return all(b >= a - tolerance for a, b in zip(values, values[1:]))
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))

    def render(self) -> str:
        return render_table([self.knob, self.metric], list(self.points))


def sweep(
    knob: str,
    values: Sequence[object],
    measure: Callable[[object], float],
    metric: str = "value",
    *,
    jobs: int = 1,
    telemetry: "Telemetry | None" = None,
    faults: "FaultPolicy | None" = None,
) -> SweepResult:
    """Measure ``measure(v)`` at each knob value.

    With ``jobs > 1`` the points are evaluated in parallel through the
    harness; ``faults`` sets the retry/timeout policy for each point.
    Unlike replicas, a sweep has no redundancy — every point is
    load-bearing — so a point that fails (after any retries the fault
    policy allows) raises :class:`AnalysisError`.

    >>> sweep("n", [1, 2, 3], lambda n: float(n * n)).values()
    [1.0, 4.0, 9.0]
    """
    if not values:
        raise AnalysisError("sweep needs at least one knob value")
    if jobs <= 1 and telemetry is None and faults is None:
        points = tuple((v, float(measure(v))) for v in values)
        return SweepResult(knob=knob, metric=metric, points=points)

    from repro.harness.runner import Task, run_tasks

    tasks = [
        Task(key=f"{knob}[{i}]={v!r}", fn=measure, args=(v,))
        for i, v in enumerate(values)
    ]
    outcomes = run_tasks(tasks, jobs=jobs, telemetry=telemetry, faults=faults)
    failed = [o.failure for o in outcomes if not o.ok]
    if failed:
        raise AnalysisError(f"sweep over {knob} failed: {failed[0]}")
    points = tuple((v, float(o.value)) for v, o in zip(values, outcomes))
    return SweepResult(knob=knob, metric=metric, points=points)
