"""Parameter-sweep helper.

Design studies ask "how does metric M move as knob K varies?"; this
helper runs the measurement at each knob value and returns a labeled
curve with convenience accessors, so benches and examples don't
hand-roll the same loop and table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.report import render_table
from repro.errors import AnalysisError


@dataclass(frozen=True)
class SweepResult:
    """One swept metric: (knob value, metric value) pairs."""

    knob: str
    metric: str
    points: tuple[tuple[object, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError(f"sweep over {self.knob} produced no points")

    def values(self) -> list[float]:
        return [v for _, v in self.points]

    def at(self, knob_value: object) -> float:
        for k, v in self.points:
            if k == knob_value:
                return v
        raise AnalysisError(f"no sweep point at {self.knob}={knob_value!r}")

    def argbest(self, maximize: bool = False) -> object:
        """Knob value with the smallest (or largest) metric."""
        chooser = max if maximize else min
        return chooser(self.points, key=lambda kv: kv[1])[0]

    def is_monotonic(self, increasing: bool, tolerance: float = 0.0) -> bool:
        values = self.values()
        if increasing:
            return all(b >= a - tolerance for a, b in zip(values, values[1:]))
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))

    def render(self) -> str:
        return render_table([self.knob, self.metric], list(self.points))


def sweep(
    knob: str,
    values: Sequence[object],
    measure: Callable[[object], float],
    metric: str = "value",
) -> SweepResult:
    """Measure ``measure(v)`` at each knob value.

    >>> sweep("n", [1, 2, 3], lambda n: float(n * n)).values()
    [1.0, 4.0, 9.0]
    """
    if not values:
        raise AnalysisError("sweep needs at least one knob value")
    points = tuple((v, float(measure(v))) for v in values)
    return SweepResult(knob=knob, metric=metric, points=points)
