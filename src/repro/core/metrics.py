"""Metric containers shared across the characterization framework.

These mirror the quantities the paper reports: misses per 1000
instructions (the unit of Figures 12, 13 and 16), the CPI breakdown of
Figure 6 (instruction stall / data stall / other), and the data-stall
decomposition of Figure 7 (store buffer, RAW hazards, L2 hits,
cache-to-cache transfers, memory, other).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.memsys.misses import MissKind


def mpki(misses: int, instructions: int) -> float:
    """Misses per 1000 instructions."""
    if instructions < 0 or misses < 0:
        raise AnalysisError("misses and instructions must be non-negative")
    return 1000.0 * misses / instructions if instructions else 0.0


@dataclass
class MissCounters:
    """Aggregated miss counts for one measurement interval."""

    instructions: int = 0
    l1i_misses: int = 0
    l1d_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    c2c_fills: int = 0
    mem_fills: int = 0
    upgrades: int = 0
    misses_by_kind: dict[MissKind, int] = field(
        default_factory=lambda: {k: 0 for k in MissKind}
    )

    @property
    def c2c_ratio(self) -> float:
        """Fraction of L2 misses satisfied by another cache (Figure 8)."""
        return self.c2c_fills / self.l2_misses if self.l2_misses else 0.0

    @property
    def l1i_mpki(self) -> float:
        return mpki(self.l1i_misses, self.instructions)

    @property
    def l1d_mpki(self) -> float:
        return mpki(self.l1d_misses, self.instructions)

    @property
    def l2_mpki(self) -> float:
        return mpki(self.l2_misses, self.instructions)


@dataclass(frozen=True)
class DataStallBreakdown:
    """Cycles-per-instruction of each data-stall component (Figure 7).

    Components follow the paper's decomposition: store-buffer-full
    stalls, read-after-write hazards, L1-miss/L2-hit time, L2 misses
    split into cache-to-cache transfers and memory fetches, and a
    residual ("other").  All values are in cycles per instruction.
    """

    store_buffer: float = 0.0
    raw_hazard: float = 0.0
    l2_hit: float = 0.0
    cache_to_cache: float = 0.0
    memory: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.store_buffer
            + self.raw_hazard
            + self.l2_hit
            + self.cache_to_cache
            + self.memory
            + self.other
        )

    def fractions(self) -> dict[str, float]:
        """Each component as a fraction of total data stall time."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in self.component_names()}
        return {
            "store_buffer": self.store_buffer / total,
            "raw_hazard": self.raw_hazard / total,
            "l2_hit": self.l2_hit / total,
            "cache_to_cache": self.cache_to_cache / total,
            "memory": self.memory / total,
            "other": self.other / total,
        }

    @staticmethod
    def component_names() -> list[str]:
        return [
            "store_buffer",
            "raw_hazard",
            "l2_hit",
            "cache_to_cache",
            "memory",
            "other",
        ]


@dataclass(frozen=True)
class CpiBreakdown:
    """Figure 6's CPI decomposition.

    ``other`` covers instruction execution and non-memory stalls; the
    paper's in-order UltraSPARC II keeps it between 1.3 and 1.8.
    """

    instruction_stall: float
    data_stall: DataStallBreakdown
    other: float

    @property
    def total(self) -> float:
        return self.instruction_stall + self.data_stall.total + self.other

    @property
    def data_stall_fraction(self) -> float:
        """Data stall as a fraction of total CPI (15-35% in the paper)."""
        total = self.total
        return self.data_stall.total / total if total else 0.0

    @property
    def instruction_stall_fraction(self) -> float:
        total = self.total
        return self.instruction_stall / total if total else 0.0
