"""Multi-run experiment support (variability methodology).

The paper uses the methodology of Alameldeen & Wood (HPCA 2003) to
account for the inherent run-to-run variability of multithreaded
commercial workloads: each simulated configuration is run several
times with small perturbations, and results are reported as means with
standard deviations (the paper's error bars).

Here a *run* is a callable taking an :class:`~repro.rng.RngFactory`
(already perturbed with a distinct ``run_index``) and returning either
a float or a mapping of named floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import AnalysisError
from repro.rng import RngFactory


@dataclass(frozen=True)
class MultiRunResult:
    """Mean and standard deviation of one measured quantity."""

    name: str
    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise AnalysisError(f"{self.name}: no samples")

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single run)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    @property
    def error_bar(self) -> tuple[float, float]:
        """(mean - std, mean + std), the paper's error-bar convention."""
        return self.mean - self.std, self.mean + self.std

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.name}={self.mean:.4g}"
        return f"{self.name}={self.mean:.4g} ± {self.std:.2g} (n={self.n})"


RunFn = Callable[[RngFactory], Mapping[str, float] | float]


def run_repeated(
    fn: RunFn, n_runs: int, seed: int = 1234, name: str = "value"
) -> dict[str, MultiRunResult]:
    """Run ``fn`` ``n_runs`` times with perturbed RNG factories.

    Returns one :class:`MultiRunResult` per named quantity.  A run
    returning a bare float is recorded under ``name``.
    """
    if n_runs <= 0:
        raise AnalysisError("n_runs must be positive")
    collected: dict[str, list[float]] = {}
    expected_keys: set[str] | None = None
    for run_index in range(n_runs):
        result = fn(RngFactory(seed=seed, run_index=run_index))
        if isinstance(result, Mapping):
            items = list(result.items())
        else:
            items = [(name, float(result))]
        keys = {key for key, _ in items}
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise AnalysisError("runs reported inconsistent sets of quantities")
        for key, value in items:
            collected.setdefault(key, []).append(float(value))
    return {
        key: MultiRunResult(name=key, samples=tuple(values))
        for key, values in collected.items()
    }


@dataclass
class Experiment:
    """A named, repeatable measurement.

    Thin wrapper tying a run function to its repetition policy, so
    figure drivers can declare "this point is measured with n runs"
    once and reuse it.
    """

    name: str
    fn: RunFn
    n_runs: int = 1
    seed: int = 1234
    results: dict[str, MultiRunResult] = field(default_factory=dict)

    def run(self) -> dict[str, MultiRunResult]:
        self.results = run_repeated(
            self.fn, n_runs=self.n_runs, seed=self.seed, name=self.name
        )
        return self.results
