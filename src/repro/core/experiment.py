"""Multi-run experiment support (variability methodology).

The paper uses the methodology of Alameldeen & Wood (HPCA 2003) to
account for the inherent run-to-run variability of multithreaded
commercial workloads: each simulated configuration is run several
times with small perturbations, and results are reported as means with
standard deviations (the paper's error bars).

Here a *run* is a callable taking an :class:`~repro.rng.RngFactory`
(already perturbed with a distinct ``run_index``) and returning either
a float or a mapping of named floats.

Replicas are independent, so they parallelize: pass ``jobs > 1`` (plus
an optional cache, telemetry and fault policy) and the runs fan out
through :mod:`repro.harness`.  Because each replica's perturbation is
fully determined by ``(seed, run_index)``, parallel samples are
bit-identical to serial ones.  Under a fault policy, a replica that
raises is excluded from the :class:`MultiRunResult` (and reported via
telemetry) instead of aborting the experiment — the run degrades to
fewer samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import AnalysisError
from repro.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.cache import ResultCache
    from repro.harness.checkpoint import CampaignManifest
    from repro.harness.faults import FaultPolicy, TaskFailure
    from repro.harness.telemetry import Telemetry


@dataclass(frozen=True)
class MultiRunResult:
    """Mean and standard deviation of one measured quantity."""

    name: str
    samples: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise AnalysisError(f"{self.name}: no samples")

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single run)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    @property
    def error_bar(self) -> tuple[float, float]:
        """(mean - std, mean + std), the paper's error-bar convention."""
        return self.mean - self.std, self.mean + self.std

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.name}={self.mean:.4g}"
        return f"{self.name}={self.mean:.4g} ± {self.std:.2g} (n={self.n})"


RunFn = Callable[[RngFactory], Mapping[str, float] | float]


def _as_items(result: Mapping[str, float] | float, name: str) -> list[tuple[str, float]]:
    if isinstance(result, Mapping):
        return [(key, float(value)) for key, value in result.items()]
    return [(name, float(result))]


def _collect(
    per_run: list[list[tuple[str, float]]],
) -> dict[str, MultiRunResult]:
    collected: dict[str, list[float]] = {}
    expected_keys: set[str] | None = None
    for items in per_run:
        keys = {key for key, _ in items}
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise AnalysisError("runs reported inconsistent sets of quantities")
        for key, value in items:
            collected.setdefault(key, []).append(value)
    return {
        key: MultiRunResult(name=key, samples=tuple(values))
        for key, values in collected.items()
    }


def run_repeated(
    fn: RunFn,
    n_runs: int,
    seed: int = 1234,
    name: str = "value",
    *,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    cache_key_fn: Callable[[int], str] | None = None,
    telemetry: "Telemetry | None" = None,
    faults: "FaultPolicy | None" = None,
    manifest: "CampaignManifest | None" = None,
    fail_fast: bool = False,
    interruptible: bool = False,
    on_failure: "Callable[[TaskFailure], None] | None" = None,
    plane: "object | None" = None,
) -> dict[str, MultiRunResult]:
    """Run ``fn`` ``n_runs`` times with perturbed RNG factories.

    Returns one :class:`MultiRunResult` per named quantity.  A run
    returning a bare float is recorded under ``name``.

    With the defaults the replicas run inline and an exception in any
    replica propagates (the historical behavior).  Passing ``jobs``,
    ``cache``, ``telemetry``, ``faults`` or ``manifest`` routes the
    replicas through :func:`repro.harness.run_tasks`: ``fn`` must then
    be picklable for ``jobs > 1`` (the harness falls back to serial
    execution if not), ``cache_key_fn(run_index)`` opts replicas into
    result caching, and failed replicas are *excluded* from the
    samples rather than fatal — each is reported through
    ``on_failure``, and only if every replica fails does this raise
    :class:`~repro.errors.AnalysisError`.

    ``manifest`` journals completed replicas for checkpoint/resume,
    ``fail_fast`` aborts the batch at the first ultimate failure, and
    ``interruptible`` turns SIGINT/SIGTERM into a drain that raises
    :class:`~repro.errors.CampaignInterrupted` (see
    :func:`repro.harness.run_tasks`).

    ``plane`` (a :class:`repro.harness.traceplane.TracePlane`) is
    forwarded to the runner for uniform segment lifecycle handling.
    Replicas themselves share no traces — each perturbs its own
    generation seed by design (the variability methodology), so the
    plane publishes nothing for them.
    """
    if n_runs <= 0:
        raise AnalysisError("n_runs must be positive")

    use_harness = (
        jobs > 1
        or cache is not None
        or telemetry is not None
        or faults is not None
        or manifest is not None
    )
    if not use_harness:
        per_run = [
            _as_items(fn(RngFactory(seed=seed, run_index=run_index)), name)
            for run_index in range(n_runs)
        ]
        return _collect(per_run)

    from repro.harness.runner import Task, run_tasks

    tasks = [
        Task(
            key=f"{name}/run{run_index}",
            fn=fn,
            args=(RngFactory(seed=seed, run_index=run_index),),
            cache_key=cache_key_fn(run_index) if cache_key_fn is not None else None,
        )
        for run_index in range(n_runs)
    ]
    outcomes = run_tasks(
        tasks,
        jobs=jobs,
        cache=cache,
        telemetry=telemetry,
        faults=faults,
        manifest=manifest,
        fail_fast=fail_fast,
        interruptible=interruptible,
        plane=plane,
    )
    if on_failure is not None:
        for outcome in outcomes:
            if not outcome.ok:
                on_failure(outcome.failure)
    per_run = [_as_items(o.value, name) for o in outcomes if o.ok]
    if not per_run:
        first = next(o.failure for o in outcomes if not o.ok)
        raise AnalysisError(f"all {n_runs} runs failed; first failure: {first}")
    return _collect(per_run)


@dataclass
class Experiment:
    """A named, repeatable measurement.

    Thin wrapper tying a run function to its repetition policy, so
    figure drivers can declare "this point is measured with n runs"
    once and reuse it.  ``jobs`` fans the replicas out through the
    harness (see :func:`run_repeated`).
    """

    name: str
    fn: RunFn
    n_runs: int = 1
    seed: int = 1234
    jobs: int = 1
    results: dict[str, MultiRunResult] = field(default_factory=dict)

    def run(self) -> dict[str, MultiRunResult]:
        self.results = run_repeated(
            self.fn, n_runs=self.n_runs, seed=self.seed, name=self.name, jobs=self.jobs
        )
        return self.results
