"""Configuration objects for machines, caches and simulations.

Cache/machine geometry lives in :mod:`repro.memsys.config` (it is a
memory-system concern); this module re-exports it and adds the
simulation-control config so callers have one import site::

    from repro.core.config import E6000, CacheConfig, SimConfig
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.memsys.config import (
    E6000,
    CacheConfig,
    MachineConfig,
    cmp_machine,
    e6000_machine,
    next_generation_machine,
)

__all__ = [
    "E6000",
    "CacheConfig",
    "MachineConfig",
    "SimConfig",
    "cmp_machine",
    "e6000_machine",
    "next_generation_machine",
]


@dataclass(frozen=True)
class SimConfig:
    """Knobs controlling simulation effort and reproducibility.

    ``refs_per_proc`` bounds the number of memory references each
    simulated processor issues per measurement interval.  The paper ran
    full benchmarks under Simics; we expose the interval length so test
    suites run in seconds while figure benches use longer intervals.
    """

    seed: int = 1234
    refs_per_proc: int = 200_000
    warmup_fraction: float = 0.2
    interleave_quantum: int = 64
    n_runs: int = 1

    def __post_init__(self) -> None:
        if self.refs_per_proc <= 0:
            raise ConfigError("refs_per_proc must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if self.interleave_quantum <= 0:
            raise ConfigError("interleave_quantum must be positive")
        if self.n_runs <= 0:
            raise ConfigError("n_runs must be positive")

    def with_refs(self, refs_per_proc: int) -> "SimConfig":
        return replace(self, refs_per_proc=refs_per_proc)

    def with_runs(self, n_runs: int) -> "SimConfig":
        return replace(self, n_runs=n_runs)
