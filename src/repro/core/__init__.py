"""Characterization framework core.

Configuration objects, metric containers, the multi-run experiment
runner (Alameldeen–Wood variability methodology), text reporting, and
the high-level characterization API used by the figure drivers.
"""

from repro.core.config import (
    E6000,
    CacheConfig,
    MachineConfig,
    SimConfig,
    cmp_machine,
    e6000_machine,
)
from repro.core.experiment import Experiment, MultiRunResult, run_repeated
from repro.core.metrics import CpiBreakdown, DataStallBreakdown, MissCounters, mpki
from repro.core.sweep import SweepResult, sweep

__all__ = [
    "E6000",
    "CacheConfig",
    "MachineConfig",
    "SimConfig",
    "cmp_machine",
    "e6000_machine",
    "Experiment",
    "MultiRunResult",
    "run_repeated",
    "CpiBreakdown",
    "DataStallBreakdown",
    "MissCounters",
    "mpki",
    "SweepResult",
    "sweep",
]
