"""In-order CPI model of the 248 MHz UltraSPARC II.

The paper's methodology (Section 4.2): read event frequencies from the
hardware counters and multiply by published access times.  Here the
event frequencies come from the memory-hierarchy simulation and the
access times from :class:`~repro.memsys.latency.LatencyBook`.

Components:

- *other* — instruction execution plus non-memory stalls.  The
  UltraSPARC II is 4-wide in-order, but commercial Java code with its
  branches and dependences sustains nowhere near 4 IPC; the paper's
  "other" component sits between ~1.3 and 1.7 CPI.
- *instruction stall* — L1I misses served by the L2, plus L2
  instruction misses served by memory (code is rarely dirty in
  another cache, and the simulation confirms instruction-fill C2C is
  negligible).
- *data stall* — see :mod:`repro.cpu.stall`; loads stall the
  pipeline, stores drain through the store buffer and only surface as
  store-buffer-full stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import CpiBreakdown
from repro.cpu.stall import decompose_data_stall
from repro.errors import AnalysisError, ConfigError
from repro.memsys.hierarchy import MemoryHierarchy, ProcessorStats
from repro.memsys.latency import E6000_LATENCIES, LatencyBook


@dataclass(frozen=True)
class UltraSparcIIParams:
    """Non-memory timing parameters of the modeled core."""

    base_cpi: float = 1.30
    store_buffer_depth: int = 8
    store_coalescing: float = 0.20  # fraction of stores merged into
    # an in-flight same-line buffer entry (sequential object init and
    # marshalling writes coalesce before reaching the drain port)
    raw_hazard_rate: float = 0.004  # RAW stalls per instruction
    raw_hazard_penalty: int = 3
    tlb_mpki: float = 0.2
    latencies: LatencyBook = E6000_LATENCIES

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigError("base_cpi must be positive")
        if self.store_buffer_depth <= 0:
            raise ConfigError("store_buffer_depth must be positive")
        if not 0.0 <= self.raw_hazard_rate < 1.0:
            raise ConfigError("raw_hazard_rate must be in [0, 1)")


class InOrderCpuModel:
    """Turns hierarchy counters into the paper's CPI breakdowns."""

    def __init__(self, params: UltraSparcIIParams | None = None) -> None:
        self.params = params if params is not None else UltraSparcIIParams()

    def cpi_for_stats(self, stats: ProcessorStats) -> CpiBreakdown:
        """CPI breakdown for one processor's measurement interval."""
        if stats.instructions <= 0:
            raise AnalysisError("processor executed no instructions")
        lat = self.params.latencies
        instr = stats.instructions
        # Instruction-side stall: L1I miss -> L2 hit, L2 miss -> memory.
        i_l2_hits = max(0, stats.l1i_misses - stats.l2_instr_misses)
        instruction_stall = (
            i_l2_hits * lat.l2_hit + stats.l2_instr_misses * lat.memory
        ) / instr
        # Store-buffer stall: occupancy model on the store stream.
        store_buffer_cpi = self._store_buffer_cpi(stats)
        raw_cpi = self.params.raw_hazard_rate * self.params.raw_hazard_penalty
        tlb_cpi = self.params.tlb_mpki / 1000.0 * lat.tlb_miss
        data_stall = decompose_data_stall(
            instructions=instr,
            l1d_misses=stats.l1d_misses,
            l2_hits_data=stats.l2_load_hits,
            c2c_fills=stats.c2c_load_fills,
            mem_fills=stats.mem_load_fills,
            latencies=lat,
            store_buffer_cpi=store_buffer_cpi,
            raw_hazard_cpi=raw_cpi,
            tlb_miss_cpi=tlb_cpi,
        )
        return CpiBreakdown(
            instruction_stall=instruction_stall,
            data_stall=data_stall,
            other=self.params.base_cpi,
        )

    def cpi_for_machine(self, hierarchy: MemoryHierarchy) -> CpiBreakdown:
        """Machine-average CPI breakdown (instruction-weighted)."""
        active = [s for s in hierarchy.proc_stats if s.instructions > 0]
        if not active:
            raise AnalysisError("no processor executed instructions")
        total = ProcessorStats()
        for s in active:
            total.instructions += s.instructions
            total.l1i_misses += s.l1i_misses
            total.l1d_misses += s.l1d_misses
            total.l2_instr_misses += s.l2_instr_misses
            total.l2_load_hits += s.l2_load_hits
            total.c2c_load_fills += s.c2c_load_fills
            total.mem_load_fills += s.mem_load_fills
            total.stores += s.stores
            total.l2_hits += s.l2_hits
            total.l2_misses += s.l2_misses
            total.mem_fills += s.mem_fills
            total.c2c_fills += s.c2c_fills
        return self.cpi_for_stats(total)

    def _store_buffer_cpi(self, stats: ProcessorStats) -> float:
        """Store-buffer-full stall cycles per instruction.

        Utilization model: each store occupies the drain port for its
        L2-level service time; the probability the buffer is full when
        a store issues falls geometrically with free entries.  Tuned
        so well-behaved workloads land in the paper's 1-2% band.
        """
        if stats.instructions <= 0 or stats.stores == 0:
            return 0.0
        lat = self.params.latencies
        store_l2_misses = stats.mem_fills + stats.c2c_fills - (
            stats.mem_load_fills + stats.c2c_load_fills
        )
        store_l2_misses = max(0, store_l2_misses - stats.l2_instr_misses)
        miss_ratio = min(1.0, store_l2_misses / stats.stores)
        # Stores coalesce in the buffer and the L2 write port is
        # pipelined, so the effective drain is a few cycles unless the
        # store misses all the way to memory.
        drain_mean = (
            (1 - miss_ratio) * lat.store_buffer_drain + miss_ratio * lat.memory
        )
        stores_per_instr = (
            stats.stores * (1.0 - self.params.store_coalescing) / stats.instructions
        )
        # Utilization of the drain port, assuming ~base_cpi cycles/instr.
        rho = min(0.98, stores_per_instr * drain_mean / self.params.base_cpi)
        # Stores arrive in bursts (object initialization), so the
        # full-buffer probability is the utilization tail at half the
        # nominal depth rather than the full M/M/1 tail.
        p_full = rho ** (self.params.store_buffer_depth / 2)
        return stores_per_instr * p_full * drain_mean
