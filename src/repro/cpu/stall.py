"""Data-stall decomposition (Figure 7).

Components, following the paper:

- **store buffer** — cycles stalled on a full store buffer (1-2% of
  execution time);
- **RAW hazard** — loads issued too close behind stores to the same
  location (~1%);
- **L2 hit** — L1 data misses satisfied by the L2;
- **cache-to-cache** — L2 misses supplied by another processor's
  cache (40% more expensive than memory on the E6000);
- **memory** — L2 misses satisfied by main memory;
- **other** — residual (TLB fills and minor effects); the paper notes
  its decomposition "does not always exactly sum to one" for the same
  reason.
"""

from __future__ import annotations

from repro.core.metrics import DataStallBreakdown
from repro.errors import AnalysisError
from repro.memsys.latency import LatencyBook


def decompose_data_stall(
    instructions: int,
    l1d_misses: int,
    l2_hits_data: int,
    c2c_fills: int,
    mem_fills: int,
    latencies: LatencyBook,
    store_buffer_cpi: float = 0.0,
    raw_hazard_cpi: float = 0.0,
    tlb_miss_cpi: float = 0.0,
) -> DataStallBreakdown:
    """Build the per-instruction data-stall breakdown from event counts.

    ``l2_hits_data`` are L1 data misses that hit in the L2;
    ``c2c_fills``/``mem_fills`` are data-reference L2 misses by fill
    source.  Store-buffer, RAW and TLB terms are passed in as CPI
    contributions (they come from their own models, not the cache
    simulation).
    """
    if instructions <= 0:
        raise AnalysisError("instructions must be positive")
    if min(l1d_misses, l2_hits_data, c2c_fills, mem_fills) < 0:
        raise AnalysisError("event counts must be non-negative")
    per_instr = 1.0 / instructions
    return DataStallBreakdown(
        store_buffer=store_buffer_cpi,
        raw_hazard=raw_hazard_cpi,
        l2_hit=l2_hits_data * latencies.l2_hit * per_instr,
        cache_to_cache=c2c_fills * latencies.cache_to_cache * per_instr,
        memory=mem_fills * latencies.memory * per_instr,
        other=tlb_miss_cpi,
    )
