"""Processor timing model.

The paper measures CPI with the UltraSPARC II's integrated counters
and decomposes stalls by multiplying event frequencies with published
access times (Sections 4.2, 4.3).  This package does the same over
the simulator's counters: :mod:`repro.cpu.inorder` produces the CPI
breakdown of Figure 6, :mod:`repro.cpu.stall` the data-stall
decomposition of Figure 7.
"""

from repro.cpu.inorder import InOrderCpuModel, UltraSparcIIParams
from repro.cpu.stall import decompose_data_stall

__all__ = ["InOrderCpuModel", "UltraSparcIIParams", "decompose_data_stall"]
