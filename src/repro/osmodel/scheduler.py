"""Processor sets (the ``psrset`` mechanism).

The paper restricts application threads to a subset of the E6000's 16
processors and keeps other processes off that subset.  Two memory-
system consequences are modeled:

- scaling experiments vary the *set size* while the machine stays at
  16 processors;
- the OS still runs on processors outside the set, which is why
  cache-to-cache transfers occur even in "1-processor" runs
  (Section 4.3): the bound processor answers snoops from OS activity
  elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ProcessorSet:
    """A contiguous processor set on a larger machine."""

    machine_procs: int
    set_size: int

    def __post_init__(self) -> None:
        if self.machine_procs <= 0:
            raise ConfigError("machine_procs must be positive")
        if not 0 < self.set_size <= self.machine_procs:
            raise ConfigError(
                f"set size {self.set_size} must be in [1, {self.machine_procs}]"
            )

    @property
    def members(self) -> list[int]:
        """Processor ids inside the set (application processors)."""
        return list(range(self.set_size))

    @property
    def outside(self) -> list[int]:
        """Processor ids outside the set (OS and other processes)."""
        return list(range(self.set_size, self.machine_procs))

    def is_member(self, cpu: int) -> bool:
        if not 0 <= cpu < self.machine_procs:
            raise ConfigError(f"cpu {cpu} outside the machine")
        return cpu < self.set_size
