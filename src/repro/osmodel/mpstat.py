"""Execution-mode accounting (the ``mpstat`` view).

Figure 5 breaks execution time into user, system, I/O wait and idle,
with the idle time further split into garbage-collection idle and
other idle (the paper estimates GC idle as the fraction of processors
idle during collection times the fraction of time collecting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError


@dataclass(frozen=True)
class ModeBreakdown:
    """Fractions of execution time by mode; must sum to 1."""

    user: float
    system: float
    io: float
    gc_idle: float
    other_idle: float

    def __post_init__(self) -> None:
        parts = (self.user, self.system, self.io, self.gc_idle, self.other_idle)
        if any(x < -1e-9 for x in parts):
            raise AnalysisError(f"negative mode fraction in {parts}")
        total = sum(parts)
        if abs(total - 1.0) > 1e-6:
            raise AnalysisError(f"mode fractions sum to {total}, expected 1.0")

    @property
    def idle(self) -> float:
        """Total idle (GC + other), as mpstat would report it."""
        return self.gc_idle + self.other_idle

    @property
    def busy(self) -> float:
        return self.user + self.system

    def as_dict(self) -> dict[str, float]:
        return {
            "user": self.user,
            "system": self.system,
            "io": self.io,
            "gc_idle": self.gc_idle,
            "other_idle": self.other_idle,
        }

    @classmethod
    def from_components(
        cls, user: float, system: float, io: float, gc_idle: float, other_idle: float
    ) -> "ModeBreakdown":
        """Build a breakdown, normalizing tiny rounding drift."""
        total = user + system + io + gc_idle + other_idle
        if total <= 0:
            raise AnalysisError("mode components must have positive sum")
        return cls(
            user=user / total,
            system=system / total,
            io=io / total,
            gc_idle=gc_idle / total,
            other_idle=other_idle / total,
        )
