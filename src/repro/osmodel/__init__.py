"""Operating-system model (Solaris 8 stand-in).

Provides the accounting and mechanisms the paper's Solaris tools
expose: ``psrset`` processor sets (:mod:`repro.osmodel.scheduler`),
``mpstat`` execution-mode breakdowns (:mod:`repro.osmodel.mpstat`),
Intimate Shared Memory large pages (:mod:`repro.osmodel.ism`), and the
kernel network-stack time model behind ECperf's growing system time
(:mod:`repro.osmodel.netstack`).
"""

from repro.osmodel.ism import IsmSetting, tlb_for
from repro.osmodel.mpstat import ModeBreakdown
from repro.osmodel.netstack import KernelNetworkModel
from repro.osmodel.scheduler import ProcessorSet

__all__ = [
    "IsmSetting",
    "tlb_for",
    "ModeBreakdown",
    "KernelNetworkModel",
    "ProcessorSet",
]
