"""Kernel network-stack time model.

Figure 5's sharpest contrast: ECperf's system time grows from under
5% on one processor to nearly 30% on fifteen, while SPECjbb spends
essentially none — SPECjbb emulates all tiers inside one JVM with
memory-based communication, whereas ECperf's tiers talk over
OS-managed TCP.  The paper hypothesizes the growth comes from
*contention in the networking code* (Section 4.1).

The model: each transaction does a fixed amount of kernel network
work (per-byte plus per-message costs), and a fraction of that work
serializes on shared kernel state (protocol control blocks, interface
queues), inflating system time super-linearly with processor count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class KernelNetworkModel:
    """System-time fraction as a function of processor count.

    Attributes:
        base_fraction: system-time fraction on one processor (the
            uncontended per-transaction kernel work).
        contention_coeff: growth of kernel time per additional
            processor, from lock contention in the stack.
        exponent: shape of the contention growth (1 = linear in p).
        cap: ceiling on the modeled system fraction.
    """

    base_fraction: float = 0.045
    contention_coeff: float = 0.028
    exponent: float = 1.15
    cap: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_fraction < 1.0:
            raise ConfigError("base_fraction must be in [0, 1)")
        if self.contention_coeff < 0 or self.exponent <= 0:
            raise ConfigError("contention_coeff >= 0 and exponent > 0 required")
        if not self.base_fraction <= self.cap <= 1.0:
            raise ConfigError("cap must be within [base_fraction, 1]")

    def system_fraction(self, n_procs: int) -> float:
        """System-time fraction at ``n_procs`` processors.

        >>> m = KernelNetworkModel()
        >>> m.system_fraction(1) < 0.05
        True
        >>> 0.25 < m.system_fraction(15) <= 0.35
        True
        """
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        grown = self.base_fraction + self.contention_coeff * (n_procs - 1) ** self.exponent
        return min(self.cap, grown)

    @classmethod
    def none(cls) -> "KernelNetworkModel":
        """A no-kernel-time model (SPECjbb: single process, no tiers)."""
        return cls(base_fraction=0.0, contention_coeff=0.0, exponent=1.0, cap=1.0)
