"""Intimate Shared Memory (ISM) large pages.

Section 3.2: enabling ISM raises the Solaris page size from 8 KB to
4 MB and lets threads share page-table entries, which "greatly
increases the TLB reach" — the application server's heap otherwise
dwarfs it — and improved ECperf throughput by more than 10%
(Section 6).  This module binds the setting to the TLB model so that
effect is reproducible (see the ISM ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.tlb import Tlb
from repro.units import kb, mb


@dataclass(frozen=True)
class IsmSetting:
    """Page-size configuration."""

    enabled: bool

    @property
    def page_size(self) -> int:
        return mb(4) if self.enabled else kb(8)

    def describe(self) -> str:
        state = "on" if self.enabled else "off"
        return f"ISM {state}: {self.page_size // 1024} KB pages"


def tlb_for(setting: IsmSetting, entries: int = 64) -> Tlb:
    """A TLB configured per the ISM setting.

    With ISM off the 64-entry TLB reaches 512 KB; with ISM on it
    reaches 256 MB, covering the benchmarks' heaps entirely.
    """
    return Tlb(entries=entries, page_size=setting.page_size)
