"""Fault-tolerance policy for harness tasks.

Long measurement campaigns (hundreds of sweep points x replicas) must
survive an occasional bad task: a replica that trips a simulator
invariant, a worker process that dies, a run that hangs.  The policy
here is deliberately simple and deterministic — bounded retry with
capped, jittered exponential backoff, an optional per-task wall-clock
timeout — and the outcome of a task that exhausts it is a
:class:`TaskFailure` *record*, not an exception: the runner reports the
failure and the rest of the batch completes (graceful degradation).

Two caveats, both documented on :class:`FaultPolicy`:

- in serial (``jobs=1``) execution a pure-Python task cannot be
  preempted, so the timeout is checked after the fact; in pool
  execution the runner's watchdog *kills* the worker running a
  timed-out task and respawns a fresh one, so the slot is reclaimed
  immediately;
- by default timeouts are not retried on either path — a
  deterministic task that exceeded its budget once will exceed it
  again.  When the overrun is environmental (a descheduled worker, a
  cold cache on a shared host), ``retry_timeouts=True`` makes
  timeouts retryable under the same attempt budget, identically in
  serial and pool execution.  A crashed worker (``KIND_BROKEN_POOL``)
  *is* always retried under the policy: worker death is usually
  environmental (OOM kill, preemption), not a property of the task.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError

#: Failure kinds recorded by the runner.
KIND_ERROR = "error"  # the task function raised
KIND_TIMEOUT = "timeout"  # wall clock exceeded FaultPolicy.timeout_s
KIND_BROKEN_POOL = "broken-pool"  # the worker process died
KIND_ABORTED = "aborted"  # batch stopped early (fail_fast) before this task ran


@dataclass(frozen=True)
class FaultPolicy:
    """How the runner treats a task that fails.

    ``max_attempts`` counts the first try: the default policy (1) never
    retries.  ``timeout_s`` is a per-attempt wall-clock budget; ``None``
    disables it.  ``retry_timeouts`` makes a timed-out attempt
    retryable like any other failure — identically on the serial and
    pool paths (serial discards the overtime result instead of keeping
    it, so both paths converge on the same outcome).

    Retry delays grow as ``backoff_s * backoff_factor ** (attempt -
    1)``, capped at ``backoff_max_s`` (``None`` = uncapped), then
    spread by up to ``±jitter`` (a fraction of the delay) so
    simultaneous retries across a worker fleet do not re-synchronize
    into thundering herds.  The jitter is *deterministic*: it hashes
    ``(jitter_seed, key, attempt)``, so :meth:`delay` is a pure
    function and chaos/replay runs stay reproducible.
    """

    timeout_s: float | None = None
    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float | None = None
    jitter: float = 0.0
    jitter_seed: int = 0
    retry_timeouts: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ConfigError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.backoff_max_s is not None and self.backoff_max_s <= 0:
            raise ConfigError("backoff_max_s must be positive (or None)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether a failure on ``attempt`` (1-based) warrants another try."""
        return attempt < self.max_attempts

    def retryable(self, kind: str) -> bool:
        """Whether failures of ``kind`` participate in retries at all."""
        if kind == KIND_TIMEOUT:
            return self.retry_timeouts
        return kind != KIND_ABORTED

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before the retry following ``attempt`` (1-based).

        Pure: the same ``(policy, attempt, key)`` always yields the
        same delay.  ``key`` (typically the task key) decorrelates the
        jitter across tasks retrying after the same attempt count.
        """
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if self.backoff_max_s is not None:
            base = min(base, self.backoff_max_s)
        if self.jitter:
            digest = hashlib.sha256(
                f"{self.jitter_seed}\0{key}\0{attempt}".encode()
            ).digest()
            frac = int.from_bytes(digest[:8], "little") / 2**64  # [0, 1)
            base *= 1.0 + self.jitter * (2.0 * frac - 1.0)
        return max(0.0, base)


@dataclass(frozen=True)
class TaskFailure:
    """Why one task ultimately failed (after any retries)."""

    key: str
    kind: str  # KIND_ERROR, KIND_TIMEOUT, KIND_BROKEN_POOL or KIND_ABORTED
    error: str  # repr of the exception, or a timeout description
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.key}: {self.kind} after {self.attempts} attempt(s): {self.error}"
