"""Fault-tolerance policy for harness tasks.

Long measurement campaigns (hundreds of sweep points x replicas) must
survive an occasional bad task: a replica that trips a simulator
invariant, a worker process that dies, a run that hangs.  The policy
here is deliberately simple and deterministic — bounded retry with
exponential backoff, an optional per-task wall-clock timeout — and the
outcome of a task that exhausts it is a :class:`TaskFailure` *record*,
not an exception: the runner reports the failure and the rest of the
batch completes (graceful degradation).

Two caveats, both documented on :class:`FaultPolicy`:

- in serial (``jobs=1``) execution a pure-Python task cannot be
  preempted, so the timeout is advisory (checked after the fact); in
  pool execution the runner's watchdog *kills* the worker running a
  timed-out task and respawns a fresh one, so the slot is reclaimed
  immediately;
- timeouts are not retried — a deterministic task that exceeded its
  budget once will exceed it again.  A crashed worker
  (``KIND_BROKEN_POOL``) *is* retried under the policy: worker death
  is usually environmental (OOM kill, preemption), not a property of
  the task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Failure kinds recorded by the runner.
KIND_ERROR = "error"  # the task function raised
KIND_TIMEOUT = "timeout"  # wall clock exceeded FaultPolicy.timeout_s
KIND_BROKEN_POOL = "broken-pool"  # the worker process died
KIND_ABORTED = "aborted"  # batch stopped early (fail_fast) before this task ran


@dataclass(frozen=True)
class FaultPolicy:
    """How the runner treats a task that fails.

    ``max_attempts`` counts the first try: the default policy (1) never
    retries.  ``timeout_s`` is a per-attempt wall-clock budget; ``None``
    disables it.  Retry delays grow as
    ``backoff_s * backoff_factor ** (attempt - 1)``.
    """

    timeout_s: float | None = None
    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ConfigError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")

    def should_retry(self, attempt: int) -> bool:
        """Whether a failure on ``attempt`` (1-based) warrants another try."""
        return attempt < self.max_attempts

    def delay(self, attempt: int) -> float:
        """Backoff before the retry following ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class TaskFailure:
    """Why one task ultimately failed (after any retries)."""

    key: str
    kind: str  # KIND_ERROR, KIND_TIMEOUT, KIND_BROKEN_POOL or KIND_ABORTED
    error: str  # repr of the exception, or a timeout description
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.key}: {self.kind} after {self.attempts} attempt(s): {self.error}"
