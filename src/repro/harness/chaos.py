"""Deterministic fault injection for resilience testing.

Test-only: nothing in the library imports this module.  It provides
picklable, module-level task functions that misbehave a *scripted*
number of times — crash the worker process, hang past a timeout, raise
— and then return their value, plus helpers that corrupt on-disk cache
entries in controlled ways.  Together they exercise every recovery
path in the harness (``KIND_BROKEN_POOL``, ``KIND_TIMEOUT``,
``KIND_ERROR``, cache quarantine, checkpoint resume) without any
nondeterminism: the n-th invocation of a named fault behaves the same
on every run and in every process.

Cross-process attempt counting uses atomic marker-file creation
(``open(..., "x")``) in a shared scratch directory, so a retried task
re-executed in a *different* worker process still sees the correct
attempt number.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any


class ChaosError(RuntimeError):
    """The injected, expected failure raised by :func:`error_task`."""


def take_ticket(root: str | Path, name: str) -> int:
    """Atomically claim the next attempt number (0-based) for ``name``.

    Marker files make the counter race-free across processes: the
    first creator of ``<name>.attempt0`` owns attempt 0, and so on.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    ticket = 0
    while True:
        try:
            (root / f"{name}.attempt{ticket}").touch(exist_ok=False)
            return ticket
        except FileExistsError:
            ticket += 1


def crash_task(root: str, name: str, value: Any, crash_attempts: int = 1) -> Any:
    """Die like a segfault for the first ``crash_attempts`` invocations.

    ``os._exit`` skips all Python cleanup, exactly like an OOM kill:
    the parent sees only a dead process, never an exception.
    """
    if take_ticket(root, name) < crash_attempts:
        os._exit(23)
    return value


def crash_while_attached(
    root: str, name: str, value: Any, ref=None, crash_attempts: int = 1
) -> Any:
    """Attach to a published trace, then die holding the mapping.

    The nastiest trace-plane failure mode: a worker is SIGKILL-hard
    dead (``os._exit`` skips every ``atexit``/``finally``) *while its
    shared-memory mapping is live*.  The parent must still be able to
    unlink the segment at campaign end — ownership never transferred —
    and a respawned worker must be able to re-attach and finish the
    task.  Touches the data before dying so the mapping is genuinely
    faulted in, not just reserved.
    """
    if ref is not None:
        from repro.harness import traceplane

        bundle = traceplane.attach(ref)
        checksum = int(sum(int(t[:16].sum()) for t in bundle.per_cpu if t.size))
    else:
        checksum = 0
    if take_ticket(root, name) < crash_attempts:
        os._exit(23)
    return (value, checksum)


def hang_task(
    root: str, name: str, value: Any, hang_s: float = 60.0, hang_attempts: int = 1
) -> Any:
    """Hang for ``hang_s`` seconds on the first ``hang_attempts`` calls."""
    if take_ticket(root, name) < hang_attempts:
        time.sleep(hang_s)
    return value


def error_task(root: str, name: str, value: Any, error_attempts: int = 1) -> Any:
    """Raise :class:`ChaosError` on the first ``error_attempts`` calls."""
    ticket = take_ticket(root, name)
    if ticket < error_attempts:
        raise ChaosError(f"injected failure {ticket + 1}/{error_attempts} for {name}")
    return value


# -- campaign-level injectors ---------------------------------------------
#
# These wrap a campaign cell function with a scripted fleet failure:
# the wrapped call computes the *same value* the clean call would (or
# never returns at all), so a chaos-ridden campaign's surviving cells
# stay bit-identical to a clean run's.


def kill_executor(
    root: str, name: str, value: Any, kill_attempts: int = 1
) -> Any:
    """Kill the whole executor worker mid-cell, ``kill_attempts`` times.

    Campaign-flavoured :func:`crash_task`: the scheduler must see a
    ``WorkerDead`` event carrying this cell's lease, reschedule the
    cell, and respawn the slot within the respawn budget.
    """
    if take_ticket(root, name) < kill_attempts:
        os._exit(23)
    return value


def stall_heartbeat(
    root: str, name: str, value: Any, stall_s: float = 60.0,
    stall_attempts: int = 1,
) -> Any:
    """Silence this fleet worker's heartbeats, then hang inside the cell.

    The wedged-remote-host failure: the process stays alive and holds
    its lease, but stops proving it.  The scheduler must notice the
    heartbeat silence, reclaim the lease by force (killing the worker)
    and reschedule the cell.  On a non-fleet executor (no heartbeat
    hook) this degrades to a plain :func:`hang_task`, caught by the
    wall-clock budget instead.
    """
    if take_ticket(root, name) < stall_attempts:
        try:
            from repro.campaign.fleet import stall_heartbeats

            stall_heartbeats()
        except ImportError:  # pragma: no cover - campaign not installed
            pass
        time.sleep(stall_s)
    return value


def poison_cell(root: str, name: str, value: Any) -> Any:
    """Kill the worker on *every* attempt: the cell is truly poisoned.

    Unlike :func:`kill_executor` this never relents, so after
    ``poison_k`` consecutive worker deaths the scheduler must
    quarantine the cell with diagnostics instead of burning the whole
    respawn budget on it.  ``value`` is never returned; it exists so
    the wrapped cell keeps the clean cell's signature.
    """
    take_ticket(root, name)  # keep the attempt count observable
    os._exit(23)
    return value  # pragma: no cover - unreachable


#: Supported cache-corruption modes.
CORRUPTION_MODES = ("truncate", "flip", "garbage", "empty")


def corrupt_cache_entry(cache, key: str, mode: str = "truncate") -> Path:
    """Damage the on-disk entry for ``key`` the way real faults do.

    ``truncate`` — a writer killed mid-write (pre-atomic tooling);
    ``flip`` — a flipped bit in the payload (checksum must catch it);
    ``garbage`` — unrelated bytes at the entry's path;
    ``empty`` — a zero-length file.
    Returns the damaged path.  Raises :class:`ValueError` for unknown
    modes and :class:`FileNotFoundError` if the entry does not exist.
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(f"unknown corruption mode {mode!r}; known: {CORRUPTION_MODES}")
    path = cache._path(key)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "flip":
        flipped = bytearray(data)
        flipped[len(flipped) // 2] ^= 0xFF
        path.write_bytes(bytes(flipped))
    elif mode == "garbage":
        path.write_bytes(b"\x00garbage, not a cache entry\xff" * 4)
    else:  # empty
        path.write_bytes(b"")
    return path
