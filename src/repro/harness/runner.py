"""Parallel experiment engine.

Fans a batch of independent :class:`Task`\\ s — sweep points, replica
runs, whole figures — across CPUs on a small dedicated worker pool,
consulting a :class:`~repro.harness.cache.ResultCache` and a
:class:`~repro.harness.checkpoint.CampaignManifest` first and recording
every step through :class:`~repro.harness.telemetry.Telemetry`.

Determinism is the design center: a task carries *all* of its inputs
(including any RNG seeding, typically an
:class:`~repro.rng.RngFactory` pre-perturbed with the replica's
``run_index``), workers add nothing, and outcomes are returned in task
order — so ``jobs=1`` and ``jobs=8`` produce bit-identical results and
the cache can address results by input content alone.

Resilience is the other half of the design:

- each worker is an owned process with its own pipe, so the parent's
  watchdog can *kill* a worker whose task exceeded its wall-clock
  budget and respawn a replacement — a hung task costs its slot for
  exactly ``timeout_s``, never the rest of the campaign;
- a worker that dies (segfault, OOM kill) fails or retries only *its*
  task; the rest of the batch keeps running on the surviving workers;
- with a manifest, every final outcome is journaled (fsynced) as it
  lands, and ``interruptible=True`` turns SIGINT/SIGTERM into a clean
  drain — in-flight tasks finish, their results persist, and
  :class:`~repro.errors.CampaignInterrupted` tells the caller the
  campaign can be resumed.

Execution falls back to in-process serial mode when ``jobs <= 1`` or
when a task is not picklable (e.g. a closure), with a telemetry event
so silent degradation never masquerades as parallel speedup.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro import obs
from repro.errors import CampaignInterrupted, HarnessError
from repro.harness.cache import ResultCache
from repro.harness.faults import (
    KIND_ABORTED,
    KIND_BROKEN_POOL,
    KIND_ERROR,
    KIND_TIMEOUT,
    FaultPolicy,
    TaskFailure,
)
from repro.harness.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.checkpoint import CampaignManifest


@dataclass(frozen=True)
class Task:
    """One unit of harness work: a picklable callable plus arguments.

    ``key`` must be unique within a batch; it names the task in
    telemetry and indexes its outcome.  ``cache_key`` (from
    :func:`~repro.harness.cache.content_key`) opts the task into result
    caching; ``None`` means always recompute.  ``plane_keys`` lists the
    trace-plane spec keys this task replays (see
    :mod:`repro.harness.traceplane`): the runner retains them while the
    task is pending and releases them at its final outcome, so a
    shared-memory trace segment is unlinked the moment its last
    consumer completes.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    cache_key: str | None = None
    plane_keys: tuple = ()


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: a value, or a recorded failure."""

    key: str
    value: Any = None
    failure: TaskFailure | None = None
    wall_s: float = 0.0
    attempts: int = 0
    cached: bool = False
    worker: int | None = None  # pid that ran the task

    @property
    def ok(self) -> bool:
        return self.failure is None


def _invoke(fn: Callable[..., Any], args: tuple, kwargs: dict) -> tuple[Any, float, int]:
    """In-process entry: run the task, measure it, report the pid."""
    t0 = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - t0, os.getpid()


def _absorb_observations(
    obs_payload: tuple[dict, list[dict]] | None, telemetry: Telemetry
) -> None:
    """Merge a worker task's drained spans/counters into this process.

    Worker tasks ship their observations back with the result message;
    the spans land in :data:`repro.obs.SPANS` and the counters both in
    :data:`repro.obs.COUNTERS` and the campaign's :class:`Telemetry` —
    so ``jobs=1`` and ``jobs=8`` report identical totals.
    """
    if not obs_payload:
        return
    obs.ingest(obs_payload)
    telemetry.merge_counters(obs_payload[0])


def _serial_counters_before() -> dict[str, int | float] | None:
    """Counter snapshot taken before an in-process task attempt."""
    return obs.COUNTERS.snapshot() if obs.enabled() else None


def _merge_serial_delta(
    before: dict[str, int | float] | None, telemetry: Telemetry
) -> None:
    """Credit Telemetry with what one in-process attempt published.

    Serial tasks record straight into the live singletons, so only the
    Telemetry copy is missing — and it must be the attempt's *delta*,
    not a cumulative re-drain, or totals inflate with every task.
    """
    if before is None:
        return
    delta: dict[str, int | float] = {}
    for name, value in obs.COUNTERS.snapshot().items():
        diff = value - before.get(name, 0)
        if diff:
            delta[name] = diff
    if delta:
        telemetry.merge_counters(delta)


def _is_picklable(task: Task) -> bool:
    try:
        pickle.dumps((task.fn, task.args, dict(task.kwargs)))
        return True
    except Exception:
        return False


def _mp_context() -> multiprocessing.context.BaseContext:
    """Start method for worker processes.

    ``fork`` where it is safe (Linux) because it avoids re-importing
    numpy in every worker; ``spawn`` elsewhere.  Overridable with the
    ``JMMW_MP_START`` environment variable.
    """
    method = os.environ.get("JMMW_MP_START")
    if not method:
        if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        else:
            method = "spawn"
    return multiprocessing.get_context(method)


# -- worker pool ------------------------------------------------------------


def _worker_main(conn: connection.Connection) -> None:
    """Worker-process loop: recv a task, run it, send the outcome back.

    The worker ignores SIGINT — interrupts are the parent's to
    coordinate (it drains in-flight tasks rather than losing them) —
    and survives any exception a task raises, including a result that
    fails to pickle on the way back.  Only ``os._exit`` / a signal
    kills it, which the parent observes through the process sentinel.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    # A fork-started worker inherits whatever the parent had already
    # recorded (e.g. trace-plane publish counters); drop it, or the
    # first task's drain would ship the parent's numbers back and
    # double-count them.
    obs.reset()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # clean shutdown
            break
        fn, args, kwargs, obs_on = message
        # Observability follows the parent per message, so a worker
        # respawned mid-campaign (watchdog kill, crash) records exactly
        # like the one it replaced, regardless of start method.
        if obs_on != obs.enabled():
            obs.enable() if obs_on else obs.disable()
        t0 = time.perf_counter()
        try:
            value = fn(*args, **kwargs)
        except BaseException as exc:
            conn.send(
                ("error", repr(exc), time.perf_counter() - t0, os.getpid(),
                 obs.drain_payload())
            )
            continue
        wall_s = time.perf_counter() - t0
        payload = obs.drain_payload()
        try:
            conn.send(("ok", value, wall_s, os.getpid(), payload))
        except Exception as exc:
            # Connection.send pickles before writing, so a value that
            # cannot pickle leaves the channel clean — report it as a
            # task error instead of dying.
            conn.send(
                ("error", f"result not picklable: {exc!r}", wall_s,
                 os.getpid(), payload)
            )
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class _Worker:
    """One owned worker process plus its duplex pipe and current task."""

    def __init__(self, ctx: multiprocessing.context.BaseContext, wid: int) -> None:
        self.wid = wid
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name=f"jmmw-worker-{wid}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Task | None = None
        self.attempt = 0
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(self, task: Task, attempt: int) -> None:
        """Ship a task to the worker; raises OSError if it is dead."""
        self.conn.send((task.fn, task.args, dict(task.kwargs), obs.enabled()))
        self.task = task
        self.attempt = attempt
        self.started = time.monotonic()

    def kill(self) -> None:
        """SIGKILL the worker (watchdog path: the task cannot be trusted)."""
        self.process.kill()
        self.process.join()
        self.conn.close()

    def shutdown(self) -> None:
        """Best-effort clean stop at end of batch."""
        try:
            self.conn.send(None)
        except OSError:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _InterruptDrain:
    """Turns SIGINT/SIGTERM into a drain request while a batch runs.

    First signal: set :attr:`requested`; the runner stops dispatching,
    finishes in-flight tasks, persists their outcomes, and raises
    :class:`CampaignInterrupted`.  Second signal: give up on draining
    and raise :class:`KeyboardInterrupt` immediately.  Installs only
    from the main thread (signal API restriction); elsewhere it is a
    no-op and the batch simply is not interruptible.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.requested = False
        self.count = 0
        self._previous: dict[int, Any] = {}

    def _handle(self, signum: int, frame: object) -> None:
        self.count += 1
        self.requested = True
        if self.count >= 2:
            raise KeyboardInterrupt

    def __enter__(self) -> "_InterruptDrain":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc_info: object) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    telemetry: Telemetry | None = None,
    faults: FaultPolicy | None = None,
    manifest: "CampaignManifest | None" = None,
    fail_fast: bool = False,
    interruptible: bool = False,
    plane: "Any | None" = None,
) -> list[TaskOutcome]:
    """Execute a batch of tasks; outcomes are returned in task order.

    A task that fails (after the fault policy's retries) yields an
    outcome with ``ok == False`` — the call itself raises only for
    harness misuse (duplicate keys) or a drained interrupt
    (:class:`CampaignInterrupted`, only with ``interruptible=True``).
    Successful, previously-uncached results are written back to
    ``cache`` as they complete.

    ``manifest`` journals every final outcome incrementally and serves
    tasks the campaign already completed (``resume/skip`` in
    telemetry) without recomputing them.  ``fail_fast`` stops
    dispatching after the first ultimate failure; not-yet-started
    tasks fail with ``KIND_ABORTED``.

    ``plane`` is a :class:`repro.harness.traceplane.TracePlane`: each
    pending task's ``plane_keys`` are retained up front and released
    when the task reaches its final outcome (success, failure or
    abort), unlinking shared trace segments as their consumers drain.
    Tasks served from cache or manifest never retain — their traces
    are not replayed.  A drained interrupt leaves retained keys to
    :meth:`TracePlane.close`, which the campaign owner runs either
    way.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    faults = faults if faults is not None else FaultPolicy()
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise HarnessError("duplicate task keys in batch")

    outcomes: dict[str, TaskOutcome] = {}
    pending: list[Task] = []
    quarantined_before = cache.quarantined if cache is not None else 0
    for task in tasks:
        if manifest is not None:
            hit, value = manifest.lookup(task.key)
            if hit:
                telemetry.emit("resume/skip", task=task.key)
                outcomes[task.key] = TaskOutcome(
                    key=task.key, value=value, cached=True
                )
                continue
        if cache is not None and task.cache_key is not None:
            hit, value = cache.get(task.cache_key)
            if hit:
                telemetry.emit("cache/hit", task=task.key)
                outcome = TaskOutcome(key=task.key, value=value, cached=True)
                outcomes[task.key] = outcome
                if manifest is not None:
                    manifest.record(task.key, outcome)
                continue
            telemetry.emit("cache/miss", task=task.key)
        pending.append(task)
    if cache is not None and cache.quarantined > quarantined_before:
        telemetry.emit(
            "cache/quarantined", entries=cache.quarantined - quarantined_before
        )

    if plane is not None:
        for task in pending:
            if task.plane_keys:
                plane.retain(task.plane_keys)
        if plane.refs:
            telemetry.emit(
                "run/trace-plane",
                segments=len(plane.refs),
                bytes=plane.bytes_shared,
            )

    def record(task: Task, outcome: TaskOutcome) -> None:
        """Persist one final outcome the moment it exists."""
        outcomes[task.key] = outcome
        if (
            cache is not None
            and outcome.ok
            and not outcome.cached
            and task.cache_key is not None
        ):
            cache.put(task.cache_key, outcome.value)
        if manifest is not None:
            manifest.record(task.key, outcome)
        if plane is not None and task.plane_keys:
            plane.release(task.plane_keys)

    effective_jobs = max(1, int(jobs))
    if effective_jobs > 1 and pending:
        unpicklable = [task.key for task in pending if not _is_picklable(task)]
        if unpicklable:
            telemetry.emit(
                "run/serial-fallback", tasks=unpicklable, reason="not picklable"
            )
            effective_jobs = 1

    drain = _InterruptDrain() if interruptible else None
    try:
        if drain is not None:
            drain.__enter__()
        if effective_jobs <= 1:
            _run_serial(pending, telemetry, faults, record, drain, fail_fast)
        elif pending:
            _run_pool(
                pending, effective_jobs, telemetry, faults, record, drain, fail_fast
            )
    finally:
        if drain is not None:
            drain.__exit__(None, None, None)

    for outcome in outcomes.values():
        telemetry.incr("task/ok" if outcome.ok else "task/failed")

    remaining = tuple(key for key in keys if key not in outcomes)
    if remaining:
        if drain is not None and drain.requested:
            telemetry.emit(
                "run/interrupted", completed=len(outcomes), remaining=len(remaining)
            )
            raise CampaignInterrupted(len(outcomes), remaining)
        raise HarnessError(  # pragma: no cover - internal consistency
            f"runner lost outcomes for {remaining!r}"
        )
    return [outcomes[key] for key in keys]


def _abort_outcome(task: Task) -> TaskOutcome:
    return TaskOutcome(
        key=task.key,
        failure=TaskFailure(
            key=task.key, kind=KIND_ABORTED,
            error="not run: batch aborted after an earlier failure", attempts=0,
        ),
        attempts=0,
    )


def _run_serial(
    tasks: Sequence[Task],
    telemetry: Telemetry,
    faults: FaultPolicy,
    record: Callable[[Task, TaskOutcome], None],
    drain: _InterruptDrain | None,
    fail_fast: bool,
) -> None:
    """In-process execution with retries; timeouts are advisory only."""
    aborted = False
    for task in tasks:
        if drain is not None and drain.requested:
            return  # remaining tasks stay unrecorded -> CampaignInterrupted
        if aborted:
            record(task, _abort_outcome(task))
            continue
        outcome = _run_one_serial(task, telemetry, faults)
        record(task, outcome)
        if fail_fast and not outcome.ok:
            aborted = True


def _run_one_serial(task: Task, telemetry: Telemetry, faults: FaultPolicy) -> TaskOutcome:
    attempt = 0
    while True:
        attempt += 1
        telemetry.emit("task/start", task=task.key, attempt=attempt, worker=os.getpid())
        counters_before = _serial_counters_before()
        try:
            value, wall_s, pid = _invoke(task.fn, task.args, dict(task.kwargs))
        except Exception as exc:
            _merge_serial_delta(counters_before, telemetry)
            telemetry.emit(
                "task/error", task=task.key, attempt=attempt, error=repr(exc)
            )
            if faults.should_retry(attempt):
                telemetry.emit("task/retry", task=task.key, attempt=attempt)
                time.sleep(faults.delay(attempt, key=task.key))
                continue
            return TaskOutcome(
                key=task.key,
                failure=TaskFailure(
                    key=task.key, kind=KIND_ERROR, error=repr(exc), attempts=attempt
                ),
                attempts=attempt,
            )
        _merge_serial_delta(counters_before, telemetry)
        if faults.timeout_s is not None and wall_s > faults.timeout_s:
            if faults.retry_timeouts:
                # Same semantics as the pool watchdog: the overrun is a
                # failure (the result is discarded) and retries under
                # the policy — serial and pool paths stay identical.
                telemetry.emit(
                    "task/timeout", task=task.key, attempt=attempt,
                    timeout_s=faults.timeout_s,
                )
                if faults.should_retry(attempt):
                    telemetry.emit("task/retry", task=task.key, attempt=attempt)
                    time.sleep(faults.delay(attempt, key=task.key))
                    continue
                return TaskOutcome(
                    key=task.key,
                    failure=TaskFailure(
                        key=task.key, kind=KIND_TIMEOUT,
                        error=f"exceeded {faults.timeout_s}s "
                        "(serial; result discarded)",
                        attempts=attempt,
                    ),
                    attempts=attempt,
                )
            # Serial mode cannot preempt; flag the overrun but keep the result.
            telemetry.emit(
                "task/overtime", task=task.key, wall_s=round(wall_s, 6),
                timeout_s=faults.timeout_s,
            )
        telemetry.emit(
            "task/end", task=task.key, attempt=attempt, wall_s=round(wall_s, 6),
            worker=pid,
        )
        return TaskOutcome(
            key=task.key, value=value, wall_s=wall_s, attempts=attempt, worker=pid
        )


def _run_pool(
    tasks: Sequence[Task],
    jobs: int,
    telemetry: Telemetry,
    faults: FaultPolicy,
    record: Callable[[Task, TaskOutcome], None],
    drain: _InterruptDrain | None,
    fail_fast: bool,
) -> None:
    """Fan tasks over owned worker processes; record failures, never raise.

    The parent is the watchdog: it knows which worker runs which task
    and for how long (the per-task heartbeat is the dispatch timestamp
    plus the worker's result message), so a task exceeding
    ``faults.timeout_s`` gets its worker killed and the slot respawned,
    and a worker that dies on its own fails or retries only its task.
    """
    ctx = _mp_context()
    n_workers = min(jobs, len(tasks))
    telemetry.emit("run/pool", jobs=n_workers, tasks=len(tasks))
    queue: deque[tuple[Task, int]] = deque((task, 1) for task in tasks)
    workers = [_Worker(ctx, wid) for wid in range(n_workers)]
    aborted = False

    def finish(task: Task, outcome: TaskOutcome) -> None:
        nonlocal aborted
        record(task, outcome)
        if fail_fast and not outcome.ok:
            aborted = True

    def respawn(index: int) -> None:
        workers[index] = _Worker(ctx, workers[index].wid)
        telemetry.emit("pool/respawn", worker=workers[index].wid)

    def retry_or_fail(task: Task, attempt: int, kind: str, error: str) -> None:
        if faults.retryable(kind) and faults.should_retry(attempt):
            telemetry.emit("task/retry", task=task.key, attempt=attempt)
            time.sleep(faults.delay(attempt, key=task.key))
            queue.appendleft((task, attempt + 1))
            return
        finish(
            task,
            TaskOutcome(
                key=task.key,
                failure=TaskFailure(
                    key=task.key, kind=kind, error=error, attempts=attempt
                ),
                attempts=attempt,
            ),
        )

    def handle_message(worker: _Worker) -> bool:
        """Consume one result message; False means the pipe is dead."""
        try:
            status, payload, wall_s, pid, obs_payload = worker.conn.recv()
        except (EOFError, OSError):
            return False
        task, attempt = worker.task, worker.attempt
        worker.task = None
        _absorb_observations(obs_payload, telemetry)
        if status == "ok":
            telemetry.emit(
                "task/end", task=task.key, attempt=attempt,
                wall_s=round(wall_s, 6), worker=pid,
            )
            finish(
                task,
                TaskOutcome(
                    key=task.key, value=payload, wall_s=wall_s, attempts=attempt,
                    worker=pid,
                ),
            )
        else:
            telemetry.emit(
                "task/error", task=task.key, attempt=attempt, error=payload
            )
            retry_or_fail(task, attempt, KIND_ERROR, payload)
        return True

    def worker_died(index: int) -> None:
        worker = workers[index]
        task, attempt = worker.task, worker.attempt
        exitcode = worker.process.exitcode
        telemetry.emit("run/broken-pool", task=task.key, exitcode=exitcode)
        worker.task = None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.process.join()
        respawn(index)
        retry_or_fail(
            task, attempt, KIND_BROKEN_POOL,
            f"worker process died (exit code {exitcode})",
        )

    try:
        while True:
            stopping = aborted or (drain is not None and drain.requested)
            if not stopping:
                for index, worker in enumerate(workers):
                    while queue and not worker.busy:
                        task, attempt = queue.popleft()
                        telemetry.emit(
                            "task/start", task=task.key, attempt=attempt,
                            worker=worker.process.pid,
                        )
                        try:
                            worker.dispatch(task, attempt)
                        except OSError:
                            # Idle worker found dead at dispatch: the
                            # task is not charged an attempt.
                            queue.appendleft((task, attempt))
                            telemetry.emit(
                                "run/broken-pool", task=task.key,
                                exitcode=worker.process.exitcode,
                            )
                            respawn(index)
                            worker = workers[index]
            busy = [worker for worker in workers if worker.busy]
            if not busy:
                if stopping or not queue:
                    break
                continue  # pragma: no cover - dispatch always fills a slot
            tick: float | None = None
            if faults.timeout_s is not None or drain is not None:
                tick = 0.05
            waitables: list[Any] = [worker.conn for worker in busy]
            waitables += [worker.process.sentinel for worker in busy]
            ready = set(connection.wait(waitables, timeout=tick))
            for index, worker in enumerate(workers):
                if not worker.busy:
                    continue
                if worker.conn in ready:
                    if not handle_message(worker):
                        worker_died(index)
                elif worker.process.sentinel in ready:
                    # Dead process; drain any result it managed to send.
                    if worker.conn.poll():
                        if not handle_message(worker):
                            worker_died(index)
                    else:
                        worker_died(index)
            if faults.timeout_s is not None:
                now = time.monotonic()
                for index, worker in enumerate(workers):
                    if not worker.busy:
                        continue
                    if now - worker.started <= faults.timeout_s:
                        continue
                    # Watchdog: kill the hung worker, reclaim the slot.
                    task, attempt = worker.task, worker.attempt
                    worker.task = None
                    worker.kill()
                    respawn(index)
                    telemetry.emit(
                        "task/timeout", task=task.key, attempt=attempt,
                        timeout_s=faults.timeout_s,
                    )
                    retry_or_fail(
                        task, attempt, KIND_TIMEOUT,
                        f"exceeded {faults.timeout_s}s (worker killed)",
                    )
    finally:
        for worker in workers:
            worker.shutdown()
    if aborted:
        while queue:
            task, _attempt = queue.popleft()
            finish(task, _abort_outcome(task))
    # An interrupt drain leaves queued tasks unrecorded on purpose:
    # run_tasks turns them into CampaignInterrupted.remaining.
