"""Parallel experiment engine.

Fans a batch of independent :class:`Task`\\ s — sweep points, replica
runs, whole figures — across CPUs with a
:class:`~concurrent.futures.ProcessPoolExecutor`, consulting a
:class:`~repro.harness.cache.ResultCache` first and recording every
step through :class:`~repro.harness.telemetry.Telemetry`.

Determinism is the design center: a task carries *all* of its inputs
(including any RNG seeding, typically an
:class:`~repro.rng.RngFactory` pre-perturbed with the replica's
``run_index``), workers add nothing, and outcomes are returned in task
order — so ``jobs=1`` and ``jobs=8`` produce bit-identical results and
the cache can address results by input content alone.

Execution falls back to in-process serial mode when ``jobs <= 1`` or
when a task is not picklable (e.g. a closure), with a telemetry event
so silent degradation never masquerades as parallel speedup.  Worker
crashes (``BrokenProcessPool``) fail the affected tasks — recorded,
not raised — and the rest of the batch completes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import HarnessError
from repro.harness.cache import ResultCache
from repro.harness.faults import (
    KIND_BROKEN_POOL,
    KIND_ERROR,
    KIND_TIMEOUT,
    FaultPolicy,
    TaskFailure,
)
from repro.harness.telemetry import Telemetry


@dataclass(frozen=True)
class Task:
    """One unit of harness work: a picklable callable plus arguments.

    ``key`` must be unique within a batch; it names the task in
    telemetry and indexes its outcome.  ``cache_key`` (from
    :func:`~repro.harness.cache.content_key`) opts the task into result
    caching; ``None`` means always recompute.
    """

    key: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    cache_key: str | None = None


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task: a value, or a recorded failure."""

    key: str
    value: Any = None
    failure: TaskFailure | None = None
    wall_s: float = 0.0
    attempts: int = 0
    cached: bool = False
    worker: int | None = None  # pid that ran the task

    @property
    def ok(self) -> bool:
        return self.failure is None


def _invoke(fn: Callable[..., Any], args: tuple, kwargs: dict) -> tuple[Any, float, int]:
    """Worker-side entry: run the task, measure it, report the pid."""
    t0 = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - t0, os.getpid()


def _is_picklable(task: Task) -> bool:
    try:
        pickle.dumps((task.fn, task.args, dict(task.kwargs)))
        return True
    except Exception:
        return False


def _mp_context() -> multiprocessing.context.BaseContext:
    """Start method for worker processes.

    ``fork`` where it is safe (Linux) because it avoids re-importing
    numpy in every worker; ``spawn`` elsewhere.  Overridable with the
    ``JMMW_MP_START`` environment variable.
    """
    method = os.environ.get("JMMW_MP_START")
    if not method:
        if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        else:
            method = "spawn"
    return multiprocessing.get_context(method)


def run_tasks(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    telemetry: Telemetry | None = None,
    faults: FaultPolicy | None = None,
) -> list[TaskOutcome]:
    """Execute a batch of tasks; outcomes are returned in task order.

    A task that fails (after the fault policy's retries) yields an
    outcome with ``ok == False`` — the call itself raises only for
    harness misuse (duplicate keys).  Successful, previously-uncached
    results are written back to ``cache``.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    faults = faults if faults is not None else FaultPolicy()
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise HarnessError("duplicate task keys in batch")

    outcomes: dict[str, TaskOutcome] = {}
    pending: list[Task] = []
    for task in tasks:
        if cache is not None and task.cache_key is not None:
            hit, value = cache.get(task.cache_key)
            if hit:
                telemetry.emit("cache/hit", task=task.key)
                outcomes[task.key] = TaskOutcome(key=task.key, value=value, cached=True)
                continue
            telemetry.emit("cache/miss", task=task.key)
        pending.append(task)

    effective_jobs = max(1, int(jobs))
    if effective_jobs > 1 and pending:
        unpicklable = [task.key for task in pending if not _is_picklable(task)]
        if unpicklable:
            telemetry.emit(
                "run/serial-fallback", tasks=unpicklable, reason="not picklable"
            )
            effective_jobs = 1

    if effective_jobs <= 1:
        for task in pending:
            outcomes[task.key] = _run_one_serial(task, telemetry, faults)
    elif pending:
        _run_pool(pending, effective_jobs, telemetry, faults, outcomes)

    if cache is not None:
        for task in tasks:
            outcome = outcomes[task.key]
            if outcome.ok and not outcome.cached and task.cache_key is not None:
                cache.put(task.cache_key, outcome.value)

    for outcome in outcomes.values():
        telemetry.incr("task/ok" if outcome.ok else "task/failed")
    return [outcomes[key] for key in keys]


def _run_one_serial(task: Task, telemetry: Telemetry, faults: FaultPolicy) -> TaskOutcome:
    """In-process execution with retries; timeouts are advisory only."""
    attempt = 0
    while True:
        attempt += 1
        telemetry.emit("task/start", task=task.key, attempt=attempt, worker=os.getpid())
        try:
            value, wall_s, pid = _invoke(task.fn, task.args, dict(task.kwargs))
        except Exception as exc:
            telemetry.emit(
                "task/error", task=task.key, attempt=attempt, error=repr(exc)
            )
            if faults.should_retry(attempt):
                telemetry.emit("task/retry", task=task.key, attempt=attempt)
                time.sleep(faults.delay(attempt))
                continue
            return TaskOutcome(
                key=task.key,
                failure=TaskFailure(
                    key=task.key, kind=KIND_ERROR, error=repr(exc), attempts=attempt
                ),
                attempts=attempt,
            )
        if faults.timeout_s is not None and wall_s > faults.timeout_s:
            # Serial mode cannot preempt; flag the overrun but keep the result.
            telemetry.emit(
                "task/overtime", task=task.key, wall_s=round(wall_s, 6),
                timeout_s=faults.timeout_s,
            )
        telemetry.emit(
            "task/end", task=task.key, attempt=attempt, wall_s=round(wall_s, 6),
            worker=pid,
        )
        return TaskOutcome(
            key=task.key, value=value, wall_s=wall_s, attempts=attempt, worker=pid
        )


def _run_pool(
    tasks: Sequence[Task],
    jobs: int,
    telemetry: Telemetry,
    faults: FaultPolicy,
    outcomes: dict[str, TaskOutcome],
) -> None:
    """Fan tasks over a process pool; record failures, never raise."""
    max_workers = min(jobs, len(tasks))
    telemetry.emit("run/pool", jobs=max_workers, tasks=len(tasks))
    inflight: dict[Future, tuple[Task, int, float]] = {}
    try:
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=_mp_context()) as pool:

            def submit(task: Task, attempt: int) -> None:
                telemetry.emit("task/start", task=task.key, attempt=attempt)
                future = pool.submit(_invoke, task.fn, task.args, dict(task.kwargs))
                inflight[future] = (task, attempt, time.monotonic())

            for task in tasks:
                submit(task, attempt=1)

            while inflight:
                tick = 0.05 if faults.timeout_s is not None else None
                done, _ = wait(set(inflight), timeout=tick, return_when=FIRST_COMPLETED)
                for future in done:
                    task, attempt, _t0 = inflight.pop(future)
                    try:
                        value, wall_s, pid = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        telemetry.emit(
                            "task/error", task=task.key, attempt=attempt,
                            error=repr(exc),
                        )
                        if faults.should_retry(attempt):
                            telemetry.emit("task/retry", task=task.key, attempt=attempt)
                            time.sleep(faults.delay(attempt))
                            submit(task, attempt + 1)
                        else:
                            outcomes[task.key] = TaskOutcome(
                                key=task.key,
                                failure=TaskFailure(
                                    key=task.key, kind=KIND_ERROR, error=repr(exc),
                                    attempts=attempt,
                                ),
                                attempts=attempt,
                            )
                        continue
                    telemetry.emit(
                        "task/end", task=task.key, attempt=attempt,
                        wall_s=round(wall_s, 6), worker=pid,
                    )
                    outcomes[task.key] = TaskOutcome(
                        key=task.key, value=value, wall_s=wall_s, attempts=attempt,
                        worker=pid,
                    )
                if faults.timeout_s is None:
                    continue
                now = time.monotonic()
                for future in list(inflight):
                    task, attempt, t0 = inflight[future]
                    if now - t0 <= faults.timeout_s:
                        continue
                    # A running worker cannot be preempted: cancel if still
                    # queued, otherwise abandon the future (its eventual
                    # result is discarded) and fail the task.  Timeouts are
                    # deterministic overruns, so they are not retried.
                    future.cancel()
                    del inflight[future]
                    telemetry.emit(
                        "task/timeout", task=task.key, attempt=attempt,
                        timeout_s=faults.timeout_s,
                    )
                    outcomes[task.key] = TaskOutcome(
                        key=task.key,
                        failure=TaskFailure(
                            key=task.key, kind=KIND_TIMEOUT,
                            error=f"exceeded {faults.timeout_s}s", attempts=attempt,
                        ),
                        attempts=attempt,
                    )
    except BrokenProcessPool:
        telemetry.emit("run/broken-pool", tasks=[t.key for t, _, _ in inflight.values()])
        for task, attempt, _t0 in inflight.values():
            if task.key in outcomes:
                continue
            outcomes[task.key] = TaskOutcome(
                key=task.key,
                failure=TaskFailure(
                    key=task.key, kind=KIND_BROKEN_POOL,
                    error="worker process died", attempts=attempt,
                ),
                attempts=attempt,
            )
    # Whatever the pool did, every task must have an outcome.
    for task in tasks:
        if task.key not in outcomes:
            outcomes[task.key] = TaskOutcome(
                key=task.key,
                failure=TaskFailure(
                    key=task.key, kind=KIND_BROKEN_POOL,
                    error="task lost to pool shutdown", attempts=1,
                ),
                attempts=1,
            )
