"""Campaign checkpoint/resume: a crash-safe journal of completed tasks.

A *campaign* is one CLI invocation's batch of harness tasks (all the
figures of a ``jmmw figures`` run, all the replicas of a
``characterize --runs N``).  Long campaigns die for boring reasons —
Ctrl-C, a batch-system preemption, a power cut — and restarting from
zero throws away hours of finished simulation.  The manifest fixes
that: :func:`repro.harness.run_tasks` appends one JSONL record per
completed task (fsynced, so the journal survives the same crash that
killed the run) and stores each successful result in a checksummed
sidecar store.  A later run of the *same* campaign opened with
:meth:`CampaignManifest.open_resume` serves those results back
bit-identically and only computes what is missing.

"Same campaign" is enforced, not assumed: the manifest header records
a signature hashed over the campaign's full input description —
including the package code version, via
:func:`repro.harness.cache.content_key` — and a resume against a
mismatching signature silently starts fresh.  A result can therefore
never be resumed into a campaign whose inputs or code could produce a
different answer.

The journal tolerates its own crashes: a torn final line (the writer
died mid-append) is skipped on load, and the result store quarantines
corrupt entries, so the worst case is recomputing the last task.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.harness.cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.runner import TaskOutcome

#: Bump when the journal line layout changes.
MANIFEST_FORMAT = 1


class CampaignManifest:
    """Incremental JSONL journal of one campaign's task outcomes.

    Construct through :meth:`open_fresh` (truncate and start over) or
    :meth:`open_resume` (load completed work if the signature matches).
    The runner calls :meth:`record` once per final task outcome and
    :meth:`lookup` to serve previously-completed results.
    """

    def __init__(self, path: str | Path, signature: str, *, resume: bool) -> None:
        self.path = Path(path)
        self.signature = signature
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.store = ResultCache(self.path.with_suffix(".store"))
        #: task key -> store ref, for completed-ok tasks found on resume.
        self._completed: dict[str, str] = {}
        self.resumed = False
        if resume:
            self.resumed = self._load()
        mode = "a" if self.resumed else "w"
        self._fh = self.path.open(mode, encoding="utf-8")
        if not self.resumed:
            self._append(
                {"campaign": self.signature, "format": MANIFEST_FORMAT}
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def open_fresh(cls, path: str | Path, signature: str) -> "CampaignManifest":
        """Start a new journal, discarding any previous one at ``path``."""
        return cls(path, signature, resume=False)

    @classmethod
    def open_resume(cls, path: str | Path, signature: str) -> "CampaignManifest":
        """Load completed work from ``path`` if its signature matches.

        A missing journal, an unreadable header, or a signature from a
        different campaign (other inputs, other code version) all fall
        back to a fresh journal — resuming foreign results would break
        the bit-identical guarantee.
        """
        return cls(path, signature, resume=True)

    # -- journal I/O -------------------------------------------------------

    def _load(self) -> bool:
        """Parse the existing journal; returns True if it is resumable."""
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return False
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # Torn tail from a crashed writer: everything before it
                # is intact, everything after is unreachable anyway.
                break
        if not records:
            return False
        header = records[0]
        if (
            header.get("campaign") != self.signature
            or header.get("format") != MANIFEST_FORMAT
        ):
            return False
        for record in records[1:]:
            key = record.get("task")
            if not isinstance(key, str):
                continue
            ref = record.get("ref")
            if record.get("status") == "ok" and isinstance(ref, str):
                # Last record for a key wins (a re-run overwrites).
                if ref in self.store:
                    self._completed[key] = ref
            else:
                self._completed.pop(key, None)
        return True

    def _append(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _store_key(self, task_key: str) -> str:
        return hashlib.sha256(
            f"{self.signature}\0{task_key}".encode()
        ).hexdigest()

    # -- runner interface --------------------------------------------------

    @property
    def completed(self) -> frozenset[str]:
        """Task keys whose results can be served without recomputing."""
        return frozenset(self._completed)

    def lookup(self, task_key: str) -> tuple[bool, Any]:
        """``(True, value)`` if ``task_key`` completed in a prior run."""
        ref = self._completed.get(task_key)
        if ref is None:
            return False, None
        return self.store.get(ref)

    def record(self, task_key: str, outcome: "TaskOutcome") -> None:
        """Journal one final task outcome (fsynced before returning).

        Successful values land in the result store first, then the
        journal line referencing them — so a crash between the two
        leaves an orphaned store entry (harmless), never a journal
        line pointing at nothing.
        """
        if outcome.ok:
            ref: str | None = self._store_key(task_key)
            try:
                self.store.put(ref, outcome.value)
            except Exception:
                # An unpicklable value cannot be resumed; journal the
                # completion anyway so the campaign log stays complete.
                ref = None
            record = {
                "task": task_key,
                "status": "ok",
                "ref": ref,
                "attempts": outcome.attempts,
                "wall_s": round(outcome.wall_s, 6),
            }
            if ref is not None:
                self._completed[task_key] = ref
        else:
            record = {
                "task": task_key,
                "status": "failed",
                "kind": outcome.failure.kind,
                "error": outcome.failure.error,
                "attempts": outcome.attempts,
            }
            self._completed.pop(task_key, None)
        self._append(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignManifest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
