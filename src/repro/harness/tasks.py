"""Picklable task functions and task builders.

Process pools ship tasks to workers by pickling ``(fn, args)``, which
rules out closures — so the standard units of work (run a figure,
characterize one replica of a workload, replay one shard of a
miss-curve sweep) live here as module-level functions, together with
the builders that wrap them into
:class:`~repro.harness.runner.Task` batches with content-addressed
cache keys.

Builders take an optional
:class:`~repro.harness.traceplane.TracePlane`: with one, the traces a
batch replays are generated **once** in the parent and published as
shared-memory segments, each task carries only the tiny
:class:`~repro.harness.traceplane.TraceRef` handles it needs
(``plane_refs``), and the runner refcounts segment lifetime through
``Task.plane_keys``.  Without one, every task regenerates its traces —
bit-identical results either way.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import TYPE_CHECKING, Sequence

from repro.core.config import SimConfig
from repro.harness.cache import content_key
from repro.harness.runner import Task
from repro.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.traceplane import TracePlane, TraceRef, TraceSpec


def figure_cache_key(
    module_name: str, sim: SimConfig, plane: bool = False
) -> str:
    """Cache key for one figure at one simulation effort.

    The key records which replay path (vectorized or scalar) is
    active: the paths are bit-identical by contract, but keeping them
    as distinct cache entries means a parity regression can never hide
    behind a stale cached result from the other path.  It also records
    whether invariant checking is on: a checked run must not serve an
    unchecked cached result, or the checking is silently skipped.  The
    trace plane is recorded for the same reason — plane-on and
    plane-off results are bit-identical by contract, and distinct
    cache entries keep a parity bug from hiding behind the cache.
    The ``streamed`` bit records whether chunked-stream replay
    (:mod:`repro.memsys.stream`) is on, for the same reason again.
    """
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.fastpath_coherence import kernel_available
    from repro.memsys.invariants import checking_enabled
    from repro.memsys.stream import stream_enabled

    # ``coherent`` is the resolved "will hierarchy replay use the
    # compiled kernel" bit: fastpath on *and* a kernel built.  Same
    # rationale as ``fastpath`` — identical-by-contract, but distinct
    # entries keep a kernel parity bug from hiding behind the cache.
    fastpath = fastpath_enabled()
    return content_key(
        kind="figure",
        module=module_name,
        sim=sim,
        fastpath=fastpath,
        coherent=fastpath and kernel_available(),
        checked=checking_enabled(),
        plane=bool(plane),
        streamed=stream_enabled(),
    )


def figure_trace_specs(module_name: str, sim: SimConfig) -> "list[TraceSpec]":
    """The traces one figure module replays, as plane-publishable specs.

    Figure modules opt in by exposing ``trace_specs(sim)``; modules
    without it (analytic figures, figures whose traces are unique per
    point) return an empty list and run exactly as before.
    """
    import importlib

    module = importlib.import_module(f"repro.figures.{module_name}")
    spec_fn = getattr(module, "trace_specs", None)
    return list(spec_fn(sim)) if spec_fn is not None else []


def build_figure_tasks(
    module_names: list[str],
    sim: SimConfig,
    plane: "TracePlane | None" = None,
    cache=None,
    manifest=None,
) -> list[Task]:
    """One harness task per figure module, keyed by figure id.

    With a ``plane``, each figure's declared traces are published once
    here in the parent and the task ships only their refs; figures
    with no declared traces are untouched.  ``cache``/``manifest``
    (when given) let the builder skip publishing for figures that will
    be served back without running — a warm rerun must not pay trace
    generation.  The hint is advisory: a task that runs after all
    (quarantined entry, torn journal) simply finds no refs installed
    and regenerates its traces, bit-identically.
    """
    from repro.figures.common import run_figure

    tasks = []
    for name in module_names:
        key = name.split("_", 1)[0]
        cache_key = figure_cache_key(name, sim, plane=plane is not None)
        kwargs = {}
        plane_keys: tuple = ()
        will_run = True
        if manifest is not None and key in manifest.completed:
            will_run = False
        elif cache is not None and cache.probably_has(cache_key):
            will_run = False
        if plane is not None and will_run:
            refs = plane.refs_for(figure_trace_specs(name, sim))
            if refs:
                kwargs["plane_refs"] = refs
                plane_keys = tuple(refs)
        tasks.append(
            Task(
                key=key,
                fn=run_figure,
                args=(name, sim),
                kwargs=kwargs,
                cache_key=cache_key,
                plane_keys=plane_keys,
            )
        )
    return tasks


def miss_curve_shard(
    spec: "TraceSpec",
    sizes: Sequence[int],
    kind: str,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.5,
    plane_refs: "dict[str, TraceRef] | None" = None,
) -> list[tuple[int, int, int, float]]:
    """Replay one shard (a subset of cache sizes) of a miss-curve sweep.

    The trace comes from the plane when a ref for ``spec`` is
    attached, and is regenerated locally otherwise — the simulated
    points are identical either way, because generation is a pure
    function of the spec.  Returns plain ``(size, accesses, misses,
    mpki)`` tuples so the result pickles small.
    """
    from repro.harness import traceplane
    from repro.memsys.multisim import simulate_miss_curve

    with traceplane.use_refs(plane_refs):
        bundle = traceplane.resolve(spec)
        if bundle is None:
            bundle = spec.generate()
        points = simulate_miss_curve(
            bundle.merged(),
            list(sizes),
            kind=kind,
            assoc=assoc,
            block=block,
            warmup_fraction=warmup_fraction,
        )
    return [(p.size, p.accesses, p.misses, p.mpki) for p in points]


def build_miss_curve_sweep_tasks(
    spec: "TraceSpec",
    sizes: Sequence[int],
    kind: str,
    *,
    shards: int | None = None,
    plane: "TracePlane | None" = None,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.5,
    cacheable: bool = False,
) -> list[Task]:
    """A generate-once/replay-many miss-curve sweep over one trace.

    The sweep's sizes are split into ``shards`` contiguous chunks
    (default: one task per size), each an independent harness task;
    concatenating the shard results in task order reproduces the
    single-call :func:`repro.memsys.multisim.simulate_miss_curve`
    points exactly, because each size's simulation is independent and
    the warmup split depends only on the trace.
    """
    sizes = list(sizes)
    shards = len(sizes) if shards is None else max(1, min(shards, len(sizes)))
    chunks: list[list[int]] = [[] for _ in range(shards)]
    base, extra = divmod(len(sizes), shards)
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        chunks[index] = sizes[start:stop]
        start = stop
    kwargs: dict = {}
    plane_keys: tuple = ()
    if plane is not None:
        refs = plane.refs_for([spec])
        kwargs["plane_refs"] = refs
        plane_keys = tuple(refs)
    tasks = []
    for index, chunk in enumerate(chunks):
        cache_key = None
        if cacheable:
            cache_key = content_key(
                kind="miss-curve-shard",
                spec=spec.key(),
                sizes=chunk,
                curve=kind,
                assoc=assoc,
                block=block,
                warmup_fraction=warmup_fraction,
                plane=plane is not None,
            )
        tasks.append(
            Task(
                key=f"sweep/{kind}/shard{index}",
                fn=miss_curve_shard,
                args=(spec, chunk, kind),
                kwargs=dict(
                    assoc=assoc,
                    block=block,
                    warmup_fraction=warmup_fraction,
                    **kwargs,
                ),
                cache_key=cache_key,
                plane_keys=plane_keys,
            )
        )
    return tasks


def characterize_replica(
    workload: str, n_procs: int, sim: SimConfig, factory: RngFactory
) -> dict[str, float]:
    """One replica of a workload characterization, as named quantities.

    The replica's entire perturbation comes from ``factory`` (seed +
    ``run_index``), which re-seeds the simulation through a drawn
    sub-seed — the Alameldeen–Wood discipline.  Deterministic given
    ``(sim.seed, run_index)`` regardless of which process runs it.

    Replicas deliberately share **no** traces through the plane: the
    variability methodology requires each replica to perturb its own
    generation seed, so there is nothing to generate once.  Campaigns
    still pass the plane to ``run_tasks`` for uniform scheduling and
    cleanup.
    """
    from repro.core.characterize import characterize

    sub_seed = int(factory.stream("characterize-replica").integers(1, 2**31))
    report = characterize(workload, n_procs=n_procs, sim=replace(sim, seed=sub_seed))
    return {
        "l1i_mpki": report.l1i_mpki,
        "l1d_mpki": report.l1d_mpki,
        "l2_data_mpki": report.l2_data_mpki,
        "c2c_ratio": report.c2c_ratio,
        "cpi": report.cpi.total,
    }


def characterize_run_fn(workload: str, n_procs: int, sim: SimConfig):
    """A picklable ``RunFn`` for :func:`repro.core.experiment.run_repeated`."""
    return partial(characterize_replica, workload, n_procs, sim)


def characterize_cache_key(
    workload: str, n_procs: int, sim: SimConfig, seed: int, run_index: int
) -> str:
    """Cache key for one characterization replica."""
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="characterize-replica",
        workload=workload,
        n_procs=n_procs,
        sim=sim,
        seed=seed,
        run_index=run_index,
        checked=checking_enabled(),
    )


# -- campaign signatures -----------------------------------------------------
#
# A campaign signature describes one CLI invocation's entire batch of
# work.  It goes through content_key, so it already folds in the
# package code version: a manifest journaled by different code refuses
# to resume, which is what makes resumed results bit-identical.


def figures_campaign_signature(
    module_names: list[str], sim: SimConfig, plane: bool = False
) -> str:
    """Signature of one ``jmmw figures`` campaign."""
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.fastpath_coherence import kernel_available
    from repro.memsys.invariants import checking_enabled
    from repro.memsys.stream import stream_enabled

    fastpath = fastpath_enabled()
    return content_key(
        kind="figures-campaign",
        modules=tuple(module_names),
        sim=sim,
        fastpath=fastpath,
        coherent=fastpath and kernel_available(),
        checked=checking_enabled(),
        plane=bool(plane),
        streamed=stream_enabled(),
    )


def characterize_campaign_signature(
    workload: str, n_procs: int, sim: SimConfig, n_runs: int
) -> str:
    """Signature of one ``jmmw characterize --runs N`` campaign."""
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="characterize-campaign",
        workload=workload,
        n_procs=n_procs,
        sim=sim,
        n_runs=n_runs,
        fastpath=fastpath_enabled(),
        checked=checking_enabled(),
    )
