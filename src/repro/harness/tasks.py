"""Picklable task functions and task builders.

Process pools ship tasks to workers by pickling ``(fn, args)``, which
rules out closures — so the standard units of work (run a figure,
characterize one replica of a workload) live here as module-level
functions, together with the builders that wrap them into
:class:`~repro.harness.runner.Task` batches with content-addressed
cache keys.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial

from repro.core.config import SimConfig
from repro.harness.cache import content_key
from repro.harness.runner import Task
from repro.rng import RngFactory


def figure_cache_key(module_name: str, sim: SimConfig) -> str:
    """Cache key for one figure at one simulation effort.

    The key records which replay path (vectorized or scalar) is
    active: the paths are bit-identical by contract, but keeping them
    as distinct cache entries means a parity regression can never hide
    behind a stale cached result from the other path.  It also records
    whether invariant checking is on: a checked run must not serve an
    unchecked cached result, or the checking is silently skipped.
    """
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="figure",
        module=module_name,
        sim=sim,
        fastpath=fastpath_enabled(),
        checked=checking_enabled(),
    )


def build_figure_tasks(module_names: list[str], sim: SimConfig) -> list[Task]:
    """One harness task per figure module, keyed by figure id."""
    from repro.figures.common import run_figure

    return [
        Task(
            key=name.split("_", 1)[0],
            fn=run_figure,
            args=(name, sim),
            cache_key=figure_cache_key(name, sim),
        )
        for name in module_names
    ]


def characterize_replica(
    workload: str, n_procs: int, sim: SimConfig, factory: RngFactory
) -> dict[str, float]:
    """One replica of a workload characterization, as named quantities.

    The replica's entire perturbation comes from ``factory`` (seed +
    ``run_index``), which re-seeds the simulation through a drawn
    sub-seed — the Alameldeen–Wood discipline.  Deterministic given
    ``(sim.seed, run_index)`` regardless of which process runs it.
    """
    from repro.core.characterize import characterize

    sub_seed = int(factory.stream("characterize-replica").integers(1, 2**31))
    report = characterize(workload, n_procs=n_procs, sim=replace(sim, seed=sub_seed))
    return {
        "l1i_mpki": report.l1i_mpki,
        "l1d_mpki": report.l1d_mpki,
        "l2_data_mpki": report.l2_data_mpki,
        "c2c_ratio": report.c2c_ratio,
        "cpi": report.cpi.total,
    }


def characterize_run_fn(workload: str, n_procs: int, sim: SimConfig):
    """A picklable ``RunFn`` for :func:`repro.core.experiment.run_repeated`."""
    return partial(characterize_replica, workload, n_procs, sim)


def characterize_cache_key(
    workload: str, n_procs: int, sim: SimConfig, seed: int, run_index: int
) -> str:
    """Cache key for one characterization replica."""
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="characterize-replica",
        workload=workload,
        n_procs=n_procs,
        sim=sim,
        seed=seed,
        run_index=run_index,
        checked=checking_enabled(),
    )


# -- campaign signatures -----------------------------------------------------
#
# A campaign signature describes one CLI invocation's entire batch of
# work.  It goes through content_key, so it already folds in the
# package code version: a manifest journaled by different code refuses
# to resume, which is what makes resumed results bit-identical.


def figures_campaign_signature(module_names: list[str], sim: SimConfig) -> str:
    """Signature of one ``jmmw figures`` campaign."""
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="figures-campaign",
        modules=tuple(module_names),
        sim=sim,
        fastpath=fastpath_enabled(),
        checked=checking_enabled(),
    )


def characterize_campaign_signature(
    workload: str, n_procs: int, sim: SimConfig, n_runs: int
) -> str:
    """Signature of one ``jmmw characterize --runs N`` campaign."""
    from repro.memsys.fastpath import fastpath_enabled
    from repro.memsys.invariants import checking_enabled

    return content_key(
        kind="characterize-campaign",
        workload=workload,
        n_procs=n_procs,
        sim=sim,
        n_runs=n_runs,
        fastpath=fastpath_enabled(),
        checked=checking_enabled(),
    )
