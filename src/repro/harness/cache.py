"""Content-addressed on-disk result cache.

A measurement is fully determined by its inputs: the simulation config,
the workload, the replica index — and the code that ran it.  The cache
keys each result by a SHA-256 over exactly those, so ``jmmw figures``
re-runs only what changed: edit a simulator module and every key
changes (the code-version component); tweak one figure's SimConfig and
only that figure misses.

Entries are pickled payloads under ``<root>/<k[:2]>/<k>.pkl`` (fan-out
keeps directories small).  Writes are atomic (temp file + rename) so a
killed run never leaves a truncated entry; unreadable entries are
treated as misses and deleted.  The cache root resolves, in order, from
``JMMW_CACHE_DIR``, ``$XDG_CACHE_HOME/jmmw``, ``~/.cache/jmmw``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.core.config import SimConfig

#: Bump when the on-disk payload layout changes.
CACHE_FORMAT = 1

_code_version: str | None = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (memoized per process).

    Any edit anywhere in the package invalidates the whole cache —
    coarse, but sound: a result can never be served by code that did
    not produce it.
    """
    global _code_version
    if _code_version is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def sim_fields(sim: SimConfig) -> dict[str, Any]:
    """SimConfig as a plain dict, for inclusion in a cache key."""
    return dataclasses.asdict(sim)


def content_key(**fields: Any) -> str:
    """SHA-256 key over canonical JSON of ``fields`` + the code version.

    Values must be JSON-serializable; pass SimConfigs through
    :func:`sim_fields`.  Key order does not matter (keys are sorted).
    """
    payload = {"__code__": code_version(), "__format__": CACHE_FORMAT}
    for name, value in fields.items():
        if isinstance(value, SimConfig):
            value = sim_fields(value)
        payload[name] = value
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Where the CLI keeps its cache unless ``JMMW_CACHE_DIR`` says else."""
    override = os.environ.get("JMMW_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "jmmw"


#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


class ResultCache:
    """Pickle-backed key-value store addressed by :func:`content_key`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self._load(key)
        if value is _MISS:
            return False, None
        return True, value

    def _load(self, key: str) -> Any:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return _MISS
        except Exception:
            # Truncated or stale-format entry: drop it and treat as miss.
            path.unlink(missing_ok=True)
            return _MISS
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            path.unlink(missing_ok=True)
            return _MISS
        return payload["value"]

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": CACHE_FORMAT, "key": key, "value": value}
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not _MISS

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> None:
        for entry in self.root.glob("*/*.pkl"):
            entry.unlink(missing_ok=True)
