"""Content-addressed on-disk result cache.

A measurement is fully determined by its inputs: the simulation config,
the workload, the replica index — and the code that ran it.  The cache
keys each result by a SHA-256 over exactly those, so ``jmmw figures``
re-runs only what changed: edit a simulator module and every key
changes (the code-version component); tweak one figure's SimConfig and
only that figure misses.

Entries live under ``<root>/<k[:2]>/<k>.pkl`` (fan-out keeps
directories small) as a checksummed container: a magic header, the
SHA-256 of the pickled payload, then the payload itself.  Writes go
through a temp file that is fsynced and atomically renamed, so a killed
run — or two processes sharing the cache directory — can never leave a
half-written entry where a reader finds it.  An entry that fails the
magic or checksum test (truncation, bit rot, a torn write from a
pre-atomic tool) is *quarantined*: moved aside under
``<root>/quarantine/`` and treated as a miss, so a corrupt entry costs
one recompute, never a crashed campaign.  The cache root resolves, in
order, from ``JMMW_CACHE_DIR``, ``$XDG_CACHE_HOME/jmmw``,
``~/.cache/jmmw``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.core.config import SimConfig

#: Bump when the on-disk payload layout changes.
CACHE_FORMAT = 2

#: Leading bytes of every entry; version byte tracks CACHE_FORMAT.
ENTRY_MAGIC = b"jmmw-cache\x02\n"

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

_code_version: str | None = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (memoized per process).

    Any edit anywhere in the package invalidates the whole cache —
    coarse, but sound: a result can never be served by code that did
    not produce it.
    """
    global _code_version
    if _code_version is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def sim_fields(sim: SimConfig) -> dict[str, Any]:
    """SimConfig as a plain dict, for inclusion in a cache key."""
    return dataclasses.asdict(sim)


def content_key(**fields: Any) -> str:
    """SHA-256 key over canonical JSON of ``fields`` + the code version.

    Values must be JSON-serializable; pass SimConfigs through
    :func:`sim_fields`.  Key order does not matter (keys are sorted).
    """
    payload = {"__code__": code_version(), "__format__": CACHE_FORMAT}
    for name, value in fields.items():
        if isinstance(value, SimConfig):
            value = sim_fields(value)
        payload[name] = value
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Path:
    """Where the CLI keeps its cache unless ``JMMW_CACHE_DIR`` says else."""
    override = os.environ.get("JMMW_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "jmmw"


#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


class ResultCache:
    """Checksummed pickle store addressed by :func:`content_key`.

    Safe for concurrent use by multiple processes sharing one root:
    writes are atomic renames of fsynced temp files, so a reader only
    ever sees a complete entry or none; entries that fail verification
    are quarantined (counted in :attr:`quarantined`) and re-read as
    misses.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Entries moved aside by this process after failing verification.
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        value = self._load(key)
        if value is _MISS:
            return False, None
        return True, value

    def _load(self, key: str) -> Any:
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            # Absent, or vanished mid-read (concurrent clear): a miss.
            return _MISS
        if not data.startswith(ENTRY_MAGIC):
            return self._reject_unframed(path, data)
        digest = data[len(ENTRY_MAGIC) : len(ENTRY_MAGIC) + 32]
        blob = data[len(ENTRY_MAGIC) + 32 :]
        if hashlib.sha256(blob).digest() != digest:
            return self._quarantine(path)
        try:
            payload = pickle.loads(blob)
        except Exception:
            # Checksum passed but unpickling failed: a payload written
            # by an incompatible interpreter/library — keep it aside.
            return self._quarantine(path)
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            # A well-formed entry from a different layout version is
            # stale, not corrupt: drop it silently.
            path.unlink(missing_ok=True)
            return _MISS
        return payload["value"]

    def _reject_unframed(self, path: Path, data: bytes) -> Any:
        """Handle an entry without the magic header."""
        try:
            payload = pickle.loads(data)
        except Exception:
            return self._quarantine(path)
        if isinstance(payload, dict) and "format" in payload:
            # Pre-checksum cache layout: stale, drop silently.
            path.unlink(missing_ok=True)
            return _MISS
        return self._quarantine(path)

    def _quarantine(self, path: Path) -> Any:
        """Move a corrupt entry aside and report a miss.

        The entry is preserved under ``quarantine/`` for post-mortem
        inspection rather than deleted: a corrupt result is evidence
        of a fault (disk, interrupted writer, version skew) that a
        silent unlink would destroy.  Races with other readers are
        benign — whoever replaces first wins, the rest no-op.
        """
        self.quarantined += 1
        qdir = self.root / QUARANTINE_DIR
        with contextlib.suppress(OSError):
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        with contextlib.suppress(OSError):
            path.unlink(missing_ok=True)
        return _MISS

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically and durably under ``key``.

        The temp file is fsynced before the rename: after ``put``
        returns, a crash (even a power cut, on a journaling fs) leaves
        either the complete new entry or whatever was there before —
        never a torn one.

        A concurrent :meth:`clear` may sweep this writer's temp file
        (or its fan-out directory) out from under the rename; that
        specific race is retried with a fresh temp file rather than
        surfaced, so two processes sharing a root can put/clear freely.
        """
        payload = {"format": CACHE_FORMAT, "key": key, "value": value}
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).digest()
        path = self._path(key)
        for attempt in range(8):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                continue  # parent swept between mkdir and mkstemp
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(ENTRY_MAGIC)
                    fh.write(digest)
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp_name, path)
                return
            except FileNotFoundError:
                # The temp file vanished (concurrent clear): try again.
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                continue
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        raise OSError(  # pragma: no cover - pathological contention
            f"cache put for {key} lost its temp file {attempt + 1} times"
        )

    def _entries(self):
        for entry in self.root.glob("*/*.pkl"):
            if entry.parent.name != QUARANTINE_DIR:
                yield entry

    def probably_has(self, key: str) -> bool:
        """Cheap existence hint: an entry file is present for ``key``.

        Does **not** verify the checksum (that costs a full read), so a
        True may still turn into a miss-with-quarantine at
        :meth:`get` time.  Used by task builders to skip expensive
        preparation (e.g. publishing traces to the shared-memory
        plane) for work that will almost certainly be served from
        cache; a wrong hint costs only the skipped optimization, never
        correctness.
        """
        return self._path(key).exists()

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not _MISS

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        """Remove every entry, tolerating concurrent writers and readers.

        Unlink-only (no directory removal), so a concurrent ``put``
        racing with ``clear`` either lands after (entry survives) or
        is removed whole — a reader can never observe a half-entry.
        Quarantined entries are purged too.
        """
        for entry in self.root.glob("*/*.pkl"):
            with contextlib.suppress(OSError):
                entry.unlink(missing_ok=True)
        for leftover in self.root.glob("*/*.tmp"):
            with contextlib.suppress(OSError):
                leftover.unlink(missing_ok=True)
