"""Parallel experiment harness.

The execution layer under every sweep, figure and multi-run experiment:

- :mod:`repro.harness.runner` — owned worker-process engine with
  deterministic per-task seeding (parallel results are bit-identical
  to serial) and a watchdog that kills and respawns hung workers;
- :mod:`repro.harness.cache` — content-addressed on-disk result cache
  keyed by config + workload + replica + code version, with
  checksummed entries and quarantine for corrupt ones;
- :mod:`repro.harness.checkpoint` — campaign manifest journaling
  completed tasks so an interrupted run resumes bit-identically;
- :mod:`repro.harness.telemetry` — JSONL event tracing and
  hierarchical counters with an end-of-run summary table;
- :mod:`repro.harness.faults` — per-task timeout, bounded retry, and
  graceful degradation (a failed replica is reported, not fatal);
- :mod:`repro.harness.chaos` — test-only deterministic fault injection
  (worker crashes, hangs, corrupt cache entries);
- :mod:`repro.harness.tasks` — the picklable task functions the CLI
  and experiment layer fan out;
- :mod:`repro.harness.traceplane` — generate-once/replay-many trace
  sharing over POSIX shared memory: the campaign parent publishes each
  trace bundle once, workers attach by :class:`TraceRef`, and every
  segment is unlinked at campaign end (crash-safe via an fsynced
  ledger swept on the next campaign start).

Quickstart::

    from repro.harness import FaultPolicy, Task, Telemetry, run_tasks

    tasks = [Task(key=f"p{p}", fn=measure, args=(p,)) for p in (1, 2, 4, 8)]
    outcomes = run_tasks(tasks, jobs=4, faults=FaultPolicy(max_attempts=2))
    values = {o.key: o.value for o in outcomes if o.ok}
"""

from repro.harness.cache import (
    ResultCache,
    code_version,
    content_key,
    default_cache_dir,
    sim_fields,
)
from repro.harness.checkpoint import CampaignManifest
from repro.harness.faults import (
    KIND_ABORTED,
    KIND_BROKEN_POOL,
    KIND_ERROR,
    KIND_TIMEOUT,
    FaultPolicy,
    TaskFailure,
)
from repro.harness.runner import Task, TaskOutcome, run_tasks
from repro.harness.telemetry import Telemetry, iter_trace, read_trace
from repro.harness.traceplane import (
    TracePlane,
    TraceRef,
    TraceSpec,
    plane_enabled,
    sweep_stale,
)

__all__ = [
    "ResultCache",
    "code_version",
    "content_key",
    "default_cache_dir",
    "sim_fields",
    "CampaignManifest",
    "KIND_ABORTED",
    "KIND_BROKEN_POOL",
    "KIND_ERROR",
    "KIND_TIMEOUT",
    "FaultPolicy",
    "TaskFailure",
    "Task",
    "TaskOutcome",
    "run_tasks",
    "Telemetry",
    "iter_trace",
    "read_trace",
    "TracePlane",
    "TraceRef",
    "TraceSpec",
    "plane_enabled",
    "sweep_stale",
]
