"""Parallel experiment harness.

The execution layer under every sweep, figure and multi-run experiment:

- :mod:`repro.harness.runner` — process-pool engine with deterministic
  per-task seeding (parallel results are bit-identical to serial);
- :mod:`repro.harness.cache` — content-addressed on-disk result cache
  keyed by config + workload + replica + code version;
- :mod:`repro.harness.telemetry` — JSONL event tracing and
  hierarchical counters with an end-of-run summary table;
- :mod:`repro.harness.faults` — per-task timeout, bounded retry, and
  graceful degradation (a failed replica is reported, not fatal);
- :mod:`repro.harness.tasks` — the picklable task functions the CLI
  and experiment layer fan out.

Quickstart::

    from repro.harness import FaultPolicy, Task, Telemetry, run_tasks

    tasks = [Task(key=f"p{p}", fn=measure, args=(p,)) for p in (1, 2, 4, 8)]
    outcomes = run_tasks(tasks, jobs=4, faults=FaultPolicy(max_attempts=2))
    values = {o.key: o.value for o in outcomes if o.ok}
"""

from repro.harness.cache import (
    ResultCache,
    code_version,
    content_key,
    default_cache_dir,
    sim_fields,
)
from repro.harness.faults import (
    KIND_BROKEN_POOL,
    KIND_ERROR,
    KIND_TIMEOUT,
    FaultPolicy,
    TaskFailure,
)
from repro.harness.runner import Task, TaskOutcome, run_tasks
from repro.harness.telemetry import Telemetry, iter_trace, read_trace

__all__ = [
    "ResultCache",
    "code_version",
    "content_key",
    "default_cache_dir",
    "sim_fields",
    "KIND_BROKEN_POOL",
    "KIND_ERROR",
    "KIND_TIMEOUT",
    "FaultPolicy",
    "TaskFailure",
    "Task",
    "TaskOutcome",
    "run_tasks",
    "Telemetry",
    "iter_trace",
    "read_trace",
]
