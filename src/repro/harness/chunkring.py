"""Bounded shared-memory rings of trace chunk segments.

The trace plane (:mod:`repro.harness.traceplane`) shares traces
generate-once/replay-many — but the whole trace must exist before the
first replay starts.  A :class:`ChunkRing` removes that barrier:
producer processes generate chunks into a fixed number of
shared-memory slots while the consumer replays them, so generation is
pipelined with replay and peak memory is bounded by
``slots x chunk_refs x 8`` bytes per stream regardless of trace
length.  Backpressure is the free-slot queue: a producer that gets
ahead blocks until the consumer returns a slot.

Crash-safety reuses the plane's ledger protocol: the ring writes a
``<generation>.ledger`` (head: owning pid; entries: shm segment names)
in the same directory the plane uses, so
:func:`repro.harness.traceplane.sweep_stale` — which every plane and
ring runs on construction — reaps ring segments leaked by a killed
consumer.  Producers watch their parent pid and exit on their own when
the consumer dies mid-chunk.

Each stream gets its *own* segment and slot queues, so two streams
can never deadlock each other, and a ring on a platform without the
``fork`` start method degrades to inline generation (same chunks, no
pipelining).
"""

from __future__ import annotations

import atexit
import contextlib
import json
import multiprocessing
import os
import queue as _queue
import uuid
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigError, SimulationError
from repro.harness.traceplane import (
    SEGMENT_PREFIX,
    _close_shm_mapping,
    sweep_stale,
)
from repro.memsys.stream import simulate_miss_curve_stream, stream_chunk_refs

#: Seconds between liveness polls while blocked on a slot queue.  Long
#: enough to stay off the profile, short enough that an orphaned
#: producer exits promptly after its consumer is killed.
_POLL_S = 0.25


def _producer_main(chunks, views, free_q, filled_q, chunk_refs, parent_pid):
    """Producer body: drain ``chunks`` into ring slots until EOF.

    Runs in a forked child, writing into the inherited shared mapping.
    Orphan safety: while blocked for a free slot it polls the parent
    pid and exits once the consumer is gone, so a killed consumer
    never leaves a producer spinning (the swept segment outlives
    neither).
    """
    try:
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=np.uint64)
            for start in range(0, int(arr.size), chunk_refs):
                part = arr[start : start + chunk_refs]
                while True:
                    if os.getppid() != parent_pid:
                        os._exit(1)
                    try:
                        slot = free_q.get(timeout=_POLL_S)
                        break
                    except _queue.Empty:
                        continue
                views[slot][: part.size] = part
                filled_q.put(("chunk", slot, int(part.size)))
        filled_q.put(("eof",))
    except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
        with contextlib.suppress(Exception):
            filled_q.put(("error", f"{type(exc).__name__}: {exc}"))
        with contextlib.suppress(Exception):
            filled_q.close()
            filled_q.join_thread()  # flush before the hard exit
        os._exit(1)
    # Fall through to a normal exit: multiprocessing flushes the queue
    # feeder on the way out (a hard exit here would race the feeder and
    # drop the EOF).


class _RingStream:
    """Parent-side record of one producer-filled stream."""

    def __init__(self, shm, views, free_q, filled_q, proc) -> None:
        self.shm = shm
        self.views = views
        self.free_q = free_q
        self.filled_q = filled_q
        self.proc = proc
        self.done = False


class ChunkRing:
    """A bounded ring of chunk slots per stream, filled by producers.

    ``chunk_refs`` defaults to the ``JMMW_STREAM_CHUNK`` knob;
    ``slots_per_stream`` bounds how far a producer may run ahead of
    its consumer.  :meth:`stream_chunks` moves a lazy chunk iterator
    into a forked producer and returns the consumer-side iterator;
    chunks come back bit-identical and in order, so any streaming
    consumer (:func:`repro.memsys.stream.simulate_miss_curve_stream`,
    :class:`repro.memsys.stream.TraceStream`) runs unchanged on top.
    """

    def __init__(
        self,
        chunk_refs: int | None = None,
        slots_per_stream: int = 4,
        root: str | Path | None = None,
    ) -> None:
        from repro.harness.cache import default_cache_dir

        self.chunk_refs = (
            int(chunk_refs) if chunk_refs is not None else stream_chunk_refs()
        )
        if self.chunk_refs < 1:
            raise ConfigError("chunk_refs must be >= 1")
        if slots_per_stream < 2:
            raise ConfigError("slots_per_stream must be >= 2")
        self.slots_per_stream = int(slots_per_stream)
        self.generation = uuid.uuid4().hex
        self.root = (
            Path(root) if root is not None else default_cache_dir() / "traceplane"
        )
        self.root.mkdir(parents=True, exist_ok=True)
        sweep_stale(self.root)
        self._owner_pid = os.getpid()
        self._streams: list[_RingStream] = []
        self._closed = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platform
            self._ctx = None
        self._ledger = self.root / f"{self.generation}.ledger"
        self._ledger.write_text(
            json.dumps({"pid": self._owner_pid, "generation": self.generation})
            + "\n",
            encoding="utf-8",
        )
        atexit.register(self.close)

    @property
    def pipelined(self) -> bool:
        """Whether producers actually run in parallel here."""
        return self._ctx is not None

    def stream_chunks(self, chunks: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Run ``chunks`` in a producer process; yield them in order.

        The iterator (with all its pending generation work) is handed
        to a forked producer, which starts filling this stream's slots
        immediately — so creating several streams before consuming the
        first is what pipelines generation with replay.  Without the
        ``fork`` start method the chunks are generated inline instead,
        bit-identically.
        """
        if self._closed:
            raise SimulationError("cannot stream on a closed chunk ring")
        if self._ctx is None:  # pragma: no cover - non-fork platform
            return iter(chunks)
        index = len(self._streams)
        name = f"{SEGMENT_PREFIX}{self.generation[:8]}-ring{index}"
        slot_words = self.chunk_refs
        shm = shared_memory.SharedMemory(
            create=True, size=max(8, self.slots_per_stream * slot_words * 8),
            name=name,
        )
        with self._ledger.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"backend": "shm", "location": name}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        buf = np.frombuffer(
            shm.buf, dtype=np.uint64, count=self.slots_per_stream * slot_words
        )
        views = [
            buf[i * slot_words : (i + 1) * slot_words]
            for i in range(self.slots_per_stream)
        ]
        free_q = self._ctx.Queue()
        filled_q = self._ctx.Queue()
        for slot in range(self.slots_per_stream):
            free_q.put(slot)
        proc = self._ctx.Process(
            target=_producer_main,
            args=(chunks, views, free_q, filled_q, self.chunk_refs, os.getpid()),
            daemon=True,
        )
        proc.start()
        stream = _RingStream(shm, views, free_q, filled_q, proc)
        self._streams.append(stream)
        obs.incr("harness/chunk_ring/streams")
        return self._consume(stream)

    def _consume(self, stream: _RingStream) -> Iterator[np.ndarray]:
        try:
            while True:
                item = self._next_item(stream)
                if item[0] == "eof":
                    return
                if item[0] == "error":
                    raise SimulationError(f"chunk producer failed: {item[1]}")
                _, slot, n = item
                # Copy out before releasing the slot: the yielded chunk
                # must stay valid after the producer refills the slot.
                out = np.array(stream.views[slot][:n])
                stream.free_q.put(slot)
                obs.incr("harness/chunk_ring/chunks")
                yield out
        finally:
            self._finish_stream(stream)

    def _next_item(self, stream: _RingStream):
        while True:
            try:
                return stream.filled_q.get(timeout=_POLL_S)
            except _queue.Empty:
                if not stream.proc.is_alive():
                    # One last non-blocking drain: the producer may have
                    # queued its final item right before exiting.
                    try:
                        return stream.filled_q.get_nowait()
                    except _queue.Empty:
                        raise SimulationError(
                            "chunk producer died without delivering EOF"
                        ) from None

    def _finish_stream(self, stream: _RingStream) -> None:
        if stream.done:
            return
        stream.done = True
        if stream.proc.is_alive():
            stream.proc.terminate()
        stream.proc.join(timeout=5)
        for q in (stream.free_q, stream.filled_q):
            with contextlib.suppress(Exception):
                q.close()
                q.cancel_join_thread()
        stream.views.clear()
        with contextlib.suppress(BufferError, OSError):
            stream.shm.unlink()
        _close_shm_mapping(stream.shm)

    def close(self) -> None:
        """Stop producers, unlink segments, retire the ledger.

        Idempotent and pid-guarded like the plane's close: forked
        producers inherit the atexit registration but must never tear
        down the consumer's segments.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        for stream in self._streams:
            self._finish_stream(stream)
        with contextlib.suppress(OSError):
            self._ledger.unlink()


def miss_curve_sweep_stream(
    specs: Sequence,
    sizes: Sequence[int],
    kind: str,
    *,
    assoc: int = 4,
    block: int = 64,
    warmup_fraction: float = 0.5,
    fastpath: bool | None = None,
    chunk_refs: int | None = None,
    slots_per_stream: int = 4,
):
    """Pipelined miss-curve sweeps: generate and replay concurrently.

    Starts one producer per spec (all generating in parallel), then
    replays the streams in spec order through the carried-state sweep —
    so the first spec's replay overlaps every other spec's generation,
    where the sequential path pays sum(generate) + sum(replay).
    Returns ``{spec.key(): points}`` with points bit-identical to
    ``simulate_miss_curve(spec.generate().merged(), ...)`` per spec.

    Specs must be single-processor (the sweep replays the merged
    stream, which for one processor is the stream itself).  Specs
    resolvable through an attached trace plane are streamed from the
    shared segment instead of spawning a producer.
    """
    from repro.figures.common import make_workload
    from repro.harness import traceplane
    from repro.rng import RngFactory

    ring = ChunkRing(chunk_refs=chunk_refs, slots_per_stream=slots_per_stream)
    results = {}
    try:
        feeds = []
        for spec in specs:
            if spec.n_procs != 1:
                raise ConfigError(
                    "pipelined sweeps require single-processor specs "
                    f"(got n_procs={spec.n_procs})"
                )
            bundle = traceplane.resolve(spec)
            if bundle is not None:
                total = int(bundle.per_cpu[0].size)
                feeds.append((spec, total, _array_chunks(
                    bundle.per_cpu[0], ring.chunk_refs
                )))
                continue
            workload = make_workload(spec.workload, scale=spec.scale)
            chunked = workload.generate_chunks(
                1, spec.sim, RngFactory(seed=spec.sim.seed), ring.chunk_refs
            )
            feeds.append(
                (spec, chunked.lengths[0], ring.stream_chunks(chunked.per_cpu[0]))
            )
        for spec, total, chunks in feeds:
            results[spec.key()] = simulate_miss_curve_stream(
                chunks, total, list(sizes), kind=kind, assoc=assoc,
                block=block, warmup_fraction=warmup_fraction, fastpath=fastpath,
            )
    finally:
        ring.close()
    return results


def _array_chunks(arr: np.ndarray, chunk_refs: int) -> Iterator[np.ndarray]:
    for start in range(0, int(arr.size), chunk_refs):
        yield arr[start : start + chunk_refs]
