"""Shared-memory trace plane: generate once, replay many.

The paper's sweeps replay the *same* reference streams against many
memory-system configurations (Figures 12/13/16, the miss-curve
sweeps).  Without help, every harness task regenerates its trace — or
worse, the parent pickles megabytes of ``uint64`` arrays through a
pipe per task — so campaign cost scales with ``configs x trace size``
instead of ``trace size + configs``.

The trace plane fixes the scaling:

- the parent materializes each :class:`~repro.workloads.base.TraceBundle`
  **once**, content-addressed by a :class:`TraceSpec` (workload name +
  scale + processor count + SimConfig, through
  :func:`~repro.harness.cache.content_key`);
- the bundle's arrays are published into a named
  :mod:`multiprocessing.shared_memory` segment — or an mmap-backed
  *spill file* when the trace exceeds :data:`DEFAULT_SPILL_BYTES`
  (tunable via ``JMMW_TRACE_PLANE_SPILL``), so traces larger than
  ``/dev/shm`` still share pages through the page cache;
- workers receive only a :class:`TraceRef` — a few hundred bytes —
  and :func:`attach` maps the segment read-only and rebuilds the
  bundle as zero-copy array views.

Lifecycle and crash safety:

- every segment carries a 64-byte header (magic, plane *generation*,
  payload size); :func:`attach` validates all three and raises
  :class:`~repro.errors.TracePlaneError` on any mismatch — a stale
  ref from an earlier campaign or a truncated spill file fails loudly
  instead of replaying silently wrong data;
- the parent owns every segment: :meth:`TracePlane.close` unlinks
  them all, so a worker killed by the watchdog (SIGKILL skips all
  child cleanup) can never leak — its mappings die with it and the
  name is still the parent's to remove;
- segment refcounts (:meth:`TracePlane.retain` on dispatch,
  :meth:`TracePlane.release` when a task reaches its final outcome —
  see ``run_tasks(..., plane=...)``) unlink a segment as soon as the
  last task needing it completes, before campaign end;
- a *ledger* file records this process's pid and every published
  segment; :func:`sweep_stale` (run by every new plane, or manually)
  reaps segments whose owning process died without closing, and an
  ``atexit`` hook backstops normal interpreter exits.

Everything is deterministic: trace generation draws from stateless
:class:`~repro.rng.RngFactory` streams, so a plane-published bundle is
bit-identical to the one a worker would have regenerated — plane-on,
plane-off and serial campaigns produce byte-identical stdout.

Obs counters (``jmmw ... --obs``): ``harness/trace_plane/segments``
(published), ``segments_live`` (published minus unlinked),
``bytes_shared``, ``spill_segments``, ``attaches`` and
``pickle_bytes_avoided`` (bytes that did *not* travel through a task
pipe because the worker attached instead).
"""

from __future__ import annotations

import atexit
import contextlib
import json
import os
import struct
import sys
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro import obs
from repro.core.config import SimConfig
from repro.errors import TracePlaneError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.base import TraceBundle

#: Environment switch for the plane (CLI ``--trace-plane`` /
#: ``--no-trace-plane``); unset means *on*.
TRACE_PLANE_ENV = "JMMW_TRACE_PLANE"

#: Environment override for the shm -> spill-file threshold (bytes).
SPILL_ENV = "JMMW_TRACE_PLANE_SPILL"

#: Payloads at or above this spill to an mmap-backed file instead of
#: ``/dev/shm`` (which is typically capped at half of RAM).
DEFAULT_SPILL_BYTES = 256 * 1024 * 1024

#: Shared-memory segment names: ``jmmw-tp-<generation[:8]>-<n>``.
SEGMENT_PREFIX = "jmmw-tp-"

#: First bytes of every segment and spill file.
HEADER_MAGIC = b"jmmw-traceplane\x01"

#: Fixed header: magic (16) + generation (32 hex) + payload nbytes (8)
#: + padding to a 64-byte, 8-aligned data offset.
HEADER_BYTES = 64


def plane_enabled() -> bool:
    """Whether campaigns should publish traces through the plane."""
    raw = os.environ.get(TRACE_PLANE_ENV, "").strip().lower()
    if not raw:
        return True
    return raw not in ("0", "false", "no", "off")


def spill_threshold() -> int:
    """Payload size (bytes) at which publishing spills to a file."""
    raw = os.environ.get(SPILL_ENV, "").strip()
    if not raw:
        return DEFAULT_SPILL_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SPILL_BYTES


@dataclass(frozen=True)
class TraceSpec:
    """Everything that determines one generated trace, content-addressed.

    ``workload``/``scale`` go through
    :func:`repro.figures.common.make_workload`; generation always uses
    ``RngFactory(seed=sim.seed)`` streams, which are stateless — so
    two processes generating the same spec produce bit-identical
    bundles, and publishing is a pure optimization.
    """

    workload: str
    scale: int | None
    n_procs: int
    sim: SimConfig

    def key(self) -> str:
        from repro.harness.cache import content_key

        return content_key(
            kind="trace-spec",
            workload=self.workload,
            scale=self.scale,
            n_procs=self.n_procs,
            sim=self.sim,
        )

    def generate(self) -> "TraceBundle":
        """Materialize the trace (deterministic; no plane involved)."""
        from repro.figures.common import make_workload
        from repro.rng import RngFactory

        workload = make_workload(self.workload, scale=self.scale)
        with obs.span(
            "workload/trace-gen",
            workload=type(workload).__name__,
            procs=self.n_procs,
        ):
            return workload.generate(
                self.n_procs, self.sim, RngFactory(seed=self.sim.seed)
            )


@dataclass(frozen=True)
class TraceRef:
    """A lightweight, picklable handle to one published trace.

    This — not the arrays — is what travels through the task pipe.
    ``backend`` is ``"shm"`` (``location`` is a segment name) or
    ``"spill"`` (``location`` is a file path); ``generation`` ties the
    ref to the plane that published it, so refs cannot outlive their
    campaign undetected.
    """

    spec_key: str
    generation: str
    backend: str
    location: str
    nbytes: int
    lengths: tuple[int, ...]
    instructions: tuple[int, ...]
    workload: str
    meta_json: str


# -- segment layout ----------------------------------------------------------


def _pack_header(generation: str, nbytes: int) -> bytes:
    header = HEADER_MAGIC + generation.encode("ascii") + struct.pack("<Q", nbytes)
    return header.ljust(HEADER_BYTES, b"\0")


def _parse_header(buf: bytes, what: str) -> tuple[str, int]:
    if len(buf) < HEADER_BYTES:
        raise TracePlaneError(f"{what}: truncated header ({len(buf)} bytes)")
    if buf[:16] != HEADER_MAGIC:
        raise TracePlaneError(f"{what}: not a trace-plane segment (bad magic)")
    generation = buf[16:48].decode("ascii", errors="replace")
    (nbytes,) = struct.unpack("<Q", buf[48:56])
    return generation, nbytes


def _open_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the process's resource tracker, which then unlinks
    it when *this* process exits — yanking the segment out from under
    the parent and every sibling worker.  Tracking belongs to the
    creator only, so attaches temporarily no-op the registration (the
    3.13+ ``track=False`` parameter, backported by hand).
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - newer runtime
        return shared_memory.SharedMemory(name=name, track=False)
    original = resource_tracker.register

    def _skip_shm(path: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(path, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _close_shm_mapping(segment: shared_memory.SharedMemory) -> None:
    """Close a mapped segment, tolerating live numpy views.

    ``SharedMemory.close`` raises ``BufferError`` while views into the
    buffer exist — and its ``__del__`` would retry at GC time and spam
    "Exception ignored" tracebacks to stderr.  When views are still
    alive, leave the mapping in place for them (it is reclaimed when
    the process exits), close just the descriptor, and disarm the
    destructor's retry.
    """
    try:
        segment.close()
    except BufferError:
        segment._buf = None
        segment._mmap = None
        fd = getattr(segment, "_fd", -1)
        if isinstance(fd, int) and fd >= 0:
            with contextlib.suppress(OSError):
                os.close(fd)
            segment._fd = -1
    except OSError:
        pass


# -- attach (worker side) ----------------------------------------------------


class _Attachment:
    """One process-local mapping of a published segment."""

    def __init__(self, ref: TraceRef, base: np.ndarray, closer) -> None:
        self.ref = ref
        self.base = base
        self._closer = closer

    def bundle(self) -> "TraceBundle":
        from repro.workloads.base import TraceBundle

        per_cpu = []
        start = 0
        for length in self.ref.lengths:
            per_cpu.append(self.base[start : start + length])
            start += length
        return TraceBundle(
            workload=self.ref.workload,
            per_cpu=per_cpu,
            instructions=list(self.ref.instructions),
            meta=json.loads(self.ref.meta_json),
        )

    def close(self) -> None:
        self.base = None
        if self._closer is not None:
            with contextlib.suppress(BufferError, OSError):
                self._closer()
            self._closer = None


#: Process-local attachment cache: a worker running many tasks against
#: the same trace maps it once.  Keyed by (generation, spec_key) so a
#: ref from a different plane generation can never hit a stale entry.
_ATTACH_CACHE: dict[tuple[str, str], _Attachment] = {}


def _attach_shm(ref: TraceRef) -> _Attachment:
    try:
        segment = _open_segment(ref.location)
    except FileNotFoundError:
        raise TracePlaneError(
            f"trace segment {ref.location!r} no longer exists "
            "(stale TraceRef: its campaign ended or its plane closed)"
        ) from None
    try:
        generation, nbytes = _parse_header(
            bytes(segment.buf[:HEADER_BYTES]), ref.location
        )
        if generation != ref.generation:
            raise TracePlaneError(
                f"trace segment {ref.location!r} belongs to plane generation "
                f"{generation[:8]}, ref was issued by {ref.generation[:8]} "
                "(stale TraceRef)"
            )
        if nbytes != ref.nbytes or segment.size < HEADER_BYTES + ref.nbytes:
            raise TracePlaneError(
                f"trace segment {ref.location!r}: payload is {nbytes} bytes, "
                f"ref expects {ref.nbytes} (truncated or corrupt segment)"
            )
        base = np.frombuffer(
            segment.buf, dtype=np.uint64, count=ref.nbytes // 8,
            offset=HEADER_BYTES,
        )
    except TracePlaneError:
        _close_shm_mapping(segment)
        raise
    return _Attachment(ref, base, lambda: _close_shm_mapping(segment))


def _attach_spill(ref: TraceRef) -> _Attachment:
    path = Path(ref.location)
    try:
        size = path.stat().st_size
        with path.open("rb") as fh:
            header = fh.read(HEADER_BYTES)
    except FileNotFoundError:
        raise TracePlaneError(
            f"spill file {path} no longer exists (stale TraceRef)"
        ) from None
    generation, nbytes = _parse_header(header, str(path))
    if generation != ref.generation:
        raise TracePlaneError(
            f"spill file {path} belongs to plane generation "
            f"{generation[:8]}, ref was issued by {ref.generation[:8]} "
            "(stale TraceRef)"
        )
    if nbytes != ref.nbytes or size < HEADER_BYTES + ref.nbytes:
        raise TracePlaneError(
            f"spill file {path}: {size} bytes on disk cannot hold the "
            f"{ref.nbytes}-byte payload the ref expects (truncated file)"
        )
    mapped = np.memmap(path, dtype=np.uint64, mode="r", offset=HEADER_BYTES,
                       shape=(ref.nbytes // 8,))
    return _Attachment(ref, np.asarray(mapped), mapped._mmap.close)


def attach(ref: TraceRef) -> "TraceBundle":
    """Map a published trace and rebuild its bundle, zero-copy.

    Validates the segment's magic, generation and payload size against
    the ref and raises :class:`~repro.errors.TracePlaneError` on any
    mismatch.  Mappings are cached per process, so a worker replaying
    many tasks against one trace pays the map cost once.
    """
    if ref.backend not in ("shm", "spill"):
        raise TracePlaneError(f"unknown trace-plane backend {ref.backend!r}")
    cache_key = (ref.generation, ref.spec_key)
    attachment = _ATTACH_CACHE.get(cache_key)
    if attachment is None:
        attachment = _attach_shm(ref) if ref.backend == "shm" else _attach_spill(ref)
        _ATTACH_CACHE[cache_key] = attachment
    obs.incr("harness/trace_plane/attaches")
    obs.incr("harness/trace_plane/pickle_bytes_avoided", ref.nbytes)
    return attachment.bundle()


def detach_all() -> None:
    """Drop every cached mapping in this process (tests, plane close)."""
    for attachment in _ATTACH_CACHE.values():
        attachment.close()
    _ATTACH_CACHE.clear()


def _detach_generation(generation: str) -> None:
    for key in [k for k in _ATTACH_CACHE if k[0] == generation]:
        _ATTACH_CACHE.pop(key).close()


# -- ref installation (task side) -------------------------------------------

#: Refs installed for the currently-running task, keyed by spec key.
#: Figure code asks :func:`resolve` for its spec; a miss means "no
#: plane" and the caller generates locally — same result, more work.
_ACTIVE_REFS: dict[str, TraceRef] = {}


@contextlib.contextmanager
def use_refs(refs: Mapping[str, TraceRef] | None) -> Iterator[None]:
    """Install ``refs`` for the duration of one task body."""
    if not refs:
        yield
        return
    previous = dict(_ACTIVE_REFS)
    _ACTIVE_REFS.update(refs)
    try:
        yield
    finally:
        _ACTIVE_REFS.clear()
        _ACTIVE_REFS.update(previous)


def resolve(spec: TraceSpec) -> "TraceBundle | None":
    """The published bundle for ``spec``, or None when not installed."""
    ref = _ACTIVE_REFS.get(spec.key())
    if ref is None:
        return None
    return attach(ref)


# -- the plane (parent side) -------------------------------------------------


class _Segment:
    """Parent-side record of one published segment."""

    def __init__(self, ref: TraceRef, shm: shared_memory.SharedMemory | None,
                 spill: Path | None) -> None:
        self.ref = ref
        self.shm = shm
        self.spill = spill


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


def _unlink_shm_by_name(name: str) -> None:
    try:
        segment = _open_segment(name)
    except FileNotFoundError:
        return
    with contextlib.suppress(BufferError, OSError):
        segment.unlink()
    _close_shm_mapping(segment)


def sweep_stale(root: str | Path) -> int:
    """Reap segments whose owning process died; returns segments reaped.

    Reads every ``*.ledger`` under ``root``; a ledger whose recorded
    pid is gone has leaked its segments (SIGKILL of the whole process
    tree skips ``atexit``), so its shm names are unlinked, its spill
    files removed, and the ledger deleted.  Ledgers of live processes
    are left alone.
    """
    root = Path(root)
    reaped = 0
    for ledger in sorted(root.glob("*.ledger")):
        try:
            lines = ledger.read_text(encoding="utf-8").splitlines()
            head = json.loads(lines[0]) if lines else {}
        except (OSError, json.JSONDecodeError):
            continue
        pid = head.get("pid")
        if isinstance(pid, int) and _pid_alive(pid):
            continue
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("backend") == "shm":
                _unlink_shm_by_name(entry.get("location", ""))
                reaped += 1
            elif entry.get("backend") == "spill":
                with contextlib.suppress(OSError):
                    Path(entry.get("location", "")).unlink()
                reaped += 1
        with contextlib.suppress(OSError):
            ledger.unlink()
    return reaped


class TracePlane:
    """Parent-owned registry of published traces for one campaign.

    Construction sweeps stale segments left by dead processes, then
    writes this process's ledger.  :meth:`publish` is idempotent per
    spec; :meth:`retain`/:meth:`release` refcount specs per pending
    task so a segment is unlinked the moment its last task completes;
    :meth:`close` (idempotent, also registered with ``atexit`` and
    pid-guarded so forked workers can never trigger it) unlinks
    whatever remains and removes the ledger.
    """

    def __init__(self, root: str | Path | None = None,
                 spill_bytes: int | None = None) -> None:
        from repro.harness.cache import default_cache_dir

        self.generation = uuid.uuid4().hex
        self.root = Path(root) if root is not None else default_cache_dir() / "traceplane"
        self.root.mkdir(parents=True, exist_ok=True)
        self.spill_bytes = spill_bytes if spill_bytes is not None else spill_threshold()
        self._owner_pid = os.getpid()
        self._segments: dict[str, _Segment] = {}
        self._refcounts: dict[str, int] = {}
        self._counter = 0
        self._closed = False
        sweep_stale(self.root)
        self._ledger = self.root / f"{self.generation}.ledger"
        self._ledger.write_text(
            json.dumps({"pid": self._owner_pid, "generation": self.generation})
            + "\n",
            encoding="utf-8",
        )
        atexit.register(self.close)

    # -- publishing ---------------------------------------------------------

    @property
    def refs(self) -> dict[str, TraceRef]:
        """spec key -> ref for every currently-published segment."""
        return {key: seg.ref for key, seg in self._segments.items()}

    @property
    def bytes_shared(self) -> int:
        return sum(seg.ref.nbytes for seg in self._segments.values())

    def publish(self, spec: TraceSpec, bundle: "TraceBundle | None" = None) -> TraceRef:
        """Materialize ``spec`` (unless ``bundle`` is given) and share it."""
        if self._closed:
            raise TracePlaneError("cannot publish on a closed trace plane")
        key = spec.key()
        existing = self._segments.get(key)
        if existing is not None:
            return existing.ref
        if bundle is None:
            bundle = spec.generate()
        # Publication streams the per-CPU arrays into the segment one
        # at a time — never through a concatenated copy of the whole
        # payload, which used to double peak memory at exactly the
        # sizes where spilling was supposed to relieve it.
        arrays = [np.ascontiguousarray(t) for t in bundle.per_cpu]
        nbytes = sum(int(a.nbytes) for a in arrays)
        header = _pack_header(self.generation, nbytes)
        self._counter += 1
        meta_json = json.dumps(_jsonable_meta(bundle.meta))
        common = dict(
            spec_key=key,
            generation=self.generation,
            nbytes=nbytes,
            lengths=tuple(int(t.size) for t in bundle.per_cpu),
            instructions=tuple(int(n) for n in bundle.instructions),
            workload=bundle.workload,
            meta_json=meta_json,
        )
        if nbytes >= self.spill_bytes:
            path = self.root / f"{SEGMENT_PREFIX}{self.generation[:8]}-{self._counter}.trace"
            with path.open("wb") as fh:
                fh.write(header)
                for arr in arrays:
                    if arr.nbytes:
                        fh.write(arr.data)
                fh.flush()
                os.fsync(fh.fileno())
            ref = TraceRef(backend="spill", location=str(path), **common)
            segment = _Segment(ref, shm=None, spill=path)
            obs.incr("harness/trace_plane/spill_segments")
        else:
            name = f"{SEGMENT_PREFIX}{self.generation[:8]}-{self._counter}"
            shm = shared_memory.SharedMemory(
                create=True, size=HEADER_BYTES + max(8, nbytes), name=name
            )
            shm.buf[:HEADER_BYTES] = header
            if nbytes:
                view = np.frombuffer(
                    shm.buf, dtype=np.uint64, count=nbytes // 8,
                    offset=HEADER_BYTES,
                )
                start = 0
                for arr in arrays:
                    view[start : start + arr.size] = arr
                    start += int(arr.size)
                del view
            ref = TraceRef(backend="shm", location=name, **common)
            segment = _Segment(ref, shm=shm, spill=None)
        self._segments[key] = segment
        with self._ledger.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"backend": ref.backend, "location": ref.location}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        obs.incr("harness/trace_plane/segments")
        obs.incr("harness/trace_plane/segments_live")
        obs.incr("harness/trace_plane/bytes_shared", ref.nbytes)
        return ref

    def refs_for(self, specs: "list[TraceSpec]") -> dict[str, TraceRef]:
        """Publish every spec; returns spec key -> ref (order preserved)."""
        return {spec.key(): self.publish(spec) for spec in specs}

    # -- refcounted ownership ----------------------------------------------

    def retain(self, keys: "tuple[str, ...] | list[str]") -> None:
        """Charge one pending task's interest in each spec key."""
        for key in keys:
            if key in self._segments:
                self._refcounts[key] = self._refcounts.get(key, 0) + 1

    def release(self, keys: "tuple[str, ...] | list[str]") -> None:
        """Drop one task's interest; a count reaching zero unlinks early."""
        for key in keys:
            count = self._refcounts.get(key)
            if count is None:
                continue
            if count <= 1:
                del self._refcounts[key]
                self._unlink(key)
            else:
                self._refcounts[key] = count - 1

    def _unlink(self, key: str) -> None:
        segment = self._segments.pop(key, None)
        if segment is None:
            return
        if segment.shm is not None:
            with contextlib.suppress(BufferError, OSError):
                segment.shm.unlink()
            _close_shm_mapping(segment.shm)
        if segment.spill is not None:
            with contextlib.suppress(OSError):
                segment.spill.unlink()
        obs.incr("harness/trace_plane/segments_live", -1)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Unlink every remaining segment and retire the ledger.

        Idempotent, and a no-op in any process other than the creator:
        ``fork``-started workers inherit the plane object (and this
        method's ``atexit`` registration), and must not tear down
        segments the parent still owns.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        _detach_generation(self.generation)
        for key in list(self._segments):
            self._unlink(key)
        self._refcounts.clear()
        with contextlib.suppress(OSError):
            self._ledger.unlink()
        with contextlib.suppress(Exception):
            atexit.unregister(self.close)

    def __enter__(self) -> "TracePlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _jsonable_meta(meta: dict) -> dict:
    out = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except TypeError:
            value = str(value)
        out[key] = value
    return out
