"""Run telemetry: JSONL event tracing plus hierarchical counters.

Every harness run emits a stream of structured events — task start and
end, wall time, cache hits and misses, worker ids, failures — that can
be written to a JSONL trace file (``jmmw figures --trace PATH``) and is
always aggregated into counters.  Counter names are hierarchical
(``task/ok``, ``cache/hit``) so the end-of-run summary table groups
naturally.

The tracer is deliberately parent-side only: workers return their
measurements (wall time, pid) with the task result and the parent
records them, so a trace file is written by exactly one process and
needs no cross-process locking.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path
from typing import Any, Iterator

from repro.core.report import render_table


class Telemetry:
    """Collects harness events; optionally streams them to a JSONL file.

    >>> tel = Telemetry()                  # counters only, no file
    >>> tel.emit("task/ok", task="fig04", wall_s=1.5)
    >>> tel.counters["task/ok"]
    1
    """

    def __init__(self, trace_path: str | Path | None = None) -> None:
        self.trace_path = Path(trace_path) if trace_path else None
        self.counters: Counter[str] = Counter()
        self._t0 = time.monotonic()
        self._fh = None
        if self.trace_path is not None:
            self.trace_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.trace_path.open("w", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> None:
        """Record one event: bump its counter, append to the trace."""
        self.counters[event] += 1
        if self._fh is not None:
            record = {"t": round(time.monotonic() - self._t0, 6), "event": event}
            record.update(fields)
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()

    def incr(self, name: str, n: int = 1) -> None:
        """Bump a counter without emitting a trace record."""
        self.counters[name] += n

    def merge_counters(self, counts: dict[str, int | float]) -> None:
        """Fold counters drained elsewhere into this run's totals.

        The runner calls this with each task's observability payload
        (see :func:`repro.obs.drain_payload`), so worker-side counts —
        bus transactions, GC pauses, kernel invocations — appear in
        the parent's end-of-run summary next to the harness events.
        """
        for name, value in counts.items():
            self.counters[name] += value

    def summary_rows(self) -> list[tuple[str, int]]:
        """Counter values sorted by hierarchical name."""
        return sorted(self.counters.items())

    def render_summary(self) -> str:
        """End-of-run counter table (see ``core/report.render_table``)."""
        rows = self.summary_rows()
        if not rows:
            return "harness: no events recorded"
        return render_table(["event", "count"], rows)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file back into event dicts (test helper)."""
    return list(iter_trace(path))


def iter_trace(path: str | Path) -> Iterator[dict]:
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
