"""Command-line interface: ``jmmw`` (Java Middleware Memory Workloads).

Subcommands::

    jmmw figures [IDS...] [--quick]   reproduce paper figures (default all)
    jmmw characterize WORKLOAD [-p N] one-call workload characterization
    jmmw info                          inventory: machine, workloads, figures
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.core.config import E6000, SimConfig

FIGURE_MODULES = [
    "fig04_scaling",
    "fig05_modes",
    "fig06_cpi",
    "fig07_datastall",
    "fig08_c2c_ratio",
    "fig09_gc_speedup",
    "fig10_c2c_timeline",
    "fig11_memory_use",
    "fig12_icache",
    "fig13_dcache",
    "fig14_c2c_cdf",
    "fig15_c2c_footprint",
    "fig16_sharedcache",
    "claims",
]


def _figure_ids() -> dict[str, str]:
    return {name.split("_", 1)[0]: name for name in FIGURE_MODULES}


def cmd_figures(args: argparse.Namespace) -> int:
    """Reproduce the requested figures; non-zero exit on check failures."""
    from repro.figures.common import FIGURE_SIM, QUICK_SIM

    sim = QUICK_SIM if args.quick else FIGURE_SIM
    ids = _figure_ids()
    wanted = args.ids or sorted(ids)
    failures = 0
    for fig_id in wanted:
        if fig_id not in ids:
            print(f"unknown figure {fig_id!r}; known: {', '.join(sorted(ids))}")
            return 2
        module = importlib.import_module(f"repro.figures.{ids[fig_id]}")
        result = module.run(sim)
        print(result.render())
        for claim, ok in module.checks(result):
            print(f'  [{"ok" if ok else "FAIL"}] {claim}')
            failures += 0 if ok else 1
        print()
    return 1 if failures else 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the headline characterization for one workload."""
    from repro.core.characterize import characterize

    sim = None
    if args.quick:
        sim = SimConfig(seed=1234, refs_per_proc=80_000, warmup_fraction=0.5)
    report = characterize(args.workload, n_procs=args.procs, sim=sim)
    print(report.render())
    return 0


def cmd_info(_: argparse.Namespace) -> int:
    """Print the modeled system inventory."""
    print("Reproduction of 'Memory System Behavior of Java-Based Middleware'")
    print("(Karlsson, Moore, Hagersten & Wood, HPCA 2003)\n")
    print(f"modeled machine: {E6000.describe()}")
    print("workloads: specjbb (SPECjbb2000), ecperf (ECperf middle tier)")
    print("figures:", ", ".join(sorted(_figure_ids())))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``jmmw`` argument parser."""
    parser = argparse.ArgumentParser(prog="jmmw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("ids", nargs="*", help="figure ids, e.g. fig08 fig16")
    figures.add_argument(
        "--quick", action="store_true", help="reduced simulation effort"
    )
    figures.set_defaults(fn=cmd_figures)

    character = sub.add_parser("characterize", help="characterize one workload")
    character.add_argument("workload", choices=["specjbb", "ecperf"])
    character.add_argument("-p", "--procs", type=int, default=8)
    character.add_argument("--quick", action="store_true")
    character.set_defaults(fn=cmd_characterize)

    info = sub.add_parser("info", help="show the modeled system inventory")
    info.set_defaults(fn=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
