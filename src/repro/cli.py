"""Command-line interface: ``jmmw`` (Java Middleware Memory Workloads).

Subcommands::

    jmmw figures [IDS...] [--quick] [--jobs N] [--no-cache] [--trace P]
                 [--no-fastpath] [--resume] [--fail-fast]
                 [--check-invariants] [--obs [P]]
                 [--trace-plane | --no-trace-plane]
                 [--stream | --no-stream]
                                       reproduce paper figures (default all)
    jmmw characterize WORKLOAD [-p N] [--runs R] [--jobs N] ...
                                       one-call workload characterization
    jmmw bench [--quick] [--reps N] [--threshold X] [--out-dir D]
                                       time the pipeline, snapshot, and fail
                                       on regression vs the prior BENCH_*.json
    jmmw diffcheck [IDS...] [--refs N]  differentially validate the simulators
                                       against brute-force reference oracles
    jmmw campaign run STUDY [--executor serial|local|fleet] [--jobs N]
                 [--reps R] [--quick] [--resume] ...
                                       run a named study's run table over a
                                       fault-tolerant executor fleet
    jmmw campaign status STUDY         cell-level progress from the journal
    jmmw campaign report STUDY         mean ± std report from the journal
    jmmw info                          inventory: machine, workloads, figures

Campaign exit codes: 0 when every cell completed, 4 when the campaign
finished but degraded (failed, quarantined or missing cells — the
report says exactly which and why), 130 after a drained interrupt
(rerun with ``--resume``), 2 for usage errors.

Observability: ``--obs`` (or ``JMMW_OBS=1``) turns on the span/counter
instrumentation in :mod:`repro.obs` — timed pipeline spans and
simulator counters, aggregated across worker processes — and prints
the summary on *stderr* at the end of the run; ``--obs PATH``
additionally exports the records as JSONL.  Stdout stays byte-stable
with instrumentation on or off.

Figure and replica execution goes through :mod:`repro.harness`:
``--jobs N`` fans independent work across N worker processes (results
are bit-identical to serial), results are cached on disk keyed by
config + code version (``--no-cache`` disables), and ``--trace PATH``
writes a JSONL event trace.  The harness summary table goes to stderr
so stdout stays byte-stable across serial, parallel and cached runs.
Sweep traces are generated once per campaign and shared with workers
through the :mod:`repro.harness.traceplane` shared-memory plane
(``--no-trace-plane`` / ``JMMW_TRACE_PLANE=0`` reverts to per-task
generation; output is byte-identical either way), with every segment
unlinked at campaign end — including interrupted and crashed runs.

Resilience: every campaign journals completed tasks to a manifest as
they finish, so a run cut down by Ctrl-C, SIGTERM or a crash can be
continued with ``--resume`` — completed work is served back
bit-identically, only the remainder is computed.  An interrupted
campaign drains its in-flight tasks, persists them, and exits 130.
Task failures are summarized on stderr and exit non-zero;
``--fail-fast`` stops dispatching at the first failure.
``--check-invariants`` (or ``JMMW_CHECK=1``) turns on sampled runtime
verification of the simulator's coherence/inclusion/conservation
invariants in every worker.
"""

from __future__ import annotations

import argparse
import os
import sys
from functools import partial

from repro.core.config import E6000, SimConfig

FIGURE_MODULES = [
    "fig04_scaling",
    "fig05_modes",
    "fig06_cpi",
    "fig07_datastall",
    "fig08_c2c_ratio",
    "fig09_gc_speedup",
    "fig10_c2c_timeline",
    "fig11_memory_use",
    "fig12_icache",
    "fig13_dcache",
    "fig14_c2c_cdf",
    "fig15_c2c_footprint",
    "fig16_sharedcache",
    "claims",
]


def _figure_ids() -> dict[str, str]:
    return {name.split("_", 1)[0]: name for name in FIGURE_MODULES}


def _apply_env_flags(args: argparse.Namespace) -> None:
    """Apply ``--no-fastpath`` / ``--check-invariants`` / ``--obs`` /
    ``--[no-]trace-plane`` / ``--[no-]stream``.

    All are selected through the environment so worker processes
    inherit them (regardless of start method), and the cache keys
    record the fastpath/invariant/plane/stream choices.
    """
    if getattr(args, "no_fastpath", False):
        from repro.memsys.fastpath import FASTPATH_ENV

        os.environ[FASTPATH_ENV] = "0"
    if getattr(args, "trace_plane", None) is not None:
        from repro.harness.traceplane import TRACE_PLANE_ENV

        os.environ[TRACE_PLANE_ENV] = "1" if args.trace_plane else "0"
    if getattr(args, "stream", None) is not None:
        from repro.memsys.stream import STREAM_ENV

        os.environ[STREAM_ENV] = "1" if args.stream else "0"
    if getattr(args, "check_invariants", False):
        from repro.memsys.invariants import CHECK_ENV

        os.environ[CHECK_ENV] = "1"
    if getattr(args, "obs", None) is not None:
        from repro import obs

        os.environ[obs.OBS_ENV] = "1"
        if args.obs:  # --obs PATH: export JSONL there at the end
            os.environ[obs.OBS_FILE_ENV] = args.obs
        obs.enable()


def _finish_obs() -> None:
    """End-of-run observability reporting (stderr + optional JSONL).

    A no-op unless instrumentation is on (``--obs`` or ``JMMW_OBS=1``),
    so stdout and stderr are untouched in the default configuration.
    """
    from repro import obs

    if not obs.enabled():
        return
    print(obs.render_summary(), file=sys.stderr)
    export = os.environ.get(obs.OBS_FILE_ENV, "").strip()
    if export:
        records = obs.export_jsonl(export)
        print(f"obs: wrote {records} record(s) to {export}", file=sys.stderr)


def _make_harness(args: argparse.Namespace):
    """(cache, telemetry) from the shared --no-cache/--trace flags."""
    from repro.harness import ResultCache, Telemetry, default_cache_dir

    _apply_env_flags(args)
    cache = None if args.no_cache else ResultCache(default_cache_dir())
    try:
        telemetry = Telemetry(args.trace)
    except OSError as exc:
        print(f"cannot open trace file {args.trace!r}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return cache, telemetry


def _open_manifest(args: argparse.Namespace, signature: str):
    """Campaign manifest for this invocation, fresh or resumed.

    The journal lives under the cache directory, named by the campaign
    signature — so two different campaigns never collide, and rerunning
    the same command line finds its own journal.
    """
    from repro.harness import CampaignManifest, default_cache_dir

    path = default_cache_dir() / "campaigns" / f"{signature[:16]}.jsonl"
    if getattr(args, "resume", False):
        manifest = CampaignManifest.open_resume(path, signature)
        if manifest.resumed and manifest.completed:
            print(
                f"resuming campaign: {len(manifest.completed)} task(s) "
                f"already complete",
                file=sys.stderr,
            )
        return manifest
    return CampaignManifest.open_fresh(path, signature)


def _summarize_failures(outcomes) -> int:
    """Per-task failure summary on stderr; returns the failure count."""
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed:
        print(f"{len(failed)} task(s) failed:", file=sys.stderr)
        for outcome in failed:
            print(f"  {outcome.failure}", file=sys.stderr)
    return len(failed)


def _finish_interrupted(interrupt, manifest, telemetry) -> int:
    """Report a drained interrupt and exit 130 (128 + SIGINT)."""
    print(f"{interrupt}", file=sys.stderr)
    print("rerun with --resume to continue from the checkpoint", file=sys.stderr)
    print(telemetry.render_summary(), file=sys.stderr)
    telemetry.close()
    if manifest is not None:
        manifest.close()
    return 130


def cmd_figures(args: argparse.Namespace) -> int:
    """Reproduce the requested figures; non-zero exit on check failures."""
    from repro.errors import CampaignInterrupted
    from repro.figures.common import FIGURE_SIM, QUICK_SIM, figure_checks
    from repro.harness import run_tasks
    from repro.harness.tasks import build_figure_tasks, figures_campaign_signature

    sim = QUICK_SIM if args.quick else FIGURE_SIM
    ids = _figure_ids()
    wanted = args.ids or sorted(ids)
    for fig_id in wanted:
        if fig_id not in ids:
            print(
                f"unknown figure {fig_id!r}; known: {', '.join(sorted(ids))}",
                file=sys.stderr,
            )
            return 2

    cache, telemetry = _make_harness(args)
    from repro.harness.traceplane import TracePlane, plane_enabled

    modules = [ids[fig_id] for fig_id in wanted]
    plane = TracePlane() if plane_enabled() else None
    manifest = _open_manifest(
        args, figures_campaign_signature(modules, sim, plane=plane is not None)
    )
    try:
        tasks = build_figure_tasks(
            modules, sim, plane=plane, cache=cache, manifest=manifest
        )
        outcomes = run_tasks(
            tasks,
            jobs=args.jobs,
            cache=cache,
            telemetry=telemetry,
            manifest=manifest,
            fail_fast=args.fail_fast,
            interruptible=True,
            plane=plane,
        )
    except CampaignInterrupted as interrupt:
        return _finish_interrupted(interrupt, manifest, telemetry)
    finally:
        # Campaign over (or interrupted): every shared trace segment
        # and spill file this invocation published is unlinked here,
        # whatever happened to the workers.
        if plane is not None:
            plane.close()

    failures = 0
    for fig_id, outcome in zip(wanted, outcomes):
        if not outcome.ok:
            print(f"=== {fig_id}: FAILED to run ===")
            print(f"  {outcome.failure}")
            print()
            continue
        print(outcome.value.render())
        for claim, ok in figure_checks(ids[fig_id], outcome.value):
            print(f'  [{"ok" if ok else "FAIL"}] {claim}')
            failures += 0 if ok else 1
        print()
    errors = _summarize_failures(outcomes)
    print(telemetry.render_summary(), file=sys.stderr)
    _finish_obs()
    telemetry.close()
    manifest.close()
    return 1 if failures or errors else 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the headline characterization for one workload."""
    from repro.core.characterize import characterize

    sim = None
    if args.quick:
        sim = SimConfig(seed=1234, refs_per_proc=80_000, warmup_fraction=0.5)

    if args.runs <= 1:
        _apply_env_flags(args)
        report = characterize(args.workload, n_procs=args.procs, sim=sim)
        print(report.render())
        _finish_obs()
        return 0

    # Multi-run characterization: replicas fan out through the harness
    # and are reported Alameldeen-&-Wood style (mean ± std).  A replica
    # that fails is excluded and reported on stderr (exit 1), not fatal.
    from repro.core.experiment import run_repeated
    from repro.core.report import render_table
    from repro.errors import AnalysisError, CampaignInterrupted
    from repro.figures.common import FIGURE_SIM
    from repro.harness import FaultPolicy
    from repro.harness.tasks import (
        characterize_cache_key,
        characterize_campaign_signature,
        characterize_run_fn,
    )

    from repro.harness.traceplane import TracePlane, plane_enabled

    sim = sim if sim is not None else FIGURE_SIM
    cache, telemetry = _make_harness(args)
    # Replicas perturb their own generation seeds (the variability
    # methodology), so the plane publishes nothing for them — it rides
    # along so scheduling and cleanup are uniform across campaigns.
    plane = TracePlane() if plane_enabled() else None
    manifest = _open_manifest(
        args,
        characterize_campaign_signature(args.workload, args.procs, sim, args.runs),
    )
    failures: list = []
    try:
        results = run_repeated(
            characterize_run_fn(args.workload, args.procs, sim),
            n_runs=args.runs,
            seed=sim.seed,
            jobs=args.jobs,
            cache=cache,
            cache_key_fn=partial(
                characterize_cache_key, args.workload, args.procs, sim, sim.seed
            ),
            telemetry=telemetry,
            faults=FaultPolicy(),
            manifest=manifest,
            fail_fast=args.fail_fast,
            interruptible=True,
            on_failure=failures.append,
            plane=plane,
        )
    except CampaignInterrupted as interrupt:
        return _finish_interrupted(interrupt, manifest, telemetry)
    except AnalysisError as exc:
        print(f"characterization failed: {exc}", file=sys.stderr)
        print(telemetry.render_summary(), file=sys.stderr)
        telemetry.close()
        manifest.close()
        return 1
    finally:
        if plane is not None:
            plane.close()
    n_ok = next(iter(results.values())).n
    print(
        f"{args.workload} on {args.procs} processors (E6000-style), "
        f"{n_ok}/{args.runs} replicas"
    )
    rows = [
        (name, result.mean, result.std, result.n)
        for name, result in sorted(results.items())
    ]
    print(render_table(["metric", "mean", "std", "n"], rows))
    if failures:
        print(f"{len(failures)} replica(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
    print(telemetry.render_summary(), file=sys.stderr)
    _finish_obs()
    telemetry.close()
    manifest.close()
    return 1 if failures else 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite; exit 3 when a stage regressed."""
    from repro.errors import ConfigError
    from repro.obs.bench import run_bench

    _apply_env_flags(args)
    try:
        _path, regressions, report = run_bench(
            out_dir=args.out_dir,
            reps=args.reps,
            quick=args.quick,
            threshold=args.threshold,
            stages=args.stage or None,
            compare=not args.no_compare,
        )
    except ConfigError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    print(report)
    _finish_obs()
    if regressions:
        print(
            f"bench: {len(regressions)} stage(s) regressed past "
            f"{args.threshold:.2f}x",
            file=sys.stderr,
        )
        return 3
    return 0


def cmd_diffcheck(args: argparse.Namespace) -> int:
    """Differentially validate the simulators; exit 1 on divergence."""
    from repro.core.config import SimConfig as _SimConfig
    from repro.errors import ConfigError
    from repro.obs.diffcheck import DIFF_SIM, run_all_figure_diffchecks

    _apply_env_flags(args)
    sim = DIFF_SIM
    if args.refs is not None:
        try:
            sim = _SimConfig(
                seed=DIFF_SIM.seed,
                refs_per_proc=args.refs,
                warmup_fraction=DIFF_SIM.warmup_fraction,
            )
        except ConfigError as exc:
            print(f"diffcheck: {exc}", file=sys.stderr)
            return 2
    try:
        reports = run_all_figure_diffchecks(args.ids or None, sim=sim)
    except ConfigError as exc:
        print(f"diffcheck: {exc}", file=sys.stderr)
        return 2
    diverged = 0
    for report in reports:
        print(report.render())
        diverged += 0 if report.ok else 1
    _finish_obs()
    if diverged:
        print(f"diffcheck: {diverged} configuration(s) diverged", file=sys.stderr)
        return 1
    return 0


#: Exit code for a campaign that finished but with degraded results.
EXIT_PARTIAL_CAMPAIGN = 4


def _make_campaign_executor(args: argparse.Namespace):
    from repro.campaign import (
        LocalPoolExecutor,
        SerialExecutor,
        SubprocessFleetExecutor,
    )

    if args.executor == "serial":
        return SerialExecutor()
    if args.executor == "local":
        return LocalPoolExecutor(args.jobs, max_respawns=args.max_respawns)
    return SubprocessFleetExecutor(args.jobs, max_respawns=args.max_respawns)


def _campaign_spec(args: argparse.Namespace):
    """Resolve the study; prints and exits 2 for an unknown name."""
    from repro.campaign.studies import get_study
    from repro.errors import ConfigError

    try:
        return get_study(args.study, reps=args.reps, quick=args.quick)
    except ConfigError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Run a study's full run table; exit 0 only when every cell is ok."""
    from repro.campaign import CampaignPolicy, run_campaign
    from repro.campaign.report import render
    from repro.campaign.state import journal_path
    from repro.errors import CampaignInterrupted, ConfigError
    from repro.harness import CampaignManifest, FaultPolicy, Telemetry

    spec = _campaign_spec(args)
    _apply_env_flags(args)
    try:
        policy = CampaignPolicy(
            faults=FaultPolicy(
                timeout_s=args.timeout,
                max_attempts=args.max_attempts,
                backoff_s=0.05,
                backoff_max_s=2.0,
                jitter=0.5,
                retry_timeouts=args.retry_timeouts,
            ),
            lease_timeout_s=args.lease_timeout,
            poison_k=args.poison_k,
            speculate=not args.no_speculate,
        )
        executor = _make_campaign_executor(args)
    except ConfigError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    try:
        telemetry = Telemetry(args.trace)
    except OSError as exc:
        print(f"cannot open trace file {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    path = journal_path(args.study)
    signature = spec.signature()
    if args.resume:
        manifest = CampaignManifest.open_resume(path, signature)
        if manifest.resumed and manifest.completed:
            print(
                f"resuming campaign: {len(manifest.completed)} cell(s) "
                f"already complete",
                file=sys.stderr,
            )
    else:
        manifest = CampaignManifest.open_fresh(path, signature)
    try:
        result = run_campaign(
            spec, executor, policy=policy, telemetry=telemetry,
            manifest=manifest, interruptible=True,
        )
    except CampaignInterrupted as interrupt:
        return _finish_interrupted(interrupt, manifest, telemetry)
    print(render(result))
    print(telemetry.render_summary(), file=sys.stderr)
    _finish_obs()
    telemetry.close()
    manifest.close()
    return 0 if result.complete else EXIT_PARTIAL_CAMPAIGN


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """Cell-level progress, read-only from the journal (never truncates)."""
    from collections import Counter

    from repro.campaign.state import journal_path, read_journal, result_from_journal

    spec = _campaign_spec(args)
    path = journal_path(args.study)
    signature, _ = read_journal(path)
    result = result_from_journal(spec, path)
    counts = Counter(outcome.status for outcome in result.outcomes)
    print(f"campaign {spec.name!r}: {spec.table.shape()}")
    print(f"journal: {path}")
    if signature is None:
        print("signature: (no journal; run `jmmw campaign run` first)")
    elif signature == spec.signature():
        print("signature: match (resumable)")
    else:
        print(
            "signature: MISMATCH (different code version, reps or config; "
            "a run without --resume will start fresh)"
        )
    print(
        "cells: "
        + ", ".join(
            f"{counts.get(status, 0)} {status}"
            for status in ("ok", "failed", "poisoned", "missing", "pending")
        )
    )
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """Render the full report from the journal; exit 4 unless complete."""
    from repro.campaign.report import render
    from repro.campaign.state import journal_path, result_from_journal

    spec = _campaign_spec(args)
    result = result_from_journal(spec, journal_path(args.study))
    print(render(result))
    return 0 if result.complete else EXIT_PARTIAL_CAMPAIGN


def cmd_loadplane(args: argparse.Namespace) -> int:
    """Run a load-plane saturation sweep and print the report.

    Exit codes: 0 report printed, 2 bad configuration, 4 one or more
    sweep points failed, 130 drained interrupt.
    """
    from repro.errors import CampaignInterrupted, ConfigError, HarnessError
    from repro.harness import content_key
    from repro.loadplane import FULL_POPULATIONS, QUICK_POPULATIONS, SweepConfig
    from repro.loadplane.sweep import run_saturation

    populations = tuple(args.users) if args.users else (
        QUICK_POPULATIONS if args.quick else FULL_POPULATIONS
    )
    try:
        sweep = SweepConfig(
            populations=populations,
            threads=args.threads,
            connections=args.connections,
            service_s=args.service_ms / 1e3,
            think_s=args.think_s,
            workload=args.workload,
            windows=args.windows,
            window_s=args.window_s,
            seed=args.seed,
        )
    except ConfigError as exc:
        print(f"bad sweep configuration: {exc}", file=sys.stderr)
        return 2
    cache, telemetry = _make_harness(args)
    signature = content_key(
        kind="loadplane/sweep",
        populations=list(sweep.populations),
        threads=sweep.threads,
        connections=sweep.connections,
        service_s=sweep.service_s,
        think_s=sweep.think_s,
        workload=sweep.workload,
        windows=sweep.windows,
        window_s=sweep.window_s,
        warmup_fraction=sweep.warmup_fraction,
        seed=sweep.seed,
    )
    manifest = _open_manifest(args, signature)
    try:
        report = run_saturation(
            sweep,
            jobs=args.jobs,
            cache=cache,
            telemetry=telemetry,
            manifest=manifest,
        )
    except CampaignInterrupted as interrupt:
        return _finish_interrupted(interrupt, manifest, telemetry)
    except HarnessError as exc:
        print(f"{exc}", file=sys.stderr)
        telemetry.close()
        manifest.close()
        return 4
    print(report.render(plot=not args.no_plot))
    print(telemetry.render_summary(), file=sys.stderr)
    _finish_obs()
    telemetry.close()
    manifest.close()
    return 0


def cmd_info(_: argparse.Namespace) -> int:
    """Print the modeled system inventory."""
    print("Reproduction of 'Memory System Behavior of Java-Based Middleware'")
    print("(Karlsson, Moore, Hagersten & Wood, HPCA 2003)\n")
    print(f"modeled machine: {E6000.describe()}")
    print("workloads: specjbb (SPECjbb2000), ecperf (ECperf middle tier)")
    print("figures:", ", ".join(sorted(_figure_ids())))
    return 0


def _add_harness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent runs (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; skip the on-disk result cache",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL harness event trace to PATH",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="use the scalar replay reference instead of the "
        "vectorized fast paths (numpy miss-curve sweeps and the "
        "compiled coherence kernel; results are bit-identical)",
    )
    parser.add_argument(
        "--trace-plane", action=argparse.BooleanOptionalAction, default=None,
        help="publish each sweep trace once through shared memory and "
        "have workers attach instead of regenerating (default on; "
        "results are bit-identical); same as JMMW_TRACE_PLANE=1/0",
    )
    parser.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help="replay traces as bounded chunk streams with carried "
        "state instead of materializing them (default on; results "
        "are bit-identical); same as JMMW_STREAM=1/0",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted campaign from its manifest; "
        "completed tasks are served back bit-identically",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop dispatching new tasks after the first failure",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="verify simulator invariants (coherence legality, L1/L2 "
        "inclusion, stats conservation) on a sampled schedule while "
        "running; same as JMMW_CHECK=1",
    )
    parser.add_argument(
        "--obs", nargs="?", const="", default=None, metavar="PATH",
        help="record pipeline spans and simulator counters (summary on "
        "stderr at the end; with PATH, also exported as JSONL); same "
        "as JMMW_OBS=1 [+ JMMW_OBS_FILE=PATH]",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``jmmw`` argument parser."""
    parser = argparse.ArgumentParser(prog="jmmw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("ids", nargs="*", help="figure ids, e.g. fig08 fig16")
    figures.add_argument(
        "--quick", action="store_true", help="reduced simulation effort"
    )
    _add_harness_flags(figures)
    figures.set_defaults(fn=cmd_figures)

    character = sub.add_parser("characterize", help="characterize one workload")
    character.add_argument("workload", choices=["specjbb", "ecperf"])
    character.add_argument("-p", "--procs", type=int, default=8)
    character.add_argument("--quick", action="store_true")
    character.add_argument(
        "-n", "--runs", type=int, default=1, metavar="R",
        help="replicas for mean ± std reporting (default 1)",
    )
    _add_harness_flags(character)
    character.set_defaults(fn=cmd_characterize)

    bench = sub.add_parser(
        "bench", help="time the pipeline and fail on regression"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller workloads and at most 3 reps (CI smoke mode)",
    )
    bench.add_argument(
        "--reps", type=int, default=5, metavar="N",
        help="repetitions per stage (default 5; median/IQR reported)",
    )
    bench.add_argument(
        "--threshold", type=float, default=1.5, metavar="X",
        help="fail when a stage's median exceeds X times the previous "
        "snapshot's (default 1.5)",
    )
    bench.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for BENCH_*.json snapshots (default: repo root)",
    )
    bench.add_argument(
        "--stage", action="append", metavar="NAME",
        help="run only this stage (repeatable)",
    )
    bench.add_argument(
        "--no-compare", action="store_true",
        help="record a snapshot without comparing to the previous one",
    )
    bench.add_argument(
        "--no-fastpath", action="store_true", help=argparse.SUPPRESS
    )
    bench.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help=argparse.SUPPRESS,
    )
    bench.set_defaults(fn=cmd_bench, obs=None, check_invariants=False)

    diffcheck = sub.add_parser(
        "diffcheck",
        help="validate simulators against brute-force reference oracles",
    )
    diffcheck.add_argument(
        "ids", nargs="*",
        help="figure ids to validate, e.g. fig12 fig16 (default: all 13)",
    )
    diffcheck.add_argument(
        "--refs", type=int, default=None, metavar="N",
        help="references per processor for the replayed traces "
        "(default 4000; oracles are intentionally naive, keep it small)",
    )
    diffcheck.add_argument(
        "--no-fastpath", action="store_true", help=argparse.SUPPRESS
    )
    diffcheck.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help=argparse.SUPPRESS,
    )
    diffcheck.set_defaults(fn=cmd_diffcheck, obs=None, check_invariants=False)

    campaign = sub.add_parser(
        "campaign",
        help="fault-tolerant run-table campaigns over an executor fleet",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _add_study_flags(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "study", help="registered study name (e.g. smoke, ablation)"
        )
        sub_parser.add_argument(
            "--reps", type=int, default=2, metavar="R",
            help="repetitions per table point (default 2); part of the "
            "campaign signature, so status/report need the same value",
        )
        sub_parser.add_argument(
            "--quick", action="store_true",
            help="reduced per-cell simulation effort (also in the signature)",
        )

    run = campaign_sub.add_parser("run", help="run a study's full run table")
    _add_study_flags(run)
    run.add_argument(
        "--executor", choices=["serial", "local", "fleet"], default="fleet",
        help="execution backend (default fleet; results are "
        "bit-identical across all three)",
    )
    run.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker slots for local/fleet executors (default 2)",
    )
    run.add_argument(
        "--max-respawns", type=int, default=None, metavar="N",
        help="dead-worker respawn budget before the campaign degrades "
        "(default 2x jobs)",
    )
    run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="per-cell attempt budget (default 3)",
    )
    run.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock budget in seconds (default none)",
    )
    run.add_argument(
        "--retry-timeouts", action="store_true",
        help="retry timed-out cells under the attempt budget",
    )
    run.add_argument(
        "--lease-timeout", type=float, default=10.0, metavar="S",
        help="heartbeat silence before a fleet lease is reclaimed "
        "(default 10)",
    )
    run.add_argument(
        "--poison-k", type=int, default=2, metavar="K",
        help="consecutive worker kills that quarantine a cell (default 2)",
    )
    run.add_argument(
        "--no-speculate", action="store_true",
        help="disable speculative re-execution of stragglers",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="continue from the study's journal; completed cells are "
        "served back bit-identically",
    )
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a JSONL campaign event trace to PATH")
    run.add_argument(
        "--no-fastpath", action="store_true", help=argparse.SUPPRESS
    )
    run.add_argument(
        "--stream", action=argparse.BooleanOptionalAction, default=None,
        help=argparse.SUPPRESS,
    )
    run.add_argument(
        "--obs", nargs="?", const="", default=None, metavar="PATH",
        help="record observability counters (summary on stderr)",
    )
    run.set_defaults(fn=cmd_campaign_run, check_invariants=False)

    status = campaign_sub.add_parser(
        "status", help="cell-level progress from the journal (read-only)"
    )
    _add_study_flags(status)
    status.set_defaults(fn=cmd_campaign_status)

    report = campaign_sub.add_parser(
        "report", help="mean ± std report from the journal (read-only)"
    )
    _add_study_flags(report)
    report.set_defaults(fn=cmd_campaign_report)

    loadplane = sub.add_parser(
        "loadplane",
        help="closed-loop saturation sweep over the appserver stations",
    )
    loadplane.add_argument(
        "--quick", action="store_true",
        help="small population ladder (seconds; crosses the default knee)",
    )
    loadplane.add_argument(
        "--users", type=int, nargs="*", default=None, metavar="N",
        help="explicit population ladder (overrides the quick/full default)",
    )
    loadplane.add_argument(
        "--workload", choices=["uniform", "ecperf", "specjbb"],
        default="uniform",
        help="transaction mix shaping per-type service demand (default "
        "uniform: the single-class mix the analytic oracles match exactly)",
    )
    loadplane.add_argument("--threads", type=int, default=8, metavar="C",
                           help="worker thread pool size (default 8)")
    loadplane.add_argument("--connections", type=int, default=8, metavar="C",
                           help="DB connection pool size (default 8)")
    loadplane.add_argument(
        "--service-ms", type=float, default=20.0, metavar="MS",
        help="mix-mean service demand per operation (default 20 ms)",
    )
    loadplane.add_argument(
        "--think-s", type=float, default=1.2, metavar="S",
        help="mean exponential think time (default 1.2 s, the driver "
        "model's)",
    )
    loadplane.add_argument("--windows", type=int, default=8, metavar="W",
                           help="measurement windows per point (default 8)")
    loadplane.add_argument(
        "--window-s", type=float, default=2.0, metavar="S",
        help="window length in simulated seconds (default 2.0)",
    )
    loadplane.add_argument("--seed", type=int, default=1234)
    loadplane.add_argument(
        "--no-plot", action="store_true",
        help="omit the ASCII throughput curve from the report",
    )
    _add_harness_flags(loadplane)
    loadplane.set_defaults(fn=cmd_loadplane)

    info = sub.add_parser("info", help="show the modeled system inventory")
    info.set_defaults(fn=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
