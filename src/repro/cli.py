"""Command-line interface: ``jmmw`` (Java Middleware Memory Workloads).

Subcommands::

    jmmw figures [IDS...] [--quick] [--jobs N] [--no-cache] [--trace P]
                 [--no-fastpath]    reproduce paper figures (default all)
    jmmw characterize WORKLOAD [-p N] [--runs R] [--jobs N] ...
                                       one-call workload characterization
    jmmw info                          inventory: machine, workloads, figures

Figure and replica execution goes through :mod:`repro.harness`:
``--jobs N`` fans independent work across N worker processes (results
are bit-identical to serial), results are cached on disk keyed by
config + code version (``--no-cache`` disables), and ``--trace PATH``
writes a JSONL event trace.  The harness summary table goes to stderr
so stdout stays byte-stable across serial, parallel and cached runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from functools import partial

from repro.core.config import E6000, SimConfig

FIGURE_MODULES = [
    "fig04_scaling",
    "fig05_modes",
    "fig06_cpi",
    "fig07_datastall",
    "fig08_c2c_ratio",
    "fig09_gc_speedup",
    "fig10_c2c_timeline",
    "fig11_memory_use",
    "fig12_icache",
    "fig13_dcache",
    "fig14_c2c_cdf",
    "fig15_c2c_footprint",
    "fig16_sharedcache",
    "claims",
]


def _figure_ids() -> dict[str, str]:
    return {name.split("_", 1)[0]: name for name in FIGURE_MODULES}


def _make_harness(args: argparse.Namespace):
    """(cache, telemetry) from the shared --no-cache/--trace flags.

    Also applies ``--no-fastpath``: the scalar replay reference is
    selected through the environment so forked worker processes
    inherit it, and the figure cache key records the choice.
    """
    from repro.harness import ResultCache, Telemetry, default_cache_dir

    if getattr(args, "no_fastpath", False):
        from repro.memsys.fastpath import FASTPATH_ENV

        os.environ[FASTPATH_ENV] = "0"

    cache = None if args.no_cache else ResultCache(default_cache_dir())
    try:
        telemetry = Telemetry(args.trace)
    except OSError as exc:
        print(f"cannot open trace file {args.trace!r}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    return cache, telemetry


def cmd_figures(args: argparse.Namespace) -> int:
    """Reproduce the requested figures; non-zero exit on check failures."""
    from repro.figures.common import FIGURE_SIM, QUICK_SIM, figure_checks
    from repro.harness import run_tasks
    from repro.harness.tasks import build_figure_tasks

    sim = QUICK_SIM if args.quick else FIGURE_SIM
    ids = _figure_ids()
    wanted = args.ids or sorted(ids)
    for fig_id in wanted:
        if fig_id not in ids:
            print(f"unknown figure {fig_id!r}; known: {', '.join(sorted(ids))}")
            return 2

    cache, telemetry = _make_harness(args)
    tasks = build_figure_tasks([ids[fig_id] for fig_id in wanted], sim)
    outcomes = run_tasks(tasks, jobs=args.jobs, cache=cache, telemetry=telemetry)

    failures = 0
    errors = 0
    for fig_id, outcome in zip(wanted, outcomes):
        if not outcome.ok:
            print(f"=== {fig_id}: FAILED to run ===")
            print(f"  {outcome.failure}")
            errors += 1
            print()
            continue
        print(outcome.value.render())
        for claim, ok in figure_checks(ids[fig_id], outcome.value):
            print(f'  [{"ok" if ok else "FAIL"}] {claim}')
            failures += 0 if ok else 1
        print()
    print(telemetry.render_summary(), file=sys.stderr)
    telemetry.close()
    return 1 if failures or errors else 0


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the headline characterization for one workload."""
    from repro.core.characterize import characterize

    sim = None
    if args.quick:
        sim = SimConfig(seed=1234, refs_per_proc=80_000, warmup_fraction=0.5)

    if args.runs <= 1:
        report = characterize(args.workload, n_procs=args.procs, sim=sim)
        print(report.render())
        return 0

    # Multi-run characterization: replicas fan out through the harness
    # and are reported Alameldeen-&-Wood style (mean ± std).  A replica
    # that fails is excluded and reported, not fatal.
    from repro.core.experiment import run_repeated
    from repro.core.report import render_table
    from repro.figures.common import FIGURE_SIM
    from repro.harness import FaultPolicy
    from repro.harness.tasks import characterize_cache_key, characterize_run_fn

    sim = sim if sim is not None else FIGURE_SIM
    cache, telemetry = _make_harness(args)
    results = run_repeated(
        characterize_run_fn(args.workload, args.procs, sim),
        n_runs=args.runs,
        seed=sim.seed,
        jobs=args.jobs,
        cache=cache,
        cache_key_fn=partial(
            characterize_cache_key, args.workload, args.procs, sim, sim.seed
        ),
        telemetry=telemetry,
        faults=FaultPolicy(),
    )
    n_ok = next(iter(results.values())).n
    print(
        f"{args.workload} on {args.procs} processors (E6000-style), "
        f"{n_ok}/{args.runs} replicas"
    )
    rows = [
        (name, result.mean, result.std, result.n)
        for name, result in sorted(results.items())
    ]
    print(render_table(["metric", "mean", "std", "n"], rows))
    if n_ok < args.runs:
        print(f"warning: {args.runs - n_ok} replica(s) failed; see trace")
    print(telemetry.render_summary(), file=sys.stderr)
    telemetry.close()
    return 0


def cmd_info(_: argparse.Namespace) -> int:
    """Print the modeled system inventory."""
    print("Reproduction of 'Memory System Behavior of Java-Based Middleware'")
    print("(Karlsson, Moore, Hagersten & Wood, HPCA 2003)\n")
    print(f"modeled machine: {E6000.describe()}")
    print("workloads: specjbb (SPECjbb2000), ecperf (ECperf middle tier)")
    print("figures:", ", ".join(sorted(_figure_ids())))
    return 0


def _add_harness_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent runs (default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; skip the on-disk result cache",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSONL harness event trace to PATH",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="use the scalar replay reference instead of the "
        "vectorized fast path (results are bit-identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``jmmw`` argument parser."""
    parser = argparse.ArgumentParser(prog="jmmw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("ids", nargs="*", help="figure ids, e.g. fig08 fig16")
    figures.add_argument(
        "--quick", action="store_true", help="reduced simulation effort"
    )
    _add_harness_flags(figures)
    figures.set_defaults(fn=cmd_figures)

    character = sub.add_parser("characterize", help="characterize one workload")
    character.add_argument("workload", choices=["specjbb", "ecperf"])
    character.add_argument("-p", "--procs", type=int, default=8)
    character.add_argument("--quick", action="store_true")
    character.add_argument(
        "-n", "--runs", type=int, default=1, metavar="R",
        help="replicas for mean ± std reporting (default 1)",
    )
    _add_harness_flags(character)
    character.set_defaults(fn=cmd_characterize)

    info = sub.add_parser("info", help="show the modeled system inventory")
    info.set_defaults(fn=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
