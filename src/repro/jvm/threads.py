"""JVM thread model.

Threads matter to the memory system through three addresses: their
stack (hot and private), their allocation cursor (private slice of the
new generation), and the processor they are bound to (the paper binds
application threads to processor sets with ``psrset``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.jvm.heap import AllocationCursor
from repro.units import mb

#: Where thread stacks live; each thread gets a 1 MB slot.
STACK_REGION_BASE = 0xF000_0000
STACK_SLOT = mb(1)


@dataclass
class JavaThread:
    """One JVM thread with its private memory regions."""

    tid: int
    cpu: int
    cursor: AllocationCursor | None = None
    stack_base: int = field(init=False)

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ConfigError("tid must be non-negative")
        if self.cpu < 0:
            raise ConfigError("cpu must be non-negative")
        # The 4 KB stagger keeps different threads' hot frames out of
        # the same L2 sets (1 MB slots alone alias set indices).
        self.stack_base = STACK_REGION_BASE + self.tid * STACK_SLOT + self.tid * 4096

    def stack_addr(self, offset: int) -> int:
        """An address within this thread's active stack frame window."""
        if not 0 <= offset < STACK_SLOT:
            raise ConfigError(f"stack offset {offset} outside the 1 MB slot")
        return self.stack_base + offset


class ThreadRegistry:
    """Creates threads and assigns them round-robin to processors.

    The paper's ``psrset`` binding restricts application threads to a
    processor set; we model the steady state of that binding as a
    static round-robin assignment.
    """

    def __init__(self, n_procs: int) -> None:
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        self.n_procs = n_procs
        self.threads: list[JavaThread] = []

    def spawn(self, cursor: AllocationCursor | None = None) -> JavaThread:
        tid = len(self.threads)
        thread = JavaThread(tid=tid, cpu=tid % self.n_procs, cursor=cursor)
        self.threads.append(thread)
        return thread

    def threads_on(self, cpu: int) -> list[JavaThread]:
        """All threads bound to ``cpu``."""
        return [t for t in self.threads if t.cpu == cpu]

    def __len__(self) -> int:
        return len(self.threads)
