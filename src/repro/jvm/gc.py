"""Single-threaded generational copying collector.

The paper's JVM (HotSpot 1.3.1) uses a stop-the-world, single-threaded
generational copying collector: during a collection one processor
copies every live new-generation object while all others sit idle
(Section 4.5).  Three consequences are modeled here:

- the collector is a *serial fraction*: on p processors, a workload
  spending fraction g of its time collecting idles (p-1)/p of the
  machine during that time (Figure 9's GC-adjusted speedup);
- the collector's traffic is *private*: it reads from-space and
  writes a fresh to-space, so the machine-wide cache-to-cache
  transfer rate collapses during collections (Figure 10) — contrary
  to the authors' initial hypothesis that GC *causes* the transfers;
- heap size after collection approximates live data, and once the
  old generation grows past a threshold the collector starts
  *compacting*, which lowers the post-GC heap size and throughput
  (the >30-warehouse regime of Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs as _obs
from repro.errors import ConfigError
from repro.jvm.heap import GenerationalHeap
from repro.memsys.block import IFETCH_BYTES, LOAD, STORE, encode_ref


@dataclass(frozen=True)
class GcEvent:
    """One completed collection."""

    index: int
    duration_s: float
    bytes_copied: int
    bytes_promoted: int
    compacting: bool
    post_gc_heap_bytes: int


class GenerationalCollector:
    """Cost and accounting model for the generational collector.

    Parameters:
        copy_rate: bytes/second one processor copies (survivor copying
            dominates pause time).
        survival_fraction: fraction of new-generation allocation still
            live at collection time (young objects die young; a few
            percent is typical for transaction workloads).
        promotion_fraction: fraction of *survivors* promoted to the
            old generation per collection.
        fragmentation: old-generation overhead factor before
            compaction begins (copying without compaction leaves
            holes).
        compaction_trigger: old-generation occupancy (fraction of its
            capacity, including fragmentation) beyond which the
            collector starts compacting older generations.
        compaction_slowdown: multiplier on pause time while compacting
            (the paper: "this slower collection process results in
            dramatic performance degradation").
    """

    def __init__(
        self,
        copy_rate: float = 400e6,
        survival_fraction: float = 0.04,
        promotion_fraction: float = 0.5,
        fragmentation: float = 1.3,
        compaction_trigger: float = 0.65,
        compaction_slowdown: float = 3.0,
    ) -> None:
        if copy_rate <= 0:
            raise ConfigError("copy_rate must be positive")
        if not 0.0 < survival_fraction < 1.0:
            raise ConfigError("survival_fraction must be in (0, 1)")
        if not 0.0 <= promotion_fraction <= 1.0:
            raise ConfigError("promotion_fraction must be in [0, 1]")
        if fragmentation < 1.0:
            raise ConfigError("fragmentation must be >= 1")
        if not 0.0 < compaction_trigger <= 1.0:
            raise ConfigError("compaction_trigger must be in (0, 1]")
        if compaction_slowdown < 1.0:
            raise ConfigError("compaction_slowdown must be >= 1")
        self.copy_rate = copy_rate
        self.survival_fraction = survival_fraction
        self.promotion_fraction = promotion_fraction
        self.fragmentation = fragmentation
        self.compaction_trigger = compaction_trigger
        self.compaction_slowdown = compaction_slowdown
        self.events: list[GcEvent] = []
        self.total_gc_seconds = 0.0

    # -- collection ------------------------------------------------------

    def is_compacting(self, heap: GenerationalHeap) -> bool:
        """True once old-generation pressure forces compaction."""
        occupied = heap.old_gen_used * self.fragmentation
        return occupied >= self.compaction_trigger * heap.layout.old_gen_size

    def collect(self, heap: GenerationalHeap) -> GcEvent:
        """Perform one collection on ``heap`` and account for it."""
        survivors = int(heap.allocated_since_gc * self.survival_fraction)
        promoted = int(survivors * self.promotion_fraction)
        compacting = self.is_compacting(heap)
        copied = survivors + (heap.old_gen_used if compacting else 0)
        duration = copied / self.copy_rate
        if compacting:
            duration *= self.compaction_slowdown
            # Compaction squeezes fragmentation out of the old gen.
            post_old = heap.old_gen_used
        else:
            post_old = int(heap.old_gen_used * self.fragmentation)
        heap.old_gen_used += promoted
        heap.note_live_delta(0)  # live estimate maintained by the workload
        heap.reset_new_gen()
        event = GcEvent(
            index=len(self.events),
            duration_s=duration,
            bytes_copied=copied,
            bytes_promoted=promoted,
            compacting=compacting,
            post_gc_heap_bytes=post_old + survivors - promoted + heap.live_bytes,
        )
        self.events.append(event)
        self.total_gc_seconds += duration
        _obs.incr("jvm/gc/collections")
        _obs.incr("jvm/gc/pause_s", duration)
        _obs.incr("jvm/gc/bytes_copied", copied)
        if compacting:
            _obs.incr("jvm/gc/compactions")
        return event

    # -- analytic helpers --------------------------------------------------

    def gc_time_fraction(self, alloc_rate: float, new_gen_size: int) -> float:
        """Fraction of wall-clock time spent collecting.

        With allocation rate a (bytes/s) and new generation size N, a
        collection fires every N/a seconds and copies s*N bytes at the
        copy rate.
        """
        if alloc_rate <= 0 or new_gen_size <= 0:
            raise ConfigError("alloc_rate and new_gen_size must be positive")
        interval = new_gen_size / alloc_rate
        pause = (new_gen_size * self.survival_fraction) / self.copy_rate
        return pause / (interval + pause)

    @staticmethod
    def serial_idle_fraction(n_procs: int, gc_fraction: float) -> float:
        """Idle fraction caused by the single-threaded collector.

        During the gc_fraction of time spent collecting, (p-1) of p
        processors idle — the estimate the paper uses in Section 4.1.
        """
        if n_procs <= 0:
            raise ConfigError("n_procs must be positive")
        if not 0.0 <= gc_fraction <= 1.0:
            raise ConfigError("gc_fraction must be in [0, 1]")
        return gc_fraction * (n_procs - 1) / n_procs

    # -- reference-stream generation (Figure 10) ---------------------------

    @staticmethod
    def copy_ref_stream(
        from_base: int, to_base: int, nbytes: int, stride: int = 64
    ) -> list[int]:
        """The collector's memory references while copying ``nbytes``.

        Sequential reads of from-space paired with sequential writes of
        to-space.  Both regions are private to the collecting
        processor, which is exactly why the snoop-copyback rate drops
        to near zero during collections.
        """
        if nbytes < 0 or stride <= 0:
            raise ConfigError("nbytes must be >= 0 and stride positive")
        refs = []
        for offset in range(0, nbytes, stride):
            refs.append(encode_ref(from_base + offset, LOAD))
            refs.append(encode_ref(to_base + offset, STORE))
        return refs
