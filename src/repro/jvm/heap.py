"""Generational heap model.

Mirrors the paper's JVM configuration (Section 3.2): a 1424 MB heap —
"the largest value that our system could support" — with the new
generation enlarged to 400 MB so collections are fewer but longer.

The heap serves two masters:

- *trace generation*: ``allocate`` returns addresses for the bump-
  pointer allocation stream (fresh blocks — the compulsory-miss
  component of the data miss rate), wrapping within the new
  generation after each collection the way a copying collector
  recycles from-space;
- *accounting*: live-data tracking behind Figure 11 (heap size after
  GC approximates live memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.units import mb


@dataclass(frozen=True)
class HeapLayout:
    """Address-space placement of the heap regions."""

    new_gen_base: int = 0x2000_0000
    new_gen_size: int = mb(400)
    old_gen_base: int = 0x6000_0000
    old_gen_size: int = mb(1024)

    def __post_init__(self) -> None:
        if self.new_gen_size <= 0 or self.old_gen_size <= 0:
            raise ConfigError("generation sizes must be positive")
        new_end = self.new_gen_base + self.new_gen_size
        if self.new_gen_base < 0 or new_end > self.old_gen_base:
            raise ConfigError("new generation must precede the old generation")

    @property
    def total_size(self) -> int:
        return self.new_gen_size + self.old_gen_size


#: The paper's tuning: 1424 MB heap, 400 MB new generation.
HOTSPOT_131_LAYOUT = HeapLayout()


class GenerationalHeap:
    """Bump-pointer new generation + promoted old generation.

    Allocation is thread-local in real HotSpot; here each allocating
    context gets its own slice of the new generation via
    ``allocation_cursor`` objects, so concurrent threads produce
    disjoint allocation streams without a shared lock in the
    generator.
    """

    def __init__(self, layout: HeapLayout = HOTSPOT_131_LAYOUT) -> None:
        self.layout = layout
        self.allocated_since_gc = 0
        self.old_gen_used = 0
        self.live_bytes = 0
        self.gc_count = 0
        self._cursors: list["AllocationCursor"] = []

    def cursor(self, share: float = 1.0) -> "AllocationCursor":
        """Create an allocation cursor owning ``share`` of the new gen.

        Shares across all cursors may total at most 1.0.
        """
        if not 0.0 < share <= 1.0:
            raise ConfigError("cursor share must be in (0, 1]")
        used = sum(c.share for c in self._cursors)
        if used + share > 1.0 + 1e-9:
            raise ConfigError(
                f"cursor shares exceed the new generation ({used + share:.2f} > 1)"
            )
        offset = int(used * self.layout.new_gen_size)
        size = int(share * self.layout.new_gen_size)
        cursor = AllocationCursor(
            heap=self,
            base=self.layout.new_gen_base + offset,
            size=size,
            share=share,
        )
        self._cursors.append(cursor)
        return cursor

    def note_allocation(self, nbytes: int) -> None:
        self.allocated_since_gc += nbytes

    def note_live_delta(self, nbytes: int) -> None:
        """Adjust the live-data estimate (promotions/deaths)."""
        self.live_bytes += nbytes
        if self.live_bytes < 0:
            raise SimulationError("live bytes went negative")

    def gc_pressure(self) -> float:
        """New-generation occupancy fraction (1.0 triggers collection)."""
        return self.allocated_since_gc / self.layout.new_gen_size

    def needs_gc(self) -> bool:
        return self.allocated_since_gc >= self.layout.new_gen_size

    def reset_new_gen(self) -> None:
        """Called by the collector after copying survivors out."""
        self.allocated_since_gc = 0
        self.gc_count += 1
        for cursor in self._cursors:
            cursor.reset()


class AllocationCursor:
    """A thread's private slice of the new generation."""

    def __init__(self, heap: GenerationalHeap, base: int, size: int, share: float):
        self.heap = heap
        self.base = base
        self.size = size
        self.share = share
        self._next = base

    def allocate(self, nbytes: int) -> int:
        """Bump-allocate ``nbytes`` (8-aligned); returns the address.

        Wraps within the slice when exhausted — the model's stand-in
        for from-space recycling between collections.
        """
        if nbytes <= 0:
            raise ConfigError("allocation size must be positive")
        aligned = (nbytes + 7) & ~7
        if aligned > self.size:
            raise ConfigError(
                f"allocation of {aligned} B exceeds cursor slice of {self.size} B"
            )
        if self._next + aligned > self.base + self.size:
            self._next = self.base
        addr = self._next
        self._next += aligned
        self.heap.note_allocation(aligned)
        return addr

    def reset(self) -> None:
        self._next = self.base

    @property
    def used(self) -> int:
        return self._next - self.base
