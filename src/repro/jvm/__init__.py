"""JVM model: heap, generational GC, object trees, locks, threads.

Models the HotSpot 1.3.1 configuration the paper runs: a 1424 MB heap
with a 400 MB new generation and a single-threaded, stop-the-world
generational copying collector.  The GC model drives three results:

- Figure 9 — speedup with GC time factored out (the collector is a
  serial fraction);
- Figure 10 — the cache-to-cache transfer rate collapsing to ~zero
  during collections (the collector's copying traffic is private);
- Figure 11 — live memory after GC vs. scale factor, including the
  drop past 30 warehouses when old-generation compaction begins.
"""

from repro.jvm.gc import GcEvent, GenerationalCollector
from repro.jvm.heap import GenerationalHeap, HeapLayout
from repro.jvm.locks import LockSite, contended_wait_fraction
from repro.jvm.objects import ObjectLayout, ObjectTree
from repro.jvm.threads import JavaThread, ThreadRegistry

__all__ = [
    "GcEvent",
    "GenerationalCollector",
    "GenerationalHeap",
    "HeapLayout",
    "LockSite",
    "contended_wait_fraction",
    "ObjectLayout",
    "ObjectTree",
    "JavaThread",
    "ThreadRegistry",
]
