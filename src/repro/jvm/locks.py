"""Lock sites and contention.

Both benchmarks serialize on a handful of hot locks: SPECjbb's object
trees "are protected by locks", and ECperf's application server shares
a database connection pool among its threads (Section 4.1).  Those hot
lock lines are also where cache-to-cache transfers concentrate: the
single hottest line accounts for 20% (SPECjbb) / 14% (ECperf) of all
transfers (Section 5.2).

Two views are provided:

- :class:`LockSite` — the *address* view: a lock is a cache line that
  every acquire/release reads and writes, generating the migratory
  sharing the coherence simulator turns into snoop copybacks;
- :func:`contended_wait_fraction` — the *time* view: a closed-form
  estimate of the idle fraction lock contention induces, used by the
  throughput model behind Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memsys.block import LOAD, STORE, encode_ref


@dataclass(frozen=True)
class LockSite:
    """One lock word at a fixed address."""

    addr: int
    name: str = "lock"

    def acquire_refs(self) -> list[int]:
        """References issued by an acquire: read-test then write."""
        return [encode_ref(self.addr, LOAD), encode_ref(self.addr, STORE)]

    def release_refs(self) -> list[int]:
        """References issued by a release: a single store."""
        return [encode_ref(self.addr, STORE)]


def contended_wait_fraction(n_procs: int, lock_demand: float) -> float:
    """Idle fraction due to one lock with per-processor demand ``lock_demand``.

    ``lock_demand`` is the fraction of a processor's busy time spent
    holding the lock.  The lock serializes: aggregate demand beyond
    one lock-holder's worth of time cannot be served.

    Model: p processors each want to be running 100% of the time, of
    which a fraction q needs the lock.  The lock can be held by one
    processor at a time, so aggregate useful throughput is capped at
    ``min(p, 1/q)`` processor-equivalents; the shortfall is idle time.
    Below saturation a light queueing term ``q^2 (p-1) / (1 - q(p-1))``
    (M/M/1-style waiting with utilization q(p-1)) keeps the curve
    smooth instead of piecewise linear.

    >>> contended_wait_fraction(1, 0.1)
    0.0
    >>> 0.0 < contended_wait_fraction(15, 0.08) < 1.0
    True
    """
    if n_procs <= 0:
        raise ConfigError("n_procs must be positive")
    if not 0.0 <= lock_demand < 1.0:
        raise ConfigError("lock_demand must be in [0, 1)")
    if n_procs == 1 or lock_demand == 0.0:
        return 0.0
    q = lock_demand
    p = n_procs
    # Hard serialization bound.
    cap = min(p, 1.0 / q)
    saturation_idle = max(0.0, 1.0 - cap / p)
    # Light-contention queueing below the bound.
    rho = min(0.95, q * (p - 1))
    queueing_idle = q * rho / (1.0 - rho)
    return min(0.95, saturation_idle + queueing_idle * (1.0 - saturation_idle))
