"""Java object layout and object trees.

SPECjbb stores its emulated database "in memory as trees of Java
objects" (Section 2.1).  The reproduction never materializes those
trees — at 25 warehouses they would be ~400 MB — it computes node
*addresses* arithmetically from (tree base, level, index), so a
workload can emit a realistic B-tree descent's reference stream with
a few integer operations per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ObjectLayout:
    """Size model for Java objects on a 64-bit SPARC HotSpot.

    ``header`` covers the mark word and class pointer; instance sizes
    are rounded up to ``alignment``.
    """

    header: int = 16
    reference_size: int = 8
    alignment: int = 8

    def instance_size(self, n_ref_fields: int, n_scalar_bytes: int = 0) -> int:
        """Aligned size of an instance with the given fields."""
        if n_ref_fields < 0 or n_scalar_bytes < 0:
            raise ConfigError("field counts must be non-negative")
        raw = self.header + n_ref_fields * self.reference_size + n_scalar_bytes
        return (raw + self.alignment - 1) // self.alignment * self.alignment


#: Default layout used throughout the workload models.
DEFAULT_LAYOUT = ObjectLayout()


@dataclass(frozen=True)
class ObjectTree:
    """A B-tree of Java objects, addressed arithmetically.

    Nodes at each level are laid out contiguously from ``base``: level
    0 is the root, level ``depth-1`` the leaves; level L holds
    ``fanout**L`` nodes of ``node_size`` bytes.

    >>> t = ObjectTree(base=0x1000, fanout=4, depth=3, node_size=128)
    >>> t.n_nodes
    21
    >>> len(t.path_to_leaf(5))
    3
    """

    base: int
    fanout: int
    depth: int
    node_size: int
    name: str = "tree"

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ConfigError(f"{self.name}: fanout must be >= 2")
        if self.depth < 1:
            raise ConfigError(f"{self.name}: depth must be >= 1")
        if self.node_size <= 0 or self.node_size % 8 != 0:
            raise ConfigError(f"{self.name}: node_size must be positive, 8-aligned")
        if self.base < 0:
            raise ConfigError(f"{self.name}: base must be non-negative")

    @property
    def n_leaves(self) -> int:
        return self.fanout ** (self.depth - 1)

    @property
    def n_nodes(self) -> int:
        return (self.fanout**self.depth - 1) // (self.fanout - 1)

    @property
    def total_bytes(self) -> int:
        return self.n_nodes * self.node_size

    def level_offset(self, level: int) -> int:
        """Byte offset of the first node at ``level`` (root = level 0)."""
        if not 0 <= level < self.depth:
            raise ConfigError(f"{self.name}: level {level} out of range")
        nodes_above = (self.fanout**level - 1) // (self.fanout - 1)
        return nodes_above * self.node_size

    def node_addr(self, level: int, index: int) -> int:
        """Address of node ``index`` at ``level``."""
        if not 0 <= index < self.fanout**level:
            raise ConfigError(
                f"{self.name}: node index {index} out of range at level {level}"
            )
        return self.base + self.level_offset(level) + index * self.node_size

    def path_to_leaf(self, leaf_index: int) -> list[int]:
        """Node addresses visited descending from the root to a leaf."""
        if not 0 <= leaf_index < self.n_leaves:
            raise ConfigError(f"{self.name}: leaf index {leaf_index} out of range")
        path = []
        index = leaf_index
        for level in range(self.depth - 1, -1, -1):
            path.append(self.node_addr(level, index))
            index //= self.fanout
        path.reverse()
        return path

    def random_leaf(self, rng: np.random.Generator, skew: float = 0.0) -> int:
        """Pick a leaf index, optionally skewed toward low indices.

        ``skew`` = 0 is uniform; larger values concentrate accesses —
        transaction workloads touch recent orders far more than old
        ones.  Uses a power-law transform of a uniform draw.
        """
        u = float(rng.random())
        if skew > 0.0:
            u = u ** (1.0 + skew)
        return min(int(u * self.n_leaves), self.n_leaves - 1)

    def hot_leaf(
        self,
        rng: np.random.Generator,
        hot_fraction: float = 0.04,
        hot_prob: float = 0.9,
    ) -> int:
        """Pick a leaf from a hot working set with occasional cold spills.

        With probability ``hot_prob`` the leaf comes from the first
        ``hot_fraction`` of the tree (recent orders, active
        customers); otherwise it is uniform over the whole tree.  This
        two-level model gives a *bounded* primary working set — the
        paper's "small primary working sets" — with a realistic cold
        tail.
        """
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_prob <= 1.0:
            raise ConfigError("hot_prob must be in [0, 1]")
        if float(rng.random()) < hot_prob:
            span = max(1, int(hot_fraction * self.n_leaves))
            return int(rng.integers(0, span))
        return int(rng.integers(0, self.n_leaves))
