"""Streaming latency histograms with bounded relative error.

Latency percentiles over millions of completions cannot keep every
sample.  :class:`LatencyHistogram` is the standard log-spaced bucket
scheme (HdrHistogram's idea, numpy's storage): geometric bins with a
fixed growth ratio, so any quantile is reproduced within half a bin —
a declared, uniform *relative* error — from O(bins) memory however
long the run.

Histograms merge by adding count arrays, which is what lets the
windowed statistics layer keep one histogram per window and still
report whole-run percentiles exactly as cheaply.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AnalysisError, ConfigError

#: Default bin range: 100 ns .. ~10^6 s of response time.
DEFAULT_LO_S = 1e-7
DEFAULT_HI_S = 1e6

#: Default growth ratio: 4% wide bins -> quantiles within ~2%.
DEFAULT_GROWTH = 1.04


class LatencyHistogram:
    """Log-spaced streaming histogram of non-negative durations."""

    __slots__ = ("lo", "growth", "_log_growth", "counts", "total", "sum_s")

    def __init__(
        self,
        lo_s: float = DEFAULT_LO_S,
        hi_s: float = DEFAULT_HI_S,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if lo_s <= 0 or hi_s <= lo_s:
            raise ConfigError("need 0 < lo_s < hi_s")
        if growth <= 1.0:
            raise ConfigError("growth ratio must exceed 1")
        self.lo = lo_s
        self.growth = growth
        self._log_growth = math.log(growth)
        n_bins = int(math.ceil(math.log(hi_s / lo_s) / self._log_growth)) + 1
        self.counts = np.zeros(n_bins, dtype=np.int64)
        self.total = 0
        self.sum_s = 0.0

    def _bin(self, value_s: float) -> int:
        if value_s <= self.lo:
            return 0
        index = int(math.log(value_s / self.lo) / self._log_growth)
        return min(index, len(self.counts) - 1)

    def add(self, value_s: float) -> None:
        """Record one duration (negative durations are a caller bug)."""
        if value_s < 0:
            raise AnalysisError("negative duration recorded")
        self.counts[self._bin(value_s)] += 1
        self.total += 1
        self.sum_s += value_s

    def merge(self, other: "LatencyHistogram") -> None:
        """Absorb another histogram with identical bin geometry."""
        if len(other.counts) != len(self.counts) or other.lo != self.lo:
            raise AnalysisError("histogram geometries differ; cannot merge")
        self.counts += other.counts
        self.total += other.total
        self.sum_s += other.sum_s

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (geometric bin midpoint; ~2% error).

        >>> h = LatencyHistogram()
        >>> for v in (0.01, 0.02, 0.03, 0.04, 0.10): h.add(v)
        >>> 0.025 < h.quantile(0.5) < 0.035
        True
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * (self.total - 1)
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += int(count)
            if cumulative > rank:
                edge = self.lo * self.growth**i
                return edge * math.sqrt(self.growth)
        return self.lo * self.growth ** len(self.counts)  # pragma: no cover

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> tuple[float, ...]:
        return tuple(self.quantile(q) for q in qs)
