"""The load plane: closed/open-loop request generation at scale.

Drives the :mod:`repro.appserver` station model (thread pool -> CPU ->
connection pool -> DB) with up to a million emulated users, kept as
numpy columns rather than objects, via an exact Gillespie
discrete-event engine whose per-event cost is independent of the
population.  Windowed stable-period statistics are audited against
the operational laws on every window, and whole runs are cross-checked
against closed-form queueing oracles (M/M/1, M/M/c, the closed
machine-repairman chain) — see :mod:`repro.loadplane.analytic`.

Entry points: :func:`simulate_loadplane` for one run,
:func:`run_saturation` for a harness-parallel offered-load sweep with
bottleneck naming and knee detection (``jmmw loadplane`` on the CLI).
"""

from repro.loadplane.analytic import (
    Bottleneck,
    ClosedMetrics,
    OpenMetrics,
    bottleneck_analysis,
    closed_mmc_metrics,
    erlang_c,
    interactive_response_time,
    littles_law,
    measured_knee,
    mm1_metrics,
    mmc_metrics,
    utilization_law,
)
from repro.loadplane.engine import (
    LoadPlaneConfig,
    LoadPlaneResult,
    profile_for,
    simulate_loadplane,
)
from repro.loadplane.histogram import LatencyHistogram
from repro.loadplane.state import IN_SYSTEM_PHASES, FifoRing, IndexPool, UserColumns
from repro.loadplane.sweep import (
    FULL_POPULATIONS,
    QUICK_POPULATIONS,
    SaturationReport,
    SweepConfig,
    run_saturation,
    sweep_tasks,
)
from repro.loadplane.windows import (
    StableAggregate,
    WindowStats,
    aggregate_stable,
    operational_identity_errors,
)

__all__ = [
    "Bottleneck",
    "ClosedMetrics",
    "OpenMetrics",
    "bottleneck_analysis",
    "closed_mmc_metrics",
    "erlang_c",
    "interactive_response_time",
    "littles_law",
    "measured_knee",
    "mm1_metrics",
    "mmc_metrics",
    "utilization_law",
    "LoadPlaneConfig",
    "LoadPlaneResult",
    "profile_for",
    "simulate_loadplane",
    "LatencyHistogram",
    "IN_SYSTEM_PHASES",
    "FifoRing",
    "IndexPool",
    "UserColumns",
    "FULL_POPULATIONS",
    "QUICK_POPULATIONS",
    "SaturationReport",
    "SweepConfig",
    "run_saturation",
    "sweep_tasks",
    "StableAggregate",
    "WindowStats",
    "aggregate_stable",
    "operational_identity_errors",
]
