"""Closed- and open-loop request generation over the appserver model.

The engine is an exact discrete-event simulation of the queueing
network the paper's driver tier implies: users alternate between an
exponential *think* state (closed loop) or arrive as a Poisson stream
(open loop), then move through the application-server stations —

    think/arrive -> [ThreadPool] -> CPU phase -> [ConnectionPool]
                 -> DB phase -> complete -> think again

where the :class:`~repro.appserver.threadpool.ThreadPool` caps
concurrent transactions and the
:class:`~repro.appserver.connpool.ConnectionPool` caps the DB
sub-phase (waiters keep holding their thread — the coupled-resource
behavior Section 4.1 blames for the idle time).

Exactness without per-event heaps comes from the Markov structure:
with exponential think and service stages, the time to the next event
is exponential in the *total* rate and the firing user is uniform
within its station (memorylessness), so the engine is a Gillespie
simulation over aggregate rates with O(1) work per event — event cost
is independent of the population.  Per-user identity lives in the
batched :class:`~repro.loadplane.state.UserColumns`; a million users
cost ~30 MB of columns and not a single Python object.

Every window's accounting is audited against the operational laws
(see :mod:`repro.loadplane.windows`); a violation raises
:class:`~repro.errors.InvariantViolation` — mis-transitioned users
cannot pass silently.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.appserver.connpool import ConnectionPool
from repro.appserver.threadpool import ThreadPool
from repro.errors import ConfigError, InvariantViolation, SimulationError
from repro.loadplane import analytic
from repro.loadplane.state import (
    CPU,
    DB,
    FREE,
    Q_CONN,
    Q_THREAD,
    THINKING,
    FifoRing,
    IndexPool,
    UserColumns,
)
from repro.loadplane.windows import (
    StableAggregate,
    WindowStats,
    aggregate_stable,
    operational_identity_errors,
)
from repro.rng import RngFactory
from repro.workloads.mix import (
    ECPERF_MIX,
    SPECJBB_MIX,
    UNIFORM_PROFILE,
    ServiceProfile,
    service_profile,
)

#: Test seam: the closed-loop think-completion rate is multiplied by
#: this module constant.  Production value 1.0; the queueing-oracle
#: suite patches it to model a biased think-time sampler and prove the
#: analytic cross-check fails loudly (see
#: ``tests/loadplane/test_queueing_oracle.py``).
_THINK_RATE_SCALE = 1.0


def _window_clip(t0: float, window_start: float) -> float:
    """Clip a residence-interval start to the current window.

    Module-level so the seeded-defect tests can break the per-user
    residence accounting in one place and watch the operational-law
    audit catch it.
    """
    return t0 if t0 > window_start else window_start


def profile_for(workload: str) -> ServiceProfile:
    """The per-transaction-type service profile for a mix name."""
    if workload == "specjbb":
        return service_profile(SPECJBB_MIX)
    if workload == "ecperf":
        return service_profile(ECPERF_MIX)
    if workload == "uniform":
        return UNIFORM_PROFILE
    raise ConfigError(
        f"unknown workload {workload!r} (known: ecperf, specjbb, uniform)"
    )


@dataclass(frozen=True)
class LoadPlaneConfig:
    """One load-plane run: population, stations, mix and measurement.

    ``service_s`` is the mix-weighted mean total service demand per
    operation; the per-type CPU/DB stage means are derived from the
    workload's :class:`~repro.workloads.mix.ServiceProfile`.  The
    closed loop draws exponential think times with mean ``think_s``
    (wire :attr:`repro.workloads.driver.DriverModel.think_time_s` in
    here); the open loop replaces think with a Poisson arrival stream
    of ``arrival_rate`` per second over ``n_users`` request slots —
    arrivals beyond the slot capacity are counted as drops.
    """

    n_users: int
    threads: int = 8
    connections: int = 8
    service_s: float = 0.02
    think_s: float = 1.2
    workload: str = "uniform"
    open_loop: bool = False
    arrival_rate: float = 0.0
    windows: int = 8
    window_s: float = 1.0
    warmup_fraction: float = 0.25
    seed: int = 1234
    warm_start: bool = True
    max_events: int = 50_000_000

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ConfigError("n_users must be >= 1")
        if self.threads < 1 or self.connections < 1:
            raise ConfigError("threads and connections must be >= 1")
        if self.service_s <= 0:
            raise ConfigError("service_s must be positive")
        if self.think_s < 0:
            raise ConfigError("think_s must be non-negative")
        if self.open_loop and self.arrival_rate <= 0:
            raise ConfigError("open loop needs a positive arrival_rate")
        if not self.open_loop and self.arrival_rate:
            raise ConfigError("arrival_rate only applies to the open loop")
        if self.windows < 1 or self.window_s <= 0:
            raise ConfigError("need >= 1 window of positive duration")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")
        if self.max_events < 1:
            raise ConfigError("max_events must be positive")
        profile_for(self.workload)  # validates the mix name


@dataclass(frozen=True)
class LoadPlaneResult:
    """Everything one run measured (picklable for the harness)."""

    config: LoadPlaneConfig
    windows: tuple[WindowStats, ...]
    stable: StableAggregate
    events: int
    thread_acquires: int
    thread_rejected: int
    thread_peak: int
    conn_acquires: int
    conn_blocked: int
    conn_peak: int
    identity_errors: tuple[str, ...] = field(default=())

    @property
    def offered_users(self) -> int:
        return self.config.n_users


class _RandomBlocks:
    """Block-buffered draws from one named stream (hot-loop friendly)."""

    __slots__ = ("_rng", "_block", "_uni", "_ui", "_exp", "_ei")

    def __init__(self, rng: np.random.Generator, block: int = 8192) -> None:
        self._rng = rng
        self._block = block
        self._uni = rng.random(block).tolist()
        self._ui = 0
        self._exp = rng.standard_exponential(block).tolist()
        self._ei = 0

    def uniform(self) -> float:
        i = self._ui
        if i >= self._block:
            self._uni = self._rng.random(self._block).tolist()
            i = 0
        self._ui = i + 1
        return self._uni[i]

    def exponential(self) -> float:
        i = self._ei
        if i >= self._block:
            self._exp = self._rng.standard_exponential(self._block).tolist()
            i = 0
        self._ei = i + 1
        return self._exp[i]


class _Engine:
    """One simulation run; see :func:`simulate_loadplane`."""

    def __init__(self, config: LoadPlaneConfig) -> None:
        self.config = config
        profile = profile_for(config.workload)
        self.profile = profile
        self.n_types = len(profile.names)
        self.cum_probs = list(np.cumsum(profile.probs))
        self.cpu_mean = [
            config.service_s * w * (1.0 - d)
            for w, d in zip(profile.weights, profile.db_share)
        ]
        self.db_mean = [
            config.service_s * w * d
            for w, d in zip(profile.weights, profile.db_share)
        ]
        if any(mean <= 0 for mean in self.cpu_mean):
            raise ConfigError("every type needs a positive CPU stage")
        self.mu_cpu = [1.0 / mean for mean in self.cpu_mean]
        self.mu_db = [1.0 / mean if mean > 0 else 0.0 for mean in self.db_mean]

        n = config.n_users
        self.users = UserColumns(n)
        self.slot_of = np.full(n, -1, dtype=np.int64)
        self.idle_pool = IndexPool(n, self.slot_of)  # think set / free slots
        self.thread_queue = FifoRing(n)
        conn_waiters = max(1, min(config.threads, n))
        self.conn_queue = FifoRing(conn_waiters)
        station = max(1, min(config.threads, n))
        self.cpu_pools = [IndexPool(station, self.slot_of) for _ in range(self.n_types)]
        db_station = max(1, min(config.connections, n))
        self.db_pools = [IndexPool(db_station, self.slot_of) for _ in range(self.n_types)]
        self.thread_pool = ThreadPool(config.threads)
        self.conn_pool = ConnectionPool(config.connections)

        self.rand = _RandomBlocks(
            RngFactory(seed=config.seed).stream("loadplane")
        )
        self.n_sys = 0
        self.events = 0
        self.now = 0.0
        self.win = WindowStats(start_s=0.0, end_s=config.window_s)
        self.closed_windows: list[WindowStats] = []

    # -- transitions --------------------------------------------------------

    def _sample_type(self) -> int:
        return bisect_right(self.cum_probs, self.rand.uniform())

    def _start_cpu(self, user: int, now: float) -> None:
        self.users.phase[user] = CPU
        self.users.t_thread[user] = now
        self.cpu_pools[int(self.users.txn[user])].add(user)

    def _start_db(self, user: int, now: float) -> None:
        self.users.phase[user] = DB
        self.users.t_conn[user] = now
        self.db_pools[int(self.users.txn[user])].add(user)

    def _arrive(self, user: int, now: float) -> None:
        self.win.arrivals += 1
        self.users.txn[user] = self._sample_type()
        self.users.t_enter[user] = now
        self.n_sys += 1
        if self.thread_pool.try_acquire():
            self._start_cpu(user, now)
        else:
            self.users.phase[user] = Q_THREAD
            self.thread_queue.push(user)

    def _complete_cpu(self, user: int, now: float) -> None:
        txn = int(self.users.txn[user])
        if self.db_mean[txn] > 0:
            if self.conn_pool.try_acquire():
                self._start_db(user, now)
            else:
                self.users.phase[user] = Q_CONN
                self.conn_queue.push(user)
        else:
            self._finish(user, now)

    def _complete_db(self, user: int, now: float) -> None:
        self.win.residence_busy_conns += now - _window_clip(
            float(self.users.t_conn[user]), self.win.start_s
        )
        self.conn_pool.release()
        if self.conn_queue.size:
            waiter = self.conn_queue.pop()
            assert self.conn_pool.try_acquire()
            self._start_db(waiter, now)
        self._finish(user, now)

    def _finish(self, user: int, now: float) -> None:
        win = self.win
        response = now - float(self.users.t_enter[user])
        win.completions += 1
        win.resp_sum_s += response
        win.hist.add(response)
        win.residence_n += now - _window_clip(
            float(self.users.t_enter[user]), win.start_s
        )
        win.residence_busy_threads += now - _window_clip(
            float(self.users.t_thread[user]), win.start_s
        )
        self.thread_pool.release()
        self.n_sys -= 1
        if self.thread_queue.size:
            waiter = self.thread_queue.pop()
            assert self.thread_pool.try_acquire()
            self._start_cpu(waiter, now)
        if self.config.open_loop:
            self.users.phase[user] = FREE
            self.idle_pool.add(user)
        elif self.config.think_s > 0:
            self.users.phase[user] = THINKING
            self.idle_pool.add(user)
        else:
            self._arrive(user, now)  # zero think: instant re-entry

    # -- measurement --------------------------------------------------------

    def _integrate(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        win = self.win
        win.area_n += self.n_sys * dt
        win.area_busy_threads += self.thread_pool.in_use * dt
        win.area_busy_conns += self.conn_pool.in_use * dt

    def _close_window(self) -> None:
        """Flush still-resident users' partial sojourns, open the next."""
        win = self.win
        phase = self.users.phase
        end = win.end_s
        start = win.start_s
        in_sys = (phase >= Q_THREAD) & (phase <= DB)
        idx = np.nonzero(in_sys)[0]
        if idx.size:
            win.residence_n += float(
                np.sum(end - np.maximum(self.users.t_enter[idx], start))
            )
        holders = np.nonzero((phase >= CPU) & (phase <= DB))[0]
        if holders.size:
            win.residence_busy_threads += float(
                np.sum(end - np.maximum(self.users.t_thread[holders], start))
            )
        db_users = np.nonzero(phase == DB)[0]
        if db_users.size:
            win.residence_busy_conns += float(
                np.sum(end - np.maximum(self.users.t_conn[db_users], start))
            )
        self.closed_windows.append(win)
        self.win = WindowStats(
            start_s=end, end_s=end + self.config.window_s
        )

    # -- setup --------------------------------------------------------------

    def _warm_start_population(self) -> int:
        """Expected station population from the analytic fixed point."""
        config = self.config
        if config.open_loop:
            offered = config.arrival_rate * config.service_s / config.threads
            if offered >= 1.0:
                return min(config.n_users, config.threads)
            metrics = analytic.mmc_metrics(
                config.arrival_rate, config.service_s, config.threads
            )
            return min(config.n_users, int(round(metrics.mean_in_system)))
        metrics = analytic.closed_mmc_metrics(
            config.n_users, config.think_s, config.service_s, config.threads
        )
        return min(config.n_users, int(round(metrics.mean_in_system)))

    def _place_users(self) -> None:
        placed = self._warm_start_population() if self.config.warm_start else 0
        if not self.config.open_loop and self.config.think_s == 0:
            placed = self.config.n_users  # zero think: nobody ever thinks
        for user in range(placed):
            self._arrive(user, 0.0)
        self.win.arrivals = 0  # placement is initial state, not arrivals
        for user in range(placed, self.config.n_users):
            self.users.phase[user] = (
                FREE if self.config.open_loop else THINKING
            )
            self.idle_pool.add(user)

    # -- main loop ----------------------------------------------------------

    def run(self) -> LoadPlaneResult:
        config = self.config
        self._place_users()
        horizon = config.windows * config.window_s
        inv_think = (
            0.0 if config.open_loop or config.think_s == 0
            else 1.0 / config.think_s
        )
        while True:
            think_rate = (
                config.arrival_rate if config.open_loop
                else self.idle_pool.size * inv_think * _THINK_RATE_SCALE
            )
            total = think_rate
            cpu_rates = []
            for txn in range(self.n_types):
                rate = self.cpu_pools[txn].size * self.mu_cpu[txn]
                cpu_rates.append(rate)
                total += rate
            db_rates = []
            for txn in range(self.n_types):
                rate = self.db_pools[txn].size * self.mu_db[txn]
                db_rates.append(rate)
                total += rate
            t_next = horizon if total <= 0 else (
                self.now + self.rand.exponential() / total
            )
            # Integrate up to the event, closing windows crossed on the way.
            while t_next >= self.win.end_s:
                self._integrate(self.now, self.win.end_s)
                self.now = self.win.end_s
                self._close_window()
                if len(self.closed_windows) >= config.windows:
                    return self._result()
            self._integrate(self.now, t_next)
            self.now = t_next
            self.events += 1
            if self.events > config.max_events:
                raise SimulationError(
                    f"load plane exceeded its {config.max_events} event "
                    f"budget at t={self.now:.3f}s; shrink the horizon or "
                    f"raise max_events"
                )
            # Pick the firing clock: one uniform against the rate ladder.
            pick = self.rand.uniform() * total
            if pick < think_rate:
                if config.open_loop:
                    if self.idle_pool.size == 0:
                        self.win.drops += 1
                    else:
                        self._arrive(self.idle_pool.pop(), self.now)
                else:
                    user = self.idle_pool.sample_remove(self.rand.uniform())
                    self._arrive(user, self.now)
                continue
            pick -= think_rate
            fired = False
            for txn in range(self.n_types):
                if pick < cpu_rates[txn]:
                    user = self.cpu_pools[txn].sample_remove(self.rand.uniform())
                    self._complete_cpu(user, self.now)
                    fired = True
                    break
                pick -= cpu_rates[txn]
            if fired:
                continue
            for txn in range(self.n_types):
                if pick < db_rates[txn] or txn == self.n_types - 1:
                    user = self.db_pools[txn].sample_remove(self.rand.uniform())
                    self._complete_db(user, self.now)
                    break
                pick -= db_rates[txn]

    def _result(self) -> LoadPlaneResult:
        config = self.config
        windows = self.closed_windows
        stable = aggregate_stable(
            windows, config.warmup_fraction, config.threads, config.connections
        )
        errors = operational_identity_errors(windows)
        obs.incr("loadplane/events", self.events)
        obs.incr("loadplane/completions", stable.completions)
        obs.incr("loadplane/drops", stable.drops)
        return LoadPlaneResult(
            config=config,
            windows=tuple(windows),
            stable=stable,
            events=self.events,
            thread_acquires=self.thread_pool.acquires,
            thread_rejected=self.thread_pool.rejected,
            thread_peak=self.thread_pool.peak_in_use,
            conn_acquires=self.conn_pool.acquires,
            conn_blocked=self.conn_pool.blocked,
            conn_peak=self.conn_pool.peak_in_use,
            identity_errors=tuple(errors),
        )


def simulate_loadplane(
    config: LoadPlaneConfig, *, check_identities: bool = True
) -> LoadPlaneResult:
    """Run one load-plane simulation.

    With ``check_identities`` (the default) an operational-law
    violation in any window raises
    :class:`~repro.errors.InvariantViolation`; passing ``False``
    returns the result with :attr:`LoadPlaneResult.identity_errors`
    populated instead (the seeded-defect tests inspect it).
    """
    with obs.span("loadplane/simulate"):
        result = _Engine(config).run()
    if check_identities and result.identity_errors:
        raise InvariantViolation(
            "operational-law audit failed: "
            + "; ".join(result.identity_errors[:3])
        )
    return result
