"""Batched user-state containers for the load plane.

A million emulated users cannot be a million Python objects: the load
plane keeps *columns*, not instances.  :class:`UserColumns` holds one
numpy array per attribute (phase, transaction type, timestamps), and
the engine moves users between stations by rewriting column entries —
the same array-of-struct to struct-of-array turn the trace pipeline
took in PR 2.

Two small numpy-backed containers give the engine O(1) station
membership operations without per-user objects:

- :class:`IndexPool` — an unordered set of user indices supporting
  O(1) add, O(1) remove and O(1) *uniform* sampling (swap-remove).
  Uniform sampling is what makes the Gillespie engine exact: when one
  of ``k`` exponential clocks fires, the winner is uniform among the
  ``k`` (memorylessness), so "pick a uniform member" IS the race.
- :class:`FifoRing` — a fixed-capacity FIFO of user indices (an int32
  ring buffer) for the thread- and connection-pool wait queues.

All three are sized once, up front, so a run's memory footprint is a
function of the configured population, never of simulated time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError

#: User phases (int8 column values).
THINKING = np.int8(0)  # closed loop: waiting out the think time
Q_THREAD = np.int8(1)  # arrived; queued for a worker thread
CPU = np.int8(2)  # holding a thread; in the CPU service phase
Q_CONN = np.int8(3)  # holding a thread; queued for a DB connection
DB = np.int8(4)  # holding thread + connection; in the DB phase
FREE = np.int8(5)  # open loop: an unused request slot

#: Phases in which the user occupies the appserver station system.
IN_SYSTEM_PHASES = (Q_THREAD, CPU, Q_CONN, DB)


class UserColumns:
    """Struct-of-arrays state for ``n`` emulated users.

    ``phase``/``txn`` are int8 (a million users cost two megabytes),
    timestamps are float64 seconds of simulated time.  ``t_enter`` is
    when the user last entered the station system (response-time
    anchor), ``t_thread``/``t_conn`` when it acquired the worker
    thread / DB connection (busy-time anchors).
    """

    __slots__ = ("n", "phase", "txn", "t_enter", "t_thread", "t_conn")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ConfigError("user population must be positive")
        self.n = n
        self.phase = np.full(n, THINKING, dtype=np.int8)
        self.txn = np.zeros(n, dtype=np.int8)
        self.t_enter = np.zeros(n, dtype=np.float64)
        self.t_thread = np.zeros(n, dtype=np.float64)
        self.t_conn = np.zeros(n, dtype=np.float64)

    def nbytes(self) -> int:
        """Total bytes held by the columns (the O(users) footprint)."""
        return (
            self.phase.nbytes
            + self.txn.nbytes
            + self.t_enter.nbytes
            + self.t_thread.nbytes
            + self.t_conn.nbytes
        )


class IndexPool:
    """Unordered index set with O(1) add/remove/uniform-sample.

    ``members[:size]`` lists the current members; ``slot_of`` maps a
    user index to its position in ``members`` (shared across pools is
    fine as long as membership is exclusive, which station phases
    guarantee).

    >>> slots = np.full(8, -1, dtype=np.int64)
    >>> pool = IndexPool(4, slot_of=slots)
    >>> pool.add(5); pool.add(2); pool.size
    2
    >>> pool.remove(5); pool.size
    1
    >>> int(pool.at(0))
    2
    """

    __slots__ = ("members", "slot_of", "size")

    def __init__(self, capacity: int, slot_of: np.ndarray) -> None:
        if capacity <= 0:
            raise ConfigError("pool capacity must be positive")
        self.members = np.zeros(capacity, dtype=np.int64)
        self.slot_of = slot_of
        self.size = 0

    def add(self, user: int) -> None:
        if self.size >= len(self.members):
            raise SimulationError("index pool overflow")
        self.members[self.size] = user
        self.slot_of[user] = self.size
        self.size += 1

    def remove(self, user: int) -> None:
        slot = int(self.slot_of[user])
        if slot < 0 or slot >= self.size or self.members[slot] != user:
            raise SimulationError(f"user {user} is not in this pool")
        self._remove_slot(slot)

    def _remove_slot(self, slot: int) -> int:
        """Swap-remove the member at ``slot``; returns the user index."""
        user = int(self.members[slot])
        last = self.size - 1
        mover = self.members[last]
        self.members[slot] = mover
        self.slot_of[mover] = slot
        self.slot_of[user] = -1
        self.size = last
        return user

    def sample_remove(self, u01: float) -> int:
        """Remove and return a uniformly-chosen member (``u01`` in [0,1))."""
        if self.size <= 0:
            raise SimulationError("sample from an empty index pool")
        slot = int(u01 * self.size)
        if slot >= self.size:  # u01 == 1.0 - eps rounding
            slot = self.size - 1
        return self._remove_slot(slot)

    def pop(self) -> int:
        """Remove and return the last-added member (order-free stack)."""
        if self.size <= 0:
            raise SimulationError("pop from an empty index pool")
        return self._remove_slot(self.size - 1)

    def at(self, slot: int) -> int:
        return int(self.members[slot])


class FifoRing:
    """Fixed-capacity FIFO queue of user indices (int32 ring buffer)."""

    __slots__ = ("buf", "head", "size")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("ring capacity must be positive")
        self.buf = np.zeros(capacity, dtype=np.int64)
        self.head = 0
        self.size = 0

    def push(self, user: int) -> None:
        if self.size >= len(self.buf):
            raise SimulationError("FIFO ring overflow")
        self.buf[(self.head + self.size) % len(self.buf)] = user
        self.size += 1

    def pop(self) -> int:
        if self.size <= 0:
            raise SimulationError("pop from an empty FIFO ring")
        user = int(self.buf[self.head])
        self.head = (self.head + 1) % len(self.buf)
        self.size -= 1
        return user
