"""Analytic queueing oracles for the load plane.

The simulated appserver is cross-checked against independent models
the same way ``jmmw diffcheck`` cross-checks the caches: closed-form
M/M/1 and M/M/c for the open loop, the finite-population M/M/c//N
birth–death chain (the machine-repairman model) for the closed loop,
plus the operational laws (Little, utilization, interactive response
time) and the asymptotic-bound bottleneck analysis from the classic
queueing-network playbook.

Everything here is exact under the model's assumptions (Poisson
arrivals / exponential think and service times), numerically stable in
the regimes the sweeps reach — Erlang C via the Erlang-B recurrence
rather than factorials, the closed chain in log space — and fast
enough to evaluate at a million users (the chain is one vectorized
pass over the population).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class OpenMetrics:
    """Steady-state M/M/1 / M/M/c predictions."""

    arrival_rate: float
    service_s: float
    servers: int
    utilization: float  # rho = lambda / (c * mu)
    wait_probability: float  # Erlang C: P(arrival queues)
    queue_wait_s: float  # Wq
    response_s: float  # R = Wq + 1/mu
    mean_queue: float  # Nq = lambda * Wq
    mean_in_system: float  # N = lambda * R


@dataclass(frozen=True)
class ClosedMetrics:
    """Steady-state M/M/c//N (finite population, exponential think)."""

    n_users: int
    think_s: float
    service_s: float
    servers: int
    throughput: float  # X
    utilization: float  # E[min(n, c)] / c
    mean_in_system: float  # time-average users at the station
    response_s: float  # R = N_station / X (Little at the station)

    @property
    def cycle_s(self) -> float:
        """Full user cycle: think + response (R + Z = N/X)."""
        return self.think_s + self.response_s


def erlang_c(servers: int, offered_load: float) -> float:
    """P(wait) for M/M/c with offered load ``a = lambda/mu`` Erlangs.

    Uses the Erlang-B recurrence ``B(k) = a B(k-1) / (k + a B(k-1))``
    and the B-to-C identity — stable for hundreds of servers where the
    textbook factorial formula overflows (the rho -> 1 edge the sweep
    layer reaches).

    >>> round(erlang_c(1, 0.5), 3)   # M/M/1: P(wait) = rho
    0.5
    """
    if servers < 1:
        raise ConfigError("servers must be >= 1")
    if offered_load < 0:
        raise ConfigError("offered load must be non-negative")
    if offered_load >= servers:
        return 1.0  # saturated: every arrival waits
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho * (1.0 - b))


def mmc_metrics(arrival_rate: float, service_s: float, servers: int) -> OpenMetrics:
    """Exact M/M/c steady state (M/M/1 when ``servers == 1``)."""
    if arrival_rate <= 0 or service_s <= 0:
        raise ConfigError("arrival rate and service time must be positive")
    if servers < 1:
        raise ConfigError("servers must be >= 1")
    mu = 1.0 / service_s
    rho = arrival_rate / (servers * mu)
    if rho >= 1.0:
        raise ConfigError(
            f"offered utilization {rho:.3f} >= 1: the open system has no "
            f"steady state (raise servers or lower the arrival rate)"
        )
    wait_prob = erlang_c(servers, arrival_rate / mu)
    queue_wait = wait_prob / (servers * mu - arrival_rate)
    response = queue_wait + service_s
    return OpenMetrics(
        arrival_rate=arrival_rate,
        service_s=service_s,
        servers=servers,
        utilization=rho,
        wait_probability=wait_prob,
        queue_wait_s=queue_wait,
        response_s=response,
        mean_queue=arrival_rate * queue_wait,
        mean_in_system=arrival_rate * response,
    )


def mm1_metrics(arrival_rate: float, service_s: float) -> OpenMetrics:
    """M/M/1 steady state — the ``c = 1`` degenerate case of M/M/c."""
    return mmc_metrics(arrival_rate, service_s, servers=1)


def closed_mmc_metrics(
    n_users: int, think_s: float, service_s: float, servers: int
) -> ClosedMetrics:
    """Exact M/M/c//N: ``n_users`` cycling through think + station.

    Solves the birth–death chain on the station population ``n`` with
    birth rate ``(N - n)/Z`` and death rate ``min(n, c) * mu``, in log
    space (a normalized product over a million states underflows in
    linear space).  ``think_s == 0`` is the degenerate chain whose mass
    sits entirely at ``n = N``: every user is always at the station.
    """
    if n_users < 1:
        raise ConfigError("n_users must be >= 1")
    if service_s <= 0:
        raise ConfigError("service time must be positive")
    if think_s < 0:
        raise ConfigError("think time must be non-negative")
    if servers < 1:
        raise ConfigError("servers must be >= 1")
    mu = 1.0 / service_s
    if think_s == 0.0:
        busy = float(min(n_users, servers))
        x = busy * mu
        return ClosedMetrics(
            n_users=n_users,
            think_s=0.0,
            service_s=service_s,
            servers=servers,
            throughput=x,
            utilization=busy / servers,
            mean_in_system=float(n_users),
            response_s=n_users / x,
        )
    n = np.arange(n_users, dtype=np.float64)  # transitions n -> n+1
    up = np.log((n_users - n) / think_s)
    down = np.log(np.minimum(n + 1.0, float(servers)) * mu)
    log_p = np.concatenate(([0.0], np.cumsum(up - down)))
    log_p -= log_p.max()
    p = np.exp(log_p)
    p /= p.sum()
    states = np.arange(n_users + 1, dtype=np.float64)
    busy = np.minimum(states, float(servers))
    x = float((p * busy).sum() * mu)
    mean_station = float((p * states).sum())
    return ClosedMetrics(
        n_users=n_users,
        think_s=think_s,
        service_s=service_s,
        servers=servers,
        throughput=x,
        utilization=float((p * busy).sum()) / servers,
        mean_in_system=mean_station,
        response_s=mean_station / x,
    )


# -- operational laws -------------------------------------------------------


def littles_law(throughput: float, response_s: float) -> float:
    """N = X * R."""
    return throughput * response_s


def utilization_law(throughput: float, service_s: float, servers: int) -> float:
    """U = X * s / c."""
    if servers < 1:
        raise ConfigError("servers must be >= 1")
    return throughput * service_s / servers


def interactive_response_time(n_users: int, throughput: float, think_s: float) -> float:
    """R = N / X - Z (the interactive response-time law)."""
    if throughput <= 0:
        raise ConfigError("throughput must be positive")
    return n_users / throughput - think_s


# -- bottleneck + knee ------------------------------------------------------


@dataclass(frozen=True)
class Bottleneck:
    """Asymptotic-bound analysis of a closed multi-station system."""

    station: str  # the saturating station
    max_throughput: float  # min over stations of capacity / demand
    knee_users: float  # N* = X_max * (Z + total demand)
    demands_s: dict[str, float]
    capacities: dict[str, int]

    def describe(self) -> str:
        per_station = ", ".join(
            f"{name} {self.capacities[name]}/{demand:.4g}s"
            for name, demand in sorted(self.demands_s.items())
        )
        return (
            f"bottleneck: {self.station} (X_max {self.max_throughput:.4g}/s, "
            f"knee at ~{self.knee_users:.0f} users; capacity/demand: "
            f"{per_station})"
        )


def bottleneck_analysis(
    demands_s: dict[str, float],
    capacities: dict[str, int],
    think_s: float,
) -> Bottleneck:
    """Name the saturating station and place the analytic knee.

    ``demands_s[k]`` is the per-operation service demand at station
    ``k`` and ``capacities[k]`` its server count; the station with the
    largest ``demand / capacity`` saturates first, bounding system
    throughput at ``capacity / demand`` and putting the saturation
    knee at ``N* = X_max * (Z + sum(demands))`` users.
    """
    if not demands_s:
        raise ConfigError("bottleneck analysis needs at least one station")
    if set(demands_s) != set(capacities):
        raise ConfigError("demands and capacities must name the same stations")
    rates = {}
    for name, demand in demands_s.items():
        if demand < 0:
            raise ConfigError(f"station {name}: demand must be non-negative")
        capacity = capacities[name]
        if capacity < 1:
            raise ConfigError(f"station {name}: capacity must be >= 1")
        rates[name] = capacity / demand if demand > 0 else math.inf
    station = min(sorted(rates), key=lambda name: rates[name])
    x_max = rates[station]
    if not math.isfinite(x_max):
        raise ConfigError("every station has zero demand; nothing saturates")
    total_demand = sum(demands_s.values())
    return Bottleneck(
        station=station,
        max_throughput=x_max,
        knee_users=x_max * (think_s + total_demand),
        demands_s=dict(demands_s),
        capacities=dict(capacities),
    )


#: A sweep point "left the linear-scaling regime" below this fraction
#: of the light-load asymptote X = N / (Z + R_base).
KNEE_FRACTION = 0.9


def measured_knee(
    points: list[tuple[int, float]], think_s: float, base_response_s: float
) -> int | None:
    """First sweep population that falls off the linear asymptote.

    Light load scales as ``X = N / (Z + R_base)``; the knee is the
    first measured point below :data:`KNEE_FRACTION` of that line
    *from which the curve never recovers* — requiring every later
    point to stay below the line too makes the detector robust to a
    single statistically-noisy light-load point, which dips and comes
    back, where a true knee persists.  ``None`` means the sweep never
    left the linear regime.
    """
    if base_response_s < 0:
        raise ConfigError("base response time must be non-negative")
    cycle = think_s + base_response_s
    if cycle <= 0:
        raise ConfigError("think + response must be positive")
    knee = None
    for n_users, throughput in sorted(points):
        if throughput < KNEE_FRACTION * (n_users / cycle):
            if knee is None:
                knee = n_users
        else:
            knee = None  # recovered: the earlier dip was noise
    return knee
