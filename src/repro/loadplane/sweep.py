"""Offered-load sweeps: saturation curves with knee detection.

A sweep runs :func:`~repro.loadplane.engine.simulate_loadplane` over a
ladder of closed-loop populations on the harness rails — one
:class:`~repro.harness.Task` per population, content-keyed for the
result cache, bit-identical serial vs ``--jobs N`` — then lines the
measured curve up against the analytic layer: the asymptotic-bound
bottleneck (which station saturates, where the knee must be) and the
exact closed M/M/c//N thread-station prediction per point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import ascii_plot, render_table
from repro.errors import ConfigError, HarnessError
from repro.harness import FaultPolicy, Task, content_key, run_tasks
from repro.loadplane import analytic
from repro.loadplane.engine import (
    LoadPlaneConfig,
    LoadPlaneResult,
    profile_for,
    simulate_loadplane,
)

#: Population ladders: the quick ladder crosses the default knee
#: (~500 users at 8 threads x 20 ms service, 1.2 s think) in seconds;
#: the full ladder runs to a million users (feasible because the
#: warm-started event rate is set by throughput, not population).
QUICK_POPULATIONS = (8, 32, 128, 512, 2048)
FULL_POPULATIONS = (10, 100, 1_000, 10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class SweepConfig:
    """A saturation sweep: one load-plane config per population."""

    populations: tuple[int, ...] = QUICK_POPULATIONS
    threads: int = 8
    connections: int = 8
    service_s: float = 0.02
    think_s: float = 1.2
    workload: str = "uniform"
    windows: int = 8
    window_s: float = 2.0
    warmup_fraction: float = 0.25
    seed: int = 1234

    def __post_init__(self) -> None:
        if not self.populations:
            raise ConfigError("sweep needs at least one population")
        if len(set(self.populations)) != len(self.populations):
            raise ConfigError("sweep populations must be distinct")
        self.point(min(self.populations))  # validate the shared knobs

    def point(self, n_users: int) -> LoadPlaneConfig:
        """The load-plane config for one population on this sweep."""
        return LoadPlaneConfig(
            n_users=n_users,
            threads=self.threads,
            connections=self.connections,
            service_s=self.service_s,
            think_s=self.think_s,
            workload=self.workload,
            windows=self.windows,
            window_s=self.window_s,
            warmup_fraction=self.warmup_fraction,
            seed=self.seed,
        )

    def bottleneck(self) -> analytic.Bottleneck:
        """Asymptotic-bound analysis of this sweep's two stations."""
        profile = profile_for(self.workload)
        db_demand = self.service_s * sum(
            p * w * d
            for p, w, d in zip(profile.probs, profile.weights, profile.db_share)
        )
        return analytic.bottleneck_analysis(
            demands_s={"threads": self.service_s, "connections": db_demand},
            capacities={"threads": self.threads, "connections": self.connections},
            think_s=self.think_s,
        )


def _sweep_cell(config: LoadPlaneConfig) -> LoadPlaneResult:
    """Module-level cell fn (workers import it by reference)."""
    return simulate_loadplane(config)


def _point_key(config: LoadPlaneConfig) -> str:
    return content_key(
        kind="loadplane/point",
        n_users=config.n_users,
        threads=config.threads,
        connections=config.connections,
        service_s=config.service_s,
        think_s=config.think_s,
        workload=config.workload,
        open_loop=config.open_loop,
        arrival_rate=config.arrival_rate,
        windows=config.windows,
        window_s=config.window_s,
        warmup_fraction=config.warmup_fraction,
        seed=config.seed,
        warm_start=config.warm_start,
    )


def sweep_tasks(sweep: SweepConfig) -> list[Task]:
    """One cache-keyed harness task per sweep population."""
    return [
        Task(
            key=f"loadplane/n{n_users}",
            fn=_sweep_cell,
            args=(sweep.point(n_users),),
            cache_key=_point_key(sweep.point(n_users)),
        )
        for n_users in sweep.populations
    ]


@dataclass(frozen=True)
class SaturationReport:
    """A finished sweep: measured points plus the analytic overlay."""

    sweep: SweepConfig
    results: tuple[LoadPlaneResult, ...]
    bottleneck: analytic.Bottleneck
    knee_users: int | None  # first measured point off the linear regime

    def render(self, plot: bool = True) -> str:
        """The saturation-curve report (table + knee/bottleneck lines)."""
        rows = []
        for result in self.results:
            stable = result.stable
            predicted = analytic.closed_mmc_metrics(
                result.config.n_users,
                self.sweep.think_s,
                self.sweep.service_s,
                self.sweep.threads,
            )
            rows.append(
                (
                    result.config.n_users,
                    stable.throughput,
                    predicted.throughput,
                    stable.response_time_s * 1e3,
                    stable.p95_s * 1e3,
                    stable.p99_s * 1e3,
                    stable.thread_utilization,
                    stable.conn_utilization,
                    result.events,
                )
            )
        lines = [
            f"saturation sweep: workload={self.sweep.workload} "
            f"threads={self.sweep.threads} connections={self.sweep.connections} "
            f"service={self.sweep.service_s * 1e3:g}ms think={self.sweep.think_s:g}s",
            "",
            render_table(
                (
                    "users", "X/s", "X_mmc/s", "R_ms", "p95_ms", "p99_ms",
                    "U_thr", "U_conn", "events",
                ),
                rows,
            ),
            "",
            self.bottleneck.describe(),
        ]
        if self.knee_users is None:
            lines.append(
                "measured knee: none (sweep stayed in the linear regime)"
            )
        else:
            lines.append(
                f"measured knee: {self.knee_users} users (first point below "
                f"{analytic.KNEE_FRACTION:g}x the linear asymptote; analytic "
                f"knee ~{self.bottleneck.knee_users:.0f})"
            )
        if plot and len(self.results) > 1:
            series = {
                "measured": [
                    (float(r.config.n_users), r.stable.throughput)
                    for r in self.results
                ]
            }
            lines += ["", ascii_plot(series, logx=True)]
        return "\n".join(lines)


def run_saturation(
    sweep: SweepConfig,
    *,
    jobs: int = 1,
    cache=None,
    telemetry=None,
    manifest=None,
    faults: FaultPolicy | None = None,
) -> SaturationReport:
    """Run the sweep on the harness and assemble the report.

    Raises the first point's failure if any population fails — a
    saturation curve with silent holes would misplace the knee.
    """
    outcomes = run_tasks(
        sweep_tasks(sweep),
        jobs=jobs,
        cache=cache,
        telemetry=telemetry,
        manifest=manifest,
        faults=faults,
    )
    failed = [o.failure for o in outcomes if not o.ok]
    if failed:
        raise HarnessError(
            "saturation sweep lost point(s): "
            + "; ".join(str(f) for f in failed)
        )
    results = tuple(
        sorted((o.value for o in outcomes), key=lambda r: r.config.n_users)
    )
    knee = analytic.measured_knee(
        [(r.config.n_users, r.stable.throughput) for r in results],
        sweep.think_s,
        sweep.service_s,
    )
    return SaturationReport(
        sweep=sweep,
        results=results,
        bottleneck=sweep.bottleneck(),
        knee_users=knee,
    )
